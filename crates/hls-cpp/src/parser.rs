//! Recursive-descent parser for the C subset.

use crate::ast::*;
use crate::lexer::{lex, CTok, Spanned};
use crate::{Error, Result};

struct P {
    toks: Vec<Spanned>,
    pos: usize,
    /// Function-scope pragmas collected while parsing the current body.
    pending_pragmas: Vec<Pragma>,
}

impl P {
    fn peek(&self) -> &CTok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn bump(&mut self) -> CTok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> Result<()> {
        if *self.peek() == CTok::Punct(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}', got {:?}", self.peek())))
        }
    }

    fn eat_ident(&mut self, w: &str) -> Result<()> {
        if *self.peek() == CTok::Ident(w.to_string()) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected '{w}', got {:?}", self.peek())))
        }
    }

    fn take_ident(&mut self) -> Result<String> {
        match self.bump() {
            CTok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, got {other:?}"))),
        }
    }

    fn type_of(&self, name: &str) -> Option<CType> {
        Some(match name {
            "void" => CType::Void,
            "int" => CType::Int,
            "long" => CType::Long,
            "short" => CType::Short,
            "char" => CType::Char,
            "float" => CType::Float,
            "double" => CType::Double,
            _ => return None,
        })
    }

    fn at_type(&self) -> bool {
        matches!(self.peek(), CTok::Ident(w) if self.type_of(w).is_some())
    }

    // ---- top-level ---------------------------------------------------

    fn parse_unit(&mut self) -> Result<CUnit> {
        let mut unit = CUnit::default();
        while *self.peek() != CTok::Eof {
            unit.funcs.push(self.parse_func()?);
        }
        Ok(unit)
    }

    fn parse_func(&mut self) -> Result<CFunc> {
        let ret_name = self.take_ident()?;
        let ret = self
            .type_of(&ret_name)
            .ok_or_else(|| self.err("expected return type"))?;
        let name = self.take_ident()?;
        self.eat_punct('(')?;
        let mut params = Vec::new();
        while *self.peek() != CTok::Punct(')') {
            let ty_name = self.take_ident()?;
            let ty = self
                .type_of(&ty_name)
                .ok_or_else(|| self.err("expected parameter type"))?;
            let pname = self.take_ident()?;
            let mut dims = Vec::new();
            while *self.peek() == CTok::Punct('[') {
                self.bump();
                match self.bump() {
                    CTok::Int(d) if d > 0 => dims.push(d as u64),
                    other => return Err(self.err(format!("expected array dim, got {other:?}"))),
                }
                self.eat_punct(']')?;
            }
            params.push(CParam {
                name: pname,
                ty,
                dims,
            });
            if *self.peek() == CTok::Punct(',') {
                self.bump();
            }
        }
        self.eat_punct(')')?;
        self.pending_pragmas.clear();
        let body = self.parse_block()?;
        let pragmas = std::mem::take(&mut self.pending_pragmas);
        Ok(CFunc {
            name,
            ret,
            params,
            pragmas,
            body,
        })
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>> {
        self.eat_punct('{')?;
        let mut out = Vec::new();
        while *self.peek() != CTok::Punct('}') {
            if let Some(s) = self.parse_stmt()? {
                out.push(s);
            }
        }
        self.eat_punct('}')?;
        Ok(out)
    }

    // ---- statements -----------------------------------------------------

    /// Returns None for statements that dissolve (stray pragmas).
    fn parse_stmt(&mut self) -> Result<Option<Stmt>> {
        match self.peek().clone() {
            CTok::Pragma(text) => {
                // Pragmas outside loop heads: ARRAY_PARTITION binds to the
                // function (via its variable= operand); INTERFACE and other
                // directives are accepted and ignored — the flow derives
                // interfaces from types.
                self.bump();
                if let Some(p @ Pragma::ArrayPartition { .. }) = parse_pragma(&text) {
                    self.pending_pragmas.push(p);
                }
                Ok(None)
            }
            CTok::Ident(w) if w == "for" => Ok(Some(self.parse_for()?)),
            CTok::Ident(w) if w == "if" => Ok(Some(self.parse_if()?)),
            CTok::Ident(w) if w == "return" => {
                self.bump();
                if *self.peek() == CTok::Punct(';') {
                    self.bump();
                    Ok(Some(Stmt::Return(None)))
                } else {
                    let e = self.parse_expr()?;
                    self.eat_punct(';')?;
                    Ok(Some(Stmt::Return(Some(e))))
                }
            }
            CTok::Ident(_) if self.at_type() => Ok(Some(self.parse_decl()?)),
            _ => {
                // Assignment or expression statement.
                let e = self.parse_expr()?;
                if *self.peek() == CTok::Punct('=') {
                    self.bump();
                    let value = self.parse_expr()?;
                    self.eat_punct(';')?;
                    let target = match e {
                        Expr::Var(v) => LValue::Var(v),
                        Expr::Index { base, indices } => LValue::Index { base, indices },
                        other => return Err(self.err(format!("not assignable: {other:?}"))),
                    };
                    Ok(Some(Stmt::Assign { target, value }))
                } else {
                    self.eat_punct(';')?;
                    Ok(Some(Stmt::ExprStmt(e)))
                }
            }
        }
    }

    fn parse_decl(&mut self) -> Result<Stmt> {
        let ty_name = self.take_ident()?;
        let ty = self
            .type_of(&ty_name)
            .ok_or_else(|| self.err("expected type"))?;
        let name = self.take_ident()?;
        if *self.peek() == CTok::Punct('[') {
            let mut dims = Vec::new();
            while *self.peek() == CTok::Punct('[') {
                self.bump();
                match self.bump() {
                    CTok::Int(d) if d > 0 => dims.push(d as u64),
                    other => return Err(self.err(format!("expected dim, got {other:?}"))),
                }
                self.eat_punct(']')?;
            }
            self.eat_punct(';')?;
            return Ok(Stmt::DeclArray { ty, name, dims });
        }
        let init = if *self.peek() == CTok::Punct('=') {
            self.bump();
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.eat_punct(';')?;
        Ok(Stmt::DeclScalar { ty, name, init })
    }

    fn parse_for(&mut self) -> Result<Stmt> {
        self.eat_ident("for")?;
        self.eat_punct('(')?;
        // `int i = init;`
        self.eat_ident("int")?;
        let var = self.take_ident()?;
        self.eat_punct('=')?;
        let init = self.parse_expr()?;
        self.eat_punct(';')?;
        // `i < bound;`
        let v2 = self.take_ident()?;
        if v2 != var {
            return Err(self.err("loop condition must test the loop variable"));
        }
        let cmp = match self.bump() {
            CTok::Punct('<') => BinOp::Lt,
            CTok::Punct('>') => BinOp::Gt,
            CTok::Op2("<=") => BinOp::Le,
            CTok::Op2(">=") => BinOp::Ge,
            other => return Err(self.err(format!("unsupported loop comparison {other:?}"))),
        };
        let bound = self.parse_expr()?;
        self.eat_punct(';')?;
        // `i += step` / `i++`
        let v3 = self.take_ident()?;
        if v3 != var {
            return Err(self.err("loop increment must update the loop variable"));
        }
        let step = match self.bump() {
            CTok::Op2("++") => 1,
            CTok::Op2("+=") => {
                let negative = if *self.peek() == CTok::Punct('-') {
                    self.bump();
                    true
                } else {
                    false
                };
                match self.bump() {
                    CTok::Int(s) if s != 0 => {
                        if negative {
                            -s
                        } else {
                            s
                        }
                    }
                    other => return Err(self.err(format!("expected step, got {other:?}"))),
                }
            }
            other => return Err(self.err(format!("unsupported increment {other:?}"))),
        };
        self.eat_punct(')')?;
        self.eat_punct('{')?;
        // Leading pragmas bind to this loop.
        let mut pragmas = Vec::new();
        while let CTok::Pragma(text) = self.peek().clone() {
            self.bump();
            if let Some(p) = parse_pragma(&text) {
                pragmas.push(p);
            }
        }
        let mut body = Vec::new();
        while *self.peek() != CTok::Punct('}') {
            if let Some(s) = self.parse_stmt()? {
                body.push(s);
            }
        }
        self.eat_punct('}')?;
        Ok(Stmt::For {
            var,
            init,
            cmp,
            bound,
            step,
            pragmas,
            body,
        })
    }

    fn parse_if(&mut self) -> Result<Stmt> {
        self.eat_ident("if")?;
        self.eat_punct('(')?;
        let cond = self.parse_expr()?;
        self.eat_punct(')')?;
        let then = self.parse_block()?;
        let els = if *self.peek() == CTok::Ident("else".to_string()) {
            self.bump();
            self.parse_block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then, els })
    }

    // ---- expressions -----------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<Expr> {
        let c = self.parse_cmp()?;
        if *self.peek() == CTok::Punct('?') {
            self.bump();
            let a = self.parse_expr()?;
            self.eat_punct(':')?;
            let b = self.parse_expr()?;
            Ok(Expr::Ternary {
                cond: Box::new(c),
                then: Box::new(a),
                els: Box::new(b),
            })
        } else {
            Ok(c)
        }
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            CTok::Punct('<') => Some(BinOp::Lt),
            CTok::Punct('>') => Some(BinOp::Gt),
            CTok::Op2("<=") => Some(BinOp::Le),
            CTok::Op2(">=") => Some(BinOp::Ge),
            CTok::Op2("==") => Some(BinOp::Eq),
            CTok::Op2("!=") => Some(BinOp::Ne),
            _ => None,
        };
        match op {
            None => Ok(lhs),
            Some(op) => {
                self.bump();
                let rhs = self.parse_additive()?;
                Ok(Expr::Bin {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                })
            }
        }
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                CTok::Punct('+') => BinOp::Add,
                CTok::Punct('-') => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                CTok::Punct('*') => BinOp::Mul,
                CTok::Punct('/') => BinOp::Div,
                CTok::Punct('%') => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if *self.peek() == CTok::Punct('-') {
            self.bump();
            let inner = self.parse_unary()?;
            return Ok(match inner {
                Expr::Int(v) => Expr::Int(-v),
                Expr::Float { value, f32 } => Expr::Float { value: -value, f32 },
                other => Expr::Neg(Box::new(other)),
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let line = self.line();
        match self.bump() {
            CTok::Int(v) => Ok(Expr::Int(v)),
            CTok::Float(v, f32) => Ok(Expr::Float { value: v, f32 }),
            CTok::Punct('(') => {
                // Parenthesized expression or cast.
                if self.at_type() {
                    let ty_name = self.take_ident()?;
                    let ty = self.type_of(&ty_name).unwrap();
                    self.eat_punct(')')?;
                    let inner = self.parse_unary()?;
                    return Ok(Expr::Cast {
                        ty,
                        value: Box::new(inner),
                    });
                }
                let e = self.parse_expr()?;
                self.eat_punct(')')?;
                Ok(e)
            }
            CTok::Ident(name) => {
                if *self.peek() == CTok::Punct('(') {
                    self.bump();
                    let mut args = Vec::new();
                    while *self.peek() != CTok::Punct(')') {
                        args.push(self.parse_expr()?);
                        if *self.peek() == CTok::Punct(',') {
                            self.bump();
                        }
                    }
                    self.eat_punct(')')?;
                    return Ok(Expr::Call { name, args });
                }
                if *self.peek() == CTok::Punct('[') {
                    let mut indices = Vec::new();
                    while *self.peek() == CTok::Punct('[') {
                        self.bump();
                        indices.push(self.parse_expr()?);
                        self.eat_punct(']')?;
                    }
                    return Ok(Expr::Index {
                        base: name,
                        indices,
                    });
                }
                Ok(Expr::Var(name))
            }
            other => Err(Error::Parse {
                line,
                msg: format!("unexpected token {other:?} in expression"),
            }),
        }
    }
}

/// Parse a pragma body: `HLS PIPELINE II=2`, `HLS UNROLL factor=4`.
fn parse_pragma(text: &str) -> Option<Pragma> {
    let parts: Vec<&str> = text.split_whitespace().collect();
    if parts.first().map(|s| s.to_ascii_uppercase()) != Some("HLS".to_string()) {
        return None;
    }
    match parts.get(1).map(|s| s.to_ascii_uppercase()).as_deref() {
        Some("PIPELINE") => {
            let ii = parts
                .iter()
                .find_map(|p| p.strip_prefix("II="))
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            Some(Pragma::Pipeline { ii })
        }
        Some("UNROLL") => {
            let factor = parts
                .iter()
                .find_map(|p| p.strip_prefix("factor="))
                .and_then(|v| v.parse().ok());
            Some(Pragma::Unroll { factor })
        }
        Some("LOOP_FLATTEN") => Some(Pragma::Flatten),
        Some("ARRAY_PARTITION") => {
            let var = parts.iter().find_map(|p| p.strip_prefix("variable="))?;
            let kind = parts
                .iter()
                .skip(2)
                .find(|p| matches!(**p, "cyclic" | "block" | "complete"))
                .copied()
                .unwrap_or("cyclic");
            let spec = match parts.iter().find_map(|p| p.strip_prefix("factor=")) {
                Some(f) => format!("{kind}:{f}"),
                None => kind.to_string(),
            };
            Some(Pragma::ArrayPartition {
                var: var.to_string(),
                spec,
            })
        }
        _ => None,
    }
}

/// Parse a translation unit.
pub fn parse_c(src: &str) -> Result<CUnit> {
    let toks = lex(src)?;
    P {
        toks,
        pos: 0,
        pending_pragmas: Vec::new(),
    }
    .parse_unit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_array_params() {
        let u = parse_c("void f(float a[4][8], int n) { return; }").unwrap();
        assert_eq!(u.funcs.len(), 1);
        let f = &u.funcs[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.params[0].dims, vec![4, 8]);
        assert_eq!(f.params[1].dims, Vec::<u64>::new());
        assert_eq!(f.body, vec![Stmt::Return(None)]);
    }

    #[test]
    fn parses_for_with_pragma() {
        let u = parse_c(
            "void f(float a[8]) { for (int i = 0; i < 8; i += 1) {\n#pragma HLS PIPELINE II=2\n a[i] = a[i] + 1.0f; } }",
        )
        .unwrap();
        let Stmt::For {
            pragmas, cmp, step, ..
        } = &u.funcs[0].body[0]
        else {
            panic!("expected for");
        };
        assert_eq!(pragmas, &vec![Pragma::Pipeline { ii: 2 }]);
        assert_eq!(*cmp, BinOp::Lt);
        assert_eq!(*step, 1);
    }

    #[test]
    fn parses_unroll_pragma_with_and_without_factor() {
        assert_eq!(
            parse_pragma("HLS UNROLL factor=4"),
            Some(Pragma::Unroll { factor: Some(4) })
        );
        assert_eq!(
            parse_pragma("HLS UNROLL"),
            Some(Pragma::Unroll { factor: None })
        );
        assert_eq!(parse_pragma("HLS INTERFACE ap_memory port=a"), None);
        assert_eq!(parse_pragma("once"), None);
    }

    #[test]
    fn precedence_mul_over_add() {
        let u = parse_c("void f() { int x = 1 + 2 * 3; }").unwrap();
        let Stmt::DeclScalar { init: Some(e), .. } = &u.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(
            *e,
            Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(Expr::Int(1)),
                rhs: Box::new(Expr::Bin {
                    op: BinOp::Mul,
                    lhs: Box::new(Expr::Int(2)),
                    rhs: Box::new(Expr::Int(3)),
                }),
            }
        );
    }

    #[test]
    fn parses_subscript_chains_and_assignment() {
        let u = parse_c("void f(float a[4][4]) { a[1][2] = a[2][1]; }").unwrap();
        let Stmt::Assign { target, value } = &u.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(
            *target,
            LValue::Index {
                base: "a".into(),
                indices: vec![Expr::Int(1), Expr::Int(2)]
            }
        );
        assert!(matches!(value, Expr::Index { .. }));
    }

    #[test]
    fn parses_calls_casts_and_ternary() {
        let u = parse_c(
            "float f(float x, int n) { float y = sqrtf(x); float z = (float)n; return x > y ? y : z; }",
        )
        .unwrap();
        assert_eq!(u.funcs[0].body.len(), 3);
        let Stmt::Return(Some(Expr::Ternary { .. })) = &u.funcs[0].body[2] else {
            panic!("expected ternary return");
        };
    }

    #[test]
    fn parses_if_else() {
        let u = parse_c(
            "void f(int n, float a[4]) { if (n < 2) { a[0] = 1.0f; } else { a[1] = 2.0f; } }",
        )
        .unwrap();
        let Stmt::If { then, els, .. } = &u.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(then.len(), 1);
        assert_eq!(els.len(), 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_c("void f() { ??? }").is_err());
        assert!(parse_c("void f( { }").is_err());
        assert!(parse_c("void f() { for (int i = 0; j < 4; i += 1) {} }").is_err());
    }

    #[test]
    fn negative_literals_fold() {
        let u = parse_c("void f() { int x = -3; float y = -1.5f; }").unwrap();
        let Stmt::DeclScalar {
            init: Some(Expr::Int(v)),
            ..
        } = &u.funcs[0].body[0]
        else {
            panic!()
        };
        assert_eq!(*v, -3);
    }
}
