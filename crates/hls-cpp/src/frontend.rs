//! The assembled "Vitis clang" stand-in: parse HLS C++, generate LLVM IR,
//! and mark the synthesis top.

use crate::codegen::codegen_unit;
use crate::parser::parse_c;
use crate::Result;

/// Compile HLS C++ source into an LLVM module. The first function becomes
/// the synthesis top (matching `set_top` defaulting in scripts that name
/// the emitted kernel first).
pub fn compile_cpp(name: &str, src: &str) -> Result<llvm_lite::Module> {
    let unit = parse_c(src)?;
    let mut m = codegen_unit(name, &unit)?;
    if let Some(f) = m.functions.iter_mut().find(|f| !f.is_declaration) {
        f.attrs.insert("hls.top".into(), "1".into());
    }
    llvm_lite::verifier::verify_module(&m).map_err(|e| crate::Error::Codegen(e.to_string()))?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_first_definition_as_top() {
        let m = compile_cpp(
            "t",
            "float helper(float x) { return x; }\nvoid top(float a[4]) { a[0] = helper(a[1]); }",
        )
        .unwrap();
        // First *definition* gets the attribute, even with intrinsics
        // declared before it.
        assert!(m.function("helper").unwrap().attrs.contains_key("hls.top"));
    }

    #[test]
    fn parse_errors_surface_with_lines() {
        let e = compile_cpp("t", "void f() {\n  int x = ;\n}").unwrap_err();
        match e {
            crate::Error::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
