//! Lexer for the C subset.

use crate::{Error, Result};

/// Tokens.
#[derive(Clone, Debug, PartialEq)]
pub enum CTok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal; bool = had `f` suffix.
    Float(f64, bool),
    /// Single punctuation char.
    Punct(char),
    /// Two-char operator: `<=`, `>=`, `==`, `!=`, `+=`, `++`.
    Op2(&'static str),
    /// A `#pragma ...` line (content after `#pragma`, trimmed).
    Pragma(String),
    /// End of input.
    Eof,
}

/// Token with its 1-based source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// Token payload.
    pub tok: CTok,
    /// Source line.
    pub line: u32,
}

/// Lex a full source string.
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    let b = src.as_bytes();
    let mut pos = 0usize;
    let mut line = 1u32;
    let mut out = Vec::new();
    let err = |line: u32, msg: &str| Error::Parse {
        line,
        msg: msg.to_string(),
    };
    while pos < b.len() {
        let c = b[pos];
        match c {
            b'\n' => {
                line += 1;
                pos += 1;
            }
            c if c.is_ascii_whitespace() => pos += 1,
            b'/' if b.get(pos + 1) == Some(&b'/') => {
                while pos < b.len() && b[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'/' if b.get(pos + 1) == Some(&b'*') => {
                pos += 2;
                while pos + 1 < b.len() && !(b[pos] == b'*' && b[pos + 1] == b'/') {
                    if b[pos] == b'\n' {
                        line += 1;
                    }
                    pos += 1;
                }
                pos = (pos + 2).min(b.len());
            }
            b'#' => {
                // Directive line. `#pragma ...` becomes a token; `#include`
                // and others are skipped.
                let start = pos;
                while pos < b.len() && b[pos] != b'\n' {
                    pos += 1;
                }
                let text = std::str::from_utf8(&b[start..pos]).unwrap().trim();
                if let Some(rest) = text.strip_prefix("#pragma") {
                    out.push(Spanned {
                        tok: CTok::Pragma(rest.trim().to_string()),
                        line,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = pos;
                while pos < b.len() && (b[pos].is_ascii_alphanumeric() || b[pos] == b'_') {
                    pos += 1;
                }
                out.push(Spanned {
                    tok: CTok::Ident(std::str::from_utf8(&b[start..pos]).unwrap().to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = pos;
                let mut is_float = false;
                while pos < b.len() {
                    let d = b[pos];
                    if d.is_ascii_digit() {
                        pos += 1;
                    } else if d == b'.'
                        && b.get(pos + 1).map(|x| x.is_ascii_digit()).unwrap_or(false)
                    {
                        is_float = true;
                        pos += 1;
                    } else if (d == b'e' || d == b'E') && is_float {
                        pos += 1;
                        if b.get(pos) == Some(&b'-') || b.get(pos) == Some(&b'+') {
                            pos += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&b[start..pos]).unwrap();
                if is_float {
                    let value: f64 = text.parse().map_err(|_| err(line, "bad float literal"))?;
                    let f32suffix = b.get(pos) == Some(&b'f');
                    if f32suffix {
                        pos += 1;
                    }
                    out.push(Spanned {
                        tok: CTok::Float(value, f32suffix),
                        line,
                    });
                } else {
                    // `1f` style: integer with float suffix.
                    if b.get(pos) == Some(&b'f') {
                        pos += 1;
                        let value: f64 =
                            text.parse().map_err(|_| err(line, "bad float literal"))?;
                        out.push(Spanned {
                            tok: CTok::Float(value, true),
                            line,
                        });
                    } else {
                        let value: i64 = text.parse().map_err(|_| err(line, "bad int literal"))?;
                        out.push(Spanned {
                            tok: CTok::Int(value),
                            line,
                        });
                    }
                }
            }
            _ => {
                let two = if pos + 1 < b.len() {
                    &src[pos..pos + 2]
                } else {
                    ""
                };
                let op2 = match two {
                    "<=" => Some("<="),
                    ">=" => Some(">="),
                    "==" => Some("=="),
                    "!=" => Some("!="),
                    "+=" => Some("+="),
                    "++" => Some("++"),
                    _ => None,
                };
                if let Some(o) = op2 {
                    out.push(Spanned {
                        tok: CTok::Op2(o),
                        line,
                    });
                    pos += 2;
                } else {
                    out.push(Spanned {
                        tok: CTok::Punct(c as char),
                        line,
                    });
                    pos += 1;
                }
            }
        }
    }
    out.push(Spanned {
        tok: CTok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<CTok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            toks("int x = 42;"),
            vec![
                CTok::Ident("int".into()),
                CTok::Ident("x".into()),
                CTok::Punct('='),
                CTok::Int(42),
                CTok::Punct(';'),
                CTok::Eof
            ]
        );
    }

    #[test]
    fn lexes_float_suffixes() {
        assert_eq!(
            toks("1.5f 2.0 3f"),
            vec![
                CTok::Float(1.5, true),
                CTok::Float(2.0, false),
                CTok::Float(3.0, true),
                CTok::Eof
            ]
        );
    }

    #[test]
    fn lexes_two_char_ops() {
        assert_eq!(
            toks("i <= n; i += 2; x == y; a != b"),
            vec![
                CTok::Ident("i".into()),
                CTok::Op2("<="),
                CTok::Ident("n".into()),
                CTok::Punct(';'),
                CTok::Ident("i".into()),
                CTok::Op2("+="),
                CTok::Int(2),
                CTok::Punct(';'),
                CTok::Ident("x".into()),
                CTok::Op2("=="),
                CTok::Ident("y".into()),
                CTok::Punct(';'),
                CTok::Ident("a".into()),
                CTok::Op2("!="),
                CTok::Ident("b".into()),
                CTok::Eof
            ]
        );
    }

    #[test]
    fn pragma_becomes_token_include_is_skipped() {
        let t = toks("#include <math.h>\n#pragma HLS PIPELINE II=2\nint x;");
        assert_eq!(t[0], CTok::Pragma("HLS PIPELINE II=2".into()));
        assert_eq!(t[1], CTok::Ident("int".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("// line comment\nint /* block */ x;");
        assert_eq!(
            t,
            vec![
                CTok::Ident("int".into()),
                CTok::Ident("x".into()),
                CTok::Punct(';'),
                CTok::Eof
            ]
        );
    }

    #[test]
    fn lines_are_tracked() {
        let spanned = lex("int x;\nfloat y;").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[3].line, 2);
    }
}
