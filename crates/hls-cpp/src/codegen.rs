//! C AST → LLVM IR code generation, in the style of an unoptimized clang:
//! every local lives in an entry-block `alloca`, loop counters are `int`s
//! re-loaded at each use, and array subscripts become structured GEPs over
//! the declared array types. `mem2reg` (run later, as Vitis does) recovers
//! SSA form.

use std::collections::HashMap;

use llvm_lite::{
    FloatPred, Function, Inst, InstData, IntPred, LoopMetadata, Module, Opcode, Type, Value,
};

use crate::ast::*;
use crate::{Error, Result};

/// Generate a module from a parsed translation unit.
pub fn codegen_unit(name: &str, unit: &CUnit) -> Result<Module> {
    let mut m = Module::new(name);
    m.target_triple = Some("fpga64-xilinx-none".to_string());
    for f in &unit.funcs {
        let func = gen_func(&mut m, f)?;
        m.functions.push(func);
    }
    Ok(m)
}

fn scalar_type(t: CType) -> Type {
    match t {
        CType::Void => Type::Void,
        CType::Int => Type::I32,
        CType::Long => Type::I64,
        CType::Short => Type::I16,
        CType::Char => Type::I8,
        CType::Float => Type::Float,
        CType::Double => Type::Double,
    }
}

fn array_type(elem: CType, dims: &[u64]) -> Type {
    let mut t = scalar_type(elem);
    for &d in dims.iter().rev() {
        t = t.array_of(d);
    }
    t
}

#[derive(Clone)]
enum Slot {
    /// Scalar variable: pointer to its stack slot.
    Scalar { ptr: Value, ty: Type },
    /// Array variable: pointer to the whole array object.
    Array { ptr: Value, arr: Type },
}

struct Cx<'m> {
    module: &'m mut Module,
    vars: HashMap<String, Slot>,
    block: llvm_lite::BlockId,
    /// Number of allocas already placed at the entry head.
    entry_allocas: usize,
}

impl Cx<'_> {
    fn push(&mut self, f: &mut Function, inst: Inst) -> llvm_lite::InstId {
        f.push_inst(self.block, inst)
    }

    fn alloca_entry(&mut self, f: &mut Function, ty: Type, name: &str) -> Value {
        let id = f.insert_inst(
            f.entry(),
            self.entry_allocas,
            Inst::new(Opcode::Alloca, ty.ptr_to(), vec![])
                .with_data(InstData::Alloca {
                    align: ty.align_in_bytes() as u32,
                    allocated: ty,
                })
                .with_name(name),
        );
        self.entry_allocas += 1;
        Value::Inst(id)
    }

    fn declare_intrinsic(&mut self, name: &str, params: Vec<Type>, ret: Type) {
        if self.module.function(name).is_none() {
            let ps = params
                .into_iter()
                .enumerate()
                .map(|(i, t)| llvm_lite::module::Param::new(format!("a{i}"), t))
                .collect();
            self.module
                .functions
                .push(Function::declaration(name, ps, ret));
        }
    }
}

fn gen_func(m: &mut Module, cf: &CFunc) -> Result<Function> {
    let mut params = Vec::new();
    for p in &cf.params {
        let ty = if p.dims.is_empty() {
            scalar_type(p.ty)
        } else {
            array_type(p.ty, &p.dims).ptr_to()
        };
        params.push(llvm_lite::module::Param::new(p.name.clone(), ty));
    }
    let mut f = Function::new(&cf.name, params, scalar_type(cf.ret));
    // Function-scope directives bind to the named parameters.
    for pragma in &cf.pragmas {
        if let Pragma::ArrayPartition { var, spec } = pragma {
            if let Some(p) = f.params.iter_mut().find(|p| p.name == *var) {
                p.attrs
                    .insert("hls.array_partition".to_string(), spec.clone());
            }
        }
    }
    let entry = f.add_block("entry");
    let mut cx = Cx {
        module: m,
        vars: HashMap::new(),
        block: entry,
        entry_allocas: 0,
    };
    // Parameters: arrays are used directly; scalars get clang-style slots.
    for (i, p) in cf.params.iter().enumerate() {
        if p.dims.is_empty() {
            let ty = scalar_type(p.ty);
            let slot = cx.alloca_entry(&mut f, ty.clone(), &format!("{}.addr", p.name));
            cx.push(
                &mut f,
                Inst::new(
                    Opcode::Store,
                    Type::Void,
                    vec![Value::Arg(i as u32), slot.clone()],
                )
                .with_data(InstData::Store {
                    align: ty.align_in_bytes() as u32,
                }),
            );
            cx.vars
                .insert(p.name.clone(), Slot::Scalar { ptr: slot, ty });
        } else {
            cx.vars.insert(
                p.name.clone(),
                Slot::Array {
                    ptr: Value::Arg(i as u32),
                    arr: array_type(p.ty, &p.dims),
                },
            );
        }
    }
    for stmt in &cf.body {
        gen_stmt(&mut cx, &mut f, stmt)?;
    }
    // Fall-through return for void functions. A trailing `return` leaves an
    // empty, unreachable continuation block behind — drop it.
    if f.terminator(cx.block).is_none() {
        let is_dead_tail = cx.block != f.entry() && f.block(cx.block).insts.is_empty() && {
            let cfg = llvm_lite::analysis::Cfg::build(&f);
            cfg.preds[cx.block as usize].is_empty()
        };
        if is_dead_tail {
            f.remove_block(cx.block);
        } else if f.ret_ty == Type::Void {
            cx.push(&mut f, Inst::new(Opcode::Ret, Type::Void, vec![]));
        } else {
            return Err(Error::Codegen(format!(
                "@{}: control reaches end of non-void function",
                cf.name
            )));
        }
    }
    Ok(f)
}

fn gen_stmt(cx: &mut Cx<'_>, f: &mut Function, stmt: &Stmt) -> Result<()> {
    match stmt {
        Stmt::DeclScalar { ty, name, init } => {
            let lty = scalar_type(*ty);
            let slot = cx.alloca_entry(f, lty.clone(), name);
            if let Some(e) = init {
                let (v, vt) = gen_expr(cx, f, e)?;
                let v = coerce(cx, f, v, &vt, &lty)?;
                cx.push(
                    f,
                    Inst::new(Opcode::Store, Type::Void, vec![v, slot.clone()]).with_data(
                        InstData::Store {
                            align: lty.align_in_bytes() as u32,
                        },
                    ),
                );
            }
            cx.vars
                .insert(name.clone(), Slot::Scalar { ptr: slot, ty: lty });
            Ok(())
        }
        Stmt::DeclArray { ty, name, dims } => {
            let arr = array_type(*ty, dims);
            let slot = cx.alloca_entry(f, arr.clone(), name);
            cx.vars.insert(name.clone(), Slot::Array { ptr: slot, arr });
            Ok(())
        }
        Stmt::Assign { target, value } => {
            let (ptr, elem) = gen_lvalue(cx, f, target)?;
            let (v, vt) = gen_expr(cx, f, value)?;
            let v = coerce(cx, f, v, &vt, &elem)?;
            cx.push(
                f,
                Inst::new(Opcode::Store, Type::Void, vec![v, ptr]).with_data(InstData::Store {
                    align: elem.align_in_bytes() as u32,
                }),
            );
            Ok(())
        }
        Stmt::For {
            var,
            init,
            cmp,
            bound,
            step,
            pragmas,
            body,
        } => gen_for(cx, f, var, init, *cmp, bound, *step, pragmas, body),
        Stmt::If { cond, then, els } => {
            let (c, ct) = gen_expr(cx, f, cond)?;
            let c = to_bool(cx, f, c, &ct)?;
            let n = f.blocks.len();
            let then_b = f.add_block(format!("if.then{n}"));
            let else_b = f.add_block(format!("if.else{n}"));
            let merge = f.add_block(format!("if.end{n}"));
            let false_target = if els.is_empty() { merge } else { else_b };
            cx.push(
                f,
                Inst::new(Opcode::CondBr, Type::Void, vec![c]).with_data(InstData::CondBr {
                    on_true: then_b,
                    on_false: false_target,
                }),
            );
            cx.block = then_b;
            for s in then {
                gen_stmt(cx, f, s)?;
            }
            if f.terminator(cx.block).is_none() {
                cx.push(
                    f,
                    Inst::new(Opcode::Br, Type::Void, vec![])
                        .with_data(InstData::Br { dest: merge }),
                );
            }
            if !els.is_empty() {
                cx.block = else_b;
                for s in els {
                    gen_stmt(cx, f, s)?;
                }
                if f.terminator(cx.block).is_none() {
                    cx.push(
                        f,
                        Inst::new(Opcode::Br, Type::Void, vec![])
                            .with_data(InstData::Br { dest: merge }),
                    );
                }
            } else {
                f.remove_block(else_b);
            }
            cx.block = merge;
            Ok(())
        }
        Stmt::Return(v) => {
            let ops = match v {
                None => vec![],
                Some(e) => {
                    let (v, vt) = gen_expr(cx, f, e)?;
                    let rty = f.ret_ty.clone();
                    vec![coerce(cx, f, v, &vt, &rty)?]
                }
            };
            cx.push(f, Inst::new(Opcode::Ret, Type::Void, ops));
            // Dead continuation block for anything after the return.
            let n = f.blocks.len();
            cx.block = f.add_block(format!("dead{n}"));
            Ok(())
        }
        Stmt::ExprStmt(e) => {
            gen_expr(cx, f, e)?;
            Ok(())
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn gen_for(
    cx: &mut Cx<'_>,
    f: &mut Function,
    var: &str,
    init: &Expr,
    cmp: BinOp,
    bound: &Expr,
    step: i64,
    pragmas: &[Pragma],
    body: &[Stmt],
) -> Result<()> {
    let iv_ty = Type::I32;
    let slot = cx.alloca_entry(f, iv_ty.clone(), var);
    let (iv0, it0) = gen_expr(cx, f, init)?;
    let iv0 = coerce(cx, f, iv0, &it0, &iv_ty)?;
    cx.push(
        f,
        Inst::new(Opcode::Store, Type::Void, vec![iv0, slot.clone()])
            .with_data(InstData::Store { align: 4 }),
    );
    let n = f.blocks.len();
    let header = f.add_block(format!("for.cond{n}"));
    let body_b = f.add_block(format!("for.body{n}"));
    let exit = f.add_block(format!("for.end{n}"));
    cx.push(
        f,
        Inst::new(Opcode::Br, Type::Void, vec![]).with_data(InstData::Br { dest: header }),
    );
    // Header: load, compare, branch.
    cx.block = header;
    let iv = Value::Inst(
        cx.push(
            f,
            Inst::new(Opcode::Load, iv_ty.clone(), vec![slot.clone()])
                .with_data(InstData::Load { align: 4 }),
        ),
    );
    let (bv, bt) = gen_expr(cx, f, bound)?;
    let bv = coerce(cx, f, bv, &bt, &iv_ty)?;
    let pred = match cmp {
        BinOp::Lt => IntPred::Slt,
        BinOp::Le => IntPred::Sle,
        BinOp::Gt => IntPred::Sgt,
        BinOp::Ge => IntPred::Sge,
        _ => return Err(Error::Codegen("bad loop comparison".into())),
    };
    let c = Value::Inst(cx.push(
        f,
        Inst::new(Opcode::ICmp, Type::I1, vec![iv, bv]).with_data(InstData::ICmp(pred)),
    ));
    cx.push(
        f,
        Inst::new(Opcode::CondBr, Type::Void, vec![c]).with_data(InstData::CondBr {
            on_true: body_b,
            on_false: exit,
        }),
    );
    // Body.
    cx.block = body_b;
    let outer = cx.vars.insert(
        var.to_string(),
        Slot::Scalar {
            ptr: slot.clone(),
            ty: iv_ty.clone(),
        },
    );
    for s in body {
        gen_stmt(cx, f, s)?;
    }
    // Latch: i += step; br header (with metadata from pragmas).
    let cur = Value::Inst(
        cx.push(
            f,
            Inst::new(Opcode::Load, iv_ty.clone(), vec![slot.clone()])
                .with_data(InstData::Load { align: 4 }),
        ),
    );
    let next = Value::Inst(cx.push(
        f,
        Inst::new(Opcode::Add, iv_ty, vec![cur, Value::i32(step as i32)]),
    ));
    cx.push(
        f,
        Inst::new(Opcode::Store, Type::Void, vec![next, slot])
            .with_data(InstData::Store { align: 4 }),
    );
    let mut latch =
        Inst::new(Opcode::Br, Type::Void, vec![]).with_data(InstData::Br { dest: header });
    if let Some(md) = pragmas_to_md(pragmas) {
        let id = cx.module.add_loop_md(md);
        latch.loop_md = Some(id);
    }
    cx.push(f, latch);
    match outer {
        Some(s) => {
            cx.vars.insert(var.to_string(), s);
        }
        None => {
            cx.vars.remove(var);
        }
    }
    cx.block = exit;
    Ok(())
}

fn pragmas_to_md(pragmas: &[Pragma]) -> Option<LoopMetadata> {
    let mut md = LoopMetadata::default();
    for p in pragmas {
        match p {
            Pragma::Pipeline { ii } => md.pipeline_ii = Some(*ii),
            Pragma::Unroll { factor: Some(n) } => md.unroll_factor = Some(*n),
            Pragma::Unroll { factor: None } => md.unroll_full = true,
            Pragma::Flatten => md.flatten = true,
            // Partition pragmas bind to variables, not loops.
            Pragma::ArrayPartition { .. } => {}
        }
    }
    if md.is_empty() {
        None
    } else {
        Some(md)
    }
}

/// Generate an lvalue: `(element pointer, element type)`.
fn gen_lvalue(cx: &mut Cx<'_>, f: &mut Function, lv: &LValue) -> Result<(Value, Type)> {
    match lv {
        LValue::Var(name) => match cx.vars.get(name).cloned() {
            Some(Slot::Scalar { ptr, ty }) => Ok((ptr, ty)),
            Some(Slot::Array { .. }) => {
                Err(Error::Codegen(format!("cannot assign whole array {name}")))
            }
            None => Err(Error::Codegen(format!("undefined variable {name}"))),
        },
        LValue::Index { base, indices } => gen_element_ptr(cx, f, base, indices),
    }
}

fn gen_element_ptr(
    cx: &mut Cx<'_>,
    f: &mut Function,
    base: &str,
    indices: &[Expr],
) -> Result<(Value, Type)> {
    let Some(Slot::Array { ptr, arr }) = cx.vars.get(base).cloned() else {
        return Err(Error::Codegen(format!("{base} is not an array")));
    };
    let mut ops = vec![ptr, Value::i64(0)];
    for e in indices {
        let (v, vt) = gen_expr(cx, f, e)?;
        let v = coerce(cx, f, v, &vt, &Type::I64)?;
        ops.push(v);
    }
    let elem = {
        let mut t = arr.clone();
        for _ in 0..indices.len() {
            t = match t {
                Type::Array(_, e) => (*e).clone(),
                other => {
                    return Err(Error::Codegen(format!(
                        "too many subscripts on {base}: reached {other}"
                    )))
                }
            };
        }
        t
    };
    if !elem.is_first_class_scalar() {
        return Err(Error::Codegen(format!("partial indexing of {base}")));
    }
    let n_ops = ops.len();
    let gep = cx.push(
        f,
        Inst::new(
            Opcode::Gep,
            llvm_lite::builder::gep_result_type(&arr, n_ops - 1),
            ops,
        )
        .with_data(InstData::Gep {
            base_ty: arr,
            inbounds: true,
        }),
    );
    Ok((Value::Inst(gep), elem))
}

/// Usual-arithmetic-conversions result type.
fn common_type(a: &Type, b: &Type) -> Type {
    match (a, b) {
        (Type::Double, _) | (_, Type::Double) => Type::Double,
        (Type::Float, _) | (_, Type::Float) => Type::Float,
        (Type::Int(x), Type::Int(y)) => Type::Int((*x).max(*y).max(32)),
        _ => a.clone(),
    }
}

fn coerce(cx: &mut Cx<'_>, f: &mut Function, v: Value, from: &Type, to: &Type) -> Result<Value> {
    if from == to {
        return Ok(v);
    }
    let _ = cx;
    let inst = match (from, to) {
        (Type::Int(a), Type::Int(b)) if a < b => Inst::new(Opcode::SExt, to.clone(), vec![v]),
        (Type::Int(a), Type::Int(b)) if a > b => Inst::new(Opcode::Trunc, to.clone(), vec![v]),
        (Type::Int(_), t) if t.is_float() => Inst::new(Opcode::SIToFP, to.clone(), vec![v]),
        (ft, Type::Int(_)) if ft.is_float() => Inst::new(Opcode::FPToSI, to.clone(), vec![v]),
        (Type::Float, Type::Double) => Inst::new(Opcode::FPExt, to.clone(), vec![v]),
        (Type::Double, Type::Float) => Inst::new(Opcode::FPTrunc, to.clone(), vec![v]),
        _ => return Err(Error::Codegen(format!("cannot convert {from} to {to}"))),
    };
    // Constants fold inline to keep the IR clang-like.
    if let Some(c) = v_const_coerce(&inst) {
        return Ok(c);
    }
    Ok(Value::Inst(f.push_inst(cx.block, inst)))
}

fn v_const_coerce(inst: &Inst) -> Option<Value> {
    let v = inst.operands.first()?;
    match (inst.opcode, v) {
        (Opcode::SExt | Opcode::Trunc, Value::ConstInt { value, .. }) => {
            Some(Value::const_int(inst.ty.clone(), *value))
        }
        (Opcode::SIToFP, Value::ConstInt { value, .. }) => Some(match inst.ty {
            Type::Float => Value::f32(*value as f32),
            _ => Value::f64(*value as f64),
        }),
        _ => None,
    }
}

fn to_bool(cx: &mut Cx<'_>, f: &mut Function, v: Value, ty: &Type) -> Result<Value> {
    if *ty == Type::I1 {
        return Ok(v);
    }
    let id = cx.push(
        f,
        Inst::new(
            Opcode::ICmp,
            Type::I1,
            vec![v, Value::const_int(ty.clone(), 0)],
        )
        .with_data(InstData::ICmp(IntPred::Ne)),
    );
    Ok(Value::Inst(id))
}

fn gen_expr(cx: &mut Cx<'_>, f: &mut Function, e: &Expr) -> Result<(Value, Type)> {
    match e {
        Expr::Int(v) => Ok((Value::i32(*v as i32), Type::I32)),
        Expr::Float { value, f32 } => {
            if *f32 {
                Ok((Value::f32(*value as f32), Type::Float))
            } else {
                Ok((Value::f64(*value), Type::Double))
            }
        }
        Expr::Var(name) => match cx.vars.get(name).cloned() {
            Some(Slot::Scalar { ptr, ty }) => {
                let id = cx.push(
                    f,
                    Inst::new(Opcode::Load, ty.clone(), vec![ptr]).with_data(InstData::Load {
                        align: ty.align_in_bytes() as u32,
                    }),
                );
                Ok((Value::Inst(id), ty))
            }
            Some(Slot::Array { .. }) => {
                Err(Error::Codegen(format!("array {name} used as a value")))
            }
            None => Err(Error::Codegen(format!("undefined variable {name}"))),
        },
        Expr::Index { base, indices } => {
            let (ptr, elem) = gen_element_ptr(cx, f, base, indices)?;
            let id = cx.push(
                f,
                Inst::new(Opcode::Load, elem.clone(), vec![ptr]).with_data(InstData::Load {
                    align: elem.align_in_bytes() as u32,
                }),
            );
            Ok((Value::Inst(id), elem))
        }
        Expr::Neg(inner) => {
            let (v, ty) = gen_expr(cx, f, inner)?;
            if ty.is_float() {
                let id = cx.push(f, Inst::new(Opcode::FNeg, ty.clone(), vec![v]));
                Ok((Value::Inst(id), ty))
            } else {
                let id = cx.push(
                    f,
                    Inst::new(
                        Opcode::Sub,
                        ty.clone(),
                        vec![Value::const_int(ty.clone(), 0), v],
                    ),
                );
                Ok((Value::Inst(id), ty))
            }
        }
        Expr::Bin { op, lhs, rhs } => {
            let (a, at) = gen_expr(cx, f, lhs)?;
            let (b, bt) = gen_expr(cx, f, rhs)?;
            let ct = common_type(&at, &bt);
            let a = coerce(cx, f, a, &at, &ct)?;
            let b = coerce(cx, f, b, &bt, &ct)?;
            let is_f = ct.is_float();
            let (opcode, result_ty, data) = match op {
                BinOp::Add => (
                    if is_f { Opcode::FAdd } else { Opcode::Add },
                    ct.clone(),
                    None,
                ),
                BinOp::Sub => (
                    if is_f { Opcode::FSub } else { Opcode::Sub },
                    ct.clone(),
                    None,
                ),
                BinOp::Mul => (
                    if is_f { Opcode::FMul } else { Opcode::Mul },
                    ct.clone(),
                    None,
                ),
                BinOp::Div => (
                    if is_f { Opcode::FDiv } else { Opcode::SDiv },
                    ct.clone(),
                    None,
                ),
                BinOp::Rem => (Opcode::SRem, ct.clone(), None),
                cmp => {
                    let (opcode, data) = if is_f {
                        let p = match cmp {
                            BinOp::Lt => FloatPred::Olt,
                            BinOp::Le => FloatPred::Ole,
                            BinOp::Gt => FloatPred::Ogt,
                            BinOp::Ge => FloatPred::Oge,
                            BinOp::Eq => FloatPred::Oeq,
                            _ => FloatPred::Une,
                        };
                        (Opcode::FCmp, InstData::FCmp(p))
                    } else {
                        let p = match cmp {
                            BinOp::Lt => IntPred::Slt,
                            BinOp::Le => IntPred::Sle,
                            BinOp::Gt => IntPred::Sgt,
                            BinOp::Ge => IntPred::Sge,
                            BinOp::Eq => IntPred::Eq,
                            _ => IntPred::Ne,
                        };
                        (Opcode::ICmp, InstData::ICmp(p))
                    };
                    let id = cx.push(f, Inst::new(opcode, Type::I1, vec![a, b]).with_data(data));
                    return Ok((Value::Inst(id), Type::I1));
                }
            };
            let mut inst = Inst::new(opcode, result_ty.clone(), vec![a, b]);
            if let Some(d) = data {
                inst.data = d;
            }
            let id = cx.push(f, inst);
            Ok((Value::Inst(id), result_ty))
        }
        Expr::Call { name, args } => gen_call(cx, f, name, args),
        Expr::Ternary { cond, then, els } => {
            let (c, ct) = gen_expr(cx, f, cond)?;
            let c = to_bool(cx, f, c, &ct)?;
            let (a, at) = gen_expr(cx, f, then)?;
            let (b, bt) = gen_expr(cx, f, els)?;
            let rt = common_type(&at, &bt);
            let a = coerce(cx, f, a, &at, &rt)?;
            let b = coerce(cx, f, b, &bt, &rt)?;
            let id = cx.push(f, Inst::new(Opcode::Select, rt.clone(), vec![c, a, b]));
            Ok((Value::Inst(id), rt))
        }
        Expr::Cast { ty, value } => {
            let (v, vt) = gen_expr(cx, f, value)?;
            let to = scalar_type(*ty);
            let v = coerce(cx, f, v, &vt, &to)?;
            Ok((v, to))
        }
    }
}

fn gen_call(cx: &mut Cx<'_>, f: &mut Function, name: &str, args: &[Expr]) -> Result<(Value, Type)> {
    // libm subset mapping (what the Vitis frontend lowers these to).
    let libm: &[(&str, &str, Type)] = &[
        ("sqrtf", "llvm.sqrt.f32", Type::Float),
        ("sqrt", "llvm.sqrt.f64", Type::Double),
        ("expf", "llvm.exp.f32", Type::Float),
        ("exp", "llvm.exp.f64", Type::Double),
        ("fabsf", "llvm.fabs.f32", Type::Float),
        ("fabs", "llvm.fabs.f64", Type::Double),
        ("fmaxf", "llvm.maxnum.f32", Type::Float),
        ("fminf", "llvm.minnum.f32", Type::Float),
    ];
    if let Some((_, intrinsic, ty)) = libm.iter().find(|(n, _, _)| *n == name) {
        let mut vals = Vec::new();
        for a in args {
            let (v, vt) = gen_expr(cx, f, a)?;
            vals.push(coerce(cx, f, v, &vt, ty)?);
        }
        cx.declare_intrinsic(intrinsic, vec![ty.clone(); vals.len()], ty.clone());
        let id = cx.push(
            f,
            Inst::new(Opcode::Call, ty.clone(), vals).with_data(InstData::Call {
                callee: intrinsic.to_string(),
            }),
        );
        return Ok((Value::Inst(id), ty.clone()));
    }
    // User function defined earlier in the unit.
    let Some(target) = cx.module.function(name) else {
        return Err(Error::Codegen(format!("call to undefined function {name}")));
    };
    let ret = target.ret_ty.clone();
    let ptypes: Vec<Type> = target.params.iter().map(|p| p.ty.clone()).collect();
    let mut vals = Vec::new();
    for (a, pt) in args.iter().zip(&ptypes) {
        let (v, vt) = gen_expr(cx, f, a)?;
        vals.push(coerce(cx, f, v, &vt, pt)?);
    }
    let id = cx.push(
        f,
        Inst::new(Opcode::Call, ret.clone(), vals).with_data(InstData::Call {
            callee: name.to_string(),
        }),
    );
    Ok((Value::Inst(id), ret))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_c;
    use llvm_lite::interp::{Interpreter, RtVal};

    fn compile(src: &str) -> Module {
        let unit = parse_c(src).unwrap();
        let m = codegen_unit("test", &unit).unwrap();
        llvm_lite::verifier::verify_module(&m).unwrap();
        m
    }

    #[test]
    fn scalar_function_computes() {
        let m = compile("int addmul(int a, int b) { int t = a + b; return t * 2; }");
        let mut i = Interpreter::new(&m);
        assert_eq!(
            i.call("addmul", &[RtVal::I(3), RtVal::I(4)]).unwrap(),
            RtVal::I(14)
        );
    }

    #[test]
    fn loop_over_array() {
        let m = compile(
            "void scale(float a[8]) { for (int i = 0; i < 8; i += 1) { a[i] = a[i] * 2.0f; } }",
        );
        let mut i = Interpreter::new(&m);
        let p = i.mem.alloc_f32(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        i.call("scale", &[RtVal::P(p)]).unwrap();
        assert_eq!(
            i.mem.read_f32(p, 8).unwrap(),
            vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]
        );
    }

    #[test]
    fn two_d_arrays_use_structured_geps() {
        let m = compile(
            "void t(float a[4][8]) { for (int i = 0; i < 4; i += 1) { for (int j = 0; j < 8; j += 1) { a[i][j] = a[i][j] + 1.0f; } } }",
        );
        let f = m.function("t").unwrap();
        assert_eq!(f.params[0].ty, Type::Float.array_of(8).array_of(4).ptr_to());
        let text = llvm_lite::printer::print_module(&m);
        assert!(text.contains("getelementptr inbounds [4 x [8 x float]]"));
        // Execution check.
        let mut i = Interpreter::new(&m);
        let p = i.mem.alloc_f32(&[0.0; 32]);
        i.call("t", &[RtVal::P(p)]).unwrap();
        assert_eq!(i.mem.read_f32(p, 32).unwrap(), vec![1.0; 32]);
    }

    #[test]
    fn pipeline_pragma_becomes_metadata() {
        let m = compile(
            "void f(float a[8]) { for (int i = 0; i < 8; i += 1) {\n#pragma HLS PIPELINE II=3\n a[i] = a[i]; } }",
        );
        assert!(m.loop_mds.iter().any(|md| md.pipeline_ii == Some(3)));
    }

    #[test]
    fn if_else_diamond() {
        let m = compile(
            "int pick(int c, int a, int b) { int r = 0; if (c > 0) { r = a; } else { r = b; } return r; }",
        );
        let mut i = Interpreter::new(&m);
        assert_eq!(
            i.call("pick", &[RtVal::I(1), RtVal::I(10), RtVal::I(20)])
                .unwrap(),
            RtVal::I(10)
        );
        let mut i2 = Interpreter::new(&m);
        assert_eq!(
            i2.call("pick", &[RtVal::I(-1), RtVal::I(10), RtVal::I(20)])
                .unwrap(),
            RtVal::I(20)
        );
    }

    #[test]
    fn libm_calls_map_to_intrinsics() {
        let m = compile("float h(float x) { return sqrtf(x * x); }");
        assert!(m.function("llvm.sqrt.f32").is_some());
        let mut i = Interpreter::new(&m);
        assert_eq!(i.call("h", &[RtVal::F(-3.0)]).unwrap(), RtVal::F(3.0));
    }

    #[test]
    fn local_arrays_live_in_entry_allocas() {
        let m = compile(
            "void f(float out[4]) { float buf[4]; for (int i = 0; i < 4; i += 1) { buf[i] = 1.0f; } for (int i = 0; i < 4; i += 1) { out[i] = buf[i]; } }",
        );
        let f = m.function("f").unwrap();
        // All allocas in the entry block.
        let entry = f.entry();
        for (b, id) in f.inst_ids() {
            if f.inst(id).opcode == Opcode::Alloca {
                assert_eq!(b, entry);
            }
        }
        let mut i = Interpreter::new(&m);
        let p = i.mem.alloc_f32(&[0.0; 4]);
        i.call("f", &[RtVal::P(p)]).unwrap();
        assert_eq!(i.mem.read_f32(p, 4).unwrap(), vec![1.0; 4]);
    }

    #[test]
    fn int_float_mixing_promotes() {
        let m = compile("float f(int n) { return n * 0.5f; }");
        let mut i = Interpreter::new(&m);
        assert_eq!(i.call("f", &[RtVal::I(5)]).unwrap(), RtVal::F(2.5));
    }

    #[test]
    fn ternary_and_cast() {
        let m = compile("int f(float x) { return x > 0.0f ? (int)x : 0; }");
        let mut i = Interpreter::new(&m);
        assert_eq!(i.call("f", &[RtVal::F(3.7)]).unwrap(), RtVal::I(3));
        let mut i2 = Interpreter::new(&m);
        assert_eq!(i2.call("f", &[RtVal::F(-2.0)]).unwrap(), RtVal::I(0));
    }

    #[test]
    fn user_function_calls() {
        let m = compile(
            "float square(float x) { return x * x; }\nfloat f(float x) { return square(x) + 1.0f; }",
        );
        let mut i = Interpreter::new(&m);
        assert_eq!(i.call("f", &[RtVal::F(3.0)]).unwrap(), RtVal::F(10.0));
    }

    #[test]
    fn non_void_fallthrough_is_an_error() {
        let unit = parse_c("int f() { int x = 1; }").unwrap();
        assert!(codegen_unit("t", &unit).is_err());
    }

    #[test]
    fn descending_loops_work() {
        let m = compile(
            "void rev(float a[8]) { for (int i = 7; i >= 0; i += -1) { a[i] = (float)i; } }",
        );
        let mut i = Interpreter::new(&m);
        let p = i.mem.alloc_f32(&[0.0; 8]);
        i.call("rev", &[RtVal::P(p)]).unwrap();
        assert_eq!(
            i.mem.read_f32(p, 8).unwrap(),
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
        );
    }

    #[test]
    fn array_partition_pragma_binds_to_param() {
        let m = compile(
            "void f(float a[8]) {
#pragma HLS ARRAY_PARTITION variable=a cyclic factor=4
 for (int i = 0; i < 8; i += 1) { a[i] = a[i]; } }",
        );
        let f = m.function("f").unwrap();
        assert_eq!(
            f.params[0]
                .attrs
                .get("hls.array_partition")
                .map(String::as_str),
            Some("cyclic:4")
        );
    }

    #[test]
    fn mem2reg_recovers_ssa_from_codegen() {
        let mut m = compile(
            "void scale(float a[8]) { for (int i = 0; i < 8; i += 1) { a[i] = a[i] * 2.0f; } }",
        );
        let before = m.function("scale").unwrap().count_opcode(Opcode::Alloca);
        assert!(before >= 1); // the loop counter slot
        llvm_lite::transforms::standard_cleanup()
            .run_to_fixpoint(&mut m, 4)
            .unwrap();
        let f = m.function("scale").unwrap();
        assert_eq!(f.count_opcode(Opcode::Alloca), 0);
        assert!(f.count_opcode(Opcode::Phi) >= 1);
    }
}
