//! AST of the C subset the Vitis-stand-in frontend accepts.
//!
//! The subset is exactly what HLS C++ emitters produce: functions over
//! scalar and statically-sized array parameters, `for` loops with affine
//! bounds, assignments, `if/else`, libm calls, and `#pragma HLS` directives
//! attached to loops.

/// Scalar C types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CType {
    /// `void` (return type only).
    Void,
    /// `int` (i32).
    Int,
    /// `long` (i64).
    Long,
    /// `short` (i16).
    Short,
    /// `char` (i8).
    Char,
    /// `float` (f32).
    Float,
    /// `double` (f64).
    Double,
}

impl CType {
    /// Is this a floating type?
    pub fn is_float(self) -> bool {
        matches!(self, CType::Float | CType::Double)
    }
}

/// A function parameter: scalar (`dims` empty) or array.
#[derive(Clone, Debug, PartialEq)]
pub struct CParam {
    /// Parameter name.
    pub name: String,
    /// Element/scalar type.
    pub ty: CType,
    /// Array dimensions (outermost first).
    pub dims: Vec<u64>,
}

/// An HLS pragma attached to a loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pragma {
    /// `#pragma HLS PIPELINE II=<n>` (II defaults to 1).
    Pipeline { ii: u32 },
    /// `#pragma HLS UNROLL [factor=<n>]` (no factor = full).
    Unroll { factor: Option<u32> },
    /// `#pragma HLS ARRAY_PARTITION variable=<v> cyclic factor=<n>`.
    ArrayPartition { var: String, spec: String },
    /// `#pragma HLS LOOP_FLATTEN`.
    Flatten,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating literal; `f32` records the `f` suffix.
    Float { value: f64, f32: bool },
    /// Variable reference.
    Var(String),
    /// Array subscript chain `base[e0][e1]...`.
    Index { base: String, indices: Vec<Expr> },
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Function call (libm subset).
    Call { name: String, args: Vec<Expr> },
    /// `c ? a : b`.
    Ternary {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
    /// `(type)expr` cast.
    Cast { ty: CType, value: Box<Expr> },
}

/// Assignable locations.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element.
    Index { base: String, indices: Vec<Expr> },
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `ty name = init;` / `ty name;`
    DeclScalar {
        ty: CType,
        name: String,
        init: Option<Expr>,
    },
    /// `ty name[d0][d1];`
    DeclArray {
        ty: CType,
        name: String,
        dims: Vec<u64>,
    },
    /// `lv = expr;`
    Assign { target: LValue, value: Expr },
    /// `for (int v = init; v < bound; v += step) { pragmas... body }`
    For {
        var: String,
        init: Expr,
        /// Comparison operator of the exit test (`Lt`, `Le`, `Gt`, `Ge`).
        cmp: BinOp,
        bound: Expr,
        step: i64,
        pragmas: Vec<Pragma>,
        body: Vec<Stmt>,
    },
    /// `if (cond) {...} [else {...}]`
    If {
        cond: Expr,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
    },
    /// `return [expr];`
    Return(Option<Expr>),
    /// Bare call statement.
    ExprStmt(Expr),
}

/// One function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct CFunc {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters.
    pub params: Vec<CParam>,
    /// Function-scope pragmas (interface/partition directives).
    pub pragmas: Vec<Pragma>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A translation unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CUnit {
    /// Functions in order.
    pub funcs: Vec<CFunc>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctype_classification() {
        assert!(CType::Float.is_float());
        assert!(CType::Double.is_float());
        assert!(!CType::Int.is_float());
        assert!(!CType::Void.is_float());
    }

    #[test]
    fn ast_nodes_compose() {
        let e = Expr::Bin {
            op: BinOp::Add,
            lhs: Box::new(Expr::Var("a".into())),
            rhs: Box::new(Expr::Int(1)),
        };
        let s = Stmt::Assign {
            target: LValue::Var("x".into()),
            value: e.clone(),
        };
        assert_eq!(
            s,
            Stmt::Assign {
                target: LValue::Var("x".into()),
                value: e
            }
        );
    }
}
