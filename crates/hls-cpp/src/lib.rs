//! `hls-cpp` — the baseline flow the paper compares against.
//!
//! MLIR-based HLS tools (ScaleHLS et al.) reach Vitis by *emitting HLS C++*
//! with `#pragma HLS` directives, then letting Vitis' own clang frontend
//! re-compile that C++ into LLVM IR. This crate reproduces both halves:
//!
//! * [`emit`] — an MLIR → HLS C++ code generator (loops become `for`
//!   statements, affine subscripts become C array indexing, directives
//!   become pragmas);
//! * [`frontend`] — a C-subset compiler (lexer → AST → llvm-lite codegen)
//!   standing in for Vitis' frozen clang: locals become allocas, loop
//!   counters are `int`s sign-extended at each use, and pragmas become
//!   `!llvm.loop` metadata on latches.
//!
//! The composition `frontend(emit(mlir))` is the "C++ flow"; the paper's
//! adaptor flow bypasses it. Comparing the two flows' synthesis results
//! (same scheduler, same kernels) reproduces the paper's headline
//! experiment. The information loss of the detour is *structural*: affine
//! maps become strings and must be re-derived, value names vanish, and
//! anything the emitter cannot spell in C is an error rather than a pass.

pub mod ast;
pub mod codegen;
pub mod emit;
pub mod frontend;
pub mod lexer;
pub mod parser;

pub use emit::emit_cpp;
pub use frontend::compile_cpp;

/// Errors from either half of the C++ flow.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The MLIR module contains something the C++ emitter cannot express.
    Emit(String),
    /// C source failed to lex/parse.
    Parse { line: u32, msg: String },
    /// Semantic/codegen failure.
    Codegen(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Emit(m) => write!(f, "C++ emission error: {m}"),
            Error::Parse { line, msg } => write!(f, "C parse error at line {line}: {msg}"),
            Error::Codegen(m) => write!(f, "C codegen error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Run the whole baseline flow: MLIR → HLS C++ → (frontend) → LLVM IR,
/// cleaned up the way Vitis' own pre-scheduling pipeline would.
pub fn cpp_flow(m: &mlir_lite::MlirModule) -> Result<llvm_lite::Module> {
    let cpp = emit_cpp(m)?;
    let mut out = compile_cpp(&m.name, &cpp)?;
    llvm_lite::transforms::standard_cleanup()
        .run_to_fixpoint(&mut out, 4)
        .map_err(|e| Error::Codegen(e.to_string()))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use llvm_lite::interp::{Interpreter, RtVal};
    use mlir_lite::parser::parse_module;

    const GEMM: &str = r#"
func.func @gemm(%A: memref<4x4xf32>, %B: memref<4x4xf32>, %C: memref<4x4xf32>) attributes {hls.top} {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 4 {
      %zero = arith.constant 0.0 : f32
      affine.store %zero, %C[%i, %j] : memref<4x4xf32>
      affine.for %k = 0 to 4 {
        %a = affine.load %A[%i, %k] : memref<4x4xf32>
        %b = affine.load %B[%k, %j] : memref<4x4xf32>
        %c = affine.load %C[%i, %j] : memref<4x4xf32>
        %p = arith.mulf %a, %b : f32
        %s = arith.addf %c, %p : f32
        affine.store %s, %C[%i, %j] : memref<4x4xf32>
      } {hls.pipeline_ii = 1 : i32}
    }
  }
  func.return
}
"#;

    #[test]
    fn end_to_end_cpp_flow_computes_gemm() {
        let m = parse_module("gemm", GEMM).unwrap();
        let module = crate::cpp_flow(&m).unwrap();
        llvm_lite::verifier::verify_module(&module).unwrap();
        let mut interp = Interpreter::new(&module);
        let a: Vec<f32> = (0..16).map(|x| x as f32).collect();
        let b: Vec<f32> = (0..16).map(|x| ((x * 3) % 5) as f32).collect();
        let pa = interp.mem.alloc_f32(&a);
        let pb = interp.mem.alloc_f32(&b);
        let pc = interp.mem.alloc_f32(&[0.0; 16]);
        interp
            .call("gemm", &[RtVal::P(pa), RtVal::P(pb), RtVal::P(pc)])
            .unwrap();
        let c = interp.mem.read_f32(pc, 16).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = 0.0f32;
                for k in 0..4 {
                    acc += a[i * 4 + k] * b[k * 4 + j];
                }
                assert_eq!(c[i * 4 + j], acc, "C[{i}][{j}]");
            }
        }
    }

    #[test]
    fn cpp_flow_is_synthesis_ready() {
        let m = parse_module("gemm", GEMM).unwrap();
        let module = crate::cpp_flow(&m).unwrap();
        // The C++ path produces structured arrays natively (clang-style),
        // so the Vitis frontend accepts it without the adaptor.
        let report = vitis_sim::csynth(&module, &vitis_sim::Target::default());
        assert!(report.is_ok(), "{report:?}");
        let report = report.unwrap();
        assert!(report.loops.iter().any(|l| l.pipelined));
    }
}
