//! The `csynth` driver: frontend acceptance, hierarchical latency rollup,
//! and report generation.

use std::collections::{HashMap, HashSet};

use llvm_lite::analysis::{counted_loop_tripcount, Cfg, DomTree, LoopInfo, NaturalLoop};
use llvm_lite::{BlockId, Function, InstData, Module, Type};

use pass_core::{Budget, BudgetError};

use crate::binder::{bram_banks, control_overhead, is_shared_unit, FuNeed};
use crate::memdep::{accesses_per_base, loop_accesses};
use crate::oplib::{op_spec, FuClass};
use crate::pipeline::{compute_ii_budgeted, IiBound};
use crate::report::{CsynthReport, LoopReport};
use crate::schedule::{schedule_block_budgeted, ScheduleCtx};
use crate::Target;

/// Synthesis failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CsynthError {
    /// The frontend (modeling the frozen Vitis clang/LLVM) rejected the IR.
    Frontend(Vec<String>),
    /// The synthesis [`Budget`] (deadline or fuel) tripped mid-run.
    Budget(BudgetError),
    /// No top function found, or a structural problem.
    Other(String),
}

impl std::fmt::Display for CsynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsynthError::Frontend(msgs) => {
                writeln!(f, "HLS frontend rejected the design:")?;
                for m in msgs {
                    writeln!(f, "  - {m}")?;
                }
                Ok(())
            }
            // Render the trip verbatim: its grammar is what lets stringly
            // layers recover the structured error (`BudgetError::from_rendered`).
            CsynthError::Budget(e) => write!(f, "{e}"),
            CsynthError::Other(m) => write!(f, "csynth error: {m}"),
        }
    }
}

impl From<BudgetError> for CsynthError {
    fn from(e: BudgetError) -> CsynthError {
        CsynthError::Budget(e)
    }
}

impl std::error::Error for CsynthError {}

/// The frozen frontend's acceptance rules — written independently of the
/// adaptor's compat model (this is the tool the adaptor targets, not the
/// adaptor's own checklist).
pub fn frontend_check(m: &Module) -> Vec<String> {
    const INTRINSICS: &[&str] = &[
        "llvm.sqrt.f32",
        "llvm.sqrt.f64",
        "llvm.fabs.f32",
        "llvm.fabs.f64",
        "llvm.exp.f32",
        "llvm.exp.f64",
        "llvm.maxnum.f32",
        "llvm.maxnum.f64",
        "llvm.minnum.f32",
        "llvm.minnum.f64",
    ];
    let mut errs = Vec::new();
    for f in &m.functions {
        if f.is_declaration {
            continue;
        }
        for p in &f.params {
            if let Type::Ptr(pointee) = &p.ty {
                let shaped = matches!(**pointee, Type::Array(..));
                if !shaped && !p.attrs.contains_key("hls.interface") {
                    errs.push(format!(
                        "@{}: cannot infer a port for pointer parameter %{}",
                        f.name, p.name
                    ));
                }
            }
        }
        for (_, id) in f.inst_ids() {
            let inst = f.inst(id);
            if let InstData::Call { callee } = &inst.data {
                if callee == "malloc" || callee == "free" {
                    errs.push(format!("@{}: dynamic allocation (@{callee})", f.name));
                } else if callee.starts_with("llvm.") && !INTRINSICS.contains(&callee.as_str()) {
                    errs.push(format!("@{}: unsupported intrinsic @{callee}", f.name));
                }
            }
            if let Type::Int(w) = inst.ty {
                if w > 64 {
                    errs.push(format!("@{}: integer type i{w} too wide", f.name));
                }
            }
        }
    }
    errs
}

/// Synthesize the module's top function and produce a report.
pub fn csynth(m: &Module, target: &Target) -> Result<CsynthReport, CsynthError> {
    csynth_budgeted(m, target, &Budget::unlimited())
}

/// [`csynth`] under a [`Budget`]: fuel is charged per scheduled block (plus
/// per instruction inside [`schedule_block_budgeted`]) and per processed
/// loop, and the deadline is checked at the same points — a runaway
/// schedule or II search returns [`CsynthError::Budget`] instead of wedging
/// the calling worker.
pub fn csynth_budgeted(
    m: &Module,
    target: &Target,
    budget: &Budget,
) -> Result<CsynthReport, CsynthError> {
    let errs = frontend_check(m);
    if !errs.is_empty() {
        return Err(CsynthError::Frontend(errs));
    }
    let top = m
        .top_function()
        .ok_or_else(|| CsynthError::Other("module has no function definition".into()))?;
    synthesize_function(m, top, target, budget)
}

struct LoopResult {
    latency: u64,
    need: FuNeed,
}

fn synthesize_function(
    m: &Module,
    f: &Function,
    target: &Target,
    budget: &Budget,
) -> Result<CsynthReport, CsynthError> {
    let cfg = Cfg::build(f);
    let dom = DomTree::build(f, &cfg);
    let li = LoopInfo::build(f, &cfg, &dom);
    let cx = ScheduleCtx::from_function(f);

    // Block schedules (context-free; port conflicts within one block).
    let mut block_sched = HashMap::new();
    for &b in &f.block_order {
        budget.charge(1, "csynth/schedule")?;
        block_sched.insert(b, schedule_block_budgeted(m, f, target, b, &cx, budget)?);
    }

    // Process loops innermost-first (ascending body size).
    let mut order: Vec<&NaturalLoop> = li.loops.iter().collect();
    order.sort_by_key(|l| l.body.len());
    let mut results: HashMap<BlockId, LoopResult> = HashMap::new();
    let mut reports: Vec<LoopReport> = Vec::new();
    // Headers of loops absorbed into a flattened descendant pipeline.
    let mut absorbed: HashSet<BlockId> = HashSet::new();

    for l in order {
        budget.charge(1, "csynth/pipeline")?;
        let children: Vec<&NaturalLoop> = li
            .loops
            .iter()
            .filter(|c| c.parent == Some(l.header))
            .collect();
        let child_blocks: HashSet<BlockId> = li
            .loops
            .iter()
            .filter(|c| c.header != l.header && l.body.contains(&c.header))
            .flat_map(|c| c.body.iter().copied())
            .collect();
        let own_blocks: Vec<BlockId> = l
            .body
            .iter()
            .copied()
            .filter(|b| !child_blocks.contains(b))
            .collect();

        let md = l
            .latches
            .first()
            .and_then(|&lb| f.terminator(lb))
            .and_then(|t| f.inst(t).loop_md)
            .map(|id| m.loop_mds[id as usize].clone())
            .unwrap_or_default();
        let trip = md
            .tripcount
            .map(|(lo, hi)| (lo + hi) / 2)
            .or_else(|| counted_loop_tripcount(f, l));
        let trip_val = trip.unwrap_or(16).max(1);

        let unroll = if md.unroll_full {
            trip_val.min(u64::from(u32::MAX)) as u32
        } else {
            md.unroll_factor.unwrap_or(1).max(1)
        };
        let trip_eff = trip_val.div_ceil(u64::from(unroll));

        // Per-iteration latency: own blocks in sequence + child loops.
        let own_latency: u64 = own_blocks.iter().map(|b| block_sched[b].length).sum();
        let child_latency: u64 = children
            .iter()
            .map(|c| results.get(&c.header).map(|r| r.latency).unwrap_or(0))
            .sum();
        let per_iter = own_latency + child_latency;

        let is_innermost = children.is_empty();
        let pipelined = md.pipeline_ii.is_some() && is_innermost;

        // Loop flattening: a pipelined innermost loop marked `flatten`
        // absorbs every enclosing *perfect* loop level (single child, no
        // work besides header/preheader/latch), extending its effective
        // trip count and removing the per-level pipeline drain.
        let mut flat_factor = 1u64;
        if pipelined && md.flatten {
            let mut cur = l.parent;
            while let Some(ph) = cur {
                let parent = li.loop_with_header(ph).expect("parent exists");
                let siblings = li.loops.iter().filter(|c| c.parent == Some(ph)).count();
                let parent_child_blocks: HashSet<BlockId> = li
                    .loops
                    .iter()
                    .filter(|c| c.header != ph && parent.body.contains(&c.header))
                    .flat_map(|c| c.body.iter().copied())
                    .collect();
                let parent_own: u64 = parent
                    .body
                    .iter()
                    .filter(|b| !parent_child_blocks.contains(b))
                    .map(|b| block_sched[b].length)
                    .sum();
                let parent_trip = counted_loop_tripcount(f, parent);
                // Perfect level: exactly one child loop, negligible own work,
                // known trip count.
                let (Some(parent_trip), true, true) = (parent_trip, siblings == 1, parent_own <= 3)
                else {
                    break;
                };
                flat_factor *= parent_trip.max(1);
                absorbed.insert(ph);
                cur = parent.parent;
            }
        }

        let mut need = FuNeed::default();
        collect_fu(m, f, &own_blocks, &mut need, unroll, 1);
        for c in &children {
            if let Some(r) = results.get(&c.header) {
                need.max_with(&r.need);
            }
        }

        let (latency, ii_achieved, ii_bound) = if absorbed.contains(&l.header) {
            // This level was folded into a flattened descendant pipeline:
            // it contributes no iterations of its own.
            let latency = child_latency + own_latency.min(1) + 1;
            (
                latency,
                None,
                Some("flattened into inner pipeline".to_string()),
            )
        } else if pipelined {
            let r = compute_ii_budgeted(
                m,
                f,
                l,
                target,
                &cx,
                md.pipeline_ii.unwrap(),
                unroll,
                budget,
            )?;
            // Shared FUs at II: one instance serves II cycles.
            let mut piped = FuNeed::default();
            collect_fu(m, f, &own_blocks, &mut piped, unroll, r.ii);
            need = piped;
            let flat_trips = trip_eff.saturating_mul(flat_factor);
            let latency = per_iter + u64::from(r.ii) * flat_trips.saturating_sub(1) + 2;
            let bound = match &r.bound {
                IiBound::Recurrence(b) => Some(format!("carried dependence on {b}")),
                IiBound::MemoryPorts(b) => Some(format!("memory ports on {b}")),
                IiBound::Target => None,
            };
            (latency, Some(r.ii), bound)
        } else {
            // Sequential iterations; unrolling packs iterations against the
            // memory ports.
            let per_iter_u = if unroll > 1 {
                let accesses = loop_accesses(f, l);
                let worst = accesses_per_base(&accesses)
                    .iter()
                    .map(|(base, n)| (n * unroll).div_ceil(cx.ports_for(base, target).max(1)))
                    .max()
                    .unwrap_or(0);
                per_iter.max(u64::from(worst))
            } else {
                per_iter
            };
            (trip_eff * (per_iter_u + 1) + 1, None, None)
        };

        results.insert(
            l.header,
            LoopResult {
                latency,
                need: need.clone(),
            },
        );
        reports.push(LoopReport {
            name: f.block(l.header).name.clone(),
            depth: li.depth(l.header),
            trip_count: trip,
            pipelined,
            ii_target: md.pipeline_ii,
            ii_achieved,
            iteration_latency: per_iter,
            latency,
            ii_bound,
        });
    }

    // Function level: blocks outside all loops + top-level loops.
    let in_loop: HashSet<BlockId> = li
        .loops
        .iter()
        .flat_map(|l| l.body.iter().copied())
        .collect();
    let straightline: u64 = f
        .block_order
        .iter()
        .filter(|b| !in_loop.contains(b))
        .map(|b| block_sched[b].length)
        .sum();
    let top_loops: u64 = li
        .loops
        .iter()
        .filter(|l| l.parent.is_none())
        .map(|l| results[&l.header].latency)
        .sum();
    let latency = straightline + top_loops + 2;

    // Resources: shared FUs are temporally shared across sequential loops.
    let mut total_need = FuNeed::default();
    let outside: Vec<BlockId> = f
        .block_order
        .iter()
        .copied()
        .filter(|b| !in_loop.contains(b))
        .collect();
    collect_fu(m, f, &outside, &mut total_need, 1, 1);
    for l in li.loops.iter().filter(|l| l.parent.is_none()) {
        total_need.max_with(&results[&l.header].need);
    }
    let mut resources = total_need.area();
    resources.bram_18k = bram_banks(f);
    let overhead = control_overhead(li.loops.len());
    resources = resources.add(&overhead);

    // Order loop reports outermost-first, by position in layout.
    reports.sort_by_key(|r| {
        f.block_order
            .iter()
            .position(|&b| f.block(b).name == r.name)
            .unwrap_or(usize::MAX)
    });

    Ok(CsynthReport {
        top: f.name.clone(),
        clock_ns: target.clock_ns,
        latency,
        interval: latency + 1,
        loops: reports,
        resources,
    })
}

/// Accumulate FU requirements of a set of blocks: shared units count
/// `ceil(n * unroll / ii)` instances; logic sums its own area.
fn collect_fu(
    m: &Module,
    f: &Function,
    blocks: &[BlockId],
    need: &mut FuNeed,
    unroll: u32,
    ii: u32,
) {
    let mut counts: HashMap<FuClass, u32> = HashMap::new();
    let mut areas: HashMap<FuClass, crate::oplib::Area> = HashMap::new();
    for &b in blocks {
        for &id in &f.block(b).insts {
            let inst = f.inst(id);
            let spec = op_spec(m, f, inst);
            match spec.class {
                FuClass::Free | FuClass::MemRead | FuClass::MemWrite => {
                    need.logic_lut += u64::from(spec.area.lut) * u64::from(unroll);
                    need.logic_ff += u64::from(spec.area.ff) * u64::from(unroll);
                }
                FuClass::Logic => {
                    need.logic_lut += u64::from(spec.area.lut) * u64::from(unroll);
                    need.logic_ff += u64::from(spec.area.ff) * u64::from(unroll);
                }
                class if is_shared_unit(class) => {
                    *counts.entry(class).or_insert(0) += unroll;
                    let a = areas.entry(class).or_insert(spec.area);
                    if spec.area.lut > a.lut {
                        *a = spec.area;
                    }
                }
                _ => {}
            }
        }
    }
    for (class, n) in counts {
        let units = n.div_ceil(ii.max(1));
        need.require(class, units, areas[&class]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;

    /// Pipelined elementwise scale over 32 floats.
    const SCALE: &str = r#"
define void @scale([32 x float]* "hls.interface"="ap_memory" %a) "hls.top"="1" {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %p = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %i
  %v = load float, float* %p, align 4
  %w = fmul float %v, 0x4000000000000000
  store float %w, float* %p, align 4
  %next = add i64 %i, 1
  br label %header, !llvm.loop !0

exit:
  ret void
}

!0 = distinct !{!0, !1}
!1 = !{!"llvm.loop.pipeline.enable", i32 1}
"#;

    #[test]
    fn pipelined_scale_report() {
        let m = parse_module("m", SCALE).unwrap();
        let r = csynth(&m, &Target::default()).unwrap();
        assert_eq!(r.top, "scale");
        assert_eq!(r.loops.len(), 1);
        let l = &r.loops[0];
        assert!(l.pipelined);
        assert_eq!(l.ii_achieved, Some(1));
        assert_eq!(l.trip_count, Some(32));
        // Latency ≈ depth + II*(trip-1): tens of cycles, far below the
        // sequential 32 * ~8.
        assert!(r.latency < 64, "latency {}", r.latency);
        assert!(r.resources.bram_18k >= 1);
        assert!(r.resources.dsp >= 3); // one f32 multiplier
    }

    #[test]
    fn unpipelined_is_much_slower() {
        let src = SCALE.replace(", !llvm.loop !0", "");
        let m = parse_module("m", &src).unwrap();
        let r = csynth(&m, &Target::default()).unwrap();
        let piped = csynth(&parse_module("m", SCALE).unwrap(), &Target::default()).unwrap();
        assert!(
            r.latency > 3 * piped.latency,
            "sequential {} vs pipelined {}",
            r.latency,
            piped.latency
        );
        assert!(!r.loops[0].pipelined);
    }

    #[test]
    fn frontend_rejects_malloc() {
        let src = r#"
declare i8* @malloc(i64 %n)

define void @f() "hls.top"="1" {
entry:
  %p = call i8* @malloc(i64 16)
  ret void
}
"#;
        let m = parse_module("m", src).unwrap();
        match csynth(&m, &Target::default()) {
            Err(CsynthError::Frontend(errs)) => {
                assert!(errs.iter().any(|e| e.contains("malloc")));
            }
            other => panic!("expected frontend rejection, got {other:?}"),
        }
    }

    #[test]
    fn frontend_rejects_unannotated_flat_pointer() {
        let src = r#"
define void @f(float* %a) "hls.top"="1" {
entry:
  ret void
}
"#;
        let m = parse_module("m", src).unwrap();
        assert!(matches!(
            csynth(&m, &Target::default()),
            Err(CsynthError::Frontend(_))
        ));
    }

    #[test]
    fn fuel_budget_trips_synthesis_structurally() {
        let m = parse_module("m", SCALE).unwrap();
        // 1 fuel unit: the first block charge succeeds, the first
        // instruction charge inside scheduling trips.
        let budget = Budget::unlimited().with_fuel(1);
        match csynth_budgeted(&m, &Target::default(), &budget) {
            Err(CsynthError::Budget(e)) => {
                assert_eq!(e.kind, pass_core::BudgetKind::Fuel);
                assert!(e.stage.starts_with("csynth/"), "{}", e.stage);
                // Rendered form round-trips for stringly consumers.
                let rendered = CsynthError::Budget(e.clone()).to_string();
                assert_eq!(BudgetError::from_rendered(&rendered).unwrap(), e);
            }
            other => panic!("expected budget trip, got {other:?}"),
        }
        // An unlimited budget reproduces the plain result exactly.
        let plain = csynth(&m, &Target::default()).unwrap();
        let unlimited = csynth_budgeted(&m, &Target::default(), &Budget::unlimited()).unwrap();
        assert_eq!(plain, unlimited);
    }

    #[test]
    fn deadline_budget_trips_synthesis() {
        let m = parse_module("m", SCALE).unwrap();
        let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(2));
        match csynth_budgeted(&m, &Target::default(), &budget) {
            Err(CsynthError::Budget(e)) => assert_eq!(e.kind, pass_core::BudgetKind::Deadline),
            other => panic!("expected budget trip, got {other:?}"),
        }
    }

    #[test]
    fn report_renders() {
        let m = parse_module("m", SCALE).unwrap();
        let r = csynth(&m, &Target::default()).unwrap();
        let text = r.render();
        assert!(text.contains("scale"));
        assert!(text.contains("header"));
    }

    #[test]
    fn nested_loops_compose_latency() {
        let src = r#"
define void @f([64 x float]* "hls.interface"="ap_memory" %a) "hls.top"="1" {
entry:
  br label %oh

oh:
  %i = phi i64 [ 0, %entry ], [ %inext, %ol ]
  %oc = icmp slt i64 %i, 8
  br i1 %oc, label %ob, label %exit

ob:
  br label %ih

ih:
  %j = phi i64 [ 0, %ob ], [ %jnext, %ib ]
  %ic = icmp slt i64 %j, 8
  br i1 %ic, label %ib, label %ol

ib:
  %base = mul i64 %i, 8
  %lin = add i64 %base, %j
  %p = getelementptr inbounds [64 x float], [64 x float]* %a, i64 0, i64 %lin
  %v = load float, float* %p, align 4
  store float %v, float* %p, align 4
  %jnext = add i64 %j, 1
  br label %ih

ol:
  %inext = add i64 %i, 1
  br label %oh

exit:
  ret void
}
"#;
        let m = parse_module("m", src).unwrap();
        let r = csynth(&m, &Target::default()).unwrap();
        assert_eq!(r.loops.len(), 2);
        let outer = r.loops.iter().find(|l| l.name == "oh").unwrap();
        let inner = r.loops.iter().find(|l| l.name == "ih").unwrap();
        assert!(outer.latency > inner.latency);
        assert!(outer.latency >= 8 * inner.latency);
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
    }

    #[test]
    fn unroll_metadata_scales_latency_down() {
        let piped = SCALE.replace(
            "!1 = !{!\"llvm.loop.pipeline.enable\", i32 1}",
            "!1 = !{!\"llvm.loop.unroll.count\", i32 4}",
        );
        let m = parse_module("m", &piped).unwrap();
        let r = csynth(&m, &Target::default()).unwrap();
        let seq_src = SCALE.replace(", !llvm.loop !0", "");
        let seq = csynth(&parse_module("m", &seq_src).unwrap(), &Target::default()).unwrap();
        assert!(
            r.latency < seq.latency,
            "unrolled {} vs sequential {}",
            r.latency,
            seq.latency
        );
    }

    #[test]
    fn m_axi_design_is_slower_than_bram() {
        let flat = r#"
define void @scale(float* "hls.interface"="m_axi" %a) "hls.top"="1" {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %p = getelementptr inbounds float, float* %a, i64 %i
  %v = load float, float* %p, align 4
  %w = fmul float %v, 0x4000000000000000
  store float %w, float* %p, align 4
  %next = add i64 %i, 1
  br label %header, !llvm.loop !0

exit:
  ret void
}

!0 = distinct !{!0, !1}
!1 = !{!"llvm.loop.pipeline.enable", i32 1}
"#;
        let bram = csynth(&parse_module("m", SCALE).unwrap(), &Target::default()).unwrap();
        let axi = csynth(&parse_module("m", flat).unwrap(), &Target::default()).unwrap();
        assert!(
            axi.latency > bram.latency,
            "axi {} vs bram {}",
            axi.latency,
            bram.latency
        );
        assert_eq!(axi.resources.bram_18k, 0);
    }
}
