//! Memory-access analysis: base objects, affine-in-IV subscripts, and
//! loop-carried dependence distances.
//!
//! The precision asymmetry here is the heart of the paper's QoR story: a
//! structured GEP (`gep [32 x [32 x float]], %A, 0, %i, %k`) exposes exactly
//! which subscript depends on the loop induction variable, so the scheduler
//! can prove independence across iterations. Raw pointer arithmetic forces
//! the conservative assumption (a distance-1 carried dependence), which
//! inflates RecMII.

use std::collections::HashMap;

use llvm_lite::analysis::NaturalLoop;
use llvm_lite::{Function, InstData, InstId, Opcode, Value};

/// The root object an access resolves to (shared with the `analysis`
/// crate's points-to machinery; re-exported under the historical name).
pub use analysis::alias::MemObject as BaseObject;

/// Resolve the base object of a pointer value.
///
/// Delegates to the shared Andersen-lite points-to analysis: GEPs and
/// bitcasts are walked as before, but a Phi or Select whose incoming
/// pointers all share one underlying object now resolves to that object
/// instead of collapsing to `Unknown` — so e.g. a select between two GEPs
/// into the same array stays analyzable for dependence distances.
pub fn base_object(f: &Function, v: &Value) -> BaseObject {
    analysis::alias::resolve_base(f, v)
}

/// How a subscript relates to the loop induction variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IvRelation {
    /// `c` — does not involve the IV.
    Invariant,
    /// `IV + c` (affine with unit coefficient).
    IvPlus(i64),
    /// `a*IV + c` (affine with non-unit coefficient `a`, from `mul`/`shl`
    /// by a constant). Stride-2 kernels live here; collapsing them to
    /// [`IvRelation::Complex`] used to force a spurious distance-1
    /// carried dependence.
    IvScaled(i64, i64),
    /// Involves the IV in some other (or unprovable) way.
    Complex,
}

impl IvRelation {
    /// View as `a*IV + c` when affine in the IV.
    pub fn affine(&self) -> Option<(i64, i64)> {
        match self {
            IvRelation::IvPlus(c) => Some((1, *c)),
            IvRelation::IvScaled(a, c) => Some((*a, *c)),
            _ => None,
        }
    }

    /// `self * k`, staying in the affine lattice.
    fn scaled(self, k: i64) -> IvRelation {
        if k == 0 {
            return IvRelation::Invariant;
        }
        match self.affine() {
            Some((a, c)) => match (a.checked_mul(k), c.checked_mul(k)) {
                (Some(1), Some(ck)) => IvRelation::IvPlus(ck),
                (Some(ak), Some(ck)) => IvRelation::IvScaled(ak, ck),
                _ => IvRelation::Complex,
            },
            None => self,
        }
    }

    /// `self + k`, staying in the affine lattice.
    fn plus(self, k: i64) -> IvRelation {
        match self {
            IvRelation::IvPlus(c) => IvRelation::IvPlus(c + k),
            IvRelation::IvScaled(a, c) => IvRelation::IvScaled(a, c + k),
            other => other,
        }
    }
}

/// Does `v` transitively depend on the instruction `iv`?
pub fn value_depends_on(f: &Function, v: &Value, iv: InstId, depth: u32) -> bool {
    if depth > 16 {
        return true; // assume the worst on deep chains
    }
    match v {
        Value::Inst(id) => {
            if *id == iv {
                return true;
            }
            if f.inst(*id).opcode == Opcode::Phi && depth > 0 {
                return false; // don't walk through other loop-carried values
            }
            f.inst(*id)
                .operands
                .iter()
                .any(|o| value_depends_on(f, o, iv, depth + 1))
        }
        _ => false,
    }
}

/// Classify `v` relative to the induction phi `iv` of a loop.
pub fn iv_relation(f: &Function, v: &Value, iv: InstId) -> IvRelation {
    fn relation(f: &Function, v: &Value, iv: InstId, depth: u32) -> IvRelation {
        if depth > 16 {
            return IvRelation::Complex;
        }
        match v {
            Value::Inst(id) if *id == iv => IvRelation::IvPlus(0),
            Value::Inst(id) => {
                let inst = f.inst(*id);
                match inst.opcode {
                    // Width casts preserve the affine form.
                    Opcode::SExt | Opcode::ZExt | Opcode::Trunc => {
                        relation(f, &inst.operands[0], iv, depth + 1)
                    }
                    Opcode::Add => {
                        let (a, b) = (&inst.operands[0], &inst.operands[1]);
                        match (relation(f, a, iv, depth + 1), b.int_value()) {
                            (r @ (IvRelation::IvPlus(_) | IvRelation::IvScaled(..)), Some(k)) => {
                                return r.plus(k as i64)
                            }
                            (IvRelation::Invariant, Some(_)) => return IvRelation::Invariant,
                            _ => {}
                        }
                        match (a.int_value(), relation(f, b, iv, depth + 1)) {
                            (Some(k), r @ (IvRelation::IvPlus(_) | IvRelation::IvScaled(..))) => {
                                r.plus(k as i64)
                            }
                            (Some(_), IvRelation::Invariant) => IvRelation::Invariant,
                            _ => {
                                if value_depends_on(f, v, iv, 0) {
                                    IvRelation::Complex
                                } else {
                                    IvRelation::Invariant
                                }
                            }
                        }
                    }
                    // Constant scaling keeps the subscript affine: `mul`
                    // and `shl` by constants are how `2*i`-style strided
                    // subscripts appear.
                    Opcode::Mul => {
                        let (a, b) = (&inst.operands[0], &inst.operands[1]);
                        let scaled = match (relation(f, a, iv, depth + 1), b.int_value()) {
                            (r, Some(k)) => Some(r.scaled(k as i64)),
                            _ => match (a.int_value(), relation(f, b, iv, depth + 1)) {
                                (Some(k), r) => Some(r.scaled(k as i64)),
                                _ => None,
                            },
                        };
                        scaled.unwrap_or_else(|| {
                            if value_depends_on(f, v, iv, 0) {
                                IvRelation::Complex
                            } else {
                                IvRelation::Invariant
                            }
                        })
                    }
                    Opcode::Shl => {
                        match (
                            relation(f, &inst.operands[0], iv, depth + 1),
                            inst.operands[1].int_value(),
                        ) {
                            (r, Some(k)) if (0..63).contains(&k) => r.scaled(1i64 << k),
                            _ => {
                                if value_depends_on(f, v, iv, 0) {
                                    IvRelation::Complex
                                } else {
                                    IvRelation::Invariant
                                }
                            }
                        }
                    }
                    _ => {
                        if value_depends_on(f, v, iv, 0) {
                            IvRelation::Complex
                        } else {
                            IvRelation::Invariant
                        }
                    }
                }
            }
            _ => IvRelation::Invariant,
        }
    }
    relation(f, v, iv, 0)
}

/// One memory access inside a loop body.
#[derive(Clone, Debug)]
pub struct Access {
    /// The load/store instruction.
    pub inst: InstId,
    /// True for stores.
    pub is_store: bool,
    /// Resolved base.
    pub base: BaseObject,
    /// The pointer operand itself (for the identical-address fast path).
    pub ptr: Value,
    /// Whether the address depends on the loop IV at all (None = no IV
    /// was recognizable for the loop).
    pub iv_dependent: Option<bool>,
    /// Subscript relations to the loop IV (one per GEP index, skipping the
    /// leading 0 of structured GEPs). Empty = unanalyzable address.
    pub subscripts: Vec<IvRelation>,
    /// IV step of the analyzed loop, when recognizable. Distances are in
    /// iterations, so subscript deltas must be divided by `coeff * step`.
    pub step: Option<i64>,
}

/// Collect all loads/stores in a loop body with their subscript analysis.
pub fn loop_accesses(f: &Function, l: &NaturalLoop) -> Vec<Access> {
    let iv = llvm_lite::analysis::loop_induction_phi(f, l);
    let step = iv.and_then(|iv| loop_iv_step(f, l, iv));
    let mut out = Vec::new();
    for &b in &l.body {
        for &id in &f.block(b).insts {
            let inst = f.inst(id);
            let (is_store, ptr) = match inst.opcode {
                Opcode::Load => (false, &inst.operands[0]),
                Opcode::Store => (true, &inst.operands[1]),
                _ => continue,
            };
            let base = base_object(f, ptr);
            let subscripts = match (ptr, iv) {
                (Value::Inst(gid), Some(iv)) if f.inst(*gid).opcode == Opcode::Gep => {
                    let gep = f.inst(*gid);
                    let structured = matches!(
                        &gep.data,
                        InstData::Gep { base_ty, .. } if matches!(base_ty, llvm_lite::Type::Array(..))
                    );
                    let idx_ops: &[Value] = if structured {
                        &gep.operands[2..] // skip the leading 0
                    } else {
                        &gep.operands[1..]
                    };
                    let rels: Vec<IvRelation> =
                        idx_ops.iter().map(|v| iv_relation(f, v, iv)).collect();
                    // A flat (unstructured) gep over a multi-element space
                    // whose single index mixes several loop variables is
                    // only analyzable if the relation is clean.
                    if structured || rels.iter().all(|r| *r != IvRelation::Complex) {
                        rels
                    } else {
                        Vec::new()
                    }
                }
                _ => Vec::new(),
            };
            let iv_dependent = iv.map(|iv| value_depends_on(f, ptr, iv, 0));
            out.push(Access {
                inst: id,
                is_store,
                base,
                ptr: ptr.clone(),
                iv_dependent,
                subscripts,
                step,
            });
        }
    }
    out
}

/// Constant increment of the loop's IV, read off its latch `add`.
fn loop_iv_step(f: &Function, l: &NaturalLoop, iv: InstId) -> Option<i64> {
    let phi = f.inst(iv);
    let InstData::Phi { incoming } = &phi.data else {
        return None;
    };
    for (v, b) in phi.operands.iter().zip(incoming) {
        if !l.body.contains(b) {
            continue;
        }
        let Value::Inst(add_id) = v else { continue };
        let add = f.inst(*add_id);
        if add.opcode != Opcode::Add {
            continue;
        }
        let (x, y) = (&add.operands[0], &add.operands[1]);
        let step = if *x == Value::Inst(iv) {
            y.int_value()
        } else if *y == Value::Inst(iv) {
            x.int_value()
        } else {
            None
        };
        if let Some(s) = step {
            return i64::try_from(s).ok().filter(|s| *s > 0);
        }
    }
    None
}

/// Loop-carried dependence distance between a store and a load/store on the
/// same base, in iterations of the analyzed loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Distance {
    /// Provably never conflicts across iterations.
    None,
    /// Conflicts exactly `d` iterations apart (d >= 1).
    Exact(u32),
    /// Cannot tell — assume the tightest (distance 1).
    Unknown,
}

/// Compute the carried-dependence distance between two accesses to the same
/// base object.
pub fn dependence_distance(a: &Access, b: &Access) -> Distance {
    if a.base != b.base || a.base == BaseObject::Unknown {
        return if a.base == BaseObject::Unknown && b.base == BaseObject::Unknown {
            Distance::Unknown
        } else {
            Distance::None
        };
    }
    // Identical pointer SSA value: the two accesses always hit the same
    // address within an iteration. If that address moves with the IV the
    // conflict is intra-iteration only; if it is IV-invariant, consecutive
    // iterations collide (distance 1). This is how even flat pointer
    // arithmetic keeps elementwise updates and accumulations analyzable.
    if a.ptr == b.ptr {
        return match a.iv_dependent {
            Some(true) => Distance::None,
            Some(false) => Distance::Exact(1),
            None => Distance::Unknown,
        };
    }
    if a.subscripts.is_empty() || b.subscripts.is_empty() {
        return Distance::Unknown;
    }
    if a.subscripts.len() != b.subscripts.len() {
        return Distance::Unknown;
    }
    // Any complex subscript: give up.
    if a.subscripts.contains(&IvRelation::Complex) || b.subscripts.contains(&IvRelation::Complex) {
        return Distance::Unknown;
    }
    // If every subscript pair is IV-invariant on both sides, the same
    // address is touched every iteration: distance 1.
    let any_iv = a
        .subscripts
        .iter()
        .chain(&b.subscripts)
        .any(|r| r.affine().is_some());
    if !any_iv {
        return Distance::Exact(1);
    }
    // Compare dimension-wise in iteration space: a dim `coeff*IV + c_a`
    // vs `coeff*IV + c_b` conflicts `(c_a - c_b) / (coeff * step)`
    // iterations apart — when that quotient is not an integer the
    // addresses interleave and never collide (the stride-2 case). A dim
    // with mismatched coefficients, or one IV-dependent and one invariant
    // side, is unresolvable without values: Unknown.
    let step = a.step.or(b.step).unwrap_or(1).max(1);
    let mut distance: Option<u32> = None;
    for (ra, rb) in a.subscripts.iter().zip(&b.subscripts) {
        match (ra.affine(), rb.affine()) {
            (Some((ca_coeff, ca)), Some((cb_coeff, cb))) => {
                if ca_coeff != cb_coeff {
                    return Distance::Unknown;
                }
                let num = (ca - cb).unsigned_abs();
                let den = ca_coeff.unsigned_abs() * step.unsigned_abs();
                if den == 0 {
                    return Distance::Unknown;
                }
                if num % den != 0 {
                    // No integer iteration offset lines the dim up.
                    return Distance::None;
                }
                let d = (num / den) as u32;
                distance = Some(match distance {
                    None => d,
                    Some(prev) if prev == d => d,
                    // Conflicting requirements across dims: no single
                    // iteration offset lines both up -> independent.
                    Some(_) => return Distance::None,
                });
            }
            (None, None) if *ra == IvRelation::Invariant && *rb == IvRelation::Invariant => {}
            _ => return Distance::Unknown,
        }
    }
    match distance {
        Some(0) => Distance::None, // same iteration only; no carried dep
        Some(d) => Distance::Exact(d),
        None => Distance::Exact(1),
    }
}

/// Count accesses per base object (used for memory-port ResMII).
pub fn accesses_per_base(accesses: &[Access]) -> HashMap<BaseObject, u32> {
    let mut map = HashMap::new();
    for a in accesses {
        *map.entry(a.base.clone()).or_insert(0) += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::analysis::{Cfg, DomTree, LoopInfo};
    use llvm_lite::parser::parse_module;

    fn loop_of(src: &str) -> (llvm_lite::Module, usize) {
        let m = parse_module("m", src).unwrap();
        (m, 0)
    }

    fn analyze(src: &str) -> Vec<Access> {
        let (m, fi) = loop_of(src);
        let f = &m.functions[fi];
        let cfg = Cfg::build(f);
        let dom = DomTree::build(f, &cfg);
        let li = LoopInfo::build(f, &cfg, &dom);
        let l = li.innermost_loops()[0];
        loop_accesses(f, l)
    }

    /// A[i] = A[i] * 2 — structured 1-D accesses.
    const ELEMENTWISE: &str = r#"
define void @f([32 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %p = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %i
  %v = load float, float* %p, align 4
  %w = fmul float %v, %v
  store float %w, float* %p, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

    #[test]
    fn elementwise_has_no_carried_dep() {
        let acc = analyze(ELEMENTWISE);
        assert_eq!(acc.len(), 2);
        let (ld, st) = (&acc[0], &acc[1]);
        assert_eq!(ld.base, BaseObject::Param(0));
        assert_eq!(ld.subscripts, vec![IvRelation::IvPlus(0)]);
        assert_eq!(dependence_distance(st, ld), Distance::None);
    }

    /// acc[0] += A[i]: the accumulator address is IV-invariant.
    const REDUCTION: &str = r#"
define void @f([32 x float]* %a, [1 x float]* %acc) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %p = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %i
  %v = load float, float* %p, align 4
  %q = getelementptr inbounds [1 x float], [1 x float]* %acc, i64 0, i64 0
  %s = load float, float* %q, align 4
  %t = fadd float %s, %v
  store float %t, float* %q, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

    #[test]
    fn reduction_has_distance_one() {
        let acc = analyze(REDUCTION);
        let st = acc.iter().find(|a| a.is_store).unwrap();
        let acc_ld = acc
            .iter()
            .find(|a| !a.is_store && a.base == st.base)
            .unwrap();
        assert_eq!(dependence_distance(st, acc_ld), Distance::Exact(1));
    }

    /// Stencil: out[i] = in[i-1] + in[i+1] — different arrays, no dep;
    /// store out[i], load out-of... write/read offsets on the same array.
    const SHIFT: &str = r#"
define void @f([32 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 1, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 31
  br i1 %c, label %body, label %exit

body:
  %im1 = add i64 %i, -1
  %p0 = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %im1
  %v = load float, float* %p0, align 4
  %p1 = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %i
  store float %v, float* %p1, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

    #[test]
    fn shifted_accesses_have_exact_distance() {
        let acc = analyze(SHIFT);
        let ld = acc.iter().find(|a| !a.is_store).unwrap();
        let st = acc.iter().find(|a| a.is_store).unwrap();
        assert_eq!(ld.subscripts, vec![IvRelation::IvPlus(-1)]);
        assert_eq!(st.subscripts, vec![IvRelation::IvPlus(0)]);
        assert_eq!(dependence_distance(st, ld), Distance::Exact(1));
    }

    /// Flat pointer arithmetic the analyzer cannot see through: the load
    /// and store addresses are *different* opaque expressions.
    const FLAT: &str = r#"
define void @f(float* "hls.interface"="m_axi" %a, i64 %stride) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %off = mul i64 %i, %stride
  %p = getelementptr inbounds float, float* %a, i64 %off
  %v = load float, float* %p, align 4
  %off2 = add i64 %off, %stride
  %q = getelementptr inbounds float, float* %a, i64 %off2
  store float %v, float* %q, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

    #[test]
    fn opaque_arithmetic_is_conservative() {
        let acc = analyze(FLAT);
        let ld = acc.iter().find(|a| !a.is_store).unwrap();
        let st = acc.iter().find(|a| a.is_store).unwrap();
        assert!(ld.subscripts.is_empty());
        assert_eq!(dependence_distance(st, ld), Distance::Unknown);
    }

    #[test]
    fn identical_flat_pointer_is_still_analyzable() {
        // Elementwise update through one flat pointer: same SSA address on
        // load and store, IV-dependent -> no carried dependence.
        let src = r#"
define void @f(float* "hls.interface"="m_axi" %a, i64 %stride) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %off = mul i64 %i, %stride
  %p = getelementptr inbounds float, float* %a, i64 %off
  %v = load float, float* %p, align 4
  store float %v, float* %p, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let acc = analyze(src);
        let ld = acc.iter().find(|a| !a.is_store).unwrap();
        let st = acc.iter().find(|a| a.is_store).unwrap();
        assert_eq!(ld.iv_dependent, Some(true));
        assert_eq!(dependence_distance(st, ld), Distance::None);
    }

    #[test]
    fn different_bases_never_conflict() {
        let acc = analyze(REDUCTION);
        let a_ld = acc
            .iter()
            .find(|x| !x.is_store && x.base == BaseObject::Param(0))
            .unwrap();
        let st = acc.iter().find(|x| x.is_store).unwrap();
        assert_eq!(dependence_distance(st, a_ld), Distance::None);
    }

    #[test]
    fn access_counting() {
        let acc = analyze(REDUCTION);
        let counts = accesses_per_base(&acc);
        assert_eq!(counts[&BaseObject::Param(0)], 1);
        assert_eq!(counts[&BaseObject::Param(1)], 2);
    }

    #[test]
    fn select_between_geps_into_one_array_keeps_the_base() {
        // The shared points-to analysis sees through the select: both arms
        // root in %a, so the access still resolves (the old GEP walk
        // collapsed this to Unknown and forced a distance-1 assumption).
        let src = r#"
define void @f([32 x float]* %a, i1 %cond) {
entry:
  br label %header

header:
  %i = phi i64 [ 1, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 31
  br i1 %c, label %body, label %exit

body:
  %im1 = add i64 %i, -1
  %p0 = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %im1
  %p1 = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %i
  %s = select i1 %cond, float* %p0, float* %p1
  %v = load float, float* %s, align 4
  store float %v, float* %p1, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let acc = analyze(src);
        let ld = acc.iter().find(|a| !a.is_store).unwrap();
        assert_eq!(ld.base, BaseObject::Param(0));
    }

    /// A[2i] = A[2i+1]: scaled subscripts that used to collapse to
    /// `Complex` and a spurious distance-1 carried dependence.
    const STRIDE2: &str = r#"
define void @f([64 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 31
  br i1 %c, label %body, label %exit

body:
  %even = mul i64 %i, 2
  %odd = add i64 %even, 1
  %pl = getelementptr inbounds [64 x float], [64 x float]* %a, i64 0, i64 %odd
  %v = load float, float* %pl, align 4
  %ps = getelementptr inbounds [64 x float], [64 x float]* %a, i64 0, i64 %even
  store float %v, float* %ps, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

    #[test]
    fn scaled_subscripts_stay_affine_and_independent() {
        let acc = analyze(STRIDE2);
        let ld = acc.iter().find(|a| !a.is_store).unwrap();
        let st = acc.iter().find(|a| a.is_store).unwrap();
        assert_eq!(ld.subscripts, vec![IvRelation::IvScaled(2, 1)]);
        assert_eq!(st.subscripts, vec![IvRelation::IvScaled(2, 0)]);
        // 2d = 1 has no integer solution: even and odd lanes interleave.
        assert_eq!(dependence_distance(st, ld), Distance::None);
    }

    #[test]
    fn scaled_same_parity_distance_is_in_iterations() {
        // A[2i] vs A[2i+2]: one iteration apart, not two.
        let src = STRIDE2.replace("%even, 1", "%even, 2");
        let acc = analyze(&src);
        let ld = acc.iter().find(|a| !a.is_store).unwrap();
        let st = acc.iter().find(|a| a.is_store).unwrap();
        assert_eq!(dependence_distance(st, ld), Distance::Exact(1));
    }

    #[test]
    fn stride_2_loop_shift_does_not_collide() {
        // Step-2 loop, store A[i] vs load A[i-1]: the value delta 1 is
        // not a multiple of the step, so iterations never collide (the
        // old value-space math reported a bogus Exact(1) here).
        let src = SHIFT.replace("%i, 1\n  br label %header", "%i, 2\n  br label %header");
        let acc = analyze(&src);
        let ld = acc.iter().find(|a| !a.is_store).unwrap();
        let st = acc.iter().find(|a| a.is_store).unwrap();
        assert_eq!(st.step, Some(2));
        assert_eq!(dependence_distance(st, ld), Distance::None);
    }

    #[test]
    fn shl_subscript_is_scaled_affine() {
        let src = STRIDE2.replace("mul i64 %i, 2", "shl i64 %i, 1");
        let acc = analyze(&src);
        let st = acc.iter().find(|a| a.is_store).unwrap();
        assert_eq!(st.subscripts, vec![IvRelation::IvScaled(2, 0)]);
    }

    #[test]
    fn iv_relation_through_sext() {
        let src = r#"
define void @f([32 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i32 %i, 32
  br i1 %c, label %body, label %exit

body:
  %w = sext i32 %i to i64
  %p = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %w
  %v = load float, float* %p, align 4
  store float %v, float* %p, align 4
  %next = add i32 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let acc = analyze(src);
        assert_eq!(acc[0].subscripts, vec![IvRelation::IvPlus(0)]);
    }
}
