//! Memory-access analysis: base objects, affine-in-IV subscripts, and
//! loop-carried dependence distances.
//!
//! The precision asymmetry here is the heart of the paper's QoR story: a
//! structured GEP (`gep [32 x [32 x float]], %A, 0, %i, %k`) exposes exactly
//! which subscript depends on the loop induction variable, so the scheduler
//! can prove independence across iterations. Raw pointer arithmetic forces
//! the conservative assumption (a distance-1 carried dependence), which
//! inflates RecMII.

use std::collections::HashMap;

use llvm_lite::analysis::NaturalLoop;
use llvm_lite::{Function, InstData, InstId, Opcode, Value};

/// The root object an access resolves to (shared with the `analysis`
/// crate's points-to machinery; re-exported under the historical name).
pub use analysis::alias::MemObject as BaseObject;

/// Resolve the base object of a pointer value.
///
/// Delegates to the shared Andersen-lite points-to analysis: GEPs and
/// bitcasts are walked as before, but a Phi or Select whose incoming
/// pointers all share one underlying object now resolves to that object
/// instead of collapsing to `Unknown` — so e.g. a select between two GEPs
/// into the same array stays analyzable for dependence distances.
pub fn base_object(f: &Function, v: &Value) -> BaseObject {
    analysis::alias::resolve_base(f, v)
}

/// How a subscript relates to the loop induction variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IvRelation {
    /// `c` — does not involve the IV.
    Invariant,
    /// `IV + c` (affine with unit coefficient).
    IvPlus(i64),
    /// Involves the IV in some other (or unprovable) way.
    Complex,
}

/// Does `v` transitively depend on the instruction `iv`?
pub fn value_depends_on(f: &Function, v: &Value, iv: InstId, depth: u32) -> bool {
    if depth > 16 {
        return true; // assume the worst on deep chains
    }
    match v {
        Value::Inst(id) => {
            if *id == iv {
                return true;
            }
            if f.inst(*id).opcode == Opcode::Phi && depth > 0 {
                return false; // don't walk through other loop-carried values
            }
            f.inst(*id)
                .operands
                .iter()
                .any(|o| value_depends_on(f, o, iv, depth + 1))
        }
        _ => false,
    }
}

/// Classify `v` relative to the induction phi `iv` of a loop.
pub fn iv_relation(f: &Function, v: &Value, iv: InstId) -> IvRelation {
    fn relation(f: &Function, v: &Value, iv: InstId, depth: u32) -> IvRelation {
        if depth > 16 {
            return IvRelation::Complex;
        }
        match v {
            Value::Inst(id) if *id == iv => IvRelation::IvPlus(0),
            Value::Inst(id) => {
                let inst = f.inst(*id);
                match inst.opcode {
                    // Width casts preserve the affine form.
                    Opcode::SExt | Opcode::ZExt | Opcode::Trunc => {
                        relation(f, &inst.operands[0], iv, depth + 1)
                    }
                    Opcode::Add => {
                        let (a, b) = (&inst.operands[0], &inst.operands[1]);
                        match (relation(f, a, iv, depth + 1), b.int_value()) {
                            (IvRelation::IvPlus(c), Some(k)) => {
                                return IvRelation::IvPlus(c + k as i64)
                            }
                            (IvRelation::Invariant, Some(_)) => return IvRelation::Invariant,
                            _ => {}
                        }
                        match (a.int_value(), relation(f, b, iv, depth + 1)) {
                            (Some(k), IvRelation::IvPlus(c)) => IvRelation::IvPlus(c + k as i64),
                            (Some(_), IvRelation::Invariant) => IvRelation::Invariant,
                            _ => {
                                if value_depends_on(f, v, iv, 0) {
                                    IvRelation::Complex
                                } else {
                                    IvRelation::Invariant
                                }
                            }
                        }
                    }
                    _ => {
                        if value_depends_on(f, v, iv, 0) {
                            IvRelation::Complex
                        } else {
                            IvRelation::Invariant
                        }
                    }
                }
            }
            _ => IvRelation::Invariant,
        }
    }
    relation(f, v, iv, 0)
}

/// One memory access inside a loop body.
#[derive(Clone, Debug)]
pub struct Access {
    /// The load/store instruction.
    pub inst: InstId,
    /// True for stores.
    pub is_store: bool,
    /// Resolved base.
    pub base: BaseObject,
    /// The pointer operand itself (for the identical-address fast path).
    pub ptr: Value,
    /// Whether the address depends on the loop IV at all (None = no IV
    /// was recognizable for the loop).
    pub iv_dependent: Option<bool>,
    /// Subscript relations to the loop IV (one per GEP index, skipping the
    /// leading 0 of structured GEPs). Empty = unanalyzable address.
    pub subscripts: Vec<IvRelation>,
}

/// Collect all loads/stores in a loop body with their subscript analysis.
pub fn loop_accesses(f: &Function, l: &NaturalLoop) -> Vec<Access> {
    let iv = llvm_lite::analysis::loop_induction_phi(f, l);
    let mut out = Vec::new();
    for &b in &l.body {
        for &id in &f.block(b).insts {
            let inst = f.inst(id);
            let (is_store, ptr) = match inst.opcode {
                Opcode::Load => (false, &inst.operands[0]),
                Opcode::Store => (true, &inst.operands[1]),
                _ => continue,
            };
            let base = base_object(f, ptr);
            let subscripts = match (ptr, iv) {
                (Value::Inst(gid), Some(iv)) if f.inst(*gid).opcode == Opcode::Gep => {
                    let gep = f.inst(*gid);
                    let structured = matches!(
                        &gep.data,
                        InstData::Gep { base_ty, .. } if matches!(base_ty, llvm_lite::Type::Array(..))
                    );
                    let idx_ops: &[Value] = if structured {
                        &gep.operands[2..] // skip the leading 0
                    } else {
                        &gep.operands[1..]
                    };
                    let rels: Vec<IvRelation> =
                        idx_ops.iter().map(|v| iv_relation(f, v, iv)).collect();
                    // A flat (unstructured) gep over a multi-element space
                    // whose single index mixes several loop variables is
                    // only analyzable if the relation is clean.
                    if structured || rels.iter().all(|r| *r != IvRelation::Complex) {
                        rels
                    } else {
                        Vec::new()
                    }
                }
                _ => Vec::new(),
            };
            let iv_dependent = iv.map(|iv| value_depends_on(f, ptr, iv, 0));
            out.push(Access {
                inst: id,
                is_store,
                base,
                ptr: ptr.clone(),
                iv_dependent,
                subscripts,
            });
        }
    }
    out
}

/// Loop-carried dependence distance between a store and a load/store on the
/// same base, in iterations of the analyzed loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Distance {
    /// Provably never conflicts across iterations.
    None,
    /// Conflicts exactly `d` iterations apart (d >= 1).
    Exact(u32),
    /// Cannot tell — assume the tightest (distance 1).
    Unknown,
}

/// Compute the carried-dependence distance between two accesses to the same
/// base object.
pub fn dependence_distance(a: &Access, b: &Access) -> Distance {
    if a.base != b.base || a.base == BaseObject::Unknown {
        return if a.base == BaseObject::Unknown && b.base == BaseObject::Unknown {
            Distance::Unknown
        } else {
            Distance::None
        };
    }
    // Identical pointer SSA value: the two accesses always hit the same
    // address within an iteration. If that address moves with the IV the
    // conflict is intra-iteration only; if it is IV-invariant, consecutive
    // iterations collide (distance 1). This is how even flat pointer
    // arithmetic keeps elementwise updates and accumulations analyzable.
    if a.ptr == b.ptr {
        return match a.iv_dependent {
            Some(true) => Distance::None,
            Some(false) => Distance::Exact(1),
            None => Distance::Unknown,
        };
    }
    if a.subscripts.is_empty() || b.subscripts.is_empty() {
        return Distance::Unknown;
    }
    if a.subscripts.len() != b.subscripts.len() {
        return Distance::Unknown;
    }
    // Any complex subscript: give up.
    if a.subscripts.contains(&IvRelation::Complex) || b.subscripts.contains(&IvRelation::Complex) {
        return Distance::Unknown;
    }
    // If every subscript pair is IV-invariant on both sides, the same
    // address is touched every iteration: distance 1.
    let any_iv = a
        .subscripts
        .iter()
        .chain(&b.subscripts)
        .any(|r| matches!(r, IvRelation::IvPlus(_)));
    if !any_iv {
        return Distance::Exact(1);
    }
    // Compare dimension-wise: an IV-dependent dim with offsets c_a, c_b
    // conflicts at distance |c_a - c_b| (0 = same-iteration only). A dim
    // where one side is IV-dependent and the other invariant is
    // unresolvable without values: Unknown.
    let mut distance: Option<u32> = None;
    for (ra, rb) in a.subscripts.iter().zip(&b.subscripts) {
        match (ra, rb) {
            (IvRelation::IvPlus(ca), IvRelation::IvPlus(cb)) => {
                let d = (ca - cb).unsigned_abs() as u32;
                distance = Some(match distance {
                    None => d,
                    Some(prev) if prev == d => d,
                    // Conflicting requirements across dims: no single
                    // iteration offset lines both up -> independent.
                    Some(_) => return Distance::None,
                });
            }
            (IvRelation::Invariant, IvRelation::Invariant) => {}
            _ => return Distance::Unknown,
        }
    }
    match distance {
        Some(0) => Distance::None, // same iteration only; no carried dep
        Some(d) => Distance::Exact(d),
        None => Distance::Exact(1),
    }
}

/// Count accesses per base object (used for memory-port ResMII).
pub fn accesses_per_base(accesses: &[Access]) -> HashMap<BaseObject, u32> {
    let mut map = HashMap::new();
    for a in accesses {
        *map.entry(a.base.clone()).or_insert(0) += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::analysis::{Cfg, DomTree, LoopInfo};
    use llvm_lite::parser::parse_module;

    fn loop_of(src: &str) -> (llvm_lite::Module, usize) {
        let m = parse_module("m", src).unwrap();
        (m, 0)
    }

    fn analyze(src: &str) -> Vec<Access> {
        let (m, fi) = loop_of(src);
        let f = &m.functions[fi];
        let cfg = Cfg::build(f);
        let dom = DomTree::build(f, &cfg);
        let li = LoopInfo::build(f, &cfg, &dom);
        let l = li.innermost_loops()[0];
        loop_accesses(f, l)
    }

    /// A[i] = A[i] * 2 — structured 1-D accesses.
    const ELEMENTWISE: &str = r#"
define void @f([32 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %p = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %i
  %v = load float, float* %p, align 4
  %w = fmul float %v, %v
  store float %w, float* %p, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

    #[test]
    fn elementwise_has_no_carried_dep() {
        let acc = analyze(ELEMENTWISE);
        assert_eq!(acc.len(), 2);
        let (ld, st) = (&acc[0], &acc[1]);
        assert_eq!(ld.base, BaseObject::Param(0));
        assert_eq!(ld.subscripts, vec![IvRelation::IvPlus(0)]);
        assert_eq!(dependence_distance(st, ld), Distance::None);
    }

    /// acc[0] += A[i]: the accumulator address is IV-invariant.
    const REDUCTION: &str = r#"
define void @f([32 x float]* %a, [1 x float]* %acc) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %p = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %i
  %v = load float, float* %p, align 4
  %q = getelementptr inbounds [1 x float], [1 x float]* %acc, i64 0, i64 0
  %s = load float, float* %q, align 4
  %t = fadd float %s, %v
  store float %t, float* %q, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

    #[test]
    fn reduction_has_distance_one() {
        let acc = analyze(REDUCTION);
        let st = acc.iter().find(|a| a.is_store).unwrap();
        let acc_ld = acc
            .iter()
            .find(|a| !a.is_store && a.base == st.base)
            .unwrap();
        assert_eq!(dependence_distance(st, acc_ld), Distance::Exact(1));
    }

    /// Stencil: out[i] = in[i-1] + in[i+1] — different arrays, no dep;
    /// store out[i], load out-of... write/read offsets on the same array.
    const SHIFT: &str = r#"
define void @f([32 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 1, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 31
  br i1 %c, label %body, label %exit

body:
  %im1 = add i64 %i, -1
  %p0 = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %im1
  %v = load float, float* %p0, align 4
  %p1 = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %i
  store float %v, float* %p1, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

    #[test]
    fn shifted_accesses_have_exact_distance() {
        let acc = analyze(SHIFT);
        let ld = acc.iter().find(|a| !a.is_store).unwrap();
        let st = acc.iter().find(|a| a.is_store).unwrap();
        assert_eq!(ld.subscripts, vec![IvRelation::IvPlus(-1)]);
        assert_eq!(st.subscripts, vec![IvRelation::IvPlus(0)]);
        assert_eq!(dependence_distance(st, ld), Distance::Exact(1));
    }

    /// Flat pointer arithmetic the analyzer cannot see through: the load
    /// and store addresses are *different* opaque expressions.
    const FLAT: &str = r#"
define void @f(float* "hls.interface"="m_axi" %a, i64 %stride) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %off = mul i64 %i, %stride
  %p = getelementptr inbounds float, float* %a, i64 %off
  %v = load float, float* %p, align 4
  %off2 = add i64 %off, %stride
  %q = getelementptr inbounds float, float* %a, i64 %off2
  store float %v, float* %q, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

    #[test]
    fn opaque_arithmetic_is_conservative() {
        let acc = analyze(FLAT);
        let ld = acc.iter().find(|a| !a.is_store).unwrap();
        let st = acc.iter().find(|a| a.is_store).unwrap();
        assert!(ld.subscripts.is_empty());
        assert_eq!(dependence_distance(st, ld), Distance::Unknown);
    }

    #[test]
    fn identical_flat_pointer_is_still_analyzable() {
        // Elementwise update through one flat pointer: same SSA address on
        // load and store, IV-dependent -> no carried dependence.
        let src = r#"
define void @f(float* "hls.interface"="m_axi" %a, i64 %stride) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %off = mul i64 %i, %stride
  %p = getelementptr inbounds float, float* %a, i64 %off
  %v = load float, float* %p, align 4
  store float %v, float* %p, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let acc = analyze(src);
        let ld = acc.iter().find(|a| !a.is_store).unwrap();
        let st = acc.iter().find(|a| a.is_store).unwrap();
        assert_eq!(ld.iv_dependent, Some(true));
        assert_eq!(dependence_distance(st, ld), Distance::None);
    }

    #[test]
    fn different_bases_never_conflict() {
        let acc = analyze(REDUCTION);
        let a_ld = acc
            .iter()
            .find(|x| !x.is_store && x.base == BaseObject::Param(0))
            .unwrap();
        let st = acc.iter().find(|x| x.is_store).unwrap();
        assert_eq!(dependence_distance(st, a_ld), Distance::None);
    }

    #[test]
    fn access_counting() {
        let acc = analyze(REDUCTION);
        let counts = accesses_per_base(&acc);
        assert_eq!(counts[&BaseObject::Param(0)], 1);
        assert_eq!(counts[&BaseObject::Param(1)], 2);
    }

    #[test]
    fn select_between_geps_into_one_array_keeps_the_base() {
        // The shared points-to analysis sees through the select: both arms
        // root in %a, so the access still resolves (the old GEP walk
        // collapsed this to Unknown and forced a distance-1 assumption).
        let src = r#"
define void @f([32 x float]* %a, i1 %cond) {
entry:
  br label %header

header:
  %i = phi i64 [ 1, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 31
  br i1 %c, label %body, label %exit

body:
  %im1 = add i64 %i, -1
  %p0 = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %im1
  %p1 = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %i
  %s = select i1 %cond, float* %p0, float* %p1
  %v = load float, float* %s, align 4
  store float %v, float* %p1, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let acc = analyze(src);
        let ld = acc.iter().find(|a| !a.is_store).unwrap();
        assert_eq!(ld.base, BaseObject::Param(0));
    }

    #[test]
    fn iv_relation_through_sext() {
        let src = r#"
define void @f([32 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i32 %i, 32
  br i1 %c, label %body, label %exit

body:
  %w = sext i32 %i to i64
  %p = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %w
  %v = load float, float* %p, align 4
  store float %v, float* %p, align 4
  %next = add i32 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let acc = analyze(src);
        assert_eq!(acc[0].subscripts, vec![IvRelation::IvPlus(0)]);
    }
}
