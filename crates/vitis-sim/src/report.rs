//! `csynth`-style synthesis reports.

use serde::{Deserialize, Serialize};

/// FPGA resource usage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resources {
    /// DSP slices.
    pub dsp: u32,
    /// Lookup tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
    /// BRAM-18K blocks.
    pub bram_18k: u32,
}

impl Resources {
    /// Component-wise sum.
    pub fn add(&self, other: &Resources) -> Resources {
        Resources {
            dsp: self.dsp + other.dsp,
            lut: self.lut + other.lut,
            ff: self.ff + other.ff,
            bram_18k: self.bram_18k + other.bram_18k,
        }
    }

    /// Component-wise maximum (for temporally exclusive regions).
    pub fn max(&self, other: &Resources) -> Resources {
        Resources {
            dsp: self.dsp.max(other.dsp),
            lut: self.lut.max(other.lut),
            ff: self.ff.max(other.ff),
            bram_18k: self.bram_18k.max(other.bram_18k),
        }
    }

    /// Scale functional resources by a replication factor (BRAM excluded —
    /// banks are counted separately).
    pub fn replicate(&self, n: u32) -> Resources {
        Resources {
            dsp: self.dsp * n,
            lut: self.lut * n,
            ff: self.ff * n,
            bram_18k: self.bram_18k,
        }
    }
}

/// Per-loop synthesis results, matching the loop table of a csynth report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoopReport {
    /// Loop label (derived from the header block name).
    pub name: String,
    /// Nesting depth (1 = outermost).
    pub depth: usize,
    /// Trip count, if known.
    pub trip_count: Option<u64>,
    /// Whether the loop was pipelined.
    pub pipelined: bool,
    /// Requested initiation interval (from the directive), if any.
    pub ii_target: Option<u32>,
    /// Achieved initiation interval (pipelined loops only).
    pub ii_achieved: Option<u32>,
    /// Iteration latency (depth of one iteration in cycles).
    pub iteration_latency: u64,
    /// Total loop latency in cycles.
    pub latency: u64,
    /// Limiting factor for the achieved II.
    pub ii_bound: Option<String>,
}

/// The top-level synthesis report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CsynthReport {
    /// Top function name.
    pub top: String,
    /// Clock period used, ns.
    pub clock_ns: f64,
    /// Total latency (cycles) of one invocation.
    pub latency: u64,
    /// Initiation interval of the top function.
    pub interval: u64,
    /// Per-loop breakdown, outermost first.
    pub loops: Vec<LoopReport>,
    /// Estimated resource usage.
    pub resources: Resources,
}

impl CsynthReport {
    /// Latency in microseconds at the configured clock.
    pub fn latency_us(&self) -> f64 {
        self.latency as f64 * self.clock_ns / 1000.0
    }

    /// Render as a Vitis-flavoured text table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "== Performance Estimates ({} @ {:.1} ns)\n",
            self.top, self.clock_ns
        ));
        s.push_str(&format!(
            "   Latency: {} cycles ({:.2} us)   Interval: {} cycles\n",
            self.latency,
            self.latency_us(),
            self.interval
        ));
        s.push_str("   Loop           Trip    II(tgt)  II(ach)  IterLat  Latency\n");
        for l in &self.loops {
            s.push_str(&format!(
                "   {:<14} {:>5}  {:>7}  {:>7}  {:>7}  {:>7}\n",
                format!("{}{}", "  ".repeat(l.depth.saturating_sub(1)), l.name),
                l.trip_count.map(|t| t.to_string()).unwrap_or("?".into()),
                l.ii_target.map(|t| t.to_string()).unwrap_or("-".into()),
                l.ii_achieved.map(|t| t.to_string()).unwrap_or("-".into()),
                l.iteration_latency,
                l.latency
            ));
        }
        s.push_str("== Utilization Estimates\n");
        s.push_str(&format!(
            "   BRAM_18K: {}   DSP: {}   FF: {}   LUT: {}\n",
            self.resources.bram_18k, self.resources.dsp, self.resources.ff, self.resources.lut
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> CsynthReport {
        CsynthReport {
            top: "gemm".into(),
            clock_ns: 10.0,
            latency: 4242,
            interval: 4243,
            loops: vec![LoopReport {
                name: "loop_i".into(),
                depth: 1,
                trip_count: Some(32),
                pipelined: true,
                ii_target: Some(1),
                ii_achieved: Some(2),
                iteration_latency: 9,
                latency: 71,
                ii_bound: Some("memory ports on %a".into()),
            }],
            resources: Resources {
                dsp: 5,
                lut: 1200,
                ff: 900,
                bram_18k: 3,
            },
        }
    }

    #[test]
    fn latency_us_uses_clock() {
        let r = demo();
        assert!((r.latency_us() - 42.42).abs() < 1e-9);
    }

    #[test]
    fn render_contains_all_fields() {
        let text = demo().render();
        assert!(text.contains("gemm"));
        assert!(text.contains("4242"));
        assert!(text.contains("loop_i"));
        assert!(text.contains("DSP: 5"));
        assert!(text.contains("BRAM_18K: 3"));
    }

    #[test]
    fn resources_algebra() {
        let a = Resources {
            dsp: 1,
            lut: 10,
            ff: 5,
            bram_18k: 2,
        };
        let b = Resources {
            dsp: 3,
            lut: 4,
            ff: 9,
            bram_18k: 1,
        };
        assert_eq!(
            a.add(&b),
            Resources {
                dsp: 4,
                lut: 14,
                ff: 14,
                bram_18k: 3
            }
        );
        assert_eq!(
            a.max(&b),
            Resources {
                dsp: 3,
                lut: 10,
                ff: 9,
                bram_18k: 2
            }
        );
        assert_eq!(a.replicate(3).dsp, 3);
        assert_eq!(a.replicate(3).bram_18k, 2);
    }

    #[test]
    fn clone_and_eq() {
        let r = demo();
        let r2 = r.clone();
        assert_eq!(r, r2);
    }
}
