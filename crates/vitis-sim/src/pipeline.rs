//! Loop pipelining: the initiation-interval model.
//!
//! For a pipelined loop, the achieved II is
//!
//! ```text
//! II = max(RecMII, ResMII, II_target)
//! ```
//!
//! * **RecMII** comes from loop-carried memory recurrences: for every
//!   (store, load) pair on the same base object with carried distance `d`,
//!   the candidate is `ceil(cycle_latency / d)`, where `cycle_latency` is
//!   the registered latency around the dependence cycle (load → compute →
//!   store). Unknown distances are treated as `d = 1` — this is where flat
//!   pointer arithmetic pays its price.
//! * **ResMII** comes from memory-port pressure: `ceil(accesses / ports)`
//!   per BRAM bank, and `ceil(accesses / axi_ports)` for the shared bus.

use std::collections::HashMap;

use llvm_lite::analysis::NaturalLoop;
use llvm_lite::{Function, InstId, Module, Opcode, Value};
use pass_core::{Budget, BudgetError, Diagnostic};

use analysis::depend::{self, CarriedDistance};

use crate::memdep::{
    accesses_per_base, dependence_distance, loop_accesses, Access, BaseObject, Distance,
};
use crate::oplib::op_spec;
use crate::schedule::ScheduleCtx;
use crate::Target;

/// Why the achieved II ended up where it did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IiBound {
    /// Limited by a carried dependence on the named base.
    Recurrence(String),
    /// Limited by memory ports on the named base.
    MemoryPorts(String),
    /// Met the requested target.
    Target,
}

/// Result of the II computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IiResult {
    /// Achieved initiation interval.
    pub ii: u32,
    /// The binding constraint.
    pub bound: IiBound,
    /// The recurrence-implied minimum.
    pub rec_mii: u32,
    /// The resource-implied minimum.
    pub res_mii: u32,
}

/// Compute the II of a pipelined loop, given the unroll replication factor
/// applied to its body (1 = no unroll).
pub fn compute_ii(
    m: &Module,
    f: &Function,
    l: &NaturalLoop,
    target: &Target,
    cx: &ScheduleCtx,
    requested: u32,
    unroll: u32,
) -> IiResult {
    compute_ii_budgeted(m, f, l, target, cx, requested, unroll, &Budget::unlimited())
        .expect("unlimited budget cannot trip")
}

/// [`compute_ii`] under a [`Budget`]: the store×access dependence-pair scan
/// (the quadratic part of RecMII) charges one fuel unit per store, so huge
/// access sets trip cooperatively.
#[allow(clippy::too_many_arguments)]
pub fn compute_ii_budgeted(
    m: &Module,
    f: &Function,
    l: &NaturalLoop,
    target: &Target,
    cx: &ScheduleCtx,
    requested: u32,
    unroll: u32,
    budget: &Budget,
) -> Result<IiResult, BudgetError> {
    let accesses = loop_accesses(f, l);

    // ResMII: port pressure per base (unroll replicates accesses).
    let mut res_mii = 1u32;
    let mut res_base = String::new();
    for (base, count) in accesses_per_base(&accesses) {
        let ports = if cx.m_axi_bases.contains(&base) {
            target.axi_ports
        } else {
            cx.ports_for(&base, target)
        };
        let need = (count * unroll).div_ceil(ports.max(1));
        if need > res_mii {
            res_mii = need;
            res_base = describe_base(f, &base);
        }
    }

    // RecMII: carried dependences, with the whole-nest distance vectors
    // refining the pairwise analysis where both accesses are affine.
    let nf = nest_facts(f, l);
    let mut rec_mii = 1u32;
    let mut rec_base = String::new();
    for st in accesses.iter().filter(|a| a.is_store) {
        budget.charge(1, "csynth/ii")?;
        for other in &accesses {
            if other.inst == st.inst {
                continue;
            }
            let dist = refined_distance(nf.as_ref(), st, other)
                .unwrap_or_else(|| dependence_distance(st, other));
            let d = match dist {
                Distance::None => continue,
                Distance::Exact(d) => d.max(1),
                Distance::Unknown => 1,
            };
            let lat = recurrence_latency(m, f, st, other, target, cx);
            let cand = lat.div_ceil(d);
            if cand > rec_mii {
                rec_mii = cand;
                rec_base = describe_base(f, &st.base);
            }
        }
    }

    let floor = rec_mii.max(res_mii);
    let ii = floor.max(requested.max(1));
    let bound = if floor <= requested.max(1) {
        IiBound::Target
    } else if rec_mii >= res_mii {
        IiBound::Recurrence(rec_base)
    } else {
        IiBound::MemoryPorts(res_base)
    };
    Ok(IiResult {
        ii,
        bound,
        rec_mii,
        res_mii,
    })
}

/// Whole-nest dependence facts for one pipelined loop: the multi-IV
/// distance vectors from `analysis::depend`, projected onto the innermost
/// level. Refines the pairwise single-IV analysis — e.g. a store that only
/// moves with an *outer* IV is no longer a blanket distance-1 recurrence.
struct NestFacts {
    nest: depend::LoopNest,
    deps: Vec<depend::Dependence>,
    level: usize,
    idx: HashMap<usize, usize>,
}

fn nest_facts(f: &Function, l: &NaturalLoop) -> Option<NestFacts> {
    let cfg = llvm_lite::analysis::Cfg::build(f);
    let dom = llvm_lite::analysis::DomTree::build(f, &cfg);
    let li = llvm_lite::analysis::LoopInfo::build(f, &cfg, &dom);
    let inner = li.loop_with_header(l.header)?;
    let nest = depend::nest_of_innermost(f, &li, inner)?;
    let deps = nest.dependences();
    let idx = nest
        .accesses
        .iter()
        .enumerate()
        .map(|(i, a)| (a.id, i))
        .collect();
    Some(NestFacts {
        level: nest.innermost_level(),
        deps,
        idx,
        nest,
    })
}

/// The carried distance of the (store, other) pair at the pipelined level,
/// per the nest analysis. `None` = the pair is outside the nest engine's
/// precision; fall back to the pairwise [`dependence_distance`].
fn refined_distance(nf: Option<&NestFacts>, st: &Access, other: &Access) -> Option<Distance> {
    let nf = nf?;
    let &ai = nf.idx.get(&(st.inst as usize))?;
    let &bi = nf.idx.get(&(other.inst as usize))?;
    let (a, b) = (&nf.nest.accesses[ai], &nf.nest.accesses[bi]);
    if a.base.is_none() || b.base.is_none() || a.subs.is_none() || b.subs.is_none() {
        return None;
    }
    let mut exact: Option<u64> = None;
    let mut may = false;
    for d in &nf.deps {
        if !(d.src == ai && d.dst == bi || d.src == bi && d.dst == ai) {
            continue;
        }
        match nf.nest.carried_distance_at(d, nf.level) {
            CarriedDistance::NotCarried => {}
            CarriedDistance::Exact(x) => exact = Some(exact.map_or(x, |e| e.min(x))),
            CarriedDistance::AtLeastOne => may = true,
        }
    }
    Some(if may {
        Distance::Unknown // assume distance 1, the tightest recurrence
    } else {
        match exact {
            Some(d) => Distance::Exact(u32::try_from(d).unwrap_or(u32::MAX)),
            None => Distance::None,
        }
    })
}

/// Pass name of the II-blocker explainer notes.
pub const II_BLOCKER_PASS: &str = "ii-blocker";

/// Explain why pipelined loops in `f` cannot reach II = 1: for every
/// innermost loop whose RecMII exceeds 1, emit a note naming the exact
/// loop-carried dependence cycle (store → load, base object, carried
/// distance, registered cycle latency) and — when the distance is only
/// assumed — the aliasing assumption behind it. These are `note`-severity
/// diagnostics: a recurrence is a fact about the kernel, not a defect, but
/// it is the single most common "why is my II not 1?" question.
pub fn explain_ii_blockers(m: &Module, f: &Function, target: &Target) -> Vec<Diagnostic> {
    let cfg = llvm_lite::analysis::Cfg::build(f);
    let dom = llvm_lite::analysis::DomTree::build(f, &cfg);
    let loops = llvm_lite::analysis::LoopInfo::build(f, &cfg, &dom);
    let cx = ScheduleCtx::from_function(f);
    let inst_ref = |id: InstId| {
        let n = &f.inst(id).name;
        if n.is_empty() {
            format!("%{id}")
        } else {
            format!("%{n}")
        }
    };
    let mut out = Vec::new();
    for l in loops.innermost_loops() {
        let accesses = loop_accesses(f, l);
        let nf = nest_facts(f, l);
        // The binding recurrence: the (store, reader) pair with the largest
        // ceil(latency / distance).
        let mut worst: Option<(u32, &Access, &Access, Distance, u32)> = None;
        for st in accesses.iter().filter(|a| a.is_store) {
            for other in &accesses {
                if other.inst == st.inst {
                    continue;
                }
                let dist = refined_distance(nf.as_ref(), st, other)
                    .unwrap_or_else(|| dependence_distance(st, other));
                let d = match dist {
                    Distance::None => continue,
                    Distance::Exact(d) => d.max(1),
                    Distance::Unknown => 1,
                };
                let lat = recurrence_latency(m, f, st, other, target, &cx);
                let cand = lat.div_ceil(d);
                if worst.is_none_or(|(c, ..)| cand > c) {
                    worst = Some((cand, st, other, dist, lat));
                }
            }
        }
        let Some((rec_mii, st, other, dist, lat)) = worst.filter(|(c, ..)| *c > 1) else {
            continue;
        };
        let base = describe_base(f, &st.base);
        let reader = if other.is_store {
            format!("store {}", inst_ref(other.inst))
        } else {
            format!("load {}", inst_ref(other.inst))
        };
        let distance = match dist {
            Distance::Exact(d) => format!("carried distance {d}"),
            _ => "unprovable carried distance (opaque address arithmetic: \
                 distance 1 is assumed)"
                .to_string(),
        };
        out.push(
            Diagnostic::note(
                II_BLOCKER_PASS,
                format!(
                    "RecMII = {rec_mii} on {base}: store {} feeds {reader} across \
                     iterations at {distance}, and the load -> compute -> store \
                     cycle takes {lat} registered cycles",
                    inst_ref(st.inst)
                ),
            )
            .with_loc(
                pass_core::Loc::function(&f.name)
                    .in_block(&f.block(l.header).name)
                    .at_inst(inst_ref(st.inst)),
            ),
        );
    }
    out
}

fn describe_base(f: &Function, base: &BaseObject) -> String {
    match base {
        BaseObject::Param(i) => format!("%{}", f.params[*i as usize].name),
        BaseObject::Alloca(id) => {
            let n = &f.inst(*id).name;
            if n.is_empty() {
                format!("%{id}")
            } else {
                format!("%{n}")
            }
        }
        BaseObject::Global(g) => format!("@{g}"),
        BaseObject::Unknown => "<unknown>".to_string(),
    }
}

/// Registered latency around the dependence cycle `other(load) → … →
/// st(store)`: load latency + the longest SSA path from the load's result
/// to the store's value operand + the store's own cycle.
fn recurrence_latency(
    m: &Module,
    f: &Function,
    st: &Access,
    other: &Access,
    target: &Target,
    cx: &ScheduleCtx,
) -> u32 {
    let axi_extra = if cx.m_axi_bases.contains(&other.base) {
        target.axi_extra_latency
    } else {
        0
    };
    let load_lat = if other.is_store {
        1 // store→store WAW recurrence: one cycle
    } else {
        op_spec(m, f, f.inst(other.inst)).latency + axi_extra
    };
    let mut memo: HashMap<InstId, Option<u32>> = HashMap::new();
    let path = path_latency(m, f, &f.inst(st.inst).operands[0], other.inst, &mut memo).unwrap_or(0);
    // +1 for the store commit cycle.
    (load_lat + path + 1).max(1)
}

/// Longest registered-latency SSA path from `target_load`'s result to `v`
/// (inclusive of intermediate op latencies; combinational ops count 0 but
/// at least the whole path costs what its multi-cycle ops cost).
fn path_latency(
    m: &Module,
    f: &Function,
    v: &Value,
    target_load: InstId,
    memo: &mut HashMap<InstId, Option<u32>>,
) -> Option<u32> {
    let id = v.as_inst()?;
    if id == target_load {
        return Some(0);
    }
    if let Some(cached) = memo.get(&id) {
        return *cached;
    }
    memo.insert(id, None); // cycle guard
    let inst = f.inst(id);
    if inst.opcode == Opcode::Phi {
        memo.insert(id, None);
        return None;
    }
    let mut best: Option<u32> = None;
    for op in &inst.operands {
        if let Some(sub) = path_latency(m, f, op, target_load, memo) {
            let here = sub + op_spec(m, f, inst).latency;
            best = Some(best.map_or(here, |b| b.max(here)));
        }
    }
    memo.insert(id, best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::analysis::{Cfg, DomTree, LoopInfo};
    use llvm_lite::parser::parse_module;

    fn ii_of(src: &str, requested: u32) -> IiResult {
        let m = parse_module("m", src).unwrap();
        let f = &m.functions[0];
        let cfg = Cfg::build(f);
        let dom = DomTree::build(f, &cfg);
        let li = LoopInfo::build(f, &cfg, &dom);
        let l = li.innermost_loops()[0];
        let cx = ScheduleCtx::from_function(f);
        compute_ii(&m, f, l, &Target::default(), &cx, requested, 1)
    }

    const ELEMENTWISE: &str = r#"
define void @f([32 x float]* %a, [32 x float]* %b) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %p = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %i
  %v = load float, float* %p, align 4
  %w = fmul float %v, %v
  %q = getelementptr inbounds [32 x float], [32 x float]* %b, i64 0, i64 %i
  store float %w, float* %q, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

    #[test]
    fn elementwise_achieves_ii_one() {
        let r = ii_of(ELEMENTWISE, 1);
        assert_eq!(r.ii, 1);
        assert_eq!(r.rec_mii, 1);
        assert_eq!(r.res_mii, 1);
        assert_eq!(r.bound, IiBound::Target);
    }

    /// Accumulation into an IV-invariant address — the gemm inner loop.
    const ACCUM: &str = r#"
define void @f([32 x float]* %a, [1 x float]* %acc) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %p = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %i
  %v = load float, float* %p, align 4
  %q = getelementptr inbounds [1 x float], [1 x float]* %acc, i64 0, i64 0
  %s = load float, float* %q, align 4
  %t = fadd float %s, %v
  store float %t, float* %q, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

    #[test]
    fn accumulation_is_recurrence_bound() {
        let r = ii_of(ACCUM, 1);
        // load (2) + fadd (4) + store (1) = 7 around the cycle.
        assert_eq!(r.rec_mii, 7);
        assert_eq!(r.ii, 7);
        assert!(matches!(r.bound, IiBound::Recurrence(ref b) if b == "%acc"));
    }

    #[test]
    fn requested_ii_is_a_floor() {
        let r = ii_of(ELEMENTWISE, 4);
        assert_eq!(r.ii, 4);
        assert_eq!(r.bound, IiBound::Target);
    }

    /// Three reads of one array per iteration exceed two BRAM ports.
    const PORT_BOUND: &str = r#"
define void @f([34 x float]* %a, [34 x float]* %b) {
entry:
  br label %header

header:
  %i = phi i64 [ 1, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 33
  br i1 %c, label %body, label %exit

body:
  %im1 = add i64 %i, -1
  %ip1 = add i64 %i, 1
  %p0 = getelementptr inbounds [34 x float], [34 x float]* %a, i64 0, i64 %im1
  %p1 = getelementptr inbounds [34 x float], [34 x float]* %a, i64 0, i64 %i
  %p2 = getelementptr inbounds [34 x float], [34 x float]* %a, i64 0, i64 %ip1
  %v0 = load float, float* %p0, align 4
  %v1 = load float, float* %p1, align 4
  %v2 = load float, float* %p2, align 4
  %s0 = fadd float %v0, %v1
  %s1 = fadd float %s0, %v2
  %q = getelementptr inbounds [34 x float], [34 x float]* %b, i64 0, i64 %i
  store float %s1, float* %q, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

    #[test]
    fn stencil_is_port_bound() {
        let r = ii_of(PORT_BOUND, 1);
        assert_eq!(r.res_mii, 2); // ceil(3 reads / 2 ports)
        assert_eq!(r.ii, 2);
        assert!(matches!(r.bound, IiBound::MemoryPorts(ref b) if b == "%a"));
    }

    #[test]
    fn unroll_multiplies_port_pressure() {
        let m = parse_module("m", PORT_BOUND).unwrap();
        let f = &m.functions[0];
        let cfg = Cfg::build(f);
        let dom = DomTree::build(f, &cfg);
        let li = LoopInfo::build(f, &cfg, &dom);
        let l = li.innermost_loops()[0];
        let cx = ScheduleCtx::from_function(f);
        let r = compute_ii(&m, f, l, &Target::default(), &cx, 1, 4);
        assert_eq!(r.res_mii, 6); // ceil(12 / 2)
    }

    #[test]
    fn multi_iv_flat_subscripts_are_refined_by_the_nest_engine() {
        // Store to A[16*i + j] and load from A[j + 16*i]: the same address
        // spelled as two different SSA expressions, as memref lowering
        // produces. The single-IV pairwise analysis sees both subscripts as
        // Complex (mixing two IVs) and assumes carried distance 1; the nest
        // engine proves the only in-bounds solution of 16*di + dj = 0 is
        // (0, 0), so the dependence is intra-iteration and II = 1 holds.
        let src = r#"
define void @f([256 x float]* %a) {
entry:
  br label %oheader

oheader:
  %i = phi i64 [ 0, %entry ], [ %inext, %olatch ]
  %oc = icmp slt i64 %i, 16
  br i1 %oc, label %iheader, label %exit

iheader:
  %j = phi i64 [ 0, %oheader ], [ %jnext, %body ]
  %ic = icmp slt i64 %j, 16
  br i1 %ic, label %body, label %olatch

body:
  %m = mul i64 %i, 16
  %s1 = add i64 %m, %j
  %s2 = add i64 %j, %m
  %q = getelementptr inbounds [256 x float], [256 x float]* %a, i64 0, i64 %s2
  %v = load float, float* %q, align 4
  %w = fmul float %v, %v
  %p = getelementptr inbounds [256 x float], [256 x float]* %a, i64 0, i64 %s1
  store float %w, float* %p, align 4
  %jnext = add i64 %j, 1
  br label %iheader

olatch:
  %inext = add i64 %i, 1
  br label %oheader

exit:
  ret void
}
"#;
        let m = parse_module("m", src).unwrap();
        let f = &m.functions[0];
        let cfg = Cfg::build(f);
        let dom = DomTree::build(f, &cfg);
        let li = LoopInfo::build(f, &cfg, &dom);
        let inner = li.innermost_loops()[0];
        let acc = loop_accesses(f, inner);
        let (stores, others): (Vec<_>, Vec<_>) = acc.iter().partition(|a| a.is_store);
        // The pairwise analysis alone is pessimistic on this pair.
        assert_eq!(dependence_distance(stores[0], others[0]), Distance::Unknown);
        let r = ii_of(src, 1);
        assert_eq!(r.rec_mii, 1, "nest engine should prove independence");
        assert_eq!(r.ii, 1);
    }

    #[test]
    fn opaque_shifted_flat_pointers_are_conservative() {
        // Store address = load address + unknown stride: the analyzer
        // cannot bound the distance, so the full recurrence (including bus
        // latency) is assumed.
        let src = r#"
define void @f(float* "hls.interface"="m_axi" %a, i64 %stride) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %off = mul i64 %i, %stride
  %p = getelementptr inbounds float, float* %a, i64 %off
  %v = load float, float* %p, align 4
  %w = fmul float %v, %v
  %off2 = add i64 %off, %stride
  %q = getelementptr inbounds float, float* %a, i64 %off2
  store float %w, float* %q, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let r = ii_of(src, 1);
        // load (2 + 6 axi) + fmul (3) + 1 = 12 around the cycle.
        assert!(r.ii >= 10, "expected conservative II, got {}", r.ii);
        assert!(matches!(r.bound, IiBound::Recurrence(_)));
    }

    #[test]
    fn accumulation_blocker_is_explained() {
        let m = parse_module("m", ACCUM).unwrap();
        let f = &m.functions[0];
        let notes = explain_ii_blockers(&m, f, &Target::default());
        assert_eq!(notes.len(), 1);
        let n = &notes[0];
        assert_eq!(n.severity, pass_core::Severity::Note);
        assert_eq!(n.pass, II_BLOCKER_PASS);
        assert!(n.message.contains("RecMII = 7"), "{}", n.message);
        assert!(n.message.contains("%acc"), "{}", n.message);
        assert!(n.message.contains("carried distance 1"), "{}", n.message);
        assert!(n.message.contains("7 registered cycles"), "{}", n.message);
        assert_eq!(n.loc.function.as_deref(), Some("f"));
    }

    #[test]
    fn elementwise_loop_needs_no_explanation() {
        let m = parse_module("m", ELEMENTWISE).unwrap();
        let f = &m.functions[0];
        assert!(explain_ii_blockers(&m, f, &Target::default()).is_empty());
    }
}
