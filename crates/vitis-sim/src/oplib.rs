//! The operation library: latency, chainable delay and area per operation.
//!
//! Numbers are calibrated to the orders of magnitude Vitis HLS reports for
//! a mid-range Artix/Zynq part at 100 MHz (10 ns clock): single-precision
//! adders take ~4 cycles on DSP slices, multipliers ~3 cycles, dividers and
//! square roots are long iterative units, and integer add/compare logic is
//! combinational and chains within a cycle.

use llvm_lite::{Function, Inst, InstData, Module, Opcode, Type};

/// Functional-unit class an operation binds to (used for sharing analysis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuClass {
    /// Combinational logic absorbed into LUTs (no shared FU).
    Logic,
    /// Integer multiplier.
    IMul,
    /// Integer divider.
    IDiv,
    /// Floating adder/subtractor.
    FAddSub,
    /// Floating multiplier.
    FMul,
    /// Floating divider.
    FDiv,
    /// Long-latency floating function unit (sqrt/exp).
    FFunc,
    /// Memory read port.
    MemRead,
    /// Memory write port.
    MemWrite,
    /// No hardware (constants, phis, control).
    Free,
}

/// Area cost of one functional-unit instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Area {
    /// DSP slices.
    pub dsp: u32,
    /// Lookup tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
}

/// Timing/area description of one operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpSpec {
    /// Cycles until the result is registered (0 = combinational).
    pub latency: u32,
    /// Combinational delay in ns (used for chaining when `latency == 0`).
    pub delay_ns: f64,
    /// FU class for binding/sharing.
    pub class: FuClass,
    /// Area of one instance.
    pub area: Area,
}

impl OpSpec {
    const fn new(
        latency: u32,
        delay_ns: f64,
        class: FuClass,
        dsp: u32,
        lut: u32,
        ff: u32,
    ) -> OpSpec {
        OpSpec {
            latency,
            delay_ns,
            class,
            area: Area { dsp, lut, ff },
        }
    }

    /// A zero-cost pseudo-op.
    pub const FREE: OpSpec = OpSpec::new(0, 0.0, FuClass::Free, 0, 0, 0);
}

/// Look up the spec of an instruction in context.
pub fn op_spec(m: &Module, f: &Function, inst: &Inst) -> OpSpec {
    let is_f64 = inst.ty == Type::Double
        || inst
            .operands
            .first()
            .map(|v| f.value_type(m, v) == Type::Double)
            .unwrap_or(false);
    match inst.opcode {
        Opcode::Add | Opcode::Sub => OpSpec::new(0, 1.8, FuClass::Logic, 0, 32, 0),
        Opcode::Mul => {
            if is_f64 {
                OpSpec::new(6, 0.0, FuClass::IMul, 8, 60, 120)
            } else {
                OpSpec::new(2, 0.0, FuClass::IMul, 3, 24, 60)
            }
        }
        Opcode::SDiv | Opcode::UDiv | Opcode::SRem | Opcode::URem => {
            OpSpec::new(18, 0.0, FuClass::IDiv, 0, 900, 1000)
        }
        Opcode::And | Opcode::Or | Opcode::Xor => OpSpec::new(0, 0.7, FuClass::Logic, 0, 16, 0),
        Opcode::Shl | Opcode::LShr | Opcode::AShr => OpSpec::new(0, 1.0, FuClass::Logic, 0, 40, 0),
        Opcode::FAdd | Opcode::FSub => {
            if is_f64 {
                OpSpec::new(7, 0.0, FuClass::FAddSub, 3, 400, 600)
            } else {
                OpSpec::new(4, 0.0, FuClass::FAddSub, 2, 200, 300)
            }
        }
        Opcode::FMul => {
            if is_f64 {
                OpSpec::new(6, 0.0, FuClass::FMul, 11, 200, 300)
            } else {
                OpSpec::new(3, 0.0, FuClass::FMul, 3, 100, 150)
            }
        }
        Opcode::FDiv | Opcode::FRem => {
            if is_f64 {
                OpSpec::new(29, 0.0, FuClass::FDiv, 0, 1600, 1800)
            } else {
                OpSpec::new(14, 0.0, FuClass::FDiv, 0, 800, 900)
            }
        }
        Opcode::FNeg => OpSpec::new(0, 0.5, FuClass::Logic, 0, 8, 0),
        Opcode::ICmp => OpSpec::new(0, 1.2, FuClass::Logic, 0, 16, 0),
        Opcode::FCmp => OpSpec::new(1, 0.0, FuClass::Logic, 0, 66, 0),
        Opcode::Select => OpSpec::new(0, 0.9, FuClass::Logic, 0, 16, 0),
        Opcode::Gep => OpSpec::new(0, 1.0, FuClass::Logic, 0, 20, 0),
        Opcode::Load => OpSpec::new(2, 0.0, FuClass::MemRead, 0, 8, 8),
        Opcode::Store => OpSpec::new(1, 0.0, FuClass::MemWrite, 0, 8, 8),
        Opcode::Alloca => OpSpec::FREE,
        Opcode::Call => call_spec(inst),
        Opcode::ZExt | Opcode::SExt | Opcode::Trunc | Opcode::BitCast => OpSpec::FREE,
        Opcode::FPExt | Opcode::FPTrunc => OpSpec::new(2, 0.0, FuClass::Logic, 0, 100, 100),
        Opcode::FPToSI | Opcode::SIToFP => OpSpec::new(3, 0.0, FuClass::Logic, 0, 200, 200),
        Opcode::PtrToInt | Opcode::IntToPtr => OpSpec::FREE,
        Opcode::Phi | Opcode::Br | Opcode::CondBr | Opcode::Ret | Opcode::Unreachable => {
            OpSpec::FREE
        }
    }
}

fn call_spec(inst: &Inst) -> OpSpec {
    let InstData::Call { callee } = &inst.data else {
        return OpSpec::FREE;
    };
    let is_f64 = callee.ends_with("f64");
    match callee.as_str() {
        c if c.starts_with("llvm.sqrt.") => {
            if is_f64 {
                OpSpec::new(28, 0.0, FuClass::FFunc, 0, 2000, 2200)
            } else {
                OpSpec::new(14, 0.0, FuClass::FFunc, 0, 900, 1000)
            }
        }
        c if c.starts_with("llvm.exp.") => OpSpec::new(20, 0.0, FuClass::FFunc, 7, 1400, 1500),
        c if c.starts_with("llvm.fabs.") => OpSpec::new(0, 0.5, FuClass::Logic, 0, 8, 0),
        c if c.starts_with("llvm.maxnum.") || c.starts_with("llvm.minnum.") => {
            OpSpec::new(1, 0.0, FuClass::Logic, 0, 70, 0)
        }
        // Calls to user functions are inlined by the flows before csynth;
        // an unexpected one is modeled as a long black box.
        _ => OpSpec::new(10, 0.0, FuClass::FFunc, 0, 500, 500),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::Value;

    fn spec_of(opcode: Opcode, ty: Type, operands: Vec<Value>) -> OpSpec {
        let m = Module::new("m");
        let f = Function::new("f", vec![], Type::Void);
        op_spec(&m, &f, &Inst::new(opcode, ty, operands))
    }

    #[test]
    fn integer_add_is_chainable() {
        let s = spec_of(Opcode::Add, Type::I32, vec![Value::i32(1), Value::i32(2)]);
        assert_eq!(s.latency, 0);
        assert!(s.delay_ns > 0.0);
        assert_eq!(s.area.dsp, 0);
    }

    #[test]
    fn f32_units_match_vitis_orders() {
        let fadd = spec_of(
            Opcode::FAdd,
            Type::Float,
            vec![Value::f32(1.0), Value::f32(2.0)],
        );
        assert_eq!(fadd.latency, 4);
        assert_eq!(fadd.area.dsp, 2);
        let fmul = spec_of(
            Opcode::FMul,
            Type::Float,
            vec![Value::f32(1.0), Value::f32(2.0)],
        );
        assert_eq!(fmul.latency, 3);
        assert_eq!(fmul.area.dsp, 3);
        let fdiv = spec_of(
            Opcode::FDiv,
            Type::Float,
            vec![Value::f32(1.0), Value::f32(2.0)],
        );
        assert!(fdiv.latency > 10);
    }

    #[test]
    fn f64_is_slower_and_larger_than_f32() {
        let a32 = spec_of(
            Opcode::FAdd,
            Type::Float,
            vec![Value::f32(1.0), Value::f32(2.0)],
        );
        let a64 = spec_of(
            Opcode::FAdd,
            Type::Double,
            vec![Value::f64(1.0), Value::f64(2.0)],
        );
        assert!(a64.latency > a32.latency);
        assert!(a64.area.dsp >= a32.area.dsp);
    }

    #[test]
    fn memory_ops_have_port_classes() {
        let ld = spec_of(Opcode::Load, Type::Float, vec![]);
        assert_eq!(ld.class, FuClass::MemRead);
        assert_eq!(ld.latency, 2);
        let st = spec_of(Opcode::Store, Type::Void, vec![]);
        assert_eq!(st.class, FuClass::MemWrite);
    }

    #[test]
    fn sqrt_intrinsic_is_long_latency() {
        let m = Module::new("m");
        let f = Function::new("f", vec![], Type::Void);
        let call =
            Inst::new(Opcode::Call, Type::Float, vec![Value::f32(2.0)]).with_data(InstData::Call {
                callee: "llvm.sqrt.f32".into(),
            });
        let s = op_spec(&m, &f, &call);
        assert_eq!(s.class, FuClass::FFunc);
        assert!(s.latency >= 10);
    }

    #[test]
    fn casts_are_free() {
        let s = spec_of(Opcode::SExt, Type::I64, vec![Value::i32(1)]);
        assert_eq!(s, OpSpec::FREE);
    }
}
