//! `vitis-sim` — a Vitis-HLS-like synthesis estimator.
//!
//! This crate is the substitute for the proprietary Xilinx Vitis HLS backend
//! the paper evaluates with (see DESIGN.md's substitution ledger). It
//! consumes adapted LLVM IR and produces a `csynth`-style report: latency in
//! cycles, loop initiation intervals, and DSP/LUT/FF/BRAM utilization.
//!
//! The model follows the published structure of HLS schedulers:
//!
//! * an **operation library** ([`oplib`]) with per-op latency, combinational
//!   delay (for operation chaining) and area, calibrated to the orders of
//!   magnitude public Vitis documentation reports at 100 MHz;
//! * a **memory-dependence analyzer** ([`memdep`]) that resolves access
//!   bases and affine-in-IV subscripts — precise for structured GEPs,
//!   conservative for raw pointer arithmetic (exactly the asymmetry that
//!   makes the adaptor's array recovery matter);
//! * a chained, **port-constrained list scheduler** ([`schedule`]) for
//!   straight-line regions;
//! * a **modulo-scheduling model** ([`pipeline`]) computing II as
//!   `max(RecMII, ResMII, requested)` for pipelined loops;
//! * a **binder** ([`binder`]) estimating functional-unit, BRAM and control
//!   area;
//! * a **csynth driver** ([`mod@csynth`]) that walks the loop forest and rolls
//!   everything into a [`report::CsynthReport`].
//!
//! Like the real tool's frontend, [`csynth::csynth`] refuses modules that
//! still carry HLS-compatibility issues; callers run the adaptor (or the
//! C++-path frontend) first.

pub mod binder;
pub mod csynth;
pub mod memdep;
pub mod oplib;
pub mod pipeline;
pub mod report;
pub mod schedule;

pub use csynth::{csynth, csynth_budgeted, CsynthError};
pub use pipeline::{explain_ii_blockers, II_BLOCKER_PASS};
pub use report::{CsynthReport, LoopReport, Resources};

/// Synthesis target description.
#[derive(Clone, Debug)]
pub struct Target {
    /// Clock period in nanoseconds (default 10 ns = 100 MHz).
    pub clock_ns: f64,
    /// Read/write ports per BRAM bank (true dual-port = 2).
    pub bram_ports: u32,
    /// Outstanding-access limit for `m_axi` bus ports (shared bus).
    pub axi_ports: u32,
    /// Extra read latency of `m_axi` accesses over BRAM, in cycles.
    pub axi_extra_latency: u32,
}

impl Default for Target {
    fn default() -> Target {
        Target {
            clock_ns: 10.0,
            bram_ports: 2,
            axi_ports: 1,
            axi_extra_latency: 6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_target_is_100mhz_dual_port() {
        let t = Target::default();
        assert_eq!(t.clock_ns, 10.0);
        assert_eq!(t.bram_ports, 2);
    }
}
