//! Resource binding and area estimation.
//!
//! * **BRAM** — every `ap_memory` interface array and local array buffer
//!   binds to BRAM-18K blocks (`ceil(bits / 18432)`, min 1). `m_axi`
//!   pointers live off-chip and consume none.
//! * **Functional units** — multi-cycle units (floating add/mul/div,
//!   integer mul/div, function units) are shared: a region needs
//!   `ceil(ops/II)` instances when pipelined at II, or its peak per-cycle
//!   issue count otherwise. Sequentially executed regions share units, so
//!   the function-level need is the per-class maximum across regions.
//! * **Control** — each loop contributes FSM overhead; the function adds a
//!   base controller.

use std::collections::HashMap;

use llvm_lite::{Function, InstData, Opcode, Type};

use crate::oplib::{Area, FuClass};
use crate::report::Resources;

/// Per-region functional-unit requirement.
#[derive(Clone, Debug, Default)]
pub struct FuNeed {
    /// Shared FU instances required, per class.
    pub units: HashMap<FuClass, u32>,
    /// Representative (max) area of one unit per class.
    pub unit_area: HashMap<FuClass, Area>,
    /// Unshared combinational logic (LUT/FF) in this region.
    pub logic_lut: u64,
    /// Flip-flops of unshared logic.
    pub logic_ff: u64,
}

impl FuNeed {
    /// Record `n` required instances of a class with the given unit area.
    pub fn require(&mut self, class: FuClass, n: u32, area: Area) {
        if n == 0 {
            return;
        }
        let e = self.units.entry(class).or_insert(0);
        *e = (*e).max(n);
        let a = self.unit_area.entry(class).or_insert(area);
        if area.lut > a.lut {
            *a = area;
        }
    }

    /// Per-class maximum across two temporally exclusive regions.
    pub fn max_with(&mut self, other: &FuNeed) {
        for (class, &n) in &other.units {
            let area = other.unit_area.get(class).copied().unwrap_or_default();
            self.require(*class, n, area);
        }
        self.logic_lut = self.logic_lut.max(other.logic_lut);
        self.logic_ff = self.logic_ff.max(other.logic_ff);
    }

    /// Total area of the required units plus logic.
    pub fn area(&self) -> Resources {
        let mut r = Resources::default();
        for (class, &n) in &self.units {
            let a = self.unit_area.get(class).copied().unwrap_or_default();
            r.dsp += a.dsp * n;
            r.lut += a.lut * n;
            r.ff += a.ff * n;
        }
        r.lut += self.logic_lut as u32;
        r.ff += self.logic_ff as u32;
        r
    }
}

/// Whether an FU class is a shared multi-cycle unit (vs absorbed logic).
pub fn is_shared_unit(class: FuClass) -> bool {
    matches!(
        class,
        FuClass::IMul
            | FuClass::IDiv
            | FuClass::FAddSub
            | FuClass::FMul
            | FuClass::FDiv
            | FuClass::FFunc
    )
}

/// BRAM-18K blocks for all on-chip arrays of a function.
pub fn bram_banks(f: &Function) -> u32 {
    let mut total = 0u32;
    for p in &f.params {
        // Explicit bindings win; pointer-to-array parameters without one
        // default to `ap_memory` (the Vitis default for array arguments).
        let iface = p.attrs.get("hls.interface").map(String::as_str);
        if matches!(iface, Some(x) if x != "ap_memory") {
            continue;
        }
        if let Some(arr @ Type::Array(..)) = p.ty.pointee() {
            let factor = p
                .attrs
                .get("hls.array_partition")
                .and_then(|s| crate::schedule::parse_partition(s))
                .unwrap_or(1)
                .min(arr.flat_len() as u32);
            // Cyclic partitioning splits the object across `factor` banks;
            // each bank rounds up to at least one BRAM.
            total += banks_for(arr).max(factor);
        }
    }
    for (_, id) in f.inst_ids() {
        let inst = f.inst(id);
        if inst.opcode == Opcode::Alloca {
            if let InstData::Alloca { allocated, .. } = &inst.data {
                if matches!(allocated, Type::Array(..)) {
                    total += banks_for(allocated);
                }
            }
        }
    }
    total
}

fn banks_for(arr: &Type) -> u32 {
    let bits = arr.flat_len() * arr.scalar_base().size_in_bytes() * 8;
    (bits.div_ceil(18_432)).max(1) as u32
}

/// FSM/control overhead: base controller plus per-loop state logic.
pub fn control_overhead(num_loops: usize) -> Resources {
    Resources {
        dsp: 0,
        lut: 200 + 50 * num_loops as u32,
        ff: 150 + 80 * num_loops as u32,
        bram_18k: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;

    #[test]
    fn bram_counts_interface_and_local_arrays() {
        let src = r#"
define void @f([1024 x float]* "hls.interface"="ap_memory" %a, float* "hls.interface"="m_axi" %b) {
entry:
  %buf = alloca [128 x float], align 4
  ret void
}
"#;
        let m = parse_module("m", src).unwrap();
        let f = m.function("f").unwrap();
        // 1024 floats = 32768 bits -> 2 banks; local 128 floats -> 1 bank;
        // m_axi pointer -> 0.
        assert_eq!(bram_banks(f), 3);
    }

    #[test]
    fn small_arrays_round_up_to_one_bank() {
        let src = r#"
define void @f([4 x float]* "hls.interface"="ap_memory" %a) {
entry:
  ret void
}
"#;
        let m = parse_module("m", src).unwrap();
        assert_eq!(bram_banks(m.function("f").unwrap()), 1);
    }

    #[test]
    fn fu_need_maximum_composition() {
        let mut a = FuNeed::default();
        a.require(
            FuClass::FMul,
            2,
            Area {
                dsp: 3,
                lut: 100,
                ff: 150,
            },
        );
        a.logic_lut = 500;
        let mut b = FuNeed::default();
        b.require(
            FuClass::FMul,
            1,
            Area {
                dsp: 3,
                lut: 100,
                ff: 150,
            },
        );
        b.require(
            FuClass::FAddSub,
            1,
            Area {
                dsp: 2,
                lut: 200,
                ff: 300,
            },
        );
        b.logic_lut = 300;
        a.max_with(&b);
        assert_eq!(a.units[&FuClass::FMul], 2);
        assert_eq!(a.units[&FuClass::FAddSub], 1);
        assert_eq!(a.logic_lut, 500);
        let area = a.area();
        assert_eq!(area.dsp, 3 * 2 + 2);
        assert_eq!(area.lut as u64, 100 * 2 + 200 + 500);
    }

    #[test]
    fn control_grows_with_loops() {
        let base = control_overhead(0);
        let three = control_overhead(3);
        assert!(three.lut > base.lut);
        assert!(three.ff > base.ff);
        assert_eq!(three.dsp, 0);
    }

    #[test]
    fn shared_unit_classification() {
        assert!(is_shared_unit(FuClass::FAddSub));
        assert!(is_shared_unit(FuClass::IMul));
        assert!(!is_shared_unit(FuClass::Logic));
        assert!(!is_shared_unit(FuClass::MemRead));
        assert!(!is_shared_unit(FuClass::Free));
    }
}
