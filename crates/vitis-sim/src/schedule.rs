//! Chained, memory-port-constrained scheduling of straight-line regions.
//!
//! Each basic block is scheduled as a DAG of its instructions:
//!
//! * combinational ops (`latency == 0`) **chain**: they occupy the same
//!   cycle as their producer while the accumulated combinational delay fits
//!   in the clock period, and spill into the next cycle otherwise;
//! * multi-cycle ops issue at their operands' ready cycle and register
//!   their result `latency` cycles later;
//! * loads/stores contend for the (dual) ports of the BRAM bank backing
//!   their base object, and for the shared bus when the base is `m_axi`;
//! * memory ordering edges (store→load, store→store, load→store on the same
//!   base) are respected in program order.

use std::collections::{HashMap, HashSet};

use llvm_lite::{BlockId, Function, InstId, Module, Opcode};
use pass_core::{Budget, BudgetError};

use crate::memdep::{base_object, BaseObject};
use crate::oplib::{op_spec, FuClass};
use crate::Target;

/// Context shared across block schedules of one function.
#[derive(Clone, Debug, Default)]
pub struct ScheduleCtx {
    /// Bases bound to the AXI bus (higher latency, single shared port).
    pub m_axi_bases: HashSet<BaseObject>,
    /// Cyclic array-partition factors per base (1 = unpartitioned).
    pub partition: std::collections::HashMap<BaseObject, u32>,
}

impl ScheduleCtx {
    /// Build from a function's interface attributes.
    pub fn from_function(f: &Function) -> ScheduleCtx {
        let mut cx = ScheduleCtx::default();
        for (i, p) in f.params.iter().enumerate() {
            if p.attrs.get("hls.interface").map(String::as_str) == Some("m_axi") {
                cx.m_axi_bases.insert(BaseObject::Param(i as u32));
            }
            if let Some(factor) = p
                .attrs
                .get("hls.array_partition")
                .and_then(|s| parse_partition(s))
            {
                cx.partition.insert(BaseObject::Param(i as u32), factor);
            }
        }
        cx
    }

    /// Effective BRAM ports for a base: dual-port per partition bank.
    pub fn ports_for(&self, base: &BaseObject, target: &Target) -> u32 {
        let factor = self.partition.get(base).copied().unwrap_or(1).max(1);
        target.bram_ports * factor
    }
}

/// Parse `cyclic:<n>` / `block:<n>` / `complete` partition specs.
pub fn parse_partition(spec: &str) -> Option<u32> {
    if spec == "complete" {
        return Some(u32::MAX);
    }
    let (_kind, n) = spec.split_once(':')?;
    n.parse().ok().filter(|f| *f > 1)
}

/// The schedule of one block.
#[derive(Clone, Debug, Default)]
pub struct BlockSchedule {
    /// Issue cycle (0-based within the block) of each instruction.
    pub start: HashMap<InstId, u64>,
    /// Cycle at whose *start* each instruction's result is available.
    pub done: HashMap<InstId, u64>,
    /// Number of cycles the block occupies (>= 1 for non-empty blocks).
    pub length: u64,
    /// Peak per-cycle issue count per FU class (binder input).
    pub fu_pressure: HashMap<FuClass, u32>,
}

/// Schedule one block.
pub fn schedule_block(
    m: &Module,
    f: &Function,
    target: &Target,
    block: BlockId,
    cx: &ScheduleCtx,
) -> BlockSchedule {
    schedule_block_budgeted(m, f, target, block, cx, &Budget::unlimited())
        .expect("unlimited budget cannot trip")
}

/// [`schedule_block`] under a [`Budget`]: one fuel unit per scheduled
/// instruction, so a pathological region trips cooperatively instead of
/// grinding through port arbitration unbounded.
pub fn schedule_block_budgeted(
    m: &Module,
    f: &Function,
    target: &Target,
    block: BlockId,
    cx: &ScheduleCtx,
    budget: &Budget,
) -> Result<BlockSchedule, BudgetError> {
    let insts = &f.block(block).insts;
    let mut out = BlockSchedule::default();
    // (cycle, combinational offset ns) at which each value is usable.
    let mut ready: HashMap<InstId, (u64, f64)> = HashMap::new();
    // Memory ordering state.
    let mut last_store: HashMap<BaseObject, InstId> = HashMap::new();
    let mut loads_since_store: HashMap<BaseObject, Vec<InstId>> = HashMap::new();
    // Port books: (base, cycle) -> uses ; plus the shared AXI pool.
    let mut bram_ports: HashMap<(BaseObject, u64), u32> = HashMap::new();
    let mut axi_ports: HashMap<u64, u32> = HashMap::new();
    // Per-cycle FU issue counts.
    let mut issues: HashMap<(FuClass, u64), u32> = HashMap::new();

    for &id in insts {
        budget.charge(1, "csynth/schedule")?;
        let inst = f.inst(id);
        if inst.opcode == Opcode::Phi {
            // Block inputs: available at cycle 0.
            ready.insert(id, (0, 0.0));
            out.start.insert(id, 0);
            out.done.insert(id, 0);
            continue;
        }
        let mut spec = op_spec(m, f, inst);

        // Operand readiness (same-block SSA deps only; cross-block values
        // are ready at cycle 0).
        let mut cycle = 0u64;
        let mut offset = 0.0f64;
        for op in &inst.operands {
            if let Some(def) = op.as_inst() {
                if let Some(&(c, o)) = ready.get(&def) {
                    if c > cycle {
                        cycle = c;
                        offset = o;
                    } else if c == cycle && o > offset {
                        offset = o;
                    }
                }
            }
        }
        // Memory ordering edges.
        let mem_base = match inst.opcode {
            Opcode::Load => Some((false, base_object(f, &inst.operands[0]))),
            Opcode::Store => Some((true, base_object(f, &inst.operands[1]))),
            _ => None,
        };
        if let Some((is_store, base)) = &mem_base {
            let bump = |dep: InstId, cycle: &mut u64, offset: &mut f64, out: &BlockSchedule| {
                if let Some(&d) = out.done.get(&dep) {
                    if d > *cycle {
                        *cycle = d;
                        *offset = 0.0;
                    }
                }
            };
            if let Some(&s) = last_store.get(base) {
                bump(s, &mut cycle, &mut offset, &out);
            }
            if *base == BaseObject::Unknown {
                // Unknown base orders against every store.
                for &s in last_store.values() {
                    bump(s, &mut cycle, &mut offset, &out);
                }
            }
            if *is_store {
                for &l in loads_since_store
                    .get(base)
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                {
                    bump(l, &mut cycle, &mut offset, &out);
                }
            }
        }

        let is_axi = mem_base
            .as_ref()
            .map(|(_, b)| cx.m_axi_bases.contains(b))
            .unwrap_or(false);
        if is_axi {
            spec.latency += target.axi_extra_latency;
        }

        let (start, done_cycle, result_offset) = if spec.latency == 0 {
            // Chain if the delay fits; else start a new cycle.
            if offset + spec.delay_ns <= target.clock_ns {
                (cycle, cycle, offset + spec.delay_ns)
            } else {
                (cycle + 1, cycle + 1, spec.delay_ns)
            }
        } else {
            // Registered op: issues at the ready cycle (inputs latched),
            // result appears `latency` cycles later.
            let mut start = cycle;
            // Memory port arbitration.
            if let Some((_, base)) = &mem_base {
                loop {
                    let free = if is_axi {
                        *axi_ports.get(&start).unwrap_or(&0) < target.axi_ports
                    } else {
                        *bram_ports.get(&(base.clone(), start)).unwrap_or(&0)
                            < cx.ports_for(base, target)
                    };
                    if free {
                        break;
                    }
                    start += 1;
                }
                if is_axi {
                    *axi_ports.entry(start).or_insert(0) += 1;
                } else {
                    *bram_ports.entry((base.clone(), start)).or_insert(0) += 1;
                }
            }
            (start, start + u64::from(spec.latency), 0.0)
        };

        ready.insert(id, (done_cycle, result_offset));
        out.start.insert(id, start);
        out.done.insert(id, done_cycle);
        *issues.entry((spec.class, start)).or_insert(0) += 1;

        if let Some((is_store, base)) = mem_base {
            if is_store {
                last_store.insert(base.clone(), id);
                loads_since_store.remove(&base);
            } else {
                loads_since_store.entry(base).or_default().push(id);
            }
        }

        let occupies = done_cycle.max(start + 1);
        out.length = out.length.max(occupies);
    }
    if out.length == 0 && !insts.is_empty() {
        out.length = 1;
    }
    for ((class, _), n) in issues {
        let e = out.fu_pressure.entry(class).or_insert(0);
        *e = (*e).max(n);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;

    fn sched(src: &str) -> (llvm_lite::Module, BlockSchedule) {
        let m = parse_module("m", src).unwrap();
        let f = &m.functions[0];
        let cx = ScheduleCtx::from_function(f);
        let s = schedule_block(&m, f, &Target::default(), f.entry(), &cx);
        let m2 = m.clone();
        (m2, s)
    }

    #[test]
    fn combinational_ops_chain_into_one_cycle() {
        let (_, s) = sched(
            r#"
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  %y = add i32 %x, 2
  %z = add i32 %y, 3
  ret i32 %z
}
"#,
        );
        // Three adds at 1.8ns each chain within a 10ns clock.
        assert_eq!(s.length, 1);
        assert_eq!(s.start[&0], 0);
        assert_eq!(s.start[&2], 0);
    }

    #[test]
    fn long_chains_spill_into_next_cycle() {
        // Seven dependent adds exceed 10ns of combinational delay.
        let mut body = String::new();
        let mut prev = "%a".to_string();
        for i in 0..7 {
            body.push_str(&format!("  %x{i} = add i32 {prev}, 1\n"));
            prev = format!("%x{i}");
        }
        let src = format!("define i32 @f(i32 %a) {{\nentry:\n{body}  ret i32 {prev}\n}}\n");
        let (_, s) = sched(&src);
        assert!(s.length >= 2, "chain must break: {}", s.length);
    }

    #[test]
    fn float_add_takes_its_latency() {
        let (_, s) = sched(
            r#"
define float @f(float %a, float %b) {
entry:
  %x = fadd float %a, %b
  %y = fadd float %x, %b
  ret float %y
}
"#,
        );
        // Two dependent 4-cycle adders: second issues at cycle 4, its
        // result lands at cycle 8, and the ret consumes it there.
        assert_eq!(s.start[&0], 0);
        assert_eq!(s.start[&1], 4);
        assert_eq!(s.length, 9);
    }

    #[test]
    fn independent_float_adds_issue_together() {
        let (_, s) = sched(
            r#"
define float @f(float %a, float %b) {
entry:
  %x = fadd float %a, %b
  %y = fadd float %b, %a
  %z = fadd float %x, %y
  ret float %z
}
"#,
        );
        assert_eq!(s.start[&0], 0);
        assert_eq!(s.start[&1], 0);
        assert_eq!(s.start[&2], 4);
        assert_eq!(s.fu_pressure[&FuClass::FAddSub], 2);
    }

    #[test]
    fn bram_ports_limit_parallel_loads() {
        let (_, s) = sched(
            r#"
define float @f([16 x float]* %a) {
entry:
  %p0 = getelementptr inbounds [16 x float], [16 x float]* %a, i64 0, i64 0
  %p1 = getelementptr inbounds [16 x float], [16 x float]* %a, i64 0, i64 1
  %p2 = getelementptr inbounds [16 x float], [16 x float]* %a, i64 0, i64 2
  %v0 = load float, float* %p0, align 4
  %v1 = load float, float* %p1, align 4
  %v2 = load float, float* %p2, align 4
  %s0 = fadd float %v0, %v1
  %s1 = fadd float %s0, %v2
  ret float %s1
}
"#,
        );
        // Loads are ids 3,4,5: two fit in cycle 0, the third waits.
        assert_eq!(s.start[&3], 0);
        assert_eq!(s.start[&4], 0);
        assert_eq!(s.start[&5], 1);
    }

    #[test]
    fn different_arrays_do_not_contend() {
        let (_, s) = sched(
            r#"
define float @f([16 x float]* %a, [16 x float]* %b) {
entry:
  %p0 = getelementptr inbounds [16 x float], [16 x float]* %a, i64 0, i64 0
  %p1 = getelementptr inbounds [16 x float], [16 x float]* %b, i64 0, i64 0
  %v0 = load float, float* %p0, align 4
  %v1 = load float, float* %p1, align 4
  %s = fadd float %v0, %v1
  ret float %s
}
"#,
        );
        assert_eq!(s.start[&2], 0);
        assert_eq!(s.start[&3], 0);
    }

    #[test]
    fn store_orders_following_load_on_same_base() {
        let (_, s) = sched(
            r#"
define float @f([16 x float]* %a, float %v) {
entry:
  %p = getelementptr inbounds [16 x float], [16 x float]* %a, i64 0, i64 0
  store float %v, float* %p, align 4
  %r = load float, float* %p, align 4
  ret float %r
}
"#,
        );
        // Store completes at cycle 1; the load cannot issue before that.
        assert!(s.start[&2] >= s.done[&1]);
    }

    #[test]
    fn m_axi_access_is_slower_and_serialized() {
        let src = r#"
define float @f(float* "hls.interface"="m_axi" %a) {
entry:
  %p0 = getelementptr inbounds float, float* %a, i64 0
  %p1 = getelementptr inbounds float, float* %a, i64 1
  %v0 = load float, float* %p0, align 4
  %v1 = load float, float* %p1, align 4
  %s = fadd float %v0, %v1
  ret float %s
}
"#;
        let m = parse_module("m", src).unwrap();
        let f = &m.functions[0];
        let cx = ScheduleCtx::from_function(f);
        assert!(cx.m_axi_bases.contains(&BaseObject::Param(0)));
        let s = schedule_block(&m, f, &Target::default(), f.entry(), &cx);
        // Single AXI port: second load issues a cycle later; both have the
        // extra bus latency.
        assert_eq!(s.start[&2], 0);
        assert_eq!(s.start[&3], 1);
        assert!(s.done[&2] >= 8);
    }

    #[test]
    fn empty_ret_block_is_one_cycle() {
        let (_, s) = sched("define void @f() {\nentry:\n  ret void\n}\n");
        assert_eq!(s.length, 1);
    }

    #[test]
    fn exhausted_fuel_trips_scheduling() {
        let m = parse_module(
            "m",
            r#"
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  %y = add i32 %x, 2
  %z = add i32 %y, 3
  ret i32 %z
}
"#,
        )
        .unwrap();
        let f = &m.functions[0];
        let cx = ScheduleCtx::from_function(f);
        let budget = Budget::unlimited().with_fuel(2);
        let err = schedule_block_budgeted(&m, f, &Target::default(), f.entry(), &cx, &budget)
            .unwrap_err();
        assert_eq!(err.stage, "csynth/schedule");
        assert_eq!(err.kind, pass_core::BudgetKind::Fuel);
    }
}
