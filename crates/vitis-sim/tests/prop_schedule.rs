//! Property tests for the scheduler: on random straight-line blocks, the
//! schedule must respect SSA dependences, memory-port capacity, and basic
//! monotonicity laws.

use proptest::prelude::*;

use llvm_lite::module::{Function, Param};
use llvm_lite::{Inst, InstData, Module, Opcode, Type, Value};
use vitis_sim::schedule::{schedule_block, ScheduleCtx};
use vitis_sim::Target;

/// A random op over previously defined float values plus random loads.
#[derive(Clone, Debug)]
enum GenOp {
    FAdd(usize, usize),
    FMul(usize, usize),
    Load(usize),
    Store(usize, usize),
}

fn gen_ops() -> impl Strategy<Value = Vec<GenOp>> {
    prop::collection::vec(
        prop_oneof![
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GenOp::FAdd(a, b)),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GenOp::FMul(a, b)),
            (0usize..8).prop_map(GenOp::Load),
            (any::<usize>(), 0usize..8).prop_map(|(v, i)| GenOp::Store(v, i)),
        ],
        1..20,
    )
}

/// Build `void f([8 x float]* %m, float %s)` with the random body.
fn build(ops: &[GenOp]) -> (Module, Function) {
    let m = Module::new("prop");
    let mut f = Function::new(
        "f",
        vec![
            Param::new("m", Type::Float.array_of(8).ptr_to()),
            Param::new("s", Type::Float),
        ],
        Type::Void,
    );
    let entry = f.add_block("entry");
    let mut vals: Vec<Value> = vec![Value::Arg(1)];
    let arr = Type::Float.array_of(8);
    let gep_for = |f: &mut Function, idx: usize| -> Value {
        let g = f.push_inst(
            entry,
            Inst::new(
                Opcode::Gep,
                Type::Float.ptr_to(),
                vec![Value::Arg(0), Value::i64(0), Value::i64(idx as i64)],
            )
            .with_data(InstData::Gep {
                base_ty: arr.clone(),
                inbounds: true,
            }),
        );
        Value::Inst(g)
    };
    for op in ops {
        match op {
            GenOp::FAdd(a, b) | GenOp::FMul(a, b) => {
                let x = vals[*a % vals.len()].clone();
                let y = vals[*b % vals.len()].clone();
                let opcode = if matches!(op, GenOp::FAdd(..)) {
                    Opcode::FAdd
                } else {
                    Opcode::FMul
                };
                let id = f.push_inst(entry, Inst::new(opcode, Type::Float, vec![x, y]));
                vals.push(Value::Inst(id));
            }
            GenOp::Load(i) => {
                let p = gep_for(&mut f, *i);
                let id = f.push_inst(
                    entry,
                    Inst::new(Opcode::Load, Type::Float, vec![p])
                        .with_data(InstData::Load { align: 4 }),
                );
                vals.push(Value::Inst(id));
            }
            GenOp::Store(v, i) => {
                let val = vals[*v % vals.len()].clone();
                let p = gep_for(&mut f, *i);
                f.push_inst(
                    entry,
                    Inst::new(Opcode::Store, Type::Void, vec![val, p])
                        .with_data(InstData::Store { align: 4 }),
                );
            }
        }
    }
    f.push_inst(entry, Inst::new(Opcode::Ret, Type::Void, vec![]));
    (m, f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// No consumer starts before its producer's result is available
    /// (multi-cycle producers; chained combinational ops share cycles).
    #[test]
    fn schedule_respects_ssa_dependences(ops in gen_ops()) {
        let (m, f) = build(&ops);
        let s = schedule_block(&m, &f, &Target::default(), f.entry(), &ScheduleCtx::default());
        for (_, id) in f.inst_ids() {
            let inst = f.inst(id);
            for op in &inst.operands {
                if let Some(def) = op.as_inst() {
                    let def_spec = vitis_sim::oplib::op_spec(&m, &f, f.inst(def));
                    if def_spec.latency > 0 {
                        prop_assert!(
                            s.start[&id] >= s.done[&def],
                            "%{id} starts at {} before %{def} completes at {}",
                            s.start[&id], s.done[&def]
                        );
                    } else {
                        prop_assert!(s.start[&id] >= s.start[&def]);
                    }
                }
            }
        }
    }

    /// Never more than `bram_ports` accesses to one array per cycle.
    #[test]
    fn schedule_respects_memory_ports(ops in gen_ops()) {
        let (m, f) = build(&ops);
        let target = Target::default();
        let s = schedule_block(&m, &f, &target, f.entry(), &ScheduleCtx::default());
        let mut per_cycle = std::collections::HashMap::new();
        for (_, id) in f.inst_ids() {
            let inst = f.inst(id);
            if matches!(inst.opcode, Opcode::Load | Opcode::Store) {
                *per_cycle.entry(s.start[&id]).or_insert(0u32) += 1;
            }
        }
        for (cycle, n) in per_cycle {
            prop_assert!(
                n <= target.bram_ports,
                "cycle {cycle} has {n} accesses (ports = {})",
                target.bram_ports
            );
        }
    }

    /// Program order among memory operations on the same array is kept:
    /// a store never starts before an earlier load/store completes.
    #[test]
    fn schedule_respects_memory_order(ops in gen_ops()) {
        let (m, f) = build(&ops);
        let s = schedule_block(&m, &f, &Target::default(), f.entry(), &ScheduleCtx::default());
        let mut mem_ids = Vec::new();
        for (_, id) in f.inst_ids() {
            if matches!(f.inst(id).opcode, Opcode::Load | Opcode::Store) {
                mem_ids.push(id);
            }
        }
        for w in mem_ids.windows(2) {
            let (a, b) = (w[0], w[1]);
            // Only store-involving pairs are ordered.
            let a_store = f.inst(a).opcode == Opcode::Store;
            let b_store = f.inst(b).opcode == Opcode::Store;
            if a_store && b_store {
                prop_assert!(s.start[&b] >= s.done[&a]);
            }
        }
    }

    /// A faster clock (longer period) never lengthens the schedule.
    #[test]
    fn slower_clock_never_helps(ops in gen_ops()) {
        let (m, f) = build(&ops);
        let fast = Target { clock_ns: 5.0, ..Target::default() };
        let slow = Target { clock_ns: 20.0, ..Target::default() };
        let s_fast = schedule_block(&m, &f, &fast, f.entry(), &ScheduleCtx::default());
        let s_slow = schedule_block(&m, &f, &slow, f.entry(), &ScheduleCtx::default());
        prop_assert!(s_slow.length <= s_fast.length);
    }

    /// More BRAM ports never lengthen the schedule.
    #[test]
    fn more_ports_never_hurt(ops in gen_ops()) {
        let (m, f) = build(&ops);
        let two = Target::default();
        let four = Target { bram_ports: 4, ..Target::default() };
        let s2 = schedule_block(&m, &f, &two, f.entry(), &ScheduleCtx::default());
        let s4 = schedule_block(&m, &f, &four, f.entry(), &ScheduleCtx::default());
        prop_assert!(s4.length <= s2.length, "4 ports {} vs 2 ports {}", s4.length, s2.length);
    }
}
