//! Stable content digests for kernels and derived artifacts.
//!
//! The batch driver's artifact cache addresses every stage output by a hash
//! of its inputs, so the hash must be *stable*: the same bytes must produce
//! the same digest across processes, runs, and platforms. The standard
//! library's `DefaultHasher` is explicitly not guaranteed stable, so this
//! module carries a small FNV-1a implementation instead. It is the
//! workspace's shared content-hash primitive — `driver::cache` builds its
//! cache keys on top of [`Hasher64`].
//!
//! FNV-1a is not cryptographic; it is used purely as a content address in a
//! trusted local cache, where an (astronomically unlikely) collision costs a
//! stale artifact, not a security boundary.

use crate::suite::Kernel;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash one byte slice with FNV-1a (64-bit).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Hasher64::new();
    h.update(bytes);
    h.finish()
}

/// An incremental FNV-1a (64-bit) hasher for composing digests from several
/// labelled fields without allocating a combined buffer.
#[derive(Clone, Debug)]
pub struct Hasher64 {
    state: u64,
}

impl Default for Hasher64 {
    fn default() -> Self {
        Hasher64::new()
    }
}

impl Hasher64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Hasher64 {
        Hasher64 { state: FNV_OFFSET }
    }

    /// Absorb raw bytes.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a length-delimited field: the length guard keeps
    /// `("ab","c")` and `("a","bc")` from colliding.
    pub fn field(&mut self, bytes: &[u8]) -> &mut Self {
        self.update(&(bytes.len() as u64).to_le_bytes());
        self.update(bytes)
    }

    /// Absorb a length-delimited string field.
    pub fn field_str(&mut self, s: &str) -> &mut Self {
        self.field(s.as_bytes())
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// The current digest as the 16-hex-digit form used in cache filenames.
    pub fn finish_hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

impl Kernel {
    /// A stable digest of everything that defines this kernel's *content*:
    /// name, MLIR source, and the argument specification. The prose
    /// description is deliberately excluded — editing a comment must not
    /// invalidate cached artifacts. Two kernels computing different things
    /// always differ in at least one hashed field.
    pub fn content_digest(&self) -> u64 {
        let mut h = Hasher64::new();
        h.field_str("kernel-v1")
            .field_str(self.name)
            .field_str(self.mlir);
        for a in self.args {
            h.field_str(a.name)
                .field(&(a.len as u64).to_le_bytes())
                .update(&[a.input as u8, a.output as u8]);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_kernels;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_delimiting_prevents_concatenation_collisions() {
        let mut a = Hasher64::new();
        a.field_str("ab").field_str("c");
        let mut b = Hasher64::new();
        b.field_str("a").field_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn kernel_digests_are_stable_and_distinct() {
        let all = all_kernels();
        for k in all {
            assert_eq!(k.content_digest(), k.content_digest());
        }
        let mut digests: Vec<u64> = all.iter().map(|k| k.content_digest()).collect();
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), all.len(), "digest collision in the suite");
    }

    #[test]
    fn digest_tracks_source_edits() {
        let gemm = crate::kernel("gemm").unwrap();
        let mut edited = *gemm;
        edited.mlir = "func.func @gemm() { func.return }";
        assert_ne!(gemm.content_digest(), edited.content_digest());
    }

    #[test]
    fn hex_form_is_16_digits() {
        let mut h = Hasher64::new();
        h.field_str("x");
        assert_eq!(h.finish_hex().len(), 16);
        assert_eq!(h.finish_hex(), format!("{:016x}", h.finish()));
    }
}
