//! Kernel definitions: MLIR sources and argument specifications.

use crate::reference;

/// One kernel argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArgSpec {
    /// Argument name (matches the MLIR parameter).
    pub name: &'static str,
    /// Flat element count.
    pub len: usize,
    /// Read by the kernel (gets generated data).
    pub input: bool,
    /// Written by the kernel (checked by co-simulation).
    pub output: bool,
}

const fn input(name: &'static str, len: usize) -> ArgSpec {
    ArgSpec {
        name,
        len,
        input: true,
        output: false,
    }
}

const fn output(name: &'static str, len: usize) -> ArgSpec {
    ArgSpec {
        name,
        len,
        input: false,
        output: true,
    }
}

const fn inout(name: &'static str, len: usize) -> ArgSpec {
    ArgSpec {
        name,
        len,
        input: true,
        output: true,
    }
}

/// One benchmark kernel.
#[derive(Clone, Copy)]
pub struct Kernel {
    /// Kernel (and top function) name.
    pub name: &'static str,
    /// What it computes.
    pub description: &'static str,
    /// Affine-dialect MLIR source.
    pub mlir: &'static str,
    /// Argument specs, in signature order.
    pub args: &'static [ArgSpec],
    /// Reference implementation over flat `f32` buffers.
    pub reference: fn(&mut [Vec<f32>]),
}

/// Matrix dimension shared by the linear-algebra kernels.
pub const N: usize = 16;

const GEMM: Kernel = Kernel {
    name: "gemm",
    description: "dense matrix multiply C = A x B",
    mlir: r#"
func.func @gemm(%A: memref<16x16xf32>, %B: memref<16x16xf32>, %C: memref<16x16xf32>) attributes {hls.top} {
  affine.for %i = 0 to 16 {
    affine.for %j = 0 to 16 {
      %zero = arith.constant 0.0 : f32
      affine.store %zero, %C[%i, %j] : memref<16x16xf32>
      affine.for %k = 0 to 16 {
        %a = affine.load %A[%i, %k] : memref<16x16xf32>
        %b = affine.load %B[%k, %j] : memref<16x16xf32>
        %c = affine.load %C[%i, %j] : memref<16x16xf32>
        %p = arith.mulf %a, %b : f32
        %s = arith.addf %c, %p : f32
        affine.store %s, %C[%i, %j] : memref<16x16xf32>
      }
    }
  }
  func.return
}
"#,
    args: &[input("A", N * N), input("B", N * N), output("C", N * N)],
    reference: reference::gemm,
};

const BICG: Kernel = Kernel {
    name: "bicg",
    description: "BiCG sub-kernels: s = A^T r, q = A p",
    mlir: r#"
func.func @bicg(%A: memref<16x16xf32>, %p: memref<16xf32>, %r: memref<16xf32>, %s: memref<16xf32>, %q: memref<16xf32>) attributes {hls.top} {
  affine.for %j = 0 to 16 {
    %zero = arith.constant 0.0 : f32
    affine.store %zero, %s[%j] : memref<16xf32>
  }
  affine.for %i = 0 to 16 {
    %zero = arith.constant 0.0 : f32
    affine.store %zero, %q[%i] : memref<16xf32>
    affine.for %j = 0 to 16 {
      %a = affine.load %A[%i, %j] : memref<16x16xf32>
      %rv = affine.load %r[%i] : memref<16xf32>
      %sv = affine.load %s[%j] : memref<16xf32>
      %t1 = arith.mulf %rv, %a : f32
      %s2 = arith.addf %sv, %t1 : f32
      affine.store %s2, %s[%j] : memref<16xf32>
      %pv = affine.load %p[%j] : memref<16xf32>
      %qv = affine.load %q[%i] : memref<16xf32>
      %t2 = arith.mulf %a, %pv : f32
      %q2 = arith.addf %qv, %t2 : f32
      affine.store %q2, %q[%i] : memref<16xf32>
    }
  }
  func.return
}
"#,
    args: &[
        input("A", N * N),
        input("p", N),
        input("r", N),
        output("s", N),
        output("q", N),
    ],
    reference: reference::bicg,
};

const ATAX: Kernel = Kernel {
    name: "atax",
    description: "y = A^T (A x) with an on-chip temporary",
    mlir: r#"
func.func @atax(%A: memref<16x16xf32>, %x: memref<16xf32>, %y: memref<16xf32>) attributes {hls.top} {
  %tmp = memref.alloca() : memref<16xf32>
  affine.for %i = 0 to 16 {
    %zero = arith.constant 0.0 : f32
    affine.store %zero, %tmp[%i] : memref<16xf32>
    affine.for %j = 0 to 16 {
      %a = affine.load %A[%i, %j] : memref<16x16xf32>
      %xv = affine.load %x[%j] : memref<16xf32>
      %tv = affine.load %tmp[%i] : memref<16xf32>
      %m = arith.mulf %a, %xv : f32
      %s = arith.addf %tv, %m : f32
      affine.store %s, %tmp[%i] : memref<16xf32>
    }
  }
  affine.for %j = 0 to 16 {
    %zero = arith.constant 0.0 : f32
    affine.store %zero, %y[%j] : memref<16xf32>
  }
  affine.for %i = 0 to 16 {
    affine.for %j = 0 to 16 {
      %a = affine.load %A[%i, %j] : memref<16x16xf32>
      %tv = affine.load %tmp[%i] : memref<16xf32>
      %yv = affine.load %y[%j] : memref<16xf32>
      %m = arith.mulf %a, %tv : f32
      %s = arith.addf %yv, %m : f32
      affine.store %s, %y[%j] : memref<16xf32>
    }
  }
  func.return
}
"#,
    args: &[input("A", N * N), input("x", N), output("y", N)],
    reference: reference::atax,
};

const GESUMMV: Kernel = Kernel {
    name: "gesummv",
    description: "y = alpha A x + beta B x",
    mlir: r#"
func.func @gesummv(%A: memref<16x16xf32>, %B: memref<16x16xf32>, %x: memref<16xf32>, %y: memref<16xf32>) attributes {hls.top} {
  %acc_a = memref.alloca() : memref<1xf32>
  %acc_b = memref.alloca() : memref<1xf32>
  affine.for %i = 0 to 16 {
    %zero = arith.constant 0.0 : f32
    %c0 = arith.constant 0 : index
    memref.store %zero, %acc_a[%c0] : memref<1xf32>
    memref.store %zero, %acc_b[%c0] : memref<1xf32>
    affine.for %j = 0 to 16 {
      %a = affine.load %A[%i, %j] : memref<16x16xf32>
      %b = affine.load %B[%i, %j] : memref<16x16xf32>
      %xv = affine.load %x[%j] : memref<16xf32>
      %ta = affine.load %acc_a[0] : memref<1xf32>
      %tb = affine.load %acc_b[0] : memref<1xf32>
      %ma = arith.mulf %a, %xv : f32
      %mb = arith.mulf %b, %xv : f32
      %sa = arith.addf %ta, %ma : f32
      %sb = arith.addf %tb, %mb : f32
      affine.store %sa, %acc_a[0] : memref<1xf32>
      affine.store %sb, %acc_b[0] : memref<1xf32>
    }
    %alpha = arith.constant 1.5 : f32
    %beta = arith.constant 2.5 : f32
    %fa = affine.load %acc_a[0] : memref<1xf32>
    %fb = affine.load %acc_b[0] : memref<1xf32>
    %wa = arith.mulf %alpha, %fa : f32
    %wb = arith.mulf %beta, %fb : f32
    %yv = arith.addf %wa, %wb : f32
    affine.store %yv, %y[%i] : memref<16xf32>
  }
  func.return
}
"#,
    args: &[
        input("A", N * N),
        input("B", N * N),
        input("x", N),
        output("y", N),
    ],
    reference: reference::gesummv,
};

const MVT: Kernel = Kernel {
    name: "mvt",
    description: "x1 += A y1 ; x2 += A^T y2",
    mlir: r#"
func.func @mvt(%A: memref<16x16xf32>, %x1: memref<16xf32>, %x2: memref<16xf32>, %y1: memref<16xf32>, %y2: memref<16xf32>) attributes {hls.top} {
  affine.for %i = 0 to 16 {
    affine.for %j = 0 to 16 {
      %a = affine.load %A[%i, %j] : memref<16x16xf32>
      %yv = affine.load %y1[%j] : memref<16xf32>
      %xv = affine.load %x1[%i] : memref<16xf32>
      %m = arith.mulf %a, %yv : f32
      %s = arith.addf %xv, %m : f32
      affine.store %s, %x1[%i] : memref<16xf32>
    }
  }
  affine.for %i = 0 to 16 {
    affine.for %j = 0 to 16 {
      %a = affine.load %A[%j, %i] : memref<16x16xf32>
      %yv = affine.load %y2[%j] : memref<16xf32>
      %xv = affine.load %x2[%i] : memref<16xf32>
      %m = arith.mulf %a, %yv : f32
      %s = arith.addf %xv, %m : f32
      affine.store %s, %x2[%i] : memref<16xf32>
    }
  }
  func.return
}
"#,
    args: &[
        input("A", N * N),
        inout("x1", N),
        inout("x2", N),
        input("y1", N),
        input("y2", N),
    ],
    reference: reference::mvt,
};

const TWO_MM: Kernel = Kernel {
    name: "two_mm",
    description: "D = (A x B) x C with a heap temporary (exercises malloc demotion)",
    mlir: r#"
func.func @two_mm(%A: memref<16x16xf32>, %B: memref<16x16xf32>, %C: memref<16x16xf32>, %D: memref<16x16xf32>) attributes {hls.top} {
  %tmp = memref.alloc() : memref<16x16xf32>
  affine.for %i = 0 to 16 {
    affine.for %j = 0 to 16 {
      %zero = arith.constant 0.0 : f32
      affine.store %zero, %tmp[%i, %j] : memref<16x16xf32>
      affine.for %k = 0 to 16 {
        %a = affine.load %A[%i, %k] : memref<16x16xf32>
        %b = affine.load %B[%k, %j] : memref<16x16xf32>
        %t = affine.load %tmp[%i, %j] : memref<16x16xf32>
        %m = arith.mulf %a, %b : f32
        %s = arith.addf %t, %m : f32
        affine.store %s, %tmp[%i, %j] : memref<16x16xf32>
      }
    }
  }
  affine.for %i = 0 to 16 {
    affine.for %j = 0 to 16 {
      %zero = arith.constant 0.0 : f32
      affine.store %zero, %D[%i, %j] : memref<16x16xf32>
      affine.for %k = 0 to 16 {
        %t = affine.load %tmp[%i, %k] : memref<16x16xf32>
        %c = affine.load %C[%k, %j] : memref<16x16xf32>
        %d = affine.load %D[%i, %j] : memref<16x16xf32>
        %m = arith.mulf %t, %c : f32
        %s = arith.addf %d, %m : f32
        affine.store %s, %D[%i, %j] : memref<16x16xf32>
      }
    }
  }
  memref.dealloc %tmp : memref<16x16xf32>
  func.return
}
"#,
    args: &[
        input("A", N * N),
        input("B", N * N),
        input("C", N * N),
        output("D", N * N),
    ],
    reference: reference::two_mm,
};

const FIR: Kernel = Kernel {
    name: "fir",
    description: "8-tap FIR filter over a 64-sample window",
    mlir: r#"
func.func @fir(%x: memref<72xf32>, %h: memref<8xf32>, %y: memref<64xf32>) attributes {hls.top} {
  affine.for %n = 0 to 64 {
    %zero = arith.constant 0.0 : f32
    affine.store %zero, %y[%n] : memref<64xf32>
    affine.for %k = 0 to 8 {
      %hv = affine.load %h[%k] : memref<8xf32>
      %xv = affine.load %x[%n + %k] : memref<72xf32>
      %yv = affine.load %y[%n] : memref<64xf32>
      %m = arith.mulf %hv, %xv : f32
      %s = arith.addf %yv, %m : f32
      affine.store %s, %y[%n] : memref<64xf32>
    }
  }
  func.return
}
"#,
    args: &[input("x", 72), input("h", 8), output("y", 64)],
    reference: reference::fir,
};

const CONV2D: Kernel = Kernel {
    name: "conv2d",
    description: "3x3 convolution over a 16x16 image (valid padding)",
    mlir: r#"
func.func @conv2d(%in: memref<16x16xf32>, %k: memref<3x3xf32>, %out: memref<14x14xf32>) attributes {hls.top} {
  affine.for %i = 0 to 14 {
    affine.for %j = 0 to 14 {
      %zero = arith.constant 0.0 : f32
      affine.store %zero, %out[%i, %j] : memref<14x14xf32>
      affine.for %di = 0 to 3 {
        affine.for %dj = 0 to 3 {
          %iv = affine.load %in[%i + %di, %j + %dj] : memref<16x16xf32>
          %kv = affine.load %k[%di, %dj] : memref<3x3xf32>
          %ov = affine.load %out[%i, %j] : memref<14x14xf32>
          %m = arith.mulf %iv, %kv : f32
          %s = arith.addf %ov, %m : f32
          affine.store %s, %out[%i, %j] : memref<14x14xf32>
        }
      }
    }
  }
  func.return
}
"#,
    args: &[input("in", 16 * 16), input("k", 9), output("out", 14 * 14)],
    reference: reference::conv2d,
};

const JACOBI2D: Kernel = Kernel {
    name: "jacobi2d",
    description: "one out-of-place Jacobi 5-point sweep on a 16x16 grid",
    mlir: r#"
func.func @jacobi2d(%A: memref<16x16xf32>, %B: memref<16x16xf32>) attributes {hls.top} {
  affine.for %i = 1 to 15 {
    affine.for %j = 1 to 15 {
      %c = affine.load %A[%i, %j] : memref<16x16xf32>
      %l = affine.load %A[%i, %j - 1] : memref<16x16xf32>
      %r = affine.load %A[%i, %j + 1] : memref<16x16xf32>
      %u = affine.load %A[%i - 1, %j] : memref<16x16xf32>
      %d = affine.load %A[%i + 1, %j] : memref<16x16xf32>
      %s1 = arith.addf %c, %l : f32
      %s2 = arith.addf %s1, %r : f32
      %s3 = arith.addf %s2, %u : f32
      %s4 = arith.addf %s3, %d : f32
      %fifth = arith.constant 0.2 : f32
      %avg = arith.mulf %s4, %fifth : f32
      affine.store %avg, %B[%i, %j] : memref<16x16xf32>
    }
  }
  func.return
}
"#,
    args: &[input("A", N * N), output("B", N * N)],
    reference: reference::jacobi2d,
};

const SEIDEL2D: Kernel = Kernel {
    name: "seidel2d",
    description: "one in-place Gauss-Seidel sweep (loop-carried dependences)",
    mlir: r#"
func.func @seidel2d(%A: memref<16x16xf32>) attributes {hls.top} {
  affine.for %i = 1 to 15 {
    affine.for %j = 1 to 15 {
      %c = affine.load %A[%i, %j] : memref<16x16xf32>
      %l = affine.load %A[%i, %j - 1] : memref<16x16xf32>
      %r = affine.load %A[%i, %j + 1] : memref<16x16xf32>
      %u = affine.load %A[%i - 1, %j] : memref<16x16xf32>
      %d = affine.load %A[%i + 1, %j] : memref<16x16xf32>
      %s1 = arith.addf %c, %l : f32
      %s2 = arith.addf %s1, %r : f32
      %s3 = arith.addf %s2, %u : f32
      %s4 = arith.addf %s3, %d : f32
      %fifth = arith.constant 0.2 : f32
      %avg = arith.mulf %s4, %fifth : f32
      affine.store %avg, %A[%i, %j] : memref<16x16xf32>
    }
  }
  func.return
}
"#,
    args: &[inout("A", N * N)],
    reference: reference::seidel2d,
};

static ALL: &[Kernel] = &[
    GEMM, BICG, ATAX, GESUMMV, MVT, TWO_MM, FIR, CONV2D, JACOBI2D, SEIDEL2D,
];

/// The full suite.
pub fn all_kernels() -> &'static [Kernel] {
    ALL
}

/// Lookup by name.
pub fn kernel(name: &str) -> Option<&'static Kernel> {
    ALL.iter().find(|k| k.name == name)
}
