//! Deterministic input generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::Kernel;

/// Generate argument buffers for a kernel: inputs get seeded pseudo-random
/// values quantized to multiples of 1/32 (keeping small dot products exactly
/// representable in `f32`), pure outputs are zeroed.
pub fn gen_inputs(k: &Kernel, seed: u64) -> Vec<Vec<f32>> {
    // Mix the kernel name into the seed so different kernels get different
    // data even at the same seed.
    let mixed = k
        .name
        .bytes()
        .fold(seed, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
    let mut rng = StdRng::seed_from_u64(mixed);
    k.args
        .iter()
        .map(|spec| {
            if spec.input {
                (0..spec.len)
                    .map(|_| (rng.gen_range(-32i32..=32) as f32) / 32.0)
                    .collect()
            } else {
                vec![0.0; spec.len]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::kernel;

    #[test]
    fn deterministic_per_seed() {
        let k = kernel("gemm").unwrap();
        assert_eq!(gen_inputs(k, 42), gen_inputs(k, 42));
        assert_ne!(gen_inputs(k, 42), gen_inputs(k, 43));
    }

    #[test]
    fn different_kernels_get_different_data() {
        let g = kernel("gemm").unwrap();
        let b = kernel("bicg").unwrap();
        assert_ne!(gen_inputs(g, 1)[0], gen_inputs(b, 1)[0]);
    }

    #[test]
    fn outputs_are_zeroed_inputs_are_bounded() {
        let k = kernel("gemm").unwrap();
        let args = gen_inputs(k, 5);
        assert!(args[2].iter().all(|v| *v == 0.0));
        assert!(args[0].iter().all(|v| (-1.0..=1.0).contains(v)));
        assert!(args[0].iter().any(|v| *v != 0.0));
    }

    #[test]
    fn values_are_quantized() {
        let k = kernel("fir").unwrap();
        for v in &gen_inputs(k, 9)[0] {
            assert_eq!((v * 32.0).fract(), 0.0);
        }
    }
}
