//! Reference implementations — the co-simulation ground truth.
//!
//! Each function receives the flat `f32` buffers in signature order and
//! computes outputs **in the same operation order** as the MLIR source, so
//! results match the IR flows bit-for-bit.
//!
//! Index-style loops are intentional here: they mirror the kernels'
//! MLIR subscripts one-for-one.
#![allow(clippy::needless_range_loop)]

use crate::suite::N;

/// `C = A x B`.
pub fn gemm(args: &mut [Vec<f32>]) {
    let (a, b) = (args[0].clone(), args[1].clone());
    let c = &mut args[2];
    for i in 0..N {
        for j in 0..N {
            c[i * N + j] = 0.0;
            for k in 0..N {
                c[i * N + j] += a[i * N + k] * b[k * N + j];
            }
        }
    }
}

/// `s = A^T r`, `q = A p`.
pub fn bicg(args: &mut [Vec<f32>]) {
    let (a, p, r) = (args[0].clone(), args[1].clone(), args[2].clone());
    for j in 0..N {
        args[3][j] = 0.0;
    }
    for i in 0..N {
        args[4][i] = 0.0;
        for j in 0..N {
            args[3][j] += r[i] * a[i * N + j];
            args[4][i] += a[i * N + j] * p[j];
        }
    }
}

/// `y = A^T (A x)`.
pub fn atax(args: &mut [Vec<f32>]) {
    let (a, x) = (args[0].clone(), args[1].clone());
    let mut tmp = [0.0f32; N];
    for i in 0..N {
        tmp[i] = 0.0;
        for j in 0..N {
            tmp[i] += a[i * N + j] * x[j];
        }
    }
    for j in 0..N {
        args[2][j] = 0.0;
    }
    for i in 0..N {
        for j in 0..N {
            args[2][j] += a[i * N + j] * tmp[i];
        }
    }
}

/// `y = 1.5 A x + 2.5 B x`.
pub fn gesummv(args: &mut [Vec<f32>]) {
    let (a, b, x) = (args[0].clone(), args[1].clone(), args[2].clone());
    for i in 0..N {
        let mut acc_a = 0.0f32;
        let mut acc_b = 0.0f32;
        for j in 0..N {
            acc_a += a[i * N + j] * x[j];
            acc_b += b[i * N + j] * x[j];
        }
        args[3][i] = 1.5f32 * acc_a + 2.5f32 * acc_b;
    }
}

/// `x1 += A y1 ; x2 += A^T y2`.
pub fn mvt(args: &mut [Vec<f32>]) {
    let a = args[0].clone();
    let y1 = args[3].clone();
    let y2 = args[4].clone();
    for i in 0..N {
        for j in 0..N {
            args[1][i] += a[i * N + j] * y1[j];
        }
    }
    for i in 0..N {
        for j in 0..N {
            args[2][i] += a[j * N + i] * y2[j];
        }
    }
}

/// `D = (A x B) x C`.
pub fn two_mm(args: &mut [Vec<f32>]) {
    let (a, b, c) = (args[0].clone(), args[1].clone(), args[2].clone());
    let mut tmp = vec![0.0f32; N * N];
    for i in 0..N {
        for j in 0..N {
            tmp[i * N + j] = 0.0;
            for k in 0..N {
                tmp[i * N + j] += a[i * N + k] * b[k * N + j];
            }
        }
    }
    for i in 0..N {
        for j in 0..N {
            args[3][i * N + j] = 0.0;
            for k in 0..N {
                args[3][i * N + j] += tmp[i * N + k] * c[k * N + j];
            }
        }
    }
}

/// 8-tap FIR over 64 outputs.
pub fn fir(args: &mut [Vec<f32>]) {
    let (x, h) = (args[0].clone(), args[1].clone());
    for n in 0..64 {
        args[2][n] = 0.0;
        for k in 0..8 {
            args[2][n] += h[k] * x[n + k];
        }
    }
}

/// 3x3 valid convolution over 16x16.
pub fn conv2d(args: &mut [Vec<f32>]) {
    let (input, k) = (args[0].clone(), args[1].clone());
    for i in 0..14 {
        for j in 0..14 {
            args[2][i * 14 + j] = 0.0;
            for di in 0..3 {
                for dj in 0..3 {
                    args[2][i * 14 + j] += input[(i + di) * 16 + (j + dj)] * k[di * 3 + dj];
                }
            }
        }
    }
}

/// One Jacobi sweep `B = avg5(A)` on the interior.
pub fn jacobi2d(args: &mut [Vec<f32>]) {
    let a = args[0].clone();
    for i in 1..N - 1 {
        for j in 1..N - 1 {
            let s = a[i * N + j]
                + a[i * N + (j - 1)]
                + a[i * N + (j + 1)]
                + a[(i - 1) * N + j]
                + a[(i + 1) * N + j];
            args[1][i * N + j] = s * 0.2f32;
        }
    }
}

/// One in-place Gauss-Seidel sweep on the interior.
pub fn seidel2d(args: &mut [Vec<f32>]) {
    let a = &mut args[0];
    for i in 1..N - 1 {
        for j in 1..N - 1 {
            let s = a[i * N + j]
                + a[i * N + (j - 1)]
                + a[i * N + (j + 1)]
                + a[(i - 1) * N + j]
                + a[(i + 1) * N + j];
            a[i * N + j] = s * 0.2f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_identity() {
        // A = I -> C = B.
        let mut args = vec![vec![0.0; N * N], vec![0.0; N * N], vec![0.0; N * N]];
        for i in 0..N {
            args[0][i * N + i] = 1.0;
        }
        for (i, v) in args[1].iter_mut().enumerate() {
            *v = i as f32;
        }
        let expect = args[1].clone();
        gemm(&mut args);
        assert_eq!(args[2], expect);
    }

    #[test]
    fn fir_impulse_response() {
        // x = delta at 0 -> y[0..8] = h reversed? No: y[n] = sum h[k]x[n+k],
        // delta at position 3 -> y[n] = h[3-n] for n <= 3.
        let mut args = vec![
            vec![0.0; 72],
            (0..8).map(|i| i as f32).collect(),
            vec![0.0; 64],
        ];
        args[0][3] = 1.0;
        fir(&mut args);
        assert_eq!(args[2][0], 3.0); // h[3]
        assert_eq!(args[2][3], 0.0); // h[0]
        assert_eq!(args[2][1], 2.0);
        assert_eq!(args[2][10], 0.0);
    }

    #[test]
    fn conv2d_identity_kernel() {
        let mut args = vec![
            (0..256).map(|i| i as f32).collect::<Vec<f32>>(),
            vec![0.0; 9],
            vec![0.0; 196],
        ];
        args[1][4] = 1.0; // center tap
        conv2d(&mut args);
        // out[i][j] = in[i+1][j+1].
        assert_eq!(args[2][0], args[0][17]);
        assert_eq!(args[2][13 * 14 + 13], args[0][14 * 16 + 14]);
    }

    #[test]
    fn jacobi_vs_seidel_differ_inplace() {
        let base: Vec<f32> = (0..256).map(|i| ((i % 7) as f32) - 3.0).collect();
        let mut jac = vec![base.clone(), vec![0.0; 256]];
        jacobi2d(&mut jac);
        let mut sei = vec![base.clone()];
        seidel2d(&mut sei);
        // Same stencil, but Seidel reads freshly-written neighbours, so the
        // two results must differ somewhere in the interior.
        let differs = (1..15).any(|i| (1..15).any(|j| jac[1][i * 16 + j] != sei[0][i * 16 + j]));
        assert!(differs);
        // First interior point is identical (no updated neighbours yet).
        assert_eq!(jac[1][17], sei[0][17]);
    }

    #[test]
    fn mvt_accumulates_into_x() {
        let mut args = vec![
            vec![1.0; N * N],
            vec![10.0; N],
            vec![20.0; N],
            vec![1.0; N],
            vec![2.0; N],
        ];
        mvt(&mut args);
        assert_eq!(args[1], vec![10.0 + 16.0; N]);
        assert_eq!(args[2], vec![20.0 + 32.0; N]);
    }

    #[test]
    fn gesummv_combines_both_products() {
        let mut args = vec![
            vec![0.0; N * N],
            vec![0.0; N * N],
            vec![1.0; N],
            vec![0.0; N],
        ];
        for i in 0..N {
            args[0][i * N + i] = 2.0; // A = 2I
            args[1][i * N + i] = 4.0; // B = 4I
        }
        gesummv(&mut args);
        // y = 1.5*2 + 2.5*4 = 13.
        assert_eq!(args[3], vec![13.0; N]);
    }

    #[test]
    fn two_mm_matches_composed_gemm() {
        let a: Vec<f32> = (0..256).map(|i| ((i % 5) as f32) - 2.0).collect();
        let b: Vec<f32> = (0..256).map(|i| (i % 3) as f32).collect();
        let c: Vec<f32> = (0..256).map(|i| ((i % 7) as f32) - 3.0).collect();
        let mut args2mm = vec![a.clone(), b.clone(), c.clone(), vec![0.0; 256]];
        two_mm(&mut args2mm);
        let mut g1 = vec![a, b, vec![0.0; 256]];
        gemm(&mut g1);
        let mut g2 = vec![g1[2].clone(), c, vec![0.0; 256]];
        gemm(&mut g2);
        assert_eq!(args2mm[3], g2[2]);
    }
}
