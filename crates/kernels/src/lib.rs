//! `kernels` — the benchmark suite.
//!
//! Ten PolyBench-style kernels of the kind MLIR-HLS papers evaluate on,
//! authored as affine-dialect MLIR sources, each paired with a reference
//! Rust implementation (the co-simulation ground truth) and a seeded input
//! generator. Problem sizes are chosen so a full co-simulation of every
//! kernel through both flows stays interactive.

pub mod data;
pub mod digest;
pub mod reference;
pub mod suite;

pub use data::gen_inputs;
pub use digest::{fnv1a64, Hasher64};
pub use suite::{all_kernels, kernel, ArgSpec, Kernel};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_kernels() {
        assert_eq!(all_kernels().len(), 10);
    }

    #[test]
    fn every_source_parses_and_verifies() {
        for k in all_kernels() {
            let m = mlir_lite::parser::parse_module(k.name, k.mlir)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            mlir_lite::verifier::verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            let f = m
                .func(k.name)
                .unwrap_or_else(|| panic!("{}: missing top", k.name));
            assert_eq!(
                f.regions[0].entry().arg_types.len(),
                k.args.len(),
                "{}: arg count mismatch",
                k.name
            );
        }
    }

    #[test]
    fn kernel_lookup() {
        assert!(kernel("gemm").is_some());
        assert!(kernel("nonexistent").is_none());
    }

    #[test]
    fn arg_lengths_match_memref_shapes() {
        for k in all_kernels() {
            let m = mlir_lite::parser::parse_module(k.name, k.mlir).unwrap();
            let f = m.func(k.name).unwrap();
            for (spec, ty) in k.args.iter().zip(&f.regions[0].entry().arg_types) {
                let len = ty.memref_len().unwrap_or(1);
                assert_eq!(
                    len as usize, spec.len,
                    "{}: arg {} length mismatch",
                    k.name, spec.name
                );
            }
        }
    }

    #[test]
    fn references_touch_only_outputs() {
        for k in all_kernels() {
            let mut args = gen_inputs(k, 1);
            let before: Vec<Vec<f32>> = args.clone();
            (k.reference)(&mut args);
            for (i, spec) in k.args.iter().enumerate() {
                if !spec.output {
                    assert_eq!(
                        args[i], before[i],
                        "{}: reference mutated input {}",
                        k.name, spec.name
                    );
                }
            }
        }
    }

    #[test]
    fn references_are_deterministic_and_nontrivial() {
        for k in all_kernels() {
            let mut a1 = gen_inputs(k, 7);
            let mut a2 = gen_inputs(k, 7);
            (k.reference)(&mut a1);
            (k.reference)(&mut a2);
            assert_eq!(a1, a2, "{}: reference not deterministic", k.name);
            // At least one output should be nonzero for random inputs.
            let nonzero = k
                .args
                .iter()
                .enumerate()
                .filter(|(_, s)| s.output)
                .any(|(i, _)| a1[i].iter().any(|v| *v != 0.0));
            assert!(nonzero, "{}: reference produced all-zero outputs", k.name);
        }
    }
}
