//! `affine` → `scf` lowering.
//!
//! * `affine.for` becomes `scf.for` with materialized `arith.constant`
//!   bounds; the body block is moved wholesale so induction-variable
//!   references stay valid.
//! * `affine.load`/`affine.store` expand their subscript maps into `arith`
//!   index computations feeding `memref.load`/`memref.store`.
//! * `affine.apply` expands the same way.
//!
//! HLS directive attributes on loops are carried over verbatim. This is the
//! stage where affine maps — the structured detail the paper wants to keep —
//! are erased into plain arithmetic; everything downstream sees only what
//! survives here.

use mlir_lite::affine::AffineExpr;
use mlir_lite::dialects::{arith, scf};
use mlir_lite::ir::{MValue, MlirModule, Op};
use mlir_lite::Attr;

use crate::Result;

/// Lower all affine ops in the module.
pub fn run(m: &mut MlirModule) -> Result<()> {
    for f in &mut m.ops {
        lower_in_op(f)?;
    }
    Ok(())
}

fn lower_in_op(op: &mut Op) -> Result<()> {
    for r in &mut op.regions {
        for b in &mut r.blocks {
            let mut out: Vec<Op> = Vec::new();
            for mut inner in std::mem::take(&mut b.ops) {
                lower_in_op(&mut inner)?;
                lower_one(inner, &mut out)?;
            }
            b.ops = out;
        }
    }
    Ok(())
}

fn lower_one(op: Op, out: &mut Vec<Op>) -> Result<()> {
    match op.name.as_str() {
        "affine.for" => {
            let lb = op.int_attr("lower_bound").unwrap_or(0);
            let ub = op.int_attr("upper_bound").unwrap_or(0);
            let step = op.int_attr("step").unwrap_or(1);
            let clb = arith::const_index(lb);
            let cub = arith::const_index(ub);
            let cstep = arith::const_index(step);
            let mut lowered = scf::for_loop(clb.result(0), cub.result(0), cstep.result(0));
            out.push(clb);
            out.push(cub);
            out.push(cstep);
            // Move the body region wholesale: block uid (and hence the IV
            // block-arg references) survive.
            let mut op = op;
            lowered.regions = std::mem::take(&mut op.regions);
            // Retarget the terminator.
            if let Some(last) = lowered.regions[0].entry_mut().ops.last_mut() {
                if last.name == "affine.yield" {
                    last.name = "scf.yield".into();
                }
            }
            // Carry HLS directives across.
            for (k, v) in &op.attrs {
                if k.starts_with("hls.") {
                    lowered.attrs.insert(k.clone(), v.clone());
                }
            }
            out.push(lowered);
        }
        "affine.load" => {
            let map = op
                .attrs
                .get("map")
                .and_then(Attr::as_map)
                .cloned()
                .ok_or_else(|| crate::Error::Transform("affine.load without map".into()))?;
            let dims: Vec<MValue> = op.operands[1..].to_vec();
            let indices = expand_map(&map, &dims, out);
            let mut replacement =
                mlir_lite::dialects::memref::load(op.operands[0].clone(), indices);
            replacement.uid = op.uid; // keep existing uses valid
            out.push(replacement);
        }
        "affine.store" => {
            let map = op
                .attrs
                .get("map")
                .and_then(Attr::as_map)
                .cloned()
                .ok_or_else(|| crate::Error::Transform("affine.store without map".into()))?;
            let dims: Vec<MValue> = op.operands[2..].to_vec();
            let indices = expand_map(&map, &dims, out);
            let mut replacement = mlir_lite::dialects::memref::store(
                op.operands[0].clone(),
                op.operands[1].clone(),
                indices,
            );
            replacement.uid = op.uid;
            out.push(replacement);
        }
        "affine.apply" => {
            let map = op
                .attrs
                .get("map")
                .and_then(Attr::as_map)
                .cloned()
                .ok_or_else(|| crate::Error::Transform("affine.apply without map".into()))?;
            let mut vals = expand_map(&map, &op.operands, out);
            let v = vals.pop().expect("single-result map");
            // Keep the op in place as a pass-through so existing uses (which
            // reference op.uid) resolve: rewrite into an addi with zero.
            let zero = arith::const_index(0);
            let mut passthrough = arith::addi(v, zero.result(0));
            passthrough.uid = op.uid;
            out.push(zero);
            out.push(passthrough);
        }
        _ => out.push(op),
    }
    Ok(())
}

/// Expand every map result into index arithmetic; returns one value per
/// result. Constant and bare-dim results reuse existing values where
/// possible.
fn expand_map(map: &mlir_lite::AffineMap, dims: &[MValue], out: &mut Vec<Op>) -> Vec<MValue> {
    map.results
        .iter()
        .map(|e| expand_expr(e, dims, out))
        .collect()
}

fn expand_expr(e: &AffineExpr, dims: &[MValue], out: &mut Vec<Op>) -> MValue {
    match e {
        AffineExpr::Dim(i) => dims[*i as usize].clone(),
        AffineExpr::Sym(_) => {
            // Symbols are not used by the kernel subset; materialize zero so
            // failures are visible rather than silent.
            let c = arith::const_index(0);
            let v = c.result(0);
            out.push(c);
            v
        }
        AffineExpr::Const(v) => {
            let c = arith::const_index(*v);
            let val = c.result(0);
            out.push(c);
            val
        }
        AffineExpr::Add(a, b) => {
            let av = expand_expr(a, dims, out);
            let bv = expand_expr(b, dims, out);
            let op = arith::addi(av, bv);
            let v = op.result(0);
            out.push(op);
            v
        }
        AffineExpr::Mul(a, b) => {
            let av = expand_expr(a, dims, out);
            let bv = expand_expr(b, dims, out);
            let op = arith::muli(av, bv);
            let v = op.result(0);
            out.push(op);
            v
        }
        AffineExpr::Mod(a, m) => {
            let av = expand_expr(a, dims, out);
            let c = arith::const_index(*m);
            let cv = c.result(0);
            out.push(c);
            let op = arith::remsi(av, cv);
            let v = op.result(0);
            out.push(op);
            v
        }
        AffineExpr::FloorDiv(a, d) | AffineExpr::CeilDiv(a, d) => {
            // Loop bounds in this subset are non-negative, where signed
            // division matches floor division; ceildiv adds (d-1) first.
            let mut av = expand_expr(a, dims, out);
            if matches!(e, AffineExpr::CeilDiv(..)) {
                let c = arith::const_index(*d - 1);
                let cv = c.result(0);
                out.push(c);
                let add = arith::addi(av, cv);
                av = add.result(0);
                out.push(add);
            }
            let c = arith::const_index(*d);
            let cv = c.result(0);
            out.push(c);
            let op = arith::divsi(av, cv);
            let v = op.result(0);
            out.push(op);
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_lite::parser::parse_module;

    #[test]
    fn loops_become_scf() {
        let src = r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %m[%i] : memref<4xf32>
    affine.store %v, %m[%i] : memref<4xf32>
  } {hls.pipeline_ii = 2 : i32}
  func.return
}
"#;
        let mut m = parse_module("f", src).unwrap();
        run(&mut m).unwrap();
        assert_eq!(m.count_ops(|o| o.name == "affine.for"), 0);
        assert_eq!(m.count_ops(|o| o.name == "scf.for"), 1);
        assert_eq!(m.count_ops(|o| o.name == "memref.load"), 1);
        assert_eq!(m.count_ops(|o| o.name == "affine.load"), 0);
        // Directive carried over.
        let mut ii = None;
        m.walk(&mut |o| {
            if o.name == "scf.for" {
                ii = mlir_lite::dialects::hls::pipeline_ii(o);
            }
        });
        assert_eq!(ii, Some(2));
    }

    #[test]
    fn subscript_arithmetic_is_materialized() {
        let src = r#"
func.func @f(%m: memref<16xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %m[2 * %i + 1] : memref<16xf32>
    affine.store %v, %m[%i] : memref<16xf32>
  }
  func.return
}
"#;
        let mut m = parse_module("f", src).unwrap();
        run(&mut m).unwrap();
        // 2*%i -> muli, +1 -> addi.
        assert!(m.count_ops(|o| o.name == "arith.muli") >= 1);
        assert!(m.count_ops(|o| o.name == "arith.addi") >= 1);
    }

    #[test]
    fn iv_references_survive_the_region_move() {
        let src = r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %m[%i] : memref<4xf32>
    affine.store %v, %m[%i] : memref<4xf32>
  }
  func.return
}
"#;
        let mut m = parse_module("f", src).unwrap();
        run(&mut m).unwrap();
        // The scf verifier checks operand visibility — a broken IV reference
        // would fail here.
        mlir_lite::verifier::verify_module(&m).unwrap();
    }

    #[test]
    fn apply_becomes_arith() {
        let src = r#"
func.func @f(%m: memref<16xf32>) {
  affine.for %i = 0 to 4 {
    %idx = affine.apply (3 * %i + 2)
    %v = memref.load %m[%idx] : memref<16xf32>
    affine.store %v, %m[%i] : memref<16xf32>
  }
  func.return
}
"#;
        let mut m = parse_module("f", src).unwrap();
        run(&mut m).unwrap();
        assert_eq!(m.count_ops(|o| o.name == "affine.apply"), 0);
        mlir_lite::verifier::verify_module(&m).unwrap();
    }
}
