//! Affine-level full loop unrolling.
//!
//! Loops tagged `hls.unroll_full` (by hand or by the
//! `UnrollSmallLoops` marking pass) are expanded in place: the body is
//! deep-cloned once per iteration with the induction variable replaced by a
//! constant `affine.apply`-free index constant. Expansion happens at the
//! affine level so subscript maps fold to constants before lowering.

use mlir_lite::attr::Attr;
use mlir_lite::dialects::{arith, hls};
use mlir_lite::ir::{MValueKind, MlirModule, Op};

use crate::Result;

/// Expand every `hls.unroll_full` loop in the module. Nested tagged loops
/// are expanded inner-first.
pub fn expand_full_unroll(m: &mut MlirModule) -> Result<()> {
    for f in &mut m.ops {
        expand_in_op(f)?;
    }
    strip_provenance(m);
    Ok(())
}

fn expand_in_op(op: &mut Op) -> Result<()> {
    for r in &mut op.regions {
        for b in &mut r.blocks {
            // Inner-first: recurse, then expand at this level.
            for inner in &mut b.ops {
                expand_in_op(inner)?;
            }
            let mut out: Vec<Op> = Vec::new();
            for inner in std::mem::take(&mut b.ops) {
                if inner.name == "affine.for"
                    && inner
                        .attrs
                        .get(hls::UNROLL_FULL)
                        .map(|a| a.as_int() == Some(1) || matches!(a, Attr::Unit))
                        .unwrap_or(false)
                {
                    expand_loop(inner, &mut out)?;
                } else {
                    out.push(inner);
                }
            }
            b.ops = out;
        }
    }
    Ok(())
}

fn expand_loop(mut l: Op, out: &mut Vec<Op>) -> Result<()> {
    let lb = l.int_attr("lower_bound").unwrap_or(0);
    let ub = l.int_attr("upper_bound").unwrap_or(0);
    let step = l.int_attr("step").unwrap_or(1).max(1);
    let body_block_uid = l.regions[0].entry().uid;
    let body_ops = std::mem::take(&mut l.regions[0].entry_mut().ops);
    let mut iv = lb;
    while iv < ub {
        // Per-iteration constant for the IV.
        let c = arith::const_index(iv);
        let c_val = c.result(0);
        out.push(c);
        for o in &body_ops {
            if o.name == "affine.yield" {
                continue;
            }
            let mut cloned = clone_with_uid_map(o, out);
            // Replace IV uses (body block arg 0) with the constant.
            cloned.walk_mut(&mut |inner| {
                for v in &mut inner.operands {
                    if v.kind
                        == (MValueKind::BlockArg {
                            block: body_block_uid,
                            idx: 0,
                        })
                    {
                        *v = c_val.clone();
                    }
                }
            });
            out.push(cloned);
        }
        iv += step;
    }
    Ok(())
}

/// Clone an op subtree with fresh uids, then fix references *between the
/// clones emitted this iteration*: deep_clone remaps internal references;
/// references to sibling ops cloned earlier in the same iteration are fixed
/// via the sibling map accumulated in `emitted`.
fn clone_with_uid_map(op: &Op, emitted: &[Op]) -> Op {
    // deep_clone handles intra-subtree references. Cross-sibling references
    // (op A's result used by op B at the same nesting level) must be
    // remapped too: we track original-uid -> latest-clone-uid via an
    // attribute-free sidecar — the `mha.orig_uid` attr set below.
    let mut cloned = op.deep_clone();
    // Record provenance on the top-level clone.
    cloned
        .attrs
        .insert("mha.orig_uid".into(), Attr::i64(op.uid as i64));
    // Remap operands that referenced earlier siblings (by original uid).
    let mut latest: std::collections::BTreeMap<i64, u32> = std::collections::BTreeMap::new();
    for e in emitted {
        if let Some(orig) = e.int_attr("mha.orig_uid") {
            latest.insert(orig, e.uid);
        }
    }
    cloned.walk_mut(&mut |inner| {
        for v in &mut inner.operands {
            if let MValueKind::OpResult { op: uid, idx } = v.kind {
                if let Some(&n) = latest.get(&(uid as i64)) {
                    v.kind = MValueKind::OpResult { op: n, idx };
                }
            }
        }
    });
    cloned
}

/// Strip the provenance attributes `clone_with_uid_map` leaves behind.
pub fn strip_provenance(m: &mut MlirModule) {
    for f in &mut m.ops {
        f.walk_mut(&mut |o| {
            o.attrs.remove("mha.orig_uid");
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_lite::parser::parse_module;

    #[test]
    fn expands_simple_loop() {
        let src = r#"
func.func @f(%m: memref<3xf32>) {
  affine.for %i = 0 to 3 {
    %v = affine.load %m[%i] : memref<3xf32>
    %w = arith.addf %v, %v : f32
    affine.store %w, %m[%i] : memref<3xf32>
  } {hls.unroll_full = true}
  func.return
}
"#;
        let mut m = parse_module("f", src).unwrap();
        expand_full_unroll(&mut m).unwrap();
        assert_eq!(m.count_ops(|o| o.name == "affine.for"), 0);
        assert_eq!(m.count_ops(|o| o.name == "affine.load"), 3);
        assert_eq!(m.count_ops(|o| o.name == "affine.store"), 3);
        assert_eq!(m.count_ops(|o| o.name == "arith.addf"), 3);
        mlir_lite::verifier::verify_module(&m).unwrap();
    }

    #[test]
    fn untagged_loops_are_untouched() {
        let src = r#"
func.func @f(%m: memref<3xf32>) {
  affine.for %i = 0 to 3 {
    %v = affine.load %m[%i] : memref<3xf32>
    affine.store %v, %m[%i] : memref<3xf32>
  }
  func.return
}
"#;
        let mut m = parse_module("f", src).unwrap();
        expand_full_unroll(&mut m).unwrap();
        assert_eq!(m.count_ops(|o| o.name == "affine.for"), 1);
    }

    #[test]
    fn sibling_references_are_remapped() {
        // %v feeds %w inside the same unrolled iteration; the clone of %w
        // must point at the clone of %v, not the original.
        let src = r#"
func.func @f(%m: memref<2xf32>) {
  affine.for %i = 0 to 2 {
    %v = affine.load %m[%i] : memref<2xf32>
    %w = arith.mulf %v, %v : f32
    affine.store %w, %m[%i] : memref<2xf32>
  } {hls.unroll_full = true}
  func.return
}
"#;
        let mut m = parse_module("f", src).unwrap();
        expand_full_unroll(&mut m).unwrap();
        // Verification catches dangling sibling references.
        mlir_lite::verifier::verify_module(&m).unwrap();
    }

    #[test]
    fn nested_tagged_loops_expand_completely() {
        let src = r#"
func.func @f(%m: memref<2x2xf32>) {
  affine.for %i = 0 to 2 {
    affine.for %j = 0 to 2 {
      %v = affine.load %m[%i, %j] : memref<2x2xf32>
      affine.store %v, %m[%i, %j] : memref<2x2xf32>
    } {hls.unroll_full = true}
  } {hls.unroll_full = true}
  func.return
}
"#;
        let mut m = parse_module("f", src).unwrap();
        expand_full_unroll(&mut m).unwrap();
        assert_eq!(m.count_ops(|o| o.name == "affine.for"), 0);
        assert_eq!(m.count_ops(|o| o.name == "affine.load"), 4);
        mlir_lite::verifier::verify_module(&m).unwrap();
    }

    #[test]
    fn step_respected_in_expansion() {
        let src = r#"
func.func @f(%m: memref<8xf32>) {
  affine.for %i = 0 to 8 step 3 {
    %v = affine.load %m[%i] : memref<8xf32>
    affine.store %v, %m[%i] : memref<8xf32>
  } {hls.unroll_full = true}
  func.return
}
"#;
        let mut m = parse_module("f", src).unwrap();
        expand_full_unroll(&mut m).unwrap();
        // Iterations at 0, 3, 6.
        assert_eq!(m.count_ops(|o| o.name == "affine.load"), 3);
    }
}
