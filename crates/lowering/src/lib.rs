//! Progressive lowering from MLIR down to LLVM IR.
//!
//! The pipeline mirrors upstream MLIR's staged conversion:
//!
//! ```text
//! affine dialect ──(affine→scf)──► scf ──(scf→cf)──► cf + arith + memref
//!                                        ──(translate)──► llvm-lite Module
//! ```
//!
//! Design notes relative to the paper:
//!
//! * HLS directive attributes (`hls.pipeline_ii`, `hls.unroll_factor`, …)
//!   ride on loop ops, are transferred to the loop *latch branch* by the
//!   scf→cf stage, and become `!llvm.loop` metadata during translation —
//!   exactly the channel the paper's adaptor relies on.
//! * The memref lowering uses the **bare-pointer convention** with
//!   linearized index arithmetic (what `--finalize-memref-to-llvm` emits).
//!   This deliberately produces the "raw" LLVM IR that commercial HLS
//!   front-ends reject — recovering structured arrays from it is the
//!   adaptor's job, not the lowering's.
//! * Each memref function parameter's static shape is recorded in a string
//!   parameter attribute (`mha.shape`), standing in for the signature
//!   information `mlir-translate` keeps in function metadata.

pub mod affine_to_scf;
pub mod scf_to_cf;
pub mod translate;
pub mod unroll;

use mlir_lite::MlirModule;

/// Lowering errors wrap the MLIR error type.
pub type Error = mlir_lite::Error;
/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Options controlling the lowering pipeline.
#[derive(Clone, Debug)]
pub struct LowerOptions {
    /// Expand `hls.unroll_full`-tagged loops at the affine level.
    pub expand_full_unroll: bool,
    /// Run the llvm-lite standard cleanup (mem2reg/fold/simplify/dce) on the
    /// translated module.
    pub cleanup: bool,
}

impl Default for LowerOptions {
    fn default() -> LowerOptions {
        LowerOptions {
            expand_full_unroll: true,
            cleanup: true,
        }
    }
}

/// Run the full pipeline: affine → scf → cf → llvm-lite.
///
/// The input module is consumed (lowering rewrites it stage by stage); the
/// output is a verified LLVM module.
pub fn lower_module(mut m: MlirModule, opts: &LowerOptions) -> Result<llvm_lite::Module> {
    mlir_lite::verifier::verify_module(&m)?;
    if opts.expand_full_unroll {
        unroll::expand_full_unroll(&mut m)?;
    }
    affine_to_scf::run(&mut m)?;
    scf_to_cf::run(&mut m)?;
    let mut out = translate::translate(&m)?;
    llvm_lite::verifier::verify_module(&out).map_err(|e| Error::Transform(e.to_string()))?;
    if opts.cleanup {
        llvm_lite::transforms::standard_cleanup()
            .run_to_fixpoint(&mut out, 4)
            .map_err(|e| Error::Transform(e.to_string()))?;
    }
    Ok(out)
}

/// Convenience: lower with defaults.
pub fn lower(m: MlirModule) -> Result<llvm_lite::Module> {
    lower_module(m, &LowerOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::interp::{Interpreter, RtVal};
    use mlir_lite::parser::parse_module;

    const GEMM: &str = r#"
func.func @gemm(%A: memref<4x4xf32>, %B: memref<4x4xf32>, %C: memref<4x4xf32>) attributes {hls.top} {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 4 {
      %zero = arith.constant 0.0 : f32
      affine.store %zero, %C[%i, %j] : memref<4x4xf32>
      affine.for %k = 0 to 4 {
        %a = affine.load %A[%i, %k] : memref<4x4xf32>
        %b = affine.load %B[%k, %j] : memref<4x4xf32>
        %c = affine.load %C[%i, %j] : memref<4x4xf32>
        %p = arith.mulf %a, %b : f32
        %s = arith.addf %c, %p : f32
        affine.store %s, %C[%i, %j] : memref<4x4xf32>
      } {hls.pipeline_ii = 1 : i32}
    }
  }
  func.return
}
"#;

    #[test]
    fn gemm_lowers_and_verifies() {
        let m = parse_module("gemm", GEMM).unwrap();
        let out = lower(m).unwrap();
        let f = out.function("gemm").unwrap();
        assert_eq!(f.params.len(), 3);
        assert!(f.attrs.contains_key("hls.top"));
        // Shape attributes recorded for the adaptor.
        assert_eq!(
            f.params[0].attrs.get("mha.shape").map(String::as_str),
            Some("4x4xf32")
        );
        // Pipeline directive became loop metadata.
        assert!(out.loop_mds.iter().any(|md| md.pipeline_ii == Some(1)));
    }

    #[test]
    fn gemm_computes_correct_product() {
        let m = parse_module("gemm", GEMM).unwrap();
        let out = lower(m).unwrap();
        let mut interp = Interpreter::new(&out);
        let a: Vec<f32> = (0..16).map(|x| x as f32).collect();
        let b: Vec<f32> = (0..16).map(|x| (x % 3) as f32).collect();
        let pa = interp.mem.alloc_f32(&a);
        let pb = interp.mem.alloc_f32(&b);
        let pc = interp.mem.alloc_f32(&[0.0; 16]);
        interp
            .call("gemm", &[RtVal::P(pa), RtVal::P(pb), RtVal::P(pc)])
            .unwrap();
        let c = interp.mem.read_f32(pc, 16).unwrap();
        // Reference.
        let mut expect = vec![0.0f32; 16];
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = 0.0f32;
                for k in 0..4 {
                    acc += a[i * 4 + k] * b[k * 4 + j];
                }
                expect[i * 4 + j] = acc;
            }
        }
        assert_eq!(c, expect);
    }

    #[test]
    fn stencil_with_offsets_computes_correctly() {
        let src = r#"
func.func @blur(%in: memref<8xf32>, %out: memref<8xf32>) {
  affine.for %i = 1 to 7 {
    %l = affine.load %in[%i - 1] : memref<8xf32>
    %c = affine.load %in[%i] : memref<8xf32>
    %r = affine.load %in[%i + 1] : memref<8xf32>
    %s1 = arith.addf %l, %c : f32
    %s2 = arith.addf %s1, %r : f32
    affine.store %s2, %out[%i] : memref<8xf32>
  }
  func.return
}
"#;
        let m = parse_module("blur", src).unwrap();
        let out = lower(m).unwrap();
        let mut interp = Interpreter::new(&out);
        let input: Vec<f32> = (0..8).map(|x| x as f32).collect();
        let pin = interp.mem.alloc_f32(&input);
        let pout = interp.mem.alloc_f32(&[0.0; 8]);
        interp
            .call("blur", &[RtVal::P(pin), RtVal::P(pout)])
            .unwrap();
        let got = interp.mem.read_f32(pout, 8).unwrap();
        for i in 1..7 {
            assert_eq!(got[i], input[i - 1] + input[i] + input[i + 1]);
        }
        assert_eq!(got[0], 0.0);
        assert_eq!(got[7], 0.0);
    }

    #[test]
    fn local_buffers_work() {
        let src = r#"
func.func @copy_via_buf(%in: memref<4xf32>, %out: memref<4xf32>) {
  %buf = memref.alloca() : memref<4xf32>
  affine.for %i = 0 to 4 {
    %v = affine.load %in[%i] : memref<4xf32>
    affine.store %v, %buf[%i] : memref<4xf32>
  }
  affine.for %i = 0 to 4 {
    %v = affine.load %buf[%i] : memref<4xf32>
    affine.store %v, %out[%i] : memref<4xf32>
  }
  func.return
}
"#;
        let m = parse_module("c", src).unwrap();
        let out = lower(m).unwrap();
        let mut interp = Interpreter::new(&out);
        let pin = interp.mem.alloc_f32(&[5.0, 6.0, 7.0, 8.0]);
        let pout = interp.mem.alloc_f32(&[0.0; 4]);
        interp
            .call("copy_via_buf", &[RtVal::P(pin), RtVal::P(pout)])
            .unwrap();
        assert_eq!(
            interp.mem.read_f32(pout, 4).unwrap(),
            vec![5.0, 6.0, 7.0, 8.0]
        );
    }

    #[test]
    fn full_unroll_removes_loop() {
        let src = r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %m[%i] : memref<4xf32>
    %w = arith.addf %v, %v : f32
    affine.store %w, %m[%i] : memref<4xf32>
  } {hls.unroll_full = true}
  func.return
}
"#;
        let m = parse_module("f", src).unwrap();
        let out = lower(m).unwrap();
        let f = out.function("f").unwrap();
        // No loop left: a single block, straight-line code.
        assert_eq!(f.block_order.len(), 1);
        assert_eq!(f.count_opcode(llvm_lite::Opcode::Load), 4);
        // Still computes doubling.
        let mut interp = Interpreter::new(&out);
        let p = interp.mem.alloc_f32(&[1.0, 2.0, 3.0, 4.0]);
        interp.call("f", &[RtVal::P(p)]).unwrap();
        assert_eq!(interp.mem.read_f32(p, 4).unwrap(), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn non_unit_step_loops() {
        let src = r#"
func.func @evens(%m: memref<8xf32>) {
  affine.for %i = 0 to 8 step 2 {
    %c = arith.constant 1.0 : f32
    affine.store %c, %m[%i] : memref<8xf32>
  }
  func.return
}
"#;
        let m = parse_module("e", src).unwrap();
        let out = lower(m).unwrap();
        let mut interp = Interpreter::new(&out);
        let p = interp.mem.alloc_f32(&[0.0; 8]);
        interp.call("evens", &[RtVal::P(p)]).unwrap();
        assert_eq!(
            interp.mem.read_f32(p, 8).unwrap(),
            vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]
        );
    }

    #[test]
    fn unroll_factor_survives_as_metadata() {
        let src = r#"
func.func @f(%m: memref<16xf32>) {
  affine.for %i = 0 to 16 {
    %v = affine.load %m[%i] : memref<16xf32>
    affine.store %v, %m[%i] : memref<16xf32>
  } {hls.unroll_factor = 4 : i32}
  func.return
}
"#;
        let m = parse_module("f", src).unwrap();
        let out = lower(m).unwrap();
        assert!(out.loop_mds.iter().any(|md| md.unroll_factor == Some(4)));
    }
}
