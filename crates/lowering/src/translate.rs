//! Translation from cf-level MLIR into the `llvm-lite` module format.
//!
//! This stage fuses MLIR's `convert-to-llvm` dialect conversion with
//! `mlir-translate`: block arguments become PHI nodes, memrefs become bare
//! pointers with linearized index arithmetic, `index` becomes `i64`, and
//! `hls.*` attributes on latch branches become `!llvm.loop` metadata.
//!
//! `memref.alloc` deliberately lowers to `@malloc`/`@free` calls (as the
//! real memref lowering does) — dynamic allocation is one of the constructs
//! Vitis HLS rejects, and demoting it is the adaptor's job.

use std::collections::HashMap;

use llvm_lite::{
    FloatPred, Function, Inst, InstData, IntPred, LoopMetadata, Module, Opcode, Type, Value,
};
use mlir_lite::attr::Attr;
use mlir_lite::ir::{MType, MValue, MValueKind, MlirModule, Op};

use crate::Result;

fn err(msg: impl Into<String>) -> crate::Error {
    crate::Error::Transform(msg.into())
}

/// Convert an MLIR type to an LLVM type. Memrefs become pointers to their
/// scalar element type (bare-pointer convention).
pub fn convert_type(t: &MType) -> Type {
    match t {
        MType::Index => Type::I64,
        MType::Int(w) => Type::Int(*w),
        MType::F32 => Type::Float,
        MType::F64 => Type::Double,
        MType::MemRef { elem, .. } => convert_type(elem).ptr_to(),
        MType::LlvmPtr(p) => convert_type(p).ptr_to(),
        MType::LlvmArray(n, e) => convert_type(e).array_of(*n),
        MType::None => Type::Void,
    }
}

/// Shape string recorded on memref parameters, e.g. `4x4xf32`.
pub fn shape_string(t: &MType) -> Option<String> {
    let shape = t.memref_shape()?;
    let elem = t.memref_elem()?;
    let mut s = String::new();
    for d in shape {
        s.push_str(&format!("{d}x"));
    }
    s.push_str(&elem.to_string());
    Some(s)
}

/// Translate a cf-level module.
pub fn translate(m: &MlirModule) -> Result<Module> {
    let mut out = Module::new(m.name.clone());
    out.target_triple = Some("fpga64-xilinx-none".to_string());
    for f in &m.ops {
        if f.name != "func.func" {
            return Err(err(format!("unexpected top-level op {}", f.name)));
        }
        let func = translate_func(&mut out, f)?;
        out.functions.push(func);
    }
    Ok(out)
}

struct FuncCx<'a> {
    module: &'a mut Module,
    values: HashMap<(u32, u32, bool), Value>,
    /// MLIR block uid -> llvm block id.
    blocks: HashMap<u32, llvm_lite::BlockId>,
    /// llvm block id -> phi insts for its args (in arg order).
    phis: HashMap<llvm_lite::BlockId, Vec<llvm_lite::InstId>>,
}

fn vkey(v: &MValueKind) -> (u32, u32, bool) {
    match v {
        MValueKind::OpResult { op, idx } => (*op, *idx, false),
        MValueKind::BlockArg { block, idx } => (*block, *idx, true),
    }
}

impl FuncCx<'_> {
    fn value(&self, v: &MValue) -> Result<Value> {
        self.values
            .get(&vkey(&v.kind))
            .cloned()
            .ok_or_else(|| err(format!("untranslated value {:?}", v.kind)))
    }

    fn bind(&mut self, op: &Op, idx: u32, v: Value) {
        self.values.insert((op.uid, idx, false), v);
    }

    /// Declare an intrinsic/external on first use.
    fn declare(&mut self, name: &str, params: Vec<Type>, ret: Type) {
        if self.module.function(name).is_none() {
            let ps = params
                .into_iter()
                .enumerate()
                .map(|(i, t)| llvm_lite::module::Param::new(format!("a{i}"), t))
                .collect();
            self.module
                .functions
                .push(Function::declaration(name, ps, ret));
        }
    }
}

fn translate_func(module: &mut Module, f: &Op) -> Result<Function> {
    let name = f
        .attrs
        .get("sym_name")
        .and_then(Attr::as_str)
        .ok_or_else(|| err("func.func without sym_name"))?;
    let ret_ty = f
        .attrs
        .get("ret_type")
        .and_then(Attr::as_type)
        .map(convert_type)
        .unwrap_or(Type::Void);

    let region = &f.regions[0];
    let entry = &region.blocks[0];
    let partition = f
        .attrs
        .get("hls.array_partition")
        .and_then(Attr::as_str)
        .map(str::to_string);
    let mut params = Vec::new();
    for (i, t) in entry.arg_types.iter().enumerate() {
        let mut p = llvm_lite::module::Param::new(format!("arg{i}"), convert_type(t));
        if let Some(s) = shape_string(t) {
            p.attrs.insert("mha.shape".to_string(), s);
            if let Some(spec) = &partition {
                p.attrs
                    .insert("hls.array_partition".to_string(), spec.clone());
            }
        }
        params.push(p);
    }
    let mut func = Function::new(name, params, ret_ty);
    for (k, v) in &f.attrs {
        if k.starts_with("hls.") {
            let val = match v {
                Attr::Unit => "1".to_string(),
                other => other.to_string(),
            };
            func.attrs.insert(k.clone(), val);
        }
    }

    let mut cx = FuncCx {
        module,
        values: HashMap::new(),
        blocks: HashMap::new(),
        phis: HashMap::new(),
    };

    // Pass 1: create blocks and PHIs for block args.
    for (bi, b) in region.blocks.iter().enumerate() {
        let label = if bi == 0 {
            "entry".to_string()
        } else {
            format!("bb{bi}")
        };
        let lb = func.add_block(label);
        cx.blocks.insert(b.uid, lb);
        if bi == 0 {
            for (i, _) in b.arg_types.iter().enumerate() {
                cx.values
                    .insert((b.uid, i as u32, true), Value::Arg(i as u32));
            }
        } else {
            let mut phi_ids = Vec::new();
            for (i, t) in b.arg_types.iter().enumerate() {
                let phi = func.push_inst(
                    lb,
                    Inst::new(Opcode::Phi, convert_type(t), vec![])
                        .with_data(InstData::Phi {
                            incoming: Vec::new(),
                        })
                        .with_name(format!("bb{bi}.arg{i}")),
                );
                cx.values.insert((b.uid, i as u32, true), Value::Inst(phi));
                phi_ids.push(phi);
            }
            cx.phis.insert(lb, phi_ids);
        }
    }

    // Pass 2: translate op lists.
    for b in &region.blocks {
        let lb = cx.blocks[&b.uid];
        for op in &b.ops {
            translate_op(&mut cx, &mut func, lb, op)?;
        }
    }
    Ok(func)
}

fn int_pred(p: &str) -> Result<IntPred> {
    IntPred::from_mnemonic(p).ok_or_else(|| err(format!("bad icmp predicate '{p}'")))
}

fn float_pred(p: &str) -> Result<FloatPred> {
    FloatPred::from_mnemonic(p).ok_or_else(|| err(format!("bad fcmp predicate '{p}'")))
}

/// Emit the linear index for a memref access: `((i0*d1 + i1)*d2 + i2)...`.
fn linearize(
    func: &mut Function,
    lb: llvm_lite::BlockId,
    shape: &[i64],
    indices: &[Value],
) -> Value {
    debug_assert_eq!(shape.len(), indices.len());
    if indices.is_empty() {
        return Value::i64(0);
    }
    let mut lin = indices[0].clone();
    for (d, idx) in shape.iter().zip(indices).skip(1) {
        let mul = func.push_inst(
            lb,
            Inst::new(Opcode::Mul, Type::I64, vec![lin, Value::i64(*d)]),
        );
        let add = func.push_inst(
            lb,
            Inst::new(Opcode::Add, Type::I64, vec![Value::Inst(mul), idx.clone()]),
        );
        lin = Value::Inst(add);
    }
    lin
}

fn memref_shape_of(v: &MValue) -> Result<(Vec<i64>, Type)> {
    match &v.ty {
        MType::MemRef { shape, elem } => Ok((shape.clone(), convert_type(elem))),
        other => Err(err(format!("expected memref operand, got {other}"))),
    }
}

fn translate_op(
    cx: &mut FuncCx<'_>,
    func: &mut Function,
    lb: llvm_lite::BlockId,
    op: &Op,
) -> Result<()> {
    let bin_int = |o: Opcode| -> Option<Opcode> { Some(o) };
    match op.name.as_str() {
        "arith.constant" => {
            let attr = op
                .attrs
                .get("value")
                .ok_or_else(|| err("constant without value"))?;
            let v = match attr {
                Attr::Int(v, t) => Value::const_int(convert_type(t), *v as i128),
                Attr::Float(v, t) => match convert_type(t) {
                    Type::Float => Value::f32(*v as f32),
                    _ => Value::f64(*v),
                },
                other => return Err(err(format!("unsupported constant {other:?}"))),
            };
            cx.bind(op, 0, v);
        }
        "arith.addi" | "arith.subi" | "arith.muli" | "arith.divsi" | "arith.remsi"
        | "arith.andi" | "arith.ori" | "arith.xori" => {
            let opcode = match op.name.as_str() {
                "arith.addi" => Opcode::Add,
                "arith.subi" => Opcode::Sub,
                "arith.muli" => Opcode::Mul,
                "arith.divsi" => Opcode::SDiv,
                "arith.remsi" => Opcode::SRem,
                "arith.andi" => Opcode::And,
                "arith.ori" => Opcode::Or,
                _ => Opcode::Xor,
            };
            let _ = bin_int(opcode);
            let a = cx.value(&op.operands[0])?;
            let b = cx.value(&op.operands[1])?;
            let ty = convert_type(&op.operands[0].ty);
            let id = func.push_inst(lb, Inst::new(opcode, ty, vec![a, b]));
            cx.bind(op, 0, Value::Inst(id));
        }
        "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" => {
            let opcode = match op.name.as_str() {
                "arith.addf" => Opcode::FAdd,
                "arith.subf" => Opcode::FSub,
                "arith.mulf" => Opcode::FMul,
                _ => Opcode::FDiv,
            };
            let a = cx.value(&op.operands[0])?;
            let b = cx.value(&op.operands[1])?;
            let ty = convert_type(&op.operands[0].ty);
            let id = func.push_inst(lb, Inst::new(opcode, ty, vec![a, b]));
            cx.bind(op, 0, Value::Inst(id));
        }
        "arith.negf" => {
            let a = cx.value(&op.operands[0])?;
            let ty = convert_type(&op.operands[0].ty);
            let id = func.push_inst(lb, Inst::new(Opcode::FNeg, ty, vec![a]));
            cx.bind(op, 0, Value::Inst(id));
        }
        "arith.cmpi" => {
            let pred = int_pred(
                op.attrs
                    .get("predicate")
                    .and_then(Attr::as_str)
                    .unwrap_or(""),
            )?;
            let a = cx.value(&op.operands[0])?;
            let b = cx.value(&op.operands[1])?;
            let id = func.push_inst(
                lb,
                Inst::new(Opcode::ICmp, Type::I1, vec![a, b]).with_data(InstData::ICmp(pred)),
            );
            cx.bind(op, 0, Value::Inst(id));
        }
        "arith.cmpf" => {
            let pred = float_pred(
                op.attrs
                    .get("predicate")
                    .and_then(Attr::as_str)
                    .unwrap_or(""),
            )?;
            let a = cx.value(&op.operands[0])?;
            let b = cx.value(&op.operands[1])?;
            let id = func.push_inst(
                lb,
                Inst::new(Opcode::FCmp, Type::I1, vec![a, b]).with_data(InstData::FCmp(pred)),
            );
            cx.bind(op, 0, Value::Inst(id));
        }
        "arith.select" => {
            let c = cx.value(&op.operands[0])?;
            let a = cx.value(&op.operands[1])?;
            let b = cx.value(&op.operands[2])?;
            let ty = convert_type(&op.operands[1].ty);
            let id = func.push_inst(lb, Inst::new(Opcode::Select, ty, vec![c, a, b]));
            cx.bind(op, 0, Value::Inst(id));
        }
        "arith.index_cast" => {
            let v = cx.value(&op.operands[0])?;
            let from = convert_type(&op.operands[0].ty);
            let to = convert_type(&op.result_types[0]);
            let fw = from.int_width().unwrap_or(64);
            let tw = to.int_width().unwrap_or(64);
            let bound = match fw.cmp(&tw) {
                std::cmp::Ordering::Equal => v,
                std::cmp::Ordering::Less => {
                    Value::Inst(func.push_inst(lb, Inst::new(Opcode::SExt, to, vec![v])))
                }
                std::cmp::Ordering::Greater => {
                    Value::Inst(func.push_inst(lb, Inst::new(Opcode::Trunc, to, vec![v])))
                }
            };
            cx.bind(op, 0, bound);
        }
        "arith.sitofp" | "arith.fptosi" => {
            let v = cx.value(&op.operands[0])?;
            let to = convert_type(&op.result_types[0]);
            let opcode = if op.name == "arith.sitofp" {
                Opcode::SIToFP
            } else {
                Opcode::FPToSI
            };
            let id = func.push_inst(lb, Inst::new(opcode, to, vec![v]));
            cx.bind(op, 0, Value::Inst(id));
        }
        "math.sqrt" | "math.exp" | "math.absf" => {
            let v = cx.value(&op.operands[0])?;
            let ty = convert_type(&op.operands[0].ty);
            let suffix = if ty == Type::Float { "f32" } else { "f64" };
            let base = match op.name.as_str() {
                "math.sqrt" => "llvm.sqrt",
                "math.exp" => "llvm.exp",
                _ => "llvm.fabs",
            };
            let callee = format!("{base}.{suffix}");
            cx.declare(&callee, vec![ty.clone()], ty.clone());
            let id = func.push_inst(
                lb,
                Inst::new(Opcode::Call, ty, vec![v]).with_data(InstData::Call { callee }),
            );
            cx.bind(op, 0, Value::Inst(id));
        }
        "memref.load" => {
            let (shape, elem) = memref_shape_of(&op.operands[0])?;
            let base = cx.value(&op.operands[0])?;
            let idx: Vec<Value> = op.operands[1..]
                .iter()
                .map(|v| cx.value(v))
                .collect::<Result<_>>()?;
            let lin = linearize(func, lb, &shape, &idx);
            let gep = func.push_inst(
                lb,
                Inst::new(Opcode::Gep, elem.ptr_to(), vec![base, lin]).with_data(InstData::Gep {
                    base_ty: elem.clone(),
                    inbounds: true,
                }),
            );
            let ld = func.push_inst(
                lb,
                Inst::new(Opcode::Load, elem.clone(), vec![Value::Inst(gep)]).with_data(
                    InstData::Load {
                        align: elem.align_in_bytes() as u32,
                    },
                ),
            );
            cx.bind(op, 0, Value::Inst(ld));
        }
        "memref.store" => {
            let (shape, elem) = memref_shape_of(&op.operands[1])?;
            let v = cx.value(&op.operands[0])?;
            let base = cx.value(&op.operands[1])?;
            let idx: Vec<Value> = op.operands[2..]
                .iter()
                .map(|v| cx.value(v))
                .collect::<Result<_>>()?;
            let lin = linearize(func, lb, &shape, &idx);
            let gep = func.push_inst(
                lb,
                Inst::new(Opcode::Gep, elem.ptr_to(), vec![base, lin]).with_data(InstData::Gep {
                    base_ty: elem.clone(),
                    inbounds: true,
                }),
            );
            func.push_inst(
                lb,
                Inst::new(Opcode::Store, Type::Void, vec![v, Value::Inst(gep)]).with_data(
                    InstData::Store {
                        align: elem.align_in_bytes() as u32,
                    },
                ),
            );
        }
        "memref.alloca" => {
            let ty = &op.result_types[0];
            let len = ty
                .memref_len()
                .ok_or_else(|| err("alloca of dynamic memref"))? as u64;
            let elem = convert_type(ty.memref_elem().unwrap());
            let arr = elem.array_of(len);
            let a = func.push_inst(
                lb,
                Inst::new(Opcode::Alloca, arr.ptr_to(), vec![])
                    .with_data(InstData::Alloca {
                        align: elem.align_in_bytes() as u32,
                        allocated: arr.clone(),
                    })
                    .with_name("buf"),
            );
            // Decay to element pointer for uniform linear indexing.
            let gep = func.push_inst(
                lb,
                Inst::new(
                    Opcode::Gep,
                    elem.ptr_to(),
                    vec![Value::Inst(a), Value::i64(0), Value::i64(0)],
                )
                .with_data(InstData::Gep {
                    base_ty: arr,
                    inbounds: true,
                }),
            );
            cx.bind(op, 0, Value::Inst(gep));
        }
        "memref.alloc" => {
            // Heap allocation -> @malloc + bitcast, the construct the
            // adaptor must demote.
            let ty = &op.result_types[0];
            let len = ty
                .memref_len()
                .ok_or_else(|| err("alloc of dynamic memref"))? as u64;
            let elem = convert_type(ty.memref_elem().unwrap());
            let bytes = len * elem.size_in_bytes();
            cx.declare("malloc", vec![Type::I64], Type::I8.ptr_to());
            let call = func.push_inst(
                lb,
                Inst::new(
                    Opcode::Call,
                    Type::I8.ptr_to(),
                    vec![Value::i64(bytes as i64)],
                )
                .with_data(InstData::Call {
                    callee: "malloc".to_string(),
                }),
            );
            let cast = func.push_inst(
                lb,
                Inst::new(Opcode::BitCast, elem.ptr_to(), vec![Value::Inst(call)]),
            );
            cx.bind(op, 0, Value::Inst(cast));
        }
        "memref.dealloc" => {
            let v = cx.value(&op.operands[0])?;
            cx.declare("free", vec![Type::I8.ptr_to()], Type::Void);
            let cast = func.push_inst(lb, Inst::new(Opcode::BitCast, Type::I8.ptr_to(), vec![v]));
            func.push_inst(
                lb,
                Inst::new(Opcode::Call, Type::Void, vec![Value::Inst(cast)]).with_data(
                    InstData::Call {
                        callee: "free".to_string(),
                    },
                ),
            );
        }
        "cf.br" => {
            let (dest_uid, args) = &op.successors[0];
            let dest = cx.blocks[dest_uid];
            fill_phis(cx, func, lb, dest, args)?;
            let mut inst =
                Inst::new(Opcode::Br, Type::Void, vec![]).with_data(InstData::Br { dest });
            if let Some(md) = hls_attrs_to_md(op) {
                let id = cx.module.add_loop_md(md);
                inst.loop_md = Some(id);
            }
            func.push_inst(lb, inst);
        }
        "cf.cond_br" => {
            let c = cx.value(&op.operands[0])?;
            let (t_uid, t_args) = &op.successors[0];
            let (f_uid, f_args) = &op.successors[1];
            let on_true = cx.blocks[t_uid];
            let on_false = cx.blocks[f_uid];
            fill_phis(cx, func, lb, on_true, t_args)?;
            fill_phis(cx, func, lb, on_false, f_args)?;
            func.push_inst(
                lb,
                Inst::new(Opcode::CondBr, Type::Void, vec![c])
                    .with_data(InstData::CondBr { on_true, on_false }),
            );
        }
        "func.return" => {
            let ops = op
                .operands
                .iter()
                .map(|v| cx.value(v))
                .collect::<Result<Vec<_>>>()?;
            func.push_inst(lb, Inst::new(Opcode::Ret, Type::Void, ops));
        }
        "func.call" => {
            let callee = op
                .attrs
                .get("callee")
                .and_then(Attr::as_str)
                .ok_or_else(|| err("call without callee"))?
                .to_string();
            let args = op
                .operands
                .iter()
                .map(|v| cx.value(v))
                .collect::<Result<Vec<_>>>()?;
            let ret = op
                .result_types
                .first()
                .map(convert_type)
                .unwrap_or(Type::Void);
            let id = func.push_inst(
                lb,
                Inst::new(Opcode::Call, ret.clone(), args).with_data(InstData::Call { callee }),
            );
            if ret != Type::Void {
                cx.bind(op, 0, Value::Inst(id));
            }
        }
        other => return Err(err(format!("cannot translate op '{other}'"))),
    }
    Ok(())
}

fn fill_phis(
    cx: &mut FuncCx<'_>,
    func: &mut Function,
    from: llvm_lite::BlockId,
    to: llvm_lite::BlockId,
    args: &[MValue],
) -> Result<()> {
    if args.is_empty() {
        return Ok(());
    }
    let phis = cx
        .phis
        .get(&to)
        .cloned()
        .ok_or_else(|| err("branch args to block without phis"))?;
    for (phi, arg) in phis.iter().zip(args) {
        let v = cx.value(arg)?;
        let inst = func.inst_mut(*phi);
        inst.operands.push(v);
        match &mut inst.data {
            InstData::Phi { incoming } => incoming.push(from),
            _ => unreachable!("phi slot"),
        }
    }
    Ok(())
}

/// Decode `hls.*` attributes on a latch branch into loop metadata.
fn hls_attrs_to_md(op: &Op) -> Option<LoopMetadata> {
    let mut md = LoopMetadata::default();
    if let Some(ii) = op.int_attr("hls.pipeline_ii") {
        md.pipeline_ii = Some(ii as u32);
    }
    if let Some(f) = op.int_attr("hls.unroll_factor") {
        md.unroll_factor = Some(f as u32);
    }
    if op.attrs.contains_key("hls.unroll_full") {
        md.unroll_full = true;
    }
    if op.attrs.contains_key("hls.flatten") {
        md.flatten = true;
    }
    if md.is_empty() {
        None
    } else {
        Some(md)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_lite::parser::parse_module;

    fn lower_no_cleanup(src: &str) -> Module {
        let m = parse_module("t", src).unwrap();
        crate::lower_module(
            m,
            &crate::LowerOptions {
                expand_full_unroll: false,
                cleanup: false,
            },
        )
        .unwrap()
    }

    #[test]
    fn type_conversion() {
        assert_eq!(convert_type(&MType::Index), Type::I64);
        assert_eq!(convert_type(&MType::F32), Type::Float);
        assert_eq!(
            convert_type(&MType::F32.memref(&[4, 4])),
            Type::Float.ptr_to()
        );
        assert_eq!(
            shape_string(&MType::F32.memref(&[4, 4])).unwrap(),
            "4x4xf32"
        );
        assert_eq!(shape_string(&MType::F32), None);
    }

    #[test]
    fn loop_structure_with_phi() {
        let m = lower_no_cleanup(
            r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %m[%i] : memref<4xf32>
    affine.store %v, %m[%i] : memref<4xf32>
  }
  func.return
}
"#,
        );
        let f = m.function("f").unwrap();
        assert_eq!(f.block_order.len(), 4);
        assert_eq!(f.count_opcode(Opcode::Phi), 1);
        llvm_lite::verifier::verify_module(&m).unwrap();
    }

    #[test]
    fn two_d_access_is_linearized() {
        let m = lower_no_cleanup(
            r#"
func.func @f(%m: memref<4x8xf32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 8 {
      %v = affine.load %m[%i, %j] : memref<4x8xf32>
      affine.store %v, %m[%i, %j] : memref<4x8xf32>
    }
  }
  func.return
}
"#,
        );
        let f = m.function("f").unwrap();
        // Linearization i*8 + j appears as mul+add chains.
        assert!(f.count_opcode(Opcode::Mul) >= 2);
        let text = llvm_lite::printer::print_module(&m);
        assert!(text.contains("mul i64"));
        assert!(text.contains("getelementptr inbounds float, float*"));
    }

    #[test]
    fn malloc_free_emitted_for_heap_memrefs() {
        let m = lower_no_cleanup(
            r#"
func.func @f() {
  %buf = memref.alloc() : memref<16xf32>
  memref.dealloc %buf : memref<16xf32>
  func.return
}
"#,
        );
        assert!(m.function("malloc").is_some());
        assert!(m.function("free").is_some());
        let text = llvm_lite::printer::print_module(&m);
        assert!(text.contains("call i8* @malloc(i64 64)"));
    }

    #[test]
    fn math_ops_become_intrinsics() {
        let m = lower_no_cleanup(
            r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %m[%i] : memref<4xf32>
    %s = math.sqrt %v : f32
    affine.store %s, %m[%i] : memref<4xf32>
  }
  func.return
}
"#,
        );
        assert!(m.function("llvm.sqrt.f32").is_some());
    }

    #[test]
    fn latch_metadata_lands_on_branch() {
        let m = lower_no_cleanup(
            r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %m[%i] : memref<4xf32>
    affine.store %v, %m[%i] : memref<4xf32>
  } {hls.pipeline_ii = 1 : i32, hls.unroll_factor = 2 : i32}
  func.return
}
"#,
        );
        assert_eq!(m.loop_mds.len(), 1);
        assert_eq!(m.loop_mds[0].pipeline_ii, Some(1));
        assert_eq!(m.loop_mds[0].unroll_factor, Some(2));
        // Attached to exactly one branch.
        let f = m.function("f").unwrap();
        let with_md = f
            .inst_ids()
            .into_iter()
            .filter(|(_, i)| f.inst(*i).loop_md.is_some())
            .count();
        assert_eq!(with_md, 1);
    }
}
