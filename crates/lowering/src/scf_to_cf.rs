//! `scf` → `cf` lowering: structured loops and conditionals become explicit
//! basic blocks with block arguments.
//!
//! An `scf.for` lowers to the canonical rotated-loop shape:
//!
//! ```text
//!   cf.br ^header(%lb)
//! ^header(%iv: index):
//!   %cond = arith.cmpi slt, %iv, %ub
//!   cf.cond_br %cond, ^body, ^exit
//! ^body:
//!   ...body...
//!   %next = arith.addi %iv, %step
//!   cf.br ^header(%next)        // carries the loop's hls.* attributes
//! ^exit:
//! ```
//!
//! The header block *reuses the uid* of the loop's body entry block, so every
//! use of the induction variable (a block-arg reference) resolves to the
//! header's argument with no rewriting. HLS directives migrate from the loop
//! op to the latch branch, which is where the LLVM translation expects them
//! (mirroring clang's placement of `!llvm.loop` on the latch).

use mlir_lite::dialects::{arith, cf};
use mlir_lite::ir::{MBlock, MType, MlirModule, Op};

use crate::Result;

/// Lower every function in the module to cf-level control flow.
pub fn run(m: &mut MlirModule) -> Result<()> {
    for f in &mut m.ops {
        if f.name != "func.func" {
            continue;
        }
        let region = &mut f.regions[0];
        let mut entry = std::mem::take(&mut region.blocks)
            .into_iter()
            .next()
            .expect("func has entry block");
        let ops = std::mem::take(&mut entry.ops);
        let mut ctx = Ctx { blocks: Vec::new() };
        ctx.blocks.push(entry);
        let last = flatten(ops, &mut ctx, 0)?;
        // Ensure the final block is terminated (func.return flows here).
        let _ = last;
        region.blocks = ctx.blocks;
    }
    Ok(())
}

struct Ctx {
    blocks: Vec<MBlock>,
}

impl Ctx {
    fn push_block(&mut self, b: MBlock) -> usize {
        self.blocks.push(b);
        self.blocks.len() - 1
    }
}

/// Flatten `ops` into `ctx.blocks`, starting in block index `cur`; returns
/// the index of the block where control continues.
fn flatten(ops: Vec<Op>, ctx: &mut Ctx, mut cur: usize) -> Result<usize> {
    for op in ops {
        match op.name.as_str() {
            "scf.for" => cur = flatten_for(op, ctx, cur)?,
            "scf.if" => cur = flatten_if(op, ctx, cur)?,
            "scf.yield" => {
                // Stripped by the caller; a stray yield is a structure bug.
                return Err(crate::Error::Transform(
                    "unexpected scf.yield outside a region".into(),
                ));
            }
            _ => ctx.blocks[cur].ops.push(op),
        }
    }
    Ok(cur)
}

fn flatten_for(mut op: Op, ctx: &mut Ctx, cur: usize) -> Result<usize> {
    let lb = op.operands[0].clone();
    let ub = op.operands[1].clone();
    let step = op.operands[2].clone();

    let mut body_region = op.regions.remove(0);
    let body_entry = &mut body_region.blocks[0];
    let body_uid = body_entry.uid;
    let mut body_ops = std::mem::take(&mut body_entry.ops);
    if body_ops
        .last()
        .map(|o| o.name == "scf.yield")
        .unwrap_or(false)
    {
        body_ops.pop();
    }

    // Header reuses the body block's uid so IV references stay valid.
    let mut header = MBlock::new(vec![MType::Index]);
    header.uid = body_uid;
    let iv = header.arg(0);

    let body = MBlock::new(vec![]);
    let body_block_uid = body.uid;
    let exit = MBlock::new(vec![]);
    let exit_uid = exit.uid;

    // Current block jumps into the header with the lower bound.
    ctx.blocks[cur].ops.push(cf::br_uid(body_uid, vec![lb]));

    // Header: compare and branch.
    let cmp = arith::cmpi("slt", iv.clone(), ub);
    let cmp_v = cmp.result(0);
    header.ops.push(cmp);
    header.ops.push(cf::cond_br_uid(
        cmp_v,
        body_block_uid,
        vec![],
        exit_uid,
        vec![],
    ));
    ctx.push_block(header);

    // Body (recursively flattened).
    let body_idx = ctx.push_block(body);
    let body_end = flatten(body_ops, ctx, body_idx)?;

    // Latch: increment and loop back, carrying the directives.
    let next = arith::addi(iv, step);
    let next_v = next.result(0);
    ctx.blocks[body_end].ops.push(next);
    let mut latch = cf::br_uid(body_uid, vec![next_v]);
    for (k, v) in &op.attrs {
        if k.starts_with("hls.") {
            latch.attrs.insert(k.clone(), v.clone());
        }
    }
    ctx.blocks[body_end].ops.push(latch);

    Ok(ctx.push_block(exit))
}

fn flatten_if(mut op: Op, ctx: &mut Ctx, cur: usize) -> Result<usize> {
    let cond = op.operands[0].clone();
    let mut then_region = op.regions.remove(0);
    let mut then_ops = std::mem::take(&mut then_region.blocks[0].ops);
    if then_ops
        .last()
        .map(|o| o.name == "scf.yield")
        .unwrap_or(false)
    {
        then_ops.pop();
    }
    let mut else_ops = if !op.regions.is_empty() {
        let mut else_region = op.regions.remove(0);
        std::mem::take(&mut else_region.blocks[0].ops)
    } else {
        Vec::new()
    };
    if else_ops
        .last()
        .map(|o| o.name == "scf.yield")
        .unwrap_or(false)
    {
        else_ops.pop();
    }

    let then_block = MBlock::new(vec![]);
    let then_uid = then_block.uid;
    let merge = MBlock::new(vec![]);
    let merge_uid = merge.uid;

    let has_else = !else_ops.is_empty();
    let else_block = MBlock::new(vec![]);
    let else_uid = else_block.uid;

    let false_target = if has_else { else_uid } else { merge_uid };
    ctx.blocks[cur].ops.push(cf::cond_br_uid(
        cond,
        then_uid,
        vec![],
        false_target,
        vec![],
    ));

    let then_idx = ctx.push_block(then_block);
    let then_end = flatten(then_ops, ctx, then_idx)?;
    ctx.blocks[then_end].ops.push(cf::br_uid(merge_uid, vec![]));

    if has_else {
        let else_idx = ctx.push_block(else_block);
        let else_end = flatten(else_ops, ctx, else_idx)?;
        ctx.blocks[else_end].ops.push(cf::br_uid(merge_uid, vec![]));
    }

    Ok(ctx.push_block(merge))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_lite::parser::parse_module;

    fn lower_to_cf(src: &str) -> MlirModule {
        let mut m = parse_module("t", src).unwrap();
        crate::affine_to_scf::run(&mut m).unwrap();
        run(&mut m).unwrap();
        m
    }

    #[test]
    fn single_loop_produces_four_blocks() {
        let m = lower_to_cf(
            r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %m[%i] : memref<4xf32>
    affine.store %v, %m[%i] : memref<4xf32>
  }
  func.return
}
"#,
        );
        let f = m.func("f").unwrap();
        // entry, header, body, exit.
        assert_eq!(f.regions[0].blocks.len(), 4);
        assert_eq!(m.count_ops(|o| o.name == "scf.for"), 0);
        assert_eq!(m.count_ops(|o| o.name == "cf.br"), 2);
        assert_eq!(m.count_ops(|o| o.name == "cf.cond_br"), 1);
    }

    #[test]
    fn header_reuses_body_uid_for_iv() {
        let m = lower_to_cf(
            r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %m[%i] : memref<4xf32>
    affine.store %v, %m[%i] : memref<4xf32>
  }
  func.return
}
"#,
        );
        let f = m.func("f").unwrap();
        let header = &f.regions[0].blocks[1];
        assert_eq!(header.arg_types, vec![MType::Index]);
        // The load in the body must reference the header's block arg.
        let body = &f.regions[0].blocks[2];
        let load = body.ops.iter().find(|o| o.name == "memref.load").unwrap();
        let iv_ref = &load.operands[1];
        assert_eq!(
            iv_ref.kind,
            mlir_lite::MValueKind::BlockArg {
                block: header.uid,
                idx: 0
            }
        );
    }

    #[test]
    fn directives_move_to_latch() {
        let m = lower_to_cf(
            r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %m[%i] : memref<4xf32>
    affine.store %v, %m[%i] : memref<4xf32>
  } {hls.pipeline_ii = 1 : i32}
  func.return
}
"#,
        );
        let mut found = false;
        m.walk(&mut |o| {
            if o.name == "cf.br" && o.attrs.contains_key("hls.pipeline_ii") {
                found = true;
            }
        });
        assert!(found, "latch branch must carry the pipeline directive");
    }

    #[test]
    fn nested_loops_flatten() {
        let m = lower_to_cf(
            r#"
func.func @f(%m: memref<4x4xf32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 4 {
      %v = affine.load %m[%i, %j] : memref<4x4xf32>
      affine.store %v, %m[%j, %i] : memref<4x4xf32>
    }
  }
  func.return
}
"#,
        );
        let f = m.func("f").unwrap();
        // entry + 2*(header, body, exit) + inner exit merges = 7 blocks.
        assert_eq!(f.regions[0].blocks.len(), 7);
        assert_eq!(m.count_ops(|o| o.name == "cf.cond_br"), 2);
    }

    #[test]
    fn if_produces_diamond() {
        // scf.if is produced by transforms rather than parsed; build one.
        use mlir_lite::dialects::{arith, func as func_ops, scf};
        let mut m = MlirModule::new("m");
        let mut f = func_ops::func("f", vec![], MType::None);
        let c = arith::const_int(1, MType::I1);
        let mut iff = scf::if_(c.result(0));
        iff.regions[0].entry_mut().ops.push(arith::const_index(1));
        iff.regions[0].entry_mut().ops.push(scf::yield_());
        iff.regions[1].entry_mut().ops.push(arith::const_index(2));
        iff.regions[1].entry_mut().ops.push(scf::yield_());
        {
            let body = f.regions[0].entry_mut();
            body.ops.push(c);
            body.ops.push(iff);
            body.ops.push(func_ops::ret(None));
        }
        m.ops.push(f);
        run(&mut m).unwrap();
        let f = m.func("f").unwrap();
        // entry, then, else, merge.
        assert_eq!(f.regions[0].blocks.len(), 4);
    }
}
