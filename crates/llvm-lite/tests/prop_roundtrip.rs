//! Property tests over the IR core: textual round-trips, verifier
//! stability, and semantics preservation of the cleanup transforms, on
//! randomly generated programs.

use proptest::prelude::*;

use llvm_lite::interp::{Interpreter, RtVal};
use llvm_lite::module::{Function, Param};
use llvm_lite::transforms::{Dce, FoldConstants, Mem2Reg, ModulePass, SimplifyCfg};
use llvm_lite::{IrBuilder, Module, Opcode, Type, Value};

/// One random integer operation over previously defined values.
#[derive(Clone, Debug)]
enum GenOp {
    Bin(u8, usize, usize),
    Const(i32),
    Select(usize, usize, usize),
}

fn gen_ops() -> impl Strategy<Value = Vec<GenOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..8, any::<usize>(), any::<usize>()).prop_map(|(o, a, b)| GenOp::Bin(o, a, b)),
            (-100i32..100).prop_map(GenOp::Const),
            (any::<usize>(), any::<usize>(), any::<usize>())
                .prop_map(|(c, a, b)| GenOp::Select(c, a, b)),
        ],
        1..24,
    )
}

/// Materialize the op list as a straight-line function `i32 f(i32, i32)`.
fn build(ops: &[GenOp]) -> Module {
    let mut m = Module::new("prop");
    let mut f = Function::new(
        "f",
        vec![Param::new("a", Type::I32), Param::new("b", Type::I32)],
        Type::I32,
    );
    let entry = f.add_block("entry");
    let mut b = IrBuilder::new(&mut f, entry);
    let mut vals: Vec<Value> = vec![Value::Arg(0), Value::Arg(1)];
    for op in ops {
        let v = match op {
            GenOp::Const(c) => Value::i32(*c),
            GenOp::Bin(o, x, y) => {
                let x = vals[*x % vals.len()].clone();
                let y = vals[*y % vals.len()].clone();
                let opcode = match o % 8 {
                    0 => Opcode::Add,
                    1 => Opcode::Sub,
                    2 => Opcode::Mul,
                    3 => Opcode::And,
                    4 => Opcode::Or,
                    5 => Opcode::Xor,
                    6 => Opcode::Add,
                    _ => Opcode::Sub,
                };
                b.binop(opcode, Type::I32, x, y)
            }
            GenOp::Select(c, x, y) => {
                let c = vals[*c % vals.len()].clone();
                let cond = b.icmp(llvm_lite::IntPred::Slt, c, Value::i32(0));
                let x = vals[*x % vals.len()].clone();
                let y = vals[*y % vals.len()].clone();
                b.select(cond, Type::I32, x, y)
            }
        };
        vals.push(v);
    }
    let ret = vals.last().unwrap().clone();
    b.ret(Some(ret));
    m.functions.push(f);
    m
}

fn run(m: &Module, a: i32, bb: i32) -> i128 {
    let mut i = Interpreter::new(m);
    match i
        .call("f", &[RtVal::I(a as i128), RtVal::I(bb as i128)])
        .unwrap()
    {
        RtVal::I(v) => v,
        other => panic!("non-int result {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_programs_verify(ops in gen_ops()) {
        let m = build(&ops);
        llvm_lite::verifier::verify_module(&m).unwrap();
    }

    #[test]
    fn print_parse_print_is_stable(ops in gen_ops()) {
        let m = build(&ops);
        let t1 = llvm_lite::printer::print_module(&m);
        let m2 = llvm_lite::parser::parse_module("prop", &t1).unwrap();
        llvm_lite::verifier::verify_module(&m2).unwrap();
        let t2 = llvm_lite::printer::print_module(&m2);
        prop_assert_eq!(t1, t2);
    }

    #[test]
    fn parse_preserves_semantics(ops in gen_ops(), a in -50i32..50, b in -50i32..50) {
        let m = build(&ops);
        let text = llvm_lite::printer::print_module(&m);
        let m2 = llvm_lite::parser::parse_module("prop", &text).unwrap();
        prop_assert_eq!(run(&m, a, b), run(&m2, a, b));
    }

    #[test]
    fn cleanup_preserves_semantics(ops in gen_ops(), a in -50i32..50, b in -50i32..50) {
        let m = build(&ops);
        let before = run(&m, a, b);
        let mut m2 = m.clone();
        FoldConstants.run(&mut m2).unwrap();
        SimplifyCfg.run(&mut m2).unwrap();
        Dce.run(&mut m2).unwrap();
        llvm_lite::verifier::verify_module(&m2).unwrap();
        prop_assert_eq!(before, run(&m2, a, b));
    }

    #[test]
    fn dce_never_grows_the_function(ops in gen_ops()) {
        let mut m = build(&ops);
        let before = m.functions[0].num_insts();
        Dce.run(&mut m).unwrap();
        prop_assert!(m.functions[0].num_insts() <= before);
    }
}

/// Random store/load sequences through an alloca slot: mem2reg must be an
/// exact semantics-preserving transform.
fn build_slot_program(writes: &[(bool, i32)]) -> Module {
    let mut m = Module::new("prop");
    // Two params so the shared `run` helper applies; %b is unused.
    let mut f = Function::new(
        "f",
        vec![Param::new("a", Type::I32), Param::new("b", Type::I32)],
        Type::I32,
    );
    let entry = f.add_block("entry");
    let mut b = IrBuilder::new(&mut f, entry);
    let slot = b.alloca(Type::I32, "x");
    b.store(Value::Arg(0), slot.clone(), 4);
    let mut acc = Value::Arg(0);
    for (do_store, c) in writes {
        if *do_store {
            let v = b.add(Type::I32, acc.clone(), Value::i32(*c));
            b.store(v, slot.clone(), 4);
        } else {
            let v = b.load(Type::I32, slot.clone());
            acc = b.binop(Opcode::Xor, Type::I32, v, Value::i32(*c));
        }
    }
    let last = b.load(Type::I32, slot);
    let out = b.add(Type::I32, last, acc);
    b.ret(Some(out));
    m.functions.push(f);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mem2reg_preserves_semantics(
        writes in prop::collection::vec((any::<bool>(), -20i32..20), 1..16),
        a in -100i32..100,
    ) {
        let m = build_slot_program(&writes);
        let before = run(&m, a, 0);
        let mut m2 = m.clone();
        Mem2Reg.run(&mut m2).unwrap();
        llvm_lite::verifier::verify_module(&m2).unwrap();
        prop_assert_eq!(before, run(&m2, a, 0));
        // And the slot is actually gone.
        prop_assert_eq!(m2.functions[0].count_opcode(Opcode::Alloca), 0);
    }
}
