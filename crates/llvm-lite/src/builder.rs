//! Positioned IR construction, in the style of `llvm::IRBuilder`.
//!
//! The builder borrows the function mutably and tracks an insertion block;
//! every `build_*` method appends there and returns the produced [`Value`].

use crate::inst::{FloatPred, Inst, InstData, IntPred, Opcode};
use crate::module::{BlockId, Function, InstId};
use crate::types::Type;
use crate::value::Value;

/// A positioned instruction builder over one function.
pub struct IrBuilder<'f> {
    func: &'f mut Function,
    block: BlockId,
}

impl<'f> IrBuilder<'f> {
    /// Build into `block` of `func`.
    pub fn new(func: &'f mut Function, block: BlockId) -> IrBuilder<'f> {
        IrBuilder { func, block }
    }

    /// Current insertion block.
    pub fn block(&self) -> BlockId {
        self.block
    }

    /// Move the insertion point to another block.
    pub fn position_at(&mut self, block: BlockId) {
        self.block = block;
    }

    /// Create a new block (does not move the insertion point).
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.func.add_block(name)
    }

    /// Access the underlying function.
    pub fn func(&mut self) -> &mut Function {
        self.func
    }

    fn push(&mut self, inst: Inst) -> InstId {
        self.func.push_inst(self.block, inst)
    }

    fn push_value(&mut self, inst: Inst) -> Value {
        Value::Inst(self.push(inst))
    }

    /// Integer/float binary operation with an explicit result type.
    pub fn binop(&mut self, op: Opcode, ty: Type, lhs: Value, rhs: Value) -> Value {
        debug_assert!(op.is_int_binop() || op.is_float_binop());
        self.push_value(Inst::new(op, ty, vec![lhs, rhs]))
    }

    /// `add` with type inferred from the left operand when constant-typed.
    pub fn add(&mut self, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.binop(Opcode::Add, ty, lhs, rhs)
    }

    /// `sub`.
    pub fn sub(&mut self, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.binop(Opcode::Sub, ty, lhs, rhs)
    }

    /// `mul`.
    pub fn mul(&mut self, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.binop(Opcode::Mul, ty, lhs, rhs)
    }

    /// `fadd`.
    pub fn fadd(&mut self, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.binop(Opcode::FAdd, ty, lhs, rhs)
    }

    /// `fmul`.
    pub fn fmul(&mut self, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.binop(Opcode::FMul, ty, lhs, rhs)
    }

    /// `icmp <pred>`.
    pub fn icmp(&mut self, pred: IntPred, lhs: Value, rhs: Value) -> Value {
        self.push_value(
            Inst::new(Opcode::ICmp, Type::I1, vec![lhs, rhs]).with_data(InstData::ICmp(pred)),
        )
    }

    /// `fcmp <pred>`.
    pub fn fcmp(&mut self, pred: FloatPred, lhs: Value, rhs: Value) -> Value {
        self.push_value(
            Inst::new(Opcode::FCmp, Type::I1, vec![lhs, rhs]).with_data(InstData::FCmp(pred)),
        )
    }

    /// `alloca <ty>` in the current block.
    pub fn alloca(&mut self, ty: Type, name: impl Into<String>) -> Value {
        self.push_value(
            Inst::new(Opcode::Alloca, ty.ptr_to(), vec![])
                .with_data(InstData::Alloca {
                    allocated: ty.clone(),
                    align: ty.align_in_bytes() as u32,
                })
                .with_name(name),
        )
    }

    /// `load <ty>` from a pointer.
    pub fn load(&mut self, ty: Type, ptr: Value) -> Value {
        let align = ty.align_in_bytes() as u32;
        self.push_value(Inst::new(Opcode::Load, ty, vec![ptr]).with_data(InstData::Load { align }))
    }

    /// `store` a value through a pointer.
    pub fn store(&mut self, value: Value, ptr: Value, align: u32) {
        self.push(
            Inst::new(Opcode::Store, Type::Void, vec![value, ptr])
                .with_data(InstData::Store { align }),
        );
    }

    /// `getelementptr inbounds <base_ty>, ptr, indices...`. The result type
    /// is computed by stepping through the indexed type.
    pub fn gep(&mut self, base_ty: Type, ptr: Value, indices: Vec<Value>) -> Value {
        let result_ty = gep_result_type(&base_ty, indices.len());
        let mut ops = vec![ptr];
        ops.extend(indices);
        self.push_value(
            Inst::new(Opcode::Gep, result_ty, ops).with_data(InstData::Gep {
                base_ty,
                inbounds: true,
            }),
        )
    }

    /// `call @callee(args...) -> ret_ty`.
    pub fn call(&mut self, callee: impl Into<String>, ret_ty: Type, args: Vec<Value>) -> Value {
        let id = self.push(Inst::new(Opcode::Call, ret_ty.clone(), args).with_data(
            InstData::Call {
                callee: callee.into(),
            },
        ));
        if ret_ty == Type::Void {
            // Void calls still need a handle occasionally; return an undef
            // of void-pointer kind would be wrong, so return Undef(Void)
            // which nothing should consume.
            Value::Undef(Type::Void)
        } else {
            Value::Inst(id)
        }
    }

    /// `select i1 %c, T %a, T %b`.
    pub fn select(&mut self, cond: Value, ty: Type, on_true: Value, on_false: Value) -> Value {
        self.push_value(Inst::new(Opcode::Select, ty, vec![cond, on_true, on_false]))
    }

    /// An empty `phi` of type `ty`; fill incoming edges via
    /// [`IrBuilder::phi_add_incoming`] / function-level edits.
    pub fn phi(&mut self, ty: Type) -> InstId {
        self.push(Inst::new(Opcode::Phi, ty, vec![]).with_data(InstData::Phi {
            incoming: Vec::new(),
        }))
    }

    /// Add an incoming `(value, block)` edge to a phi created by
    /// [`IrBuilder::phi`].
    pub fn phi_add_incoming(&mut self, phi: InstId, value: Value, block: BlockId) {
        let inst = self.func.inst_mut(phi);
        inst.operands.push(value);
        match &mut inst.data {
            InstData::Phi { incoming } => incoming.push(block),
            _ => panic!("phi_add_incoming on non-phi"),
        }
    }

    /// Cast helper covering all cast opcodes.
    pub fn cast(&mut self, op: Opcode, value: Value, to: Type) -> Value {
        debug_assert!(op.is_cast());
        self.push_value(Inst::new(op, to, vec![value]))
    }

    /// `sext` to `to`.
    pub fn sext(&mut self, value: Value, to: Type) -> Value {
        self.cast(Opcode::SExt, value, to)
    }

    /// Unconditional branch terminator.
    pub fn br(&mut self, dest: BlockId) -> InstId {
        self.push(Inst::new(Opcode::Br, Type::Void, vec![]).with_data(InstData::Br { dest }))
    }

    /// Conditional branch terminator.
    pub fn cond_br(&mut self, cond: Value, on_true: BlockId, on_false: BlockId) -> InstId {
        self.push(
            Inst::new(Opcode::CondBr, Type::Void, vec![cond])
                .with_data(InstData::CondBr { on_true, on_false }),
        )
    }

    /// `ret void` or `ret <ty> %v`.
    pub fn ret(&mut self, value: Option<Value>) -> InstId {
        let ops = value.into_iter().collect();
        self.push(Inst::new(Opcode::Ret, Type::Void, ops))
    }
}

/// The pointer type produced by a GEP with `n_indices` indices over
/// `base_ty` (first index steps the pointer, the rest step into arrays).
pub fn gep_result_type(base_ty: &Type, n_indices: usize) -> Type {
    let mut t = base_ty.clone();
    for _ in 1..n_indices {
        t = match t {
            Type::Array(_, e) => (*e).clone(),
            other => other,
        };
    }
    t.ptr_to()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Param;

    #[test]
    fn builds_arith_and_ret() {
        let mut f = Function::new("f", vec![Param::new("x", Type::I32)], Type::I32);
        let entry = f.add_block("entry");
        let mut b = IrBuilder::new(&mut f, entry);
        let t = b.add(Type::I32, Value::Arg(0), Value::i32(4));
        let t2 = b.mul(Type::I32, t.clone(), t);
        b.ret(Some(t2));
        assert_eq!(f.num_insts(), 3);
        assert_eq!(f.inst(2).opcode, Opcode::Ret);
    }

    #[test]
    fn gep_result_type_steps_arrays() {
        let ty = Type::Float.array_of(8).array_of(4); // [4 x [8 x float]]
        assert_eq!(gep_result_type(&ty, 1), ty.ptr_to());
        assert_eq!(gep_result_type(&ty, 2), Type::Float.array_of(8).ptr_to());
        assert_eq!(gep_result_type(&ty, 3), Type::Float.ptr_to());
    }

    #[test]
    fn alloca_load_store_round() {
        let mut f = Function::new("f", vec![], Type::Void);
        let entry = f.add_block("entry");
        let mut b = IrBuilder::new(&mut f, entry);
        let slot = b.alloca(Type::Float, "buf");
        b.store(Value::f32(2.0), slot.clone(), 4);
        let v = b.load(Type::Float, slot);
        assert_eq!(f.value_type(&crate::Module::new("m"), &v), Type::Float);
        assert_eq!(f.count_opcode(Opcode::Alloca), 1);
        assert_eq!(f.count_opcode(Opcode::Store), 1);
    }

    #[test]
    fn phi_incoming_edges() {
        let mut f = Function::new("f", vec![], Type::Void);
        let a = f.add_block("a");
        let c = f.add_block("c");
        let mut b = IrBuilder::new(&mut f, c);
        let phi = b.phi(Type::I32);
        b.phi_add_incoming(phi, Value::i32(1), a);
        b.phi_add_incoming(phi, Value::i32(2), c);
        let inst = f.inst(phi);
        assert_eq!(inst.operands.len(), 2);
        match &inst.data {
            InstData::Phi { incoming } => assert_eq!(incoming, &vec![a, c]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn void_call_returns_unusable_handle() {
        let mut f = Function::new("f", vec![], Type::Void);
        let entry = f.add_block("entry");
        let mut b = IrBuilder::new(&mut f, entry);
        let v = b.call("ext", Type::Void, vec![]);
        assert_eq!(v, Value::Undef(Type::Void));
        let v2 = b.call("ext2", Type::I32, vec![]);
        assert!(matches!(v2, Value::Inst(_)));
    }

    #[test]
    fn terminators() {
        let mut f = Function::new("f", vec![], Type::Void);
        let a = f.add_block("a");
        let t = f.add_block("t");
        let e = f.add_block("e");
        let mut b = IrBuilder::new(&mut f, a);
        let c = b.icmp(IntPred::Slt, Value::i32(1), Value::i32(2));
        b.cond_br(c, t, e);
        b.position_at(t);
        b.br(e);
        b.position_at(e);
        b.ret(None);
        assert_eq!(
            f.terminator(a).map(|i| f.inst(i).successors()),
            Some(vec![t, e])
        );
    }
}
