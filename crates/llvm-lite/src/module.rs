//! Module, function, block and global containers.
//!
//! Functions own two arenas — one for instructions, one for blocks — and a
//! `block_order` giving layout order. Instruction ids are stable across
//! edits; deleting an instruction tombstones its arena slot (`removed`
//! flag) rather than shifting indices, so passes can hold ids across
//! mutations.

use std::collections::BTreeMap;

use crate::inst::{Inst, InstData, Opcode};
use crate::metadata::LoopMetadata;
use crate::types::Type;
use crate::value::Value;

/// Index of an [`Inst`] in `Function::insts`.
pub type InstId = u32;
/// Index of a [`Block`] in `Function::blocks`.
pub type BlockId = u32;

/// A basic block: a label, the ordered instruction list, and a tombstone
/// flag used by CFG transforms.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Label name (unique within the function after verification).
    pub name: String,
    /// Instruction ids in execution order; the last one is the terminator.
    pub insts: Vec<InstId>,
    /// True once the block has been unlinked from the function.
    pub removed: bool,
}

impl Block {
    /// An empty block with the given label.
    pub fn new(name: impl Into<String>) -> Block {
        Block {
            name: name.into(),
            insts: Vec::new(),
            removed: false,
        }
    }
}

/// A formal function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name (without the `%` sigil).
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// Per-parameter string attributes. The lowering pipeline stashes shape
    /// facts here (e.g. `mha.shape = "32x32xfloat"`) and the adaptor turns
    /// them into HLS interface ports.
    pub attrs: BTreeMap<String, String>,
}

impl Param {
    /// A parameter without attributes.
    pub fn new(name: impl Into<String>, ty: Type) -> Param {
        Param {
            name: name.into(),
            ty,
            attrs: BTreeMap::new(),
        }
    }
}

/// One function: signature, arenas, and layout.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Symbol name (without the `@` sigil).
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Return type.
    pub ret_ty: Type,
    /// Declaration-only functions have no body (external / intrinsic).
    pub is_declaration: bool,
    /// Instruction arena. Slots may be tombstoned; use
    /// [`Function::inst`]/[`Function::inst_mut`] for checked access.
    pub insts: Vec<Inst>,
    /// Tombstone flags parallel to `insts`.
    pub inst_removed: Vec<bool>,
    /// Block arena.
    pub blocks: Vec<Block>,
    /// Layout order of live blocks; the first entry is the entry block.
    pub block_order: Vec<BlockId>,
    /// Function-level string attributes (`hls.top`, interface modes, ...).
    pub attrs: BTreeMap<String, String>,
}

impl Function {
    /// A new empty function definition.
    pub fn new(name: impl Into<String>, params: Vec<Param>, ret_ty: Type) -> Function {
        Function {
            name: name.into(),
            params,
            ret_ty,
            is_declaration: false,
            insts: Vec::new(),
            inst_removed: Vec::new(),
            blocks: Vec::new(),
            block_order: Vec::new(),
            attrs: BTreeMap::new(),
        }
    }

    /// A declaration (no body).
    pub fn declaration(name: impl Into<String>, params: Vec<Param>, ret_ty: Type) -> Function {
        let mut f = Function::new(name, params, ret_ty);
        f.is_declaration = true;
        f
    }

    /// Append a new block to the layout; returns its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = self.blocks.len() as BlockId;
        self.blocks.push(Block::new(name));
        self.block_order.push(id);
        id
    }

    /// The entry block id. Panics on declarations.
    pub fn entry(&self) -> BlockId {
        self.block_order[0]
    }

    /// Checked instruction access (panics on a tombstoned id — that is a
    /// pass bug, not a recoverable condition).
    pub fn inst(&self, id: InstId) -> &Inst {
        assert!(
            !self.inst_removed[id as usize],
            "use of removed instruction %{id}"
        );
        &self.insts[id as usize]
    }

    /// Mutable counterpart of [`Function::inst`].
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        assert!(
            !self.inst_removed[id as usize],
            "use of removed instruction %{id}"
        );
        &mut self.insts[id as usize]
    }

    /// Whether an instruction id is live.
    pub fn is_live(&self, id: InstId) -> bool {
        (id as usize) < self.insts.len() && !self.inst_removed[id as usize]
    }

    /// Block access.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id as usize]
    }

    /// Mutable block access.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id as usize]
    }

    /// Allocate an instruction in the arena and append it to `block`.
    pub fn push_inst(&mut self, block: BlockId, inst: Inst) -> InstId {
        let id = self.insts.len() as InstId;
        self.insts.push(inst);
        self.inst_removed.push(false);
        self.blocks[block as usize].insts.push(id);
        id
    }

    /// Allocate an instruction and insert it at `pos` within `block`.
    pub fn insert_inst(&mut self, block: BlockId, pos: usize, inst: Inst) -> InstId {
        let id = self.insts.len() as InstId;
        self.insts.push(inst);
        self.inst_removed.push(false);
        self.blocks[block as usize].insts.insert(pos, id);
        id
    }

    /// Unlink an instruction from its block and tombstone it.
    pub fn remove_inst(&mut self, id: InstId) {
        for b in &mut self.blocks {
            b.insts.retain(|&i| i != id);
        }
        self.inst_removed[id as usize] = true;
    }

    /// Unlink a block from the layout and tombstone it (instructions inside
    /// are tombstoned too).
    pub fn remove_block(&mut self, id: BlockId) {
        self.block_order.retain(|&b| b != id);
        let insts = std::mem::take(&mut self.blocks[id as usize].insts);
        for i in insts {
            self.inst_removed[i as usize] = true;
        }
        self.blocks[id as usize].removed = true;
    }

    /// The block that currently contains `id`, if any.
    pub fn block_of(&self, id: InstId) -> Option<BlockId> {
        self.block_order
            .iter()
            .find(|&&b| self.blocks[b as usize].insts.contains(&id))
            .copied()
    }

    /// The terminator of a block, if it has one.
    pub fn terminator(&self, block: BlockId) -> Option<InstId> {
        let last = *self.blocks[block as usize].insts.last()?;
        self.inst(last).is_terminator().then_some(last)
    }

    /// Iterate over `(BlockId, InstId)` pairs of all live instructions in
    /// layout order.
    pub fn inst_ids(&self) -> Vec<(BlockId, InstId)> {
        let mut out = Vec::new();
        for &b in &self.block_order {
            for &i in &self.blocks[b as usize].insts {
                out.push((b, i));
            }
        }
        out
    }

    /// Resolve the type of any value in the context of this function (and
    /// the module for globals).
    pub fn value_type(&self, module: &Module, v: &Value) -> Type {
        match v {
            Value::Arg(i) => self.params[*i as usize].ty.clone(),
            Value::Inst(id) => self.inst(*id).ty.clone(),
            Value::Global(name) => module
                .global(name)
                .map(|g| g.ty.ptr_to())
                .unwrap_or(Type::I8.ptr_to()),
            other => other.const_type().cloned().expect("typed constant"),
        }
    }

    /// Replace every use of `from` with `to` across all live instructions.
    /// Returns the number of operand slots rewritten.
    pub fn replace_all_uses(&mut self, from: &Value, to: &Value) -> usize {
        let mut n = 0;
        for (idx, inst) in self.insts.iter_mut().enumerate() {
            if self.inst_removed[idx] {
                continue;
            }
            for op in &mut inst.operands {
                if op == from {
                    *op = to.clone();
                    n += 1;
                }
            }
        }
        n
    }

    /// Number of live instructions.
    pub fn num_insts(&self) -> usize {
        self.inst_removed.iter().filter(|r| !**r).count()
    }

    /// Count live instructions with the given opcode.
    pub fn count_opcode(&self, op: Opcode) -> usize {
        self.inst_ids()
            .iter()
            .filter(|(_, i)| self.inst(*i).opcode == op)
            .count()
    }

    /// Look up a block id by label.
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.block_order
            .iter()
            .copied()
            .find(|&b| self.blocks[b as usize].name == name)
    }

    /// Rewrite PHI incoming-block references after a CFG edit.
    pub fn replace_phi_incoming(&mut self, block: BlockId, from: BlockId, to: BlockId) {
        let ids: Vec<InstId> = self.blocks[block as usize].insts.clone();
        for id in ids {
            let inst = self.inst_mut(id);
            if let InstData::Phi { incoming } = &mut inst.data {
                for b in incoming {
                    if *b == from {
                        *b = to;
                    }
                }
            }
        }
    }
}

/// Constant initializer of a global.
#[derive(Clone, Debug, PartialEq)]
pub enum GlobalInit {
    /// `zeroinitializer`.
    Zero,
    /// Scalar integer constant.
    Int(i128),
    /// Scalar floating constant (bits of the f64 encoding).
    Float(u64),
    /// Array of nested initializers.
    Array(Vec<GlobalInit>),
}

/// A module-level global variable.
#[derive(Clone, Debug, PartialEq)]
pub struct Global {
    /// Symbol name (without `@`).
    pub name: String,
    /// Value type of the global (the symbol itself has type `ty*`).
    pub ty: Type,
    /// Initializer; `None` prints as an external declaration.
    pub init: Option<GlobalInit>,
    /// `constant` vs `global`.
    pub is_const: bool,
    /// Alignment in bytes (0 = natural).
    pub align: u32,
}

/// A whole translation unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Module {
    /// Module identifier (source name).
    pub name: String,
    /// Optional target triple string.
    pub target_triple: Option<String>,
    /// Globals in declaration order.
    pub globals: Vec<Global>,
    /// Functions in declaration order.
    pub functions: Vec<Function>,
    /// Loop metadata nodes referenced by `Inst::loop_md`.
    pub loop_mds: Vec<LoopMetadata>,
}

impl Module {
    /// An empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            ..Module::default()
        }
    }

    /// Find a function by symbol name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable [`Module::function`].
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Find a global by symbol name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Intern a loop metadata node, returning its id. Structurally equal
    /// nodes are shared.
    pub fn add_loop_md(&mut self, md: LoopMetadata) -> crate::metadata::MdId {
        if let Some(pos) = self.loop_mds.iter().position(|m| *m == md) {
            return pos as crate::metadata::MdId;
        }
        self.loop_mds.push(md);
        (self.loop_mds.len() - 1) as crate::metadata::MdId
    }

    /// The function marked as HLS top (attribute `hls.top`), else the first
    /// definition.
    pub fn top_function(&self) -> Option<&Function> {
        self.functions
            .iter()
            .find(|f| f.attrs.contains_key("hls.top"))
            .or_else(|| self.functions.iter().find(|f| !f.is_declaration))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_fn() -> Function {
        let mut f = Function::new("f", vec![Param::new("x", Type::I32)], Type::I32);
        let b = f.add_block("entry");
        let add = f.push_inst(
            b,
            Inst::new(Opcode::Add, Type::I32, vec![Value::Arg(0), Value::i32(1)]),
        );
        f.push_inst(
            b,
            Inst::new(Opcode::Ret, Type::Void, vec![Value::Inst(add)]),
        );
        f
    }

    #[test]
    fn push_and_lookup() {
        let f = simple_fn();
        assert_eq!(f.num_insts(), 2);
        assert_eq!(f.entry(), 0);
        assert_eq!(f.terminator(0), Some(1));
        assert_eq!(f.block_of(0), Some(0));
        assert_eq!(f.count_opcode(Opcode::Add), 1);
    }

    #[test]
    fn remove_tombstones() {
        let mut f = simple_fn();
        f.remove_inst(0);
        assert_eq!(f.num_insts(), 1);
        assert!(!f.is_live(0));
        assert!(f.is_live(1));
        assert_eq!(f.block(0).insts, vec![1]);
    }

    #[test]
    #[should_panic(expected = "use of removed instruction")]
    fn access_removed_panics() {
        let mut f = simple_fn();
        f.remove_inst(0);
        let _ = f.inst(0);
    }

    #[test]
    fn replace_all_uses_rewrites_operands() {
        let mut f = simple_fn();
        let n = f.replace_all_uses(&Value::Arg(0), &Value::i32(7));
        assert_eq!(n, 1);
        assert_eq!(f.inst(0).operands[0], Value::i32(7));
    }

    #[test]
    fn value_type_resolution() {
        let m = Module::new("m");
        let f = simple_fn();
        assert_eq!(f.value_type(&m, &Value::Arg(0)), Type::I32);
        assert_eq!(f.value_type(&m, &Value::Inst(0)), Type::I32);
        assert_eq!(f.value_type(&m, &Value::f32(1.0)), Type::Float);
    }

    #[test]
    fn remove_block_tombstones_contents() {
        let mut f = simple_fn();
        let b2 = f.add_block("dead");
        let i = f.push_inst(b2, Inst::new(Opcode::Unreachable, Type::Void, vec![]));
        f.remove_block(b2);
        assert!(!f.is_live(i));
        assert_eq!(f.block_order, vec![0]);
        assert!(f.blocks[b2 as usize].removed);
    }

    #[test]
    fn module_lookup_and_md_interning() {
        let mut m = Module::new("m");
        m.functions.push(simple_fn());
        assert!(m.function("f").is_some());
        assert!(m.function("g").is_none());
        let a = m.add_loop_md(LoopMetadata::pipelined(1));
        let b = m.add_loop_md(LoopMetadata::pipelined(1));
        let c = m.add_loop_md(LoopMetadata::unrolled(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.loop_mds.len(), 2);
    }

    #[test]
    fn top_function_prefers_attribute() {
        let mut m = Module::new("m");
        m.functions.push(simple_fn());
        let mut g = simple_fn();
        g.name = "top".into();
        g.attrs.insert("hls.top".into(), "1".into());
        m.functions.push(g);
        assert_eq!(m.top_function().unwrap().name, "top");
    }

    #[test]
    fn phi_incoming_rewrite() {
        let mut f = Function::new("f", vec![], Type::Void);
        let b0 = f.add_block("a");
        let b1 = f.add_block("b");
        let phi = f.push_inst(
            b1,
            Inst::new(Opcode::Phi, Type::I32, vec![Value::i32(1)])
                .with_data(InstData::Phi { incoming: vec![b0] }),
        );
        f.replace_phi_incoming(b1, b0, 9);
        match &f.inst(phi).data {
            InstData::Phi { incoming } => assert_eq!(incoming, &vec![9]),
            _ => unreachable!(),
        }
    }
}
