//! Function-level analyses: CFG utilities, dominator tree, natural loops
//! and def-use chains.
//!
//! All analyses are computed on demand from a snapshot of the function; they
//! do not auto-invalidate. Passes recompute after mutating — functions here
//! are cheap (linear or near-linear) at the scale of HLS kernels.

use std::collections::{HashMap, HashSet};

use crate::inst::InstData;
use crate::module::{BlockId, Function, InstId};
use crate::value::Value;

/// Predecessor/successor maps plus a reverse-post-order of reachable blocks.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Successors of each block (indexed by `BlockId as usize`).
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors of each block.
    pub preds: Vec<Vec<BlockId>>,
    /// Reverse post order over reachable blocks, starting at the entry.
    pub rpo: Vec<BlockId>,
}

impl Cfg {
    /// Compute the CFG of `f`.
    pub fn build(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for &b in &f.block_order {
            if let Some(t) = f.terminator(b) {
                for s in f.inst(t).successors() {
                    succs[b as usize].push(s);
                    preds[s as usize].push(b);
                }
            }
        }
        // Post-order DFS from the entry.
        let mut rpo = Vec::new();
        if !f.block_order.is_empty() {
            let mut visited = vec![false; n];
            let mut stack = vec![(f.entry(), 0usize)];
            visited[f.entry() as usize] = true;
            while let Some((b, i)) = stack.pop() {
                if i < succs[b as usize].len() {
                    stack.push((b, i + 1));
                    let s = succs[b as usize][i];
                    if !visited[s as usize] {
                        visited[s as usize] = true;
                        stack.push((s, 0));
                    }
                } else {
                    rpo.push(b);
                }
            }
            rpo.reverse();
        }
        Cfg { succs, preds, rpo }
    }

    /// Blocks unreachable from the entry (in layout order).
    pub fn unreachable_blocks(&self, f: &Function) -> Vec<BlockId> {
        let reached: HashSet<BlockId> = self.rpo.iter().copied().collect();
        f.block_order
            .iter()
            .copied()
            .filter(|b| !reached.contains(b))
            .collect()
    }
}

/// Immediate-dominator tree (Cooper–Harvey–Kennedy iterative algorithm).
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b]` — immediate dominator of `b`; the entry maps to itself.
    /// Unreachable blocks map to `None`.
    pub idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
}

impl DomTree {
    /// Compute dominators over the given CFG.
    pub fn build(f: &Function, cfg: &Cfg) -> DomTree {
        let n = f.blocks.len();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in cfg.rpo.iter().enumerate() {
            rpo_index[b as usize] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if cfg.rpo.is_empty() {
            return DomTree { idom, rpo_index };
        }
        let entry = cfg.rpo[0];
        idom[entry as usize] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b as usize] {
                    if idom[p as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b as usize] != new_idom {
                    idom[b as usize] = new_idom;
                    changed = true;
                }
            }
        }
        DomTree { idom, rpo_index }
    }

    /// Does `a` dominate `b`? (Reflexive.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur as usize] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// The RPO index of a block (used as a topological key by schedulers).
    pub fn rpo_index(&self, b: BlockId) -> usize {
        self.rpo_index[b as usize]
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a as usize] > rpo_index[b as usize] {
            a = idom[a as usize].expect("processed");
        }
        while rpo_index[b as usize] > rpo_index[a as usize] {
            b = idom[b as usize].expect("processed");
        }
    }
    a
}

/// One natural loop: header, latches, and the full body set.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// Loop header (target of the back edge).
    pub header: BlockId,
    /// Source blocks of back edges into the header.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, header included.
    pub body: Vec<BlockId>,
    /// Header of the innermost enclosing loop, if any.
    pub parent: Option<BlockId>,
}

impl NaturalLoop {
    /// Depth-1 test.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// The loop forest of a function.
#[derive(Clone, Debug, Default)]
pub struct LoopInfo {
    /// All natural loops, outermost-first within a nest.
    pub loops: Vec<NaturalLoop>,
}

impl LoopInfo {
    /// Find back edges via the dominator tree and flood-fill loop bodies.
    pub fn build(_f: &Function, cfg: &Cfg, dom: &DomTree) -> LoopInfo {
        let mut headers: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &b in &cfg.rpo {
            for &s in &cfg.succs[b as usize] {
                if dom.dominates(s, b) {
                    headers.entry(s).or_default().push(b);
                }
            }
        }
        let mut loops = Vec::new();
        let mut hdrs: Vec<BlockId> = headers.keys().copied().collect();
        hdrs.sort_unstable();
        for header in hdrs {
            let latches = headers[&header].clone();
            let mut body: HashSet<BlockId> = HashSet::new();
            body.insert(header);
            let mut work: Vec<BlockId> = latches.clone();
            while let Some(b) = work.pop() {
                if body.insert(b) {
                    for &p in &cfg.preds[b as usize] {
                        work.push(p);
                    }
                } else if b != header {
                    // already visited
                }
            }
            let mut body: Vec<BlockId> = body.into_iter().collect();
            body.sort_unstable();
            loops.push(NaturalLoop {
                header,
                latches,
                body,
                parent: None,
            });
        }
        // Establish nesting: a loop's parent is the smallest other loop whose
        // body strictly contains its header.
        let snapshots: Vec<(BlockId, Vec<BlockId>)> =
            loops.iter().map(|l| (l.header, l.body.clone())).collect();
        for l in &mut loops {
            let mut best: Option<(usize, BlockId)> = None;
            for (h, body) in &snapshots {
                if *h != l.header
                    && body.contains(&l.header)
                    && best.map(|(n, _)| body.len() < n).unwrap_or(true)
                {
                    best = Some((body.len(), *h));
                }
            }
            l.parent = best.map(|(_, h)| h);
        }
        // Sort outermost-first (larger bodies first), stable within.
        loops.sort_by_key(|l| std::cmp::Reverse(l.body.len()));
        LoopInfo { loops }
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .min_by_key(|l| l.body.len())
    }

    /// The loop with the given header.
    pub fn loop_with_header(&self, header: BlockId) -> Option<&NaturalLoop> {
        self.loops.iter().find(|l| l.header == header)
    }

    /// Loops that have no child loop (innermost).
    pub fn innermost_loops(&self) -> Vec<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| {
                !self
                    .loops
                    .iter()
                    .any(|other| other.parent == Some(l.header))
            })
            .collect()
    }

    /// Nesting depth of the loop with the given header (1 = top-level loop).
    pub fn depth(&self, header: BlockId) -> usize {
        let mut d = 0;
        let mut cur = Some(header);
        while let Some(h) = cur {
            d += 1;
            cur = self.loop_with_header(h).and_then(|l| l.parent);
        }
        d
    }
}

/// Def-use chains: for each instruction, the set of instructions that
/// consume its result.
#[derive(Clone, Debug, Default)]
pub struct DefUse {
    /// `users[i]` — instructions using `%i`'s result.
    pub users: HashMap<InstId, Vec<InstId>>,
    /// Users of each argument index.
    pub arg_users: HashMap<u32, Vec<InstId>>,
}

impl DefUse {
    /// Compute def-use over all live instructions.
    pub fn build(f: &Function) -> DefUse {
        let mut du = DefUse::default();
        for (_, id) in f.inst_ids() {
            for op in &f.inst(id).operands {
                match op {
                    Value::Inst(d) => du.users.entry(*d).or_default().push(id),
                    Value::Arg(a) => du.arg_users.entry(*a).or_default().push(id),
                    _ => {}
                }
            }
        }
        du
    }

    /// Number of uses of an instruction result.
    pub fn num_uses(&self, id: InstId) -> usize {
        self.users.get(&id).map(Vec::len).unwrap_or(0)
    }
}

/// Recognize a canonical counted loop (`for (i = C0; i <pred> C1; i += Cs)`)
/// and return its trip count. Handles both header-compare and rotated
/// (latch-compare on the incremented value) forms. Returns `None` when the
/// loop is not recognizably counted.
pub fn counted_loop_tripcount(f: &Function, l: &NaturalLoop) -> Option<u64> {
    use crate::inst::{IntPred, Opcode};
    let header = l.header;
    for &phi_id in &f.block(header).insts {
        let phi = f.inst(phi_id);
        let InstData::Phi { incoming } = &phi.data else {
            break;
        };
        let mut init: Option<i128> = None;
        let mut step: Option<i128> = None;
        for (v, b) in phi.operands.iter().zip(incoming) {
            if l.body.contains(b) {
                // Latch edge: must be add(phi, const) (either order).
                let Value::Inst(add_id) = v else { continue };
                let add = f.inst(*add_id);
                if add.opcode != Opcode::Add {
                    continue;
                }
                let (a, b2) = (&add.operands[0], &add.operands[1]);
                if *a == Value::Inst(phi_id) {
                    step = b2.int_value();
                } else if *b2 == Value::Inst(phi_id) {
                    step = a.int_value();
                }
            } else {
                init = v.int_value();
            }
        }
        let (Some(init), Some(step)) = (init, step) else {
            continue;
        };
        if step <= 0 {
            continue;
        }
        // Find the exit compare: icmp {slt,ult,sle,ule} (phi|next), const.
        for (_, id) in f.inst_ids() {
            let inst = f.inst(id);
            if inst.opcode != Opcode::ICmp {
                continue;
            }
            let InstData::ICmp(pred) = inst.data else {
                continue;
            };
            let lhs_is_iv = inst.operands[0] == Value::Inst(phi_id);
            let lhs_is_next = match &inst.operands[0] {
                Value::Inst(x) => {
                    let xi = f.inst(*x);
                    xi.opcode == Opcode::Add && xi.operands.contains(&Value::Inst(phi_id))
                }
                _ => false,
            };
            if !lhs_is_iv && !lhs_is_next {
                continue;
            }
            let Some(bound) = inst.operands[1].int_value() else {
                continue;
            };
            let first = if lhs_is_next { init + step } else { init };
            let n = match pred {
                IntPred::Slt | IntPred::Ult => (bound - first + step - 1).div_euclid(step),
                IntPred::Sle | IntPred::Ule => (bound - first + step).div_euclid(step),
                _ => continue,
            };
            if n < 0 {
                return Some(0);
            }
            let total = n + i128::from(lhs_is_next);
            return Some(total as u64);
        }
    }
    None
}

/// The induction-variable PHI of a counted loop, if recognizable (the phi in
/// the header with one constant incoming and one self-increment incoming).
pub fn loop_induction_phi(f: &Function, l: &NaturalLoop) -> Option<InstId> {
    use crate::inst::Opcode;
    for &phi_id in &f.block(l.header).insts {
        let phi = f.inst(phi_id);
        let InstData::Phi { incoming } = &phi.data else {
            break;
        };
        for (v, b) in phi.operands.iter().zip(incoming) {
            if !l.body.contains(b) {
                continue;
            }
            if let Value::Inst(add_id) = v {
                let add = f.inst(*add_id);
                if add.opcode == Opcode::Add && add.operands.contains(&Value::Inst(phi_id)) {
                    return Some(phi_id);
                }
            }
        }
    }
    None
}

/// Count PHI nodes whose incoming lists mention `pred -> block` edges that
/// no longer exist — a cheap structural health check used in tests.
pub fn stale_phi_edges(f: &Function, cfg: &Cfg) -> usize {
    let mut stale = 0;
    for &b in &f.block_order {
        for &i in &f.blocks[b as usize].insts {
            if let InstData::Phi { incoming } = &f.inst(i).data {
                for inb in incoming {
                    if !cfg.preds[b as usize].contains(inb) {
                        stale += 1;
                    }
                }
            }
        }
    }
    stale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IrBuilder;
    use crate::inst::IntPred;
    use crate::module::{Function, Param};
    use crate::types::Type;
    use crate::value::Value;

    /// Build a canonical double loop nest:
    /// entry -> oh -> { ob -> ih -> { ib -> ih } -> olatch -> oh } -> exit
    fn nest() -> Function {
        let mut f = Function::new("nest", vec![Param::new("n", Type::I32)], Type::Void);
        let entry = f.add_block("entry");
        let oh = f.add_block("outer.header");
        let ob = f.add_block("outer.body");
        let ih = f.add_block("inner.header");
        let ib = f.add_block("inner.body");
        let ol = f.add_block("outer.latch");
        let exit = f.add_block("exit");
        let mut b = IrBuilder::new(&mut f, entry);
        b.br(oh);
        b.position_at(oh);
        let i = b.phi(Type::I32);
        b.phi_add_incoming(i, Value::i32(0), entry);
        let c = b.icmp(IntPred::Slt, Value::Inst(i), Value::Arg(0));
        b.cond_br(c, ob, exit);
        b.position_at(ob);
        b.br(ih);
        b.position_at(ih);
        let j = b.phi(Type::I32);
        b.phi_add_incoming(j, Value::i32(0), ob);
        let cj = b.icmp(IntPred::Slt, Value::Inst(j), Value::Arg(0));
        b.cond_br(cj, ib, ol);
        b.position_at(ib);
        let jn = b.add(Type::I32, Value::Inst(j), Value::i32(1));
        b.phi_add_incoming(j, jn, ib);
        b.br(ih);
        b.position_at(ol);
        let in_ = b.add(Type::I32, Value::Inst(i), Value::i32(1));
        b.phi_add_incoming(i, in_, ol);
        b.br(oh);
        b.position_at(exit);
        b.ret(None);
        f
    }

    #[test]
    fn cfg_edges_and_rpo() {
        let f = nest();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.rpo.len(), 7);
        assert_eq!(cfg.rpo[0], f.entry());
        let oh = f.block_by_name("outer.header").unwrap();
        assert_eq!(cfg.preds[oh as usize].len(), 2);
        assert!(cfg.unreachable_blocks(&f).is_empty());
    }

    #[test]
    fn unreachable_block_detection() {
        let mut f = nest();
        let dead = f.add_block("dead");
        {
            let mut b = IrBuilder::new(&mut f, dead);
            b.ret(None);
        }
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.unreachable_blocks(&f), vec![dead]);
    }

    #[test]
    fn dominator_relations() {
        let f = nest();
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&f, &cfg);
        let e = f.entry();
        let oh = f.block_by_name("outer.header").unwrap();
        let ih = f.block_by_name("inner.header").unwrap();
        let ib = f.block_by_name("inner.body").unwrap();
        let exit = f.block_by_name("exit").unwrap();
        assert!(dom.dominates(e, exit));
        assert!(dom.dominates(oh, ih));
        assert!(dom.dominates(ih, ib));
        assert!(!dom.dominates(ib, ih));
        assert!(dom.dominates(oh, oh));
    }

    #[test]
    fn loop_forest_shape() {
        let f = nest();
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&f, &cfg);
        let li = LoopInfo::build(&f, &cfg, &dom);
        assert_eq!(li.loops.len(), 2);
        let oh = f.block_by_name("outer.header").unwrap();
        let ih = f.block_by_name("inner.header").unwrap();
        let outer = li.loop_with_header(oh).unwrap();
        let inner = li.loop_with_header(ih).unwrap();
        assert!(outer.body.len() > inner.body.len());
        assert_eq!(inner.parent, Some(oh));
        assert_eq!(outer.parent, None);
        assert_eq!(li.depth(ih), 2);
        assert_eq!(li.depth(oh), 1);
        let innermost = li.innermost_loops();
        assert_eq!(innermost.len(), 1);
        assert_eq!(innermost[0].header, ih);
    }

    #[test]
    fn innermost_containing_picks_smallest() {
        let f = nest();
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&f, &cfg);
        let li = LoopInfo::build(&f, &cfg, &dom);
        let ib = f.block_by_name("inner.body").unwrap();
        let ol = f.block_by_name("outer.latch").unwrap();
        let ih = f.block_by_name("inner.header").unwrap();
        let oh = f.block_by_name("outer.header").unwrap();
        assert_eq!(li.innermost_containing(ib).unwrap().header, ih);
        assert_eq!(li.innermost_containing(ol).unwrap().header, oh);
    }

    #[test]
    fn def_use_counts() {
        let f = nest();
        let du = DefUse::build(&f);
        // Argument %n is compared twice.
        assert_eq!(du.arg_users.get(&0).map(Vec::len), Some(2));
        // The outer phi (first inst of outer.header) is used by icmp and add.
        let oh = f.block_by_name("outer.header").unwrap();
        let phi = f.blocks[oh as usize].insts[0];
        assert_eq!(du.num_uses(phi), 2);
    }

    #[test]
    fn stale_phi_detection() {
        let mut f = nest();
        let cfg = Cfg::build(&f);
        assert_eq!(stale_phi_edges(&f, &cfg), 0);
        // Break an edge: retarget entry's branch away from outer.header.
        let exit = f.block_by_name("exit").unwrap();
        let t = f.terminator(f.entry()).unwrap();
        let oh = f.block_by_name("outer.header").unwrap();
        f.inst_mut(t).replace_successor(oh, exit);
        let cfg = Cfg::build(&f);
        assert!(stale_phi_edges(&f, &cfg) > 0);
    }
}
