//! Instructions.
//!
//! An [`Inst`] is an opcode plus an operand list plus opcode-specific payload
//! ([`InstData`]). Control-flow successors live in the payload (not in the
//! operand list) so that rewriting passes can treat "all value operands"
//! uniformly.

use crate::metadata::MdId;
use crate::module::BlockId;
use crate::types::Type;
use crate::value::Value;

/// Instruction opcodes — the Vitis-relevant subset of LLVM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Opcode {
    // Integer binary ops.
    Add,
    Sub,
    Mul,
    SDiv,
    UDiv,
    SRem,
    URem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
    // Floating binary / unary ops.
    FAdd,
    FSub,
    FMul,
    FDiv,
    FRem,
    FNeg,
    // Comparisons.
    ICmp,
    FCmp,
    // Memory.
    Load,
    Store,
    Gep,
    Alloca,
    // Misc.
    Call,
    Select,
    Phi,
    // Casts.
    ZExt,
    SExt,
    Trunc,
    FPExt,
    FPTrunc,
    FPToSI,
    SIToFP,
    PtrToInt,
    IntToPtr,
    BitCast,
    // Terminators.
    Br,
    CondBr,
    Ret,
    Unreachable,
}

impl Opcode {
    /// True if this opcode ends a basic block.
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Opcode::Br | Opcode::CondBr | Opcode::Ret | Opcode::Unreachable
        )
    }

    /// True for the two-operand integer arithmetic/logic group.
    pub fn is_int_binop(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::SDiv
                | Opcode::UDiv
                | Opcode::SRem
                | Opcode::URem
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Shl
                | Opcode::LShr
                | Opcode::AShr
        )
    }

    /// True for the two-operand floating group (`fneg` excluded).
    pub fn is_float_binop(self) -> bool {
        matches!(
            self,
            Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv | Opcode::FRem
        )
    }

    /// True for every cast opcode.
    pub fn is_cast(self) -> bool {
        matches!(
            self,
            Opcode::ZExt
                | Opcode::SExt
                | Opcode::Trunc
                | Opcode::FPExt
                | Opcode::FPTrunc
                | Opcode::FPToSI
                | Opcode::SIToFP
                | Opcode::PtrToInt
                | Opcode::IntToPtr
                | Opcode::BitCast
        )
    }

    /// Whether the instruction may read or write memory or have other side
    /// effects; such instructions are never dead-code-eliminated.
    pub fn has_side_effects(self) -> bool {
        matches!(self, Opcode::Store | Opcode::Call) || self.is_terminator()
    }

    /// The textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::SDiv => "sdiv",
            Opcode::UDiv => "udiv",
            Opcode::SRem => "srem",
            Opcode::URem => "urem",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Shl => "shl",
            Opcode::LShr => "lshr",
            Opcode::AShr => "ashr",
            Opcode::FAdd => "fadd",
            Opcode::FSub => "fsub",
            Opcode::FMul => "fmul",
            Opcode::FDiv => "fdiv",
            Opcode::FRem => "frem",
            Opcode::FNeg => "fneg",
            Opcode::ICmp => "icmp",
            Opcode::FCmp => "fcmp",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::Gep => "getelementptr",
            Opcode::Alloca => "alloca",
            Opcode::Call => "call",
            Opcode::Select => "select",
            Opcode::Phi => "phi",
            Opcode::ZExt => "zext",
            Opcode::SExt => "sext",
            Opcode::Trunc => "trunc",
            Opcode::FPExt => "fpext",
            Opcode::FPTrunc => "fptrunc",
            Opcode::FPToSI => "fptosi",
            Opcode::SIToFP => "sitofp",
            Opcode::PtrToInt => "ptrtoint",
            Opcode::IntToPtr => "inttoptr",
            Opcode::BitCast => "bitcast",
            Opcode::Br => "br",
            Opcode::CondBr => "br",
            Opcode::Ret => "ret",
            Opcode::Unreachable => "unreachable",
        }
    }
}

/// Integer comparison predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IntPred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
}

impl IntPred {
    /// Textual predicate keyword.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IntPred::Eq => "eq",
            IntPred::Ne => "ne",
            IntPred::Slt => "slt",
            IntPred::Sle => "sle",
            IntPred::Sgt => "sgt",
            IntPred::Sge => "sge",
            IntPred::Ult => "ult",
            IntPred::Ule => "ule",
            IntPred::Ugt => "ugt",
            IntPred::Uge => "uge",
        }
    }

    /// Parse a predicate keyword.
    pub fn from_mnemonic(s: &str) -> Option<IntPred> {
        Some(match s {
            "eq" => IntPred::Eq,
            "ne" => IntPred::Ne,
            "slt" => IntPred::Slt,
            "sle" => IntPred::Sle,
            "sgt" => IntPred::Sgt,
            "sge" => IntPred::Sge,
            "ult" => IntPred::Ult,
            "ule" => IntPred::Ule,
            "ugt" => IntPred::Ugt,
            "uge" => IntPred::Uge,
            _ => return None,
        })
    }
}

/// Floating comparison predicates (ordered subset plus `une`, which clang
/// emits for `!=`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FloatPred {
    Oeq,
    One,
    Olt,
    Ole,
    Ogt,
    Oge,
    Une,
    Ord,
    Uno,
}

impl FloatPred {
    /// Textual predicate keyword.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FloatPred::Oeq => "oeq",
            FloatPred::One => "one",
            FloatPred::Olt => "olt",
            FloatPred::Ole => "ole",
            FloatPred::Ogt => "ogt",
            FloatPred::Oge => "oge",
            FloatPred::Une => "une",
            FloatPred::Ord => "ord",
            FloatPred::Uno => "uno",
        }
    }

    /// Parse a predicate keyword.
    pub fn from_mnemonic(s: &str) -> Option<FloatPred> {
        Some(match s {
            "oeq" => FloatPred::Oeq,
            "one" => FloatPred::One,
            "olt" => FloatPred::Olt,
            "ole" => FloatPred::Ole,
            "ogt" => FloatPred::Ogt,
            "oge" => FloatPred::Oge,
            "une" => FloatPred::Une,
            "ord" => FloatPred::Ord,
            "uno" => FloatPred::Uno,
            _ => return None,
        })
    }
}

/// Opcode-specific payload.
#[derive(Clone, Debug, PartialEq)]
pub enum InstData {
    /// No extra payload.
    None,
    /// `icmp <pred>`.
    ICmp(IntPred),
    /// `fcmp <pred>`.
    FCmp(FloatPred),
    /// `alloca <allocated>, align <align>`; `count` is a static element
    /// count for array allocas expressed via the allocated type in text.
    Alloca { allocated: Type, align: u32 },
    /// `getelementptr [inbounds] <base_ty>, <base_ty>* %p, idx...`.
    Gep { base_ty: Type, inbounds: bool },
    /// `load <ty>, <ty>* %p, align <align>`.
    Load { align: u32 },
    /// `store <ty> %v, <ty>* %p, align <align>`.
    Store { align: u32 },
    /// `call <ret> @callee(args...)`.
    Call { callee: String },
    /// `phi <ty> [v0, %bb0], [v1, %bb1]` — blocks parallel to operands.
    Phi { incoming: Vec<BlockId> },
    /// `br label %dest`.
    Br { dest: BlockId },
    /// `br i1 %c, label %t, label %f`.
    CondBr { on_true: BlockId, on_false: BlockId },
}

/// One instruction. Result type is [`Type::Void`] for instructions that
/// produce no value.
#[derive(Clone, Debug, PartialEq)]
pub struct Inst {
    /// What the instruction does.
    pub opcode: Opcode,
    /// The type of the produced value (or `void`).
    pub ty: Type,
    /// Value operands, in textual order. Successor blocks are *not* here —
    /// see [`InstData`].
    pub operands: Vec<Value>,
    /// Result name hint used by the printer (empty = auto-number).
    pub name: String,
    /// Opcode-specific payload.
    pub data: InstData,
    /// `!llvm.loop` attachment — only meaningful on branch terminators; this
    /// is how HLS pipelining/unrolling directives ride on the IR.
    pub loop_md: Option<MdId>,
}

impl Inst {
    /// Create an instruction with no payload or metadata.
    pub fn new(opcode: Opcode, ty: Type, operands: Vec<Value>) -> Inst {
        Inst {
            opcode,
            ty,
            operands,
            name: String::new(),
            data: InstData::None,
            loop_md: None,
        }
    }

    /// Builder-style payload attachment.
    pub fn with_data(mut self, data: InstData) -> Inst {
        self.data = data;
        self
    }

    /// Builder-style result-name attachment.
    pub fn with_name(mut self, name: impl Into<String>) -> Inst {
        self.name = name.into();
        self
    }

    /// True if this instruction produces an SSA value.
    pub fn has_result(&self) -> bool {
        self.ty != Type::Void
    }

    /// True if this instruction terminates a block.
    pub fn is_terminator(&self) -> bool {
        self.opcode.is_terminator()
    }

    /// Successor blocks of a terminator (empty for `ret`/`unreachable`).
    pub fn successors(&self) -> Vec<BlockId> {
        match &self.data {
            InstData::Br { dest } => vec![*dest],
            InstData::CondBr { on_true, on_false } => vec![*on_true, *on_false],
            _ => Vec::new(),
        }
    }

    /// Replace a successor block id (used by CFG rewrites). Returns how many
    /// edges were redirected.
    pub fn replace_successor(&mut self, from: BlockId, to: BlockId) -> usize {
        let mut n = 0;
        match &mut self.data {
            InstData::Br { dest } if *dest == from => {
                *dest = to;
                n += 1;
            }
            InstData::CondBr { on_true, on_false } => {
                if *on_true == from {
                    *on_true = to;
                    n += 1;
                }
                if *on_false == from {
                    *on_false = to;
                    n += 1;
                }
            }
            _ => {}
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_classification() {
        assert!(Opcode::Br.is_terminator());
        assert!(Opcode::Ret.is_terminator());
        assert!(!Opcode::Add.is_terminator());
        assert!(Opcode::Mul.is_int_binop());
        assert!(Opcode::FMul.is_float_binop());
        assert!(!Opcode::FNeg.is_float_binop());
        assert!(Opcode::SExt.is_cast());
        assert!(Opcode::Store.has_side_effects());
        assert!(!Opcode::Load.has_side_effects());
    }

    #[test]
    fn predicate_round_trip() {
        for p in [
            IntPred::Eq,
            IntPred::Ne,
            IntPred::Slt,
            IntPred::Sle,
            IntPred::Sgt,
            IntPred::Sge,
            IntPred::Ult,
            IntPred::Ule,
            IntPred::Ugt,
            IntPred::Uge,
        ] {
            assert_eq!(IntPred::from_mnemonic(p.mnemonic()), Some(p));
        }
        for p in [
            FloatPred::Oeq,
            FloatPred::One,
            FloatPred::Olt,
            FloatPred::Ole,
            FloatPred::Ogt,
            FloatPred::Oge,
            FloatPred::Une,
            FloatPred::Ord,
            FloatPred::Uno,
        ] {
            assert_eq!(FloatPred::from_mnemonic(p.mnemonic()), Some(p));
        }
        assert_eq!(IntPred::from_mnemonic("bogus"), None);
        assert_eq!(FloatPred::from_mnemonic("bogus"), None);
    }

    #[test]
    fn successors_and_replacement() {
        let mut br = Inst::new(Opcode::CondBr, Type::Void, vec![Value::bool(true)]).with_data(
            InstData::CondBr {
                on_true: 1,
                on_false: 2,
            },
        );
        assert_eq!(br.successors(), vec![1, 2]);
        assert_eq!(br.replace_successor(2, 5), 1);
        assert_eq!(br.successors(), vec![1, 5]);
        assert_eq!(br.replace_successor(9, 0), 0);

        let ret = Inst::new(Opcode::Ret, Type::Void, vec![]);
        assert!(ret.successors().is_empty());
    }

    #[test]
    fn has_result_follows_type() {
        let add = Inst::new(Opcode::Add, Type::I32, vec![Value::i32(1), Value::i32(2)]);
        assert!(add.has_result());
        let st = Inst::new(Opcode::Store, Type::Void, vec![]);
        assert!(!st.has_result());
    }
}
