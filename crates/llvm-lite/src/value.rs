//! SSA values.
//!
//! A [`Value`] is a small, cheaply-clonable handle. Instruction results and
//! function arguments are indices into per-function arenas; constants are
//! carried inline (this mirrors LLVM, where constants are uniqued context
//! objects rather than instructions, and removes an entire class of
//! def-before-use bookkeeping for them).

use crate::module::InstId;
use crate::types::Type;

/// Any SSA value usable as an instruction operand.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// The `i`-th formal parameter of the enclosing function.
    Arg(u32),
    /// The result of an instruction in the enclosing function.
    Inst(InstId),
    /// An integer constant of the given type (value stored sign-extended).
    ConstInt { ty: Type, value: i128 },
    /// A floating constant; stored as the raw bits of the `f64` encoding so
    /// that equality/hashing stay total (NaN-safe).
    ConstFloat { ty: Type, bits: u64 },
    /// The address of a module-level global, typed as pointer-to-global-type.
    Global(String),
    /// A typed null pointer.
    NullPtr(Type),
    /// A typed undef.
    Undef(Type),
}

impl Value {
    /// Convenience constructor for an integer constant.
    pub fn const_int(ty: Type, value: i128) -> Value {
        Value::ConstInt { ty, value }
    }

    /// Convenience `i32` constant.
    pub fn i32(value: i32) -> Value {
        Value::ConstInt {
            ty: Type::I32,
            value: value as i128,
        }
    }

    /// Convenience `i64` constant.
    pub fn i64(value: i64) -> Value {
        Value::ConstInt {
            ty: Type::I64,
            value: value as i128,
        }
    }

    /// Convenience `i1` constant.
    pub fn bool(value: bool) -> Value {
        Value::ConstInt {
            ty: Type::I1,
            value: i128::from(value),
        }
    }

    /// Convenience `float` constant.
    pub fn f32(value: f32) -> Value {
        Value::ConstFloat {
            ty: Type::Float,
            bits: (value as f64).to_bits(),
        }
    }

    /// Convenience `double` constant.
    pub fn f64(value: f64) -> Value {
        Value::ConstFloat {
            ty: Type::Double,
            bits: value.to_bits(),
        }
    }

    /// The floating payload of a [`Value::ConstFloat`].
    pub fn float_value(&self) -> Option<f64> {
        match self {
            Value::ConstFloat { bits, .. } => Some(f64::from_bits(*bits)),
            _ => None,
        }
    }

    /// The integer payload of a [`Value::ConstInt`].
    pub fn int_value(&self) -> Option<i128> {
        match self {
            Value::ConstInt { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// True if this is any kind of constant (does not reference an arena).
    pub fn is_const(&self) -> bool {
        matches!(
            self,
            Value::ConstInt { .. }
                | Value::ConstFloat { .. }
                | Value::NullPtr(_)
                | Value::Undef(_)
                | Value::Global(_)
        )
    }

    /// The instruction id, if this value is an instruction result.
    pub fn as_inst(&self) -> Option<InstId> {
        match self {
            Value::Inst(id) => Some(*id),
            _ => None,
        }
    }

    /// The argument index, if this value is a function argument.
    pub fn as_arg(&self) -> Option<u32> {
        match self {
            Value::Arg(i) => Some(*i),
            _ => None,
        }
    }

    /// The type of the value when it is self-describing (constants). Arena
    /// values need the function: see `Function::value_type`.
    pub fn const_type(&self) -> Option<&Type> {
        match self {
            Value::ConstInt { ty, .. }
            | Value::ConstFloat { ty, .. }
            | Value::NullPtr(ty)
            | Value::Undef(ty) => Some(ty),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_constructors() {
        assert_eq!(
            Value::i32(7),
            Value::ConstInt {
                ty: Type::I32,
                value: 7
            }
        );
        assert_eq!(Value::bool(true).int_value(), Some(1));
        assert_eq!(Value::f32(1.5).float_value(), Some(1.5));
        assert_eq!(Value::f64(-2.25).float_value(), Some(-2.25));
    }

    #[test]
    fn nan_constants_compare_equal() {
        // Bit-level storage makes NaN == NaN for IR structural equality.
        assert_eq!(Value::f64(f64::NAN), Value::f64(f64::NAN));
    }

    #[test]
    fn classification() {
        assert!(Value::i32(0).is_const());
        assert!(Value::Global("g".into()).is_const());
        assert!(!Value::Inst(3).is_const());
        assert_eq!(Value::Inst(3).as_inst(), Some(3));
        assert_eq!(Value::Arg(2).as_arg(), Some(2));
        assert_eq!(Value::Arg(2).as_inst(), None);
    }

    #[test]
    fn const_type_lookup() {
        assert_eq!(Value::i64(1).const_type(), Some(&Type::I64));
        assert_eq!(
            Value::NullPtr(Type::Float.ptr_to()).const_type(),
            Some(&Type::Float.ptr_to())
        );
        assert_eq!(Value::Arg(0).const_type(), None);
    }
}
