//! Textual parser for the `.ll` subset emitted by [`crate::printer`].
//!
//! The grammar intentionally matches real LLVM closely (typed pointers,
//! `getelementptr inbounds <ty>, <ty>* %p, ...`, `phi T [v, %bb]`, trailing
//! `!llvm.loop !N`), so fixtures can be written by hand or pasted from real
//! compiler output, and the printer's output round-trips.
//!
//! Forward references (values used before their defining instruction, e.g.
//! by PHIs; blocks named before declared) are resolved with a fixup pass at
//! the end of each function.

use std::collections::HashMap;

use crate::inst::{FloatPred, Inst, InstData, IntPred, Opcode};
use crate::metadata::LoopMetadata;
use crate::module::{BlockId, Function, Global, GlobalInit, InstId, Module, Param};
use crate::types::Type;
use crate::value::Value;
use crate::{Error, Result};

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    /// Bare identifier or keyword (`define`, `i32`, `add`, `label`, ...).
    Word(String),
    /// `%name`.
    Local(String),
    /// `@name`.
    GlobalSym(String),
    /// `!7`.
    Meta(u32),
    /// `!"llvm.loop.pipeline.enable"`.
    MetaStr(String),
    /// `"text"`.
    Str(String),
    /// Decimal integer literal (optionally signed).
    Int(i128),
    /// `0x`-prefixed 16-digit float literal (f64 bits).
    HexFloat(u64),
    Punct(char),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek_byte() {
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                Some(b';') => {
                    while let Some(c) = self.peek_byte() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn ident_tail(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek_byte() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' || c == b'-' || c == b'$' {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn string_tail(&mut self) -> Result<String> {
        // Opening quote already consumed.
        let start = self.pos;
        while let Some(c) = self.peek_byte() {
            if c == b'"' {
                let s = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn next(&mut self) -> Result<Tok> {
        self.skip_ws_and_comments();
        let Some(c) = self.peek_byte() else {
            return Ok(Tok::Eof);
        };
        match c {
            b'%' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'"') {
                    self.pos += 1;
                    return Ok(Tok::Local(self.string_tail()?));
                }
                Ok(Tok::Local(self.ident_tail()))
            }
            b'@' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'"') {
                    self.pos += 1;
                    return Ok(Tok::GlobalSym(self.string_tail()?));
                }
                Ok(Tok::GlobalSym(self.ident_tail()))
            }
            b'!' => {
                self.pos += 1;
                match self.peek_byte() {
                    Some(b'"') => {
                        self.pos += 1;
                        Ok(Tok::MetaStr(self.string_tail()?))
                    }
                    Some(d) if d.is_ascii_digit() => {
                        let n = self.ident_tail();
                        n.parse::<u32>()
                            .map(Tok::Meta)
                            .map_err(|_| self.err("bad metadata id"))
                    }
                    _ => {
                        // `!llvm.loop` and similar named metadata keys.
                        Ok(Tok::Word(format!("!{}", self.ident_tail())))
                    }
                }
            }
            b'"' => {
                self.pos += 1;
                Ok(Tok::Str(self.string_tail()?))
            }
            b'0' if self.src.get(self.pos + 1) == Some(&b'x') => {
                self.pos += 2;
                let start = self.pos;
                while let Some(h) = self.peek_byte() {
                    if h.is_ascii_hexdigit() {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in hex literal"))?;
                u64::from_str_radix(text, 16)
                    .map(Tok::HexFloat)
                    .map_err(|_| self.err("bad hex float"))
            }
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                self.pos += 1;
                while let Some(d) = self.peek_byte() {
                    if d.is_ascii_digit() {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                // Reject floats like 1.5 explicitly — printer never emits
                // them, and silently truncating would corrupt constants.
                if self.peek_byte() == Some(b'.')
                    && self
                        .src
                        .get(self.pos + 1)
                        .map(|d| d.is_ascii_digit())
                        .unwrap_or(false)
                {
                    return Err(self.err("decimal float literals unsupported; use hex form"));
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in integer literal"))?;
                text.parse::<i128>()
                    .map(Tok::Int)
                    .map_err(|_| self.err("bad integer literal"))
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'.' => {
                Ok(Tok::Word(self.ident_tail()))
            }
            c => {
                self.pos += 1;
                Ok(Tok::Punct(c as char))
            }
        }
    }
}

struct Parser<'a> {
    lex: Lexer<'a>,
    tok: Tok,
    /// Current recursion depth through `parse_type`/`parse_init`; bounded
    /// so hostile input like `[1 x [1 x [1 x ...` becomes a located error
    /// instead of a stack overflow (which aborts and cannot be caught).
    depth: u32,
}

/// Deepest type/initializer nesting accepted. Real modules nest arrays two
/// or three levels; the bound only defends against adversarial input.
const MAX_NESTING_DEPTH: u32 = 16;

/// Placeholder value for a not-yet-defined `%name`; patched at function end.
struct Fixup {
    inst: InstId,
    operand: usize,
    name: String,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Parser<'a>> {
        let mut lex = Lexer::new(src);
        let tok = lex.next()?;
        Ok(Parser { lex, tok, depth: 0 })
    }

    fn enter_nesting(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(self.err(format!(
                "type/initializer nesting deeper than {MAX_NESTING_DEPTH} levels"
            )));
        }
        Ok(())
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        self.lex.err(msg)
    }

    fn bump(&mut self) -> Result<Tok> {
        let t = std::mem::replace(&mut self.tok, self.lex.next()?);
        Ok(t)
    }

    fn eat_punct(&mut self, c: char) -> Result<()> {
        if self.tok == Tok::Punct(c) {
            self.bump()?;
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}', got {:?}", self.tok)))
        }
    }

    fn eat_word(&mut self, w: &str) -> Result<()> {
        if self.tok == Tok::Word(w.to_string()) {
            self.bump()?;
            Ok(())
        } else {
            Err(self.err(format!("expected '{w}', got {:?}", self.tok)))
        }
    }

    fn at_word(&self, w: &str) -> bool {
        matches!(&self.tok, Tok::Word(s) if s == w)
    }

    fn take_word(&mut self) -> Result<String> {
        match self.bump()? {
            Tok::Word(w) => Ok(w),
            other => Err(self.err(format!("expected identifier, got {other:?}"))),
        }
    }

    // ---- types ------------------------------------------------------

    fn parse_type(&mut self) -> Result<Type> {
        let mut base = match self.bump()? {
            Tok::Word(w) => match w.as_str() {
                "void" => Type::Void,
                "float" => Type::Float,
                "double" => Type::Double,
                _ if w.starts_with('i') && w[1..].chars().all(|c| c.is_ascii_digit()) => {
                    let width: u32 = w[1..]
                        .parse()
                        .map_err(|_| self.err("bad integer type width"))?;
                    Type::Int(width)
                }
                _ => return Err(self.err(format!("unknown type '{w}'"))),
            },
            Tok::Punct('[') => {
                let n = match self.bump()? {
                    Tok::Int(n) if n >= 0 => n as u64,
                    other => return Err(self.err(format!("expected array length, got {other:?}"))),
                };
                self.eat_word("x")?;
                self.enter_nesting()?;
                let elem = self.parse_type();
                self.depth -= 1;
                let elem = elem?;
                self.eat_punct(']')?;
                Type::Array(n, Box::new(elem))
            }
            other => return Err(self.err(format!("expected type, got {other:?}"))),
        };
        while self.tok == Tok::Punct('*') {
            self.bump()?;
            base = base.ptr_to();
        }
        Ok(base)
    }

    // ---- values -----------------------------------------------------

    /// Parse a value of a known type. `%name` references are resolved via
    /// `names` or recorded in `pending` for fixup.
    fn parse_value(
        &mut self,
        ty: &Type,
        names: &HashMap<String, Value>,
        pending: &mut Vec<(usize, String)>,
        operand_index: usize,
    ) -> Result<Value> {
        match self.bump()? {
            Tok::Local(name) => match names.get(&name) {
                Some(v) => Ok(v.clone()),
                None => {
                    pending.push((operand_index, name));
                    Ok(Value::Undef(ty.clone()))
                }
            },
            Tok::GlobalSym(name) => Ok(Value::Global(name)),
            Tok::Int(v) => Ok(Value::ConstInt {
                ty: ty.clone(),
                value: v,
            }),
            Tok::HexFloat(bits) => Ok(Value::ConstFloat {
                ty: ty.clone(),
                bits,
            }),
            Tok::Word(w) if w == "null" => Ok(Value::NullPtr(ty.clone())),
            Tok::Word(w) if w == "undef" => Ok(Value::Undef(ty.clone())),
            Tok::Word(w) if w == "true" => Ok(Value::bool(true)),
            Tok::Word(w) if w == "false" => Ok(Value::bool(false)),
            other => Err(self.err(format!("expected value, got {other:?}"))),
        }
    }

    // ---- module-level -----------------------------------------------

    fn parse_module(&mut self, name: &str) -> Result<Module> {
        let mut m = Module::new(name);
        let mut raw_mds: HashMap<u32, RawMd> = HashMap::new();
        let mut md_uses: Vec<(String, InstId, u32)> = Vec::new(); // (func, inst, md no)
        loop {
            match &self.tok {
                Tok::Eof => break,
                Tok::Word(w) if w == "target" => {
                    self.bump()?;
                    self.eat_word("triple")?;
                    self.eat_punct('=')?;
                    match self.bump()? {
                        Tok::Str(s) => m.target_triple = Some(s),
                        other => return Err(self.err(format!("expected triple, got {other:?}"))),
                    }
                }
                Tok::Word(w) if w == "define" => {
                    self.bump()?;
                    let (f, uses) = self.parse_function(false)?;
                    for (inst, md) in uses {
                        md_uses.push((f.name.clone(), inst, md));
                    }
                    m.functions.push(f);
                }
                Tok::Word(w) if w == "declare" => {
                    self.bump()?;
                    let (f, _) = self.parse_function(true)?;
                    m.functions.push(f);
                }
                Tok::GlobalSym(_) => {
                    let g = self.parse_global()?;
                    m.globals.push(g);
                }
                Tok::Meta(_) => {
                    let (id, raw) = self.parse_md_def()?;
                    raw_mds.insert(id, raw);
                }
                other => return Err(self.err(format!("unexpected top-level token {other:?}"))),
            }
        }
        // Decode metadata graphs into LoopMetadata and patch references.
        let mut md_map: HashMap<u32, u32> = HashMap::new();
        let mut ordered: Vec<u32> = raw_mds.keys().copied().collect();
        ordered.sort_unstable();
        for id in ordered {
            if raw_mds[&id].distinct {
                let decoded = decode_loop_md(id, &raw_mds);
                let new_id = m.add_loop_md(decoded);
                md_map.insert(id, new_id);
            }
        }
        for (fname, inst, md) in md_uses {
            let Some(&new_id) = md_map.get(&md) else {
                return Err(Error::Parse {
                    line: 0,
                    msg: format!("!llvm.loop references unknown metadata !{md}"),
                });
            };
            if let Some(f) = m.function_mut(&fname) {
                f.inst_mut(inst).loop_md = Some(new_id);
            }
        }
        Ok(m)
    }

    fn parse_global(&mut self) -> Result<Global> {
        let name = match self.bump()? {
            Tok::GlobalSym(n) => n,
            other => return Err(self.err(format!("expected global symbol, got {other:?}"))),
        };
        self.eat_punct('=')?;
        let kind = self.take_word()?;
        let is_const = match kind.as_str() {
            "constant" => true,
            "global" => false,
            other => return Err(self.err(format!("expected global/constant, got '{other}'"))),
        };
        let ty = self.parse_type()?;
        let init = Some(self.parse_init(&ty)?);
        let mut align = 0u32;
        if self.tok == Tok::Punct(',') {
            self.bump()?;
            self.eat_word("align")?;
            align = match self.bump()? {
                Tok::Int(a) => a as u32,
                other => return Err(self.err(format!("expected alignment, got {other:?}"))),
            };
        }
        Ok(Global {
            name,
            ty,
            init,
            is_const,
            align,
        })
    }

    fn parse_init(&mut self, ty: &Type) -> Result<GlobalInit> {
        match self.bump()? {
            Tok::Word(w) if w == "zeroinitializer" => Ok(GlobalInit::Zero),
            Tok::Word(w) if w == "external" => Ok(GlobalInit::Zero),
            Tok::Int(v) => Ok(GlobalInit::Int(v)),
            Tok::HexFloat(bits) => Ok(GlobalInit::Float(bits)),
            Tok::Punct('[') => {
                let mut elems = Vec::new();
                let elem_ty = ty.array_elem().cloned().unwrap_or(Type::I8);
                loop {
                    if self.tok == Tok::Punct(']') {
                        self.bump()?;
                        break;
                    }
                    let _ety = self.parse_type()?;
                    self.enter_nesting()?;
                    let elem = self.parse_init(&elem_ty);
                    self.depth -= 1;
                    elems.push(elem?);
                    if self.tok == Tok::Punct(',') {
                        self.bump()?;
                    }
                }
                Ok(GlobalInit::Array(elems))
            }
            other => Err(self.err(format!("expected initializer, got {other:?}"))),
        }
    }

    fn parse_string_attrs(&mut self) -> Result<Vec<(String, String)>> {
        let mut attrs = Vec::new();
        while let Tok::Str(_) = &self.tok {
            let k = match self.bump()? {
                Tok::Str(s) => s,
                _ => unreachable!(),
            };
            self.eat_punct('=')?;
            let v = match self.bump()? {
                Tok::Str(s) => s,
                other => return Err(self.err(format!("expected attr value, got {other:?}"))),
            };
            attrs.push((k, v));
        }
        Ok(attrs)
    }

    // ---- functions ----------------------------------------------------

    fn parse_function(&mut self, is_decl: bool) -> Result<(Function, Vec<(InstId, u32)>)> {
        let ret_ty = self.parse_type()?;
        let name = match self.bump()? {
            Tok::GlobalSym(n) => n,
            other => return Err(self.err(format!("expected function name, got {other:?}"))),
        };
        self.eat_punct('(')?;
        let mut params = Vec::new();
        let mut anon = 0u32;
        while self.tok != Tok::Punct(')') {
            let ty = self.parse_type()?;
            let attrs = self.parse_string_attrs()?;
            let pname = match &self.tok {
                Tok::Local(_) => match self.bump()? {
                    Tok::Local(n) => n,
                    _ => unreachable!(),
                },
                _ => {
                    let n = format!("arg{anon}");
                    anon += 1;
                    n
                }
            };
            let mut p = Param::new(pname, ty);
            p.attrs.extend(attrs);
            params.push(p);
            if self.tok == Tok::Punct(',') {
                self.bump()?;
            }
        }
        self.eat_punct(')')?;
        let fn_attrs = self.parse_string_attrs()?;
        let mut f = if is_decl {
            Function::declaration(name, params, ret_ty)
        } else {
            Function::new(name, params, ret_ty)
        };
        f.attrs.extend(fn_attrs);
        let mut md_uses = Vec::new();
        if !is_decl {
            self.eat_punct('{')?;
            self.parse_body(&mut f, &mut md_uses)?;
            self.eat_punct('}')?;
        }
        Ok((f, md_uses))
    }

    fn parse_body(&mut self, f: &mut Function, md_uses: &mut Vec<(InstId, u32)>) -> Result<()> {
        let mut names: HashMap<String, Value> = HashMap::new();
        for (i, p) in f.params.iter().enumerate() {
            names.insert(p.name.clone(), Value::Arg(i as u32));
        }
        let mut blocks: HashMap<String, BlockId> = HashMap::new();
        let mut block_fixups: Vec<(InstId, String, SuccSlot)> = Vec::new();
        let mut value_fixups: Vec<Fixup> = Vec::new();
        let mut current: Option<BlockId> = None;
        let mut get_block = |f: &mut Function, blocks: &mut HashMap<String, BlockId>, n: &str| {
            if let Some(&b) = blocks.get(n) {
                return b;
            }
            let b = f.add_block(n);
            blocks.insert(n.to_string(), b);
            b
        };

        loop {
            match self.tok.clone() {
                Tok::Punct('}') => break,
                // A label: `name:`
                Tok::Word(w)
                    if {
                        // Peek: a word followed by ':' is a label.
                        // (Instructions without a result always start with a
                        // mnemonic that is never followed by ':'.)
                        self.lex.skip_ws_and_comments();
                        self.lex.peek_byte() == Some(b':')
                    } =>
                {
                    self.bump()?; // word
                    self.eat_punct(':')?;
                    let b = get_block(f, &mut blocks, &w);
                    // A block may have been created early by a forward
                    // branch reference; layout follows *definition* order.
                    f.block_order.retain(|&x| x != b);
                    f.block_order.push(b);
                    current = Some(b);
                }
                _ => {
                    let b = match current {
                        Some(b) => b,
                        None => {
                            // Implicit entry block, as real LLVM allows.
                            let b = get_block(f, &mut blocks, "entry");
                            current = Some(b);
                            b
                        }
                    };
                    self.parse_inst(
                        f,
                        b,
                        &mut names,
                        &mut blocks,
                        &mut get_block,
                        &mut value_fixups,
                        &mut block_fixups,
                        md_uses,
                    )?;
                }
            }
        }

        // Resolve value forward references.
        for fx in value_fixups {
            let Some(v) = names.get(&fx.name) else {
                return Err(self.err(format!("use of undefined value %{}", fx.name)));
            };
            let v = v.clone();
            f.inst_mut(fx.inst).operands[fx.operand] = v;
        }
        // Resolve successor label references (created eagerly, nothing to do)
        // — get_block already interned them; block_fixups kept for phis.
        for (inst, label, slot) in block_fixups {
            let Some(&b) = blocks.get(&label) else {
                return Err(self.err(format!("branch to undefined label %{label}")));
            };
            if let (InstData::Phi { incoming }, SuccSlot::PhiEdge(i)) =
                (&mut f.inst_mut(inst).data, slot)
            {
                incoming[i] = b
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn parse_inst(
        &mut self,
        f: &mut Function,
        block: BlockId,
        names: &mut HashMap<String, Value>,
        blocks: &mut HashMap<String, BlockId>,
        get_block: &mut impl FnMut(&mut Function, &mut HashMap<String, BlockId>, &str) -> BlockId,
        value_fixups: &mut Vec<Fixup>,
        block_fixups: &mut Vec<(InstId, String, SuccSlot)>,
        md_uses: &mut Vec<(InstId, u32)>,
    ) -> Result<()> {
        // Optional result binding.
        let result_name = if let Tok::Local(_) = &self.tok {
            let n = match self.bump()? {
                Tok::Local(n) => n,
                _ => unreachable!(),
            };
            self.eat_punct('=')?;
            Some(n)
        } else {
            None
        };

        let mnemonic = self.take_word()?;
        let mut pending: Vec<(usize, String)> = Vec::new();
        let inst = self.parse_inst_after_mnemonic(
            f,
            &mnemonic,
            names,
            blocks,
            get_block,
            &mut pending,
            block_fixups,
        )?;
        let has_result = inst.has_result();
        let mut inst = inst;
        if let Some(n) = &result_name {
            inst.name = n.clone();
        }
        let id = f.push_inst(block, inst);
        // Trailing `, !llvm.loop !N`.
        if self.tok == Tok::Punct(',') {
            // Only consume if followed by the metadata key.
            let save_pos = self.lex.pos;
            let save_line = self.lex.line;
            let save_tok = self.tok.clone();
            self.bump()?;
            if self.at_word("!llvm.loop") {
                self.bump()?;
                match self.bump()? {
                    Tok::Meta(n) => md_uses.push((id, n)),
                    other => return Err(self.err(format!("expected !N, got {other:?}"))),
                }
            } else {
                self.lex.pos = save_pos;
                self.lex.line = save_line;
                self.tok = save_tok;
            }
        }
        for (op_idx, name) in pending {
            value_fixups.push(Fixup {
                inst: id,
                operand: op_idx,
                name,
            });
        }
        if let Some(n) = result_name {
            if !has_result {
                return Err(self.err(format!("%{n} bound to void instruction")));
            }
            names.insert(n, Value::Inst(id));
        }
        // Late fix: phi/branch placeholder successors recorded against this id.
        for fx in block_fixups.iter_mut() {
            if fx.0 == u32::MAX {
                fx.0 = id;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn parse_inst_after_mnemonic(
        &mut self,
        f: &mut Function,
        mnemonic: &str,
        names: &HashMap<String, Value>,
        blocks: &mut HashMap<String, BlockId>,
        get_block: &mut impl FnMut(&mut Function, &mut HashMap<String, BlockId>, &str) -> BlockId,
        pending: &mut Vec<(usize, String)>,
        block_fixups: &mut Vec<(InstId, String, SuccSlot)>,
    ) -> Result<Inst> {
        let int_ops: &[(&str, Opcode)] = &[
            ("add", Opcode::Add),
            ("sub", Opcode::Sub),
            ("mul", Opcode::Mul),
            ("sdiv", Opcode::SDiv),
            ("udiv", Opcode::UDiv),
            ("srem", Opcode::SRem),
            ("urem", Opcode::URem),
            ("and", Opcode::And),
            ("or", Opcode::Or),
            ("xor", Opcode::Xor),
            ("shl", Opcode::Shl),
            ("lshr", Opcode::LShr),
            ("ashr", Opcode::AShr),
            ("fadd", Opcode::FAdd),
            ("fsub", Opcode::FSub),
            ("fmul", Opcode::FMul),
            ("fdiv", Opcode::FDiv),
            ("frem", Opcode::FRem),
        ];
        if let Some((_, op)) = int_ops.iter().find(|(m, _)| *m == mnemonic) {
            // `add i32 %a, %b`; clang also emits wrap flags — accept and drop.
            while self.at_word("nsw") || self.at_word("nuw") || self.at_word("fast") {
                self.bump()?;
            }
            let ty = self.parse_type()?;
            let a = self.parse_value(&ty, names, pending, 0)?;
            self.eat_punct(',')?;
            let b = self.parse_value(&ty, names, pending, 1)?;
            return Ok(Inst::new(*op, ty, vec![a, b]));
        }
        match mnemonic {
            "fneg" => {
                let ty = self.parse_type()?;
                let a = self.parse_value(&ty, names, pending, 0)?;
                Ok(Inst::new(Opcode::FNeg, ty, vec![a]))
            }
            "icmp" => {
                let pred = IntPred::from_mnemonic(&self.take_word()?)
                    .ok_or_else(|| self.err("bad icmp predicate"))?;
                let ty = self.parse_type()?;
                let a = self.parse_value(&ty, names, pending, 0)?;
                self.eat_punct(',')?;
                let b = self.parse_value(&ty, names, pending, 1)?;
                Ok(Inst::new(Opcode::ICmp, Type::I1, vec![a, b]).with_data(InstData::ICmp(pred)))
            }
            "fcmp" => {
                let pred = FloatPred::from_mnemonic(&self.take_word()?)
                    .ok_or_else(|| self.err("bad fcmp predicate"))?;
                let ty = self.parse_type()?;
                let a = self.parse_value(&ty, names, pending, 0)?;
                self.eat_punct(',')?;
                let b = self.parse_value(&ty, names, pending, 1)?;
                Ok(Inst::new(Opcode::FCmp, Type::I1, vec![a, b]).with_data(InstData::FCmp(pred)))
            }
            "load" => {
                let ty = self.parse_type()?;
                self.eat_punct(',')?;
                let pty = self.parse_type()?;
                let p = self.parse_value(&pty, names, pending, 0)?;
                let mut align = ty.align_in_bytes() as u32;
                if self.tok == Tok::Punct(',') {
                    self.bump()?;
                    self.eat_word("align")?;
                    align = match self.bump()? {
                        Tok::Int(a) => a as u32,
                        other => return Err(self.err(format!("expected align, got {other:?}"))),
                    };
                }
                Ok(Inst::new(Opcode::Load, ty, vec![p]).with_data(InstData::Load { align }))
            }
            "store" => {
                let vty = self.parse_type()?;
                let v = self.parse_value(&vty, names, pending, 0)?;
                self.eat_punct(',')?;
                let pty = self.parse_type()?;
                let p = self.parse_value(&pty, names, pending, 1)?;
                let mut align = vty.align_in_bytes() as u32;
                if self.tok == Tok::Punct(',') {
                    self.bump()?;
                    self.eat_word("align")?;
                    align = match self.bump()? {
                        Tok::Int(a) => a as u32,
                        other => return Err(self.err(format!("expected align, got {other:?}"))),
                    };
                }
                Ok(Inst::new(Opcode::Store, Type::Void, vec![v, p])
                    .with_data(InstData::Store { align }))
            }
            "getelementptr" => {
                let inbounds = if self.at_word("inbounds") {
                    self.bump()?;
                    true
                } else {
                    false
                };
                let base_ty = self.parse_type()?;
                self.eat_punct(',')?;
                let pty = self.parse_type()?;
                let p = self.parse_value(&pty, names, pending, 0)?;
                let mut ops = vec![p];
                let mut idx = 1;
                while self.tok == Tok::Punct(',') {
                    self.bump()?;
                    let ity = self.parse_type()?;
                    let iv = self.parse_value(&ity, names, pending, idx)?;
                    ops.push(iv);
                    idx += 1;
                }
                let result_ty = crate::builder::gep_result_type(&base_ty, ops.len() - 1);
                Ok(Inst::new(Opcode::Gep, result_ty, ops)
                    .with_data(InstData::Gep { base_ty, inbounds }))
            }
            "alloca" => {
                let ty = self.parse_type()?;
                let mut align = ty.align_in_bytes() as u32;
                if self.tok == Tok::Punct(',') {
                    self.bump()?;
                    self.eat_word("align")?;
                    align = match self.bump()? {
                        Tok::Int(a) => a as u32,
                        other => return Err(self.err(format!("expected align, got {other:?}"))),
                    };
                }
                Ok(
                    Inst::new(Opcode::Alloca, ty.ptr_to(), vec![]).with_data(InstData::Alloca {
                        allocated: ty,
                        align,
                    }),
                )
            }
            "call" => {
                let ret_ty = self.parse_type()?;
                let callee = match self.bump()? {
                    Tok::GlobalSym(n) => n,
                    other => return Err(self.err(format!("expected callee, got {other:?}"))),
                };
                self.eat_punct('(')?;
                let mut args = Vec::new();
                let mut idx = 0;
                while self.tok != Tok::Punct(')') {
                    let aty = self.parse_type()?;
                    let av = self.parse_value(&aty, names, pending, idx)?;
                    args.push(av);
                    idx += 1;
                    if self.tok == Tok::Punct(',') {
                        self.bump()?;
                    }
                }
                self.eat_punct(')')?;
                Ok(Inst::new(Opcode::Call, ret_ty, args).with_data(InstData::Call { callee }))
            }
            "select" => {
                let cty = self.parse_type()?;
                let c = self.parse_value(&cty, names, pending, 0)?;
                self.eat_punct(',')?;
                let ty = self.parse_type()?;
                let a = self.parse_value(&ty, names, pending, 1)?;
                self.eat_punct(',')?;
                let ty2 = self.parse_type()?;
                let b = self.parse_value(&ty2, names, pending, 2)?;
                Ok(Inst::new(Opcode::Select, ty, vec![c, a, b]))
            }
            "phi" => {
                let ty = self.parse_type()?;
                let mut ops = Vec::new();
                let mut incoming = Vec::new();
                let mut idx = 0;
                loop {
                    self.eat_punct('[')?;
                    let v = self.parse_value(&ty, names, pending, idx)?;
                    self.eat_punct(',')?;
                    let label = match self.bump()? {
                        Tok::Local(l) => l,
                        other => return Err(self.err(format!("expected label, got {other:?}"))),
                    };
                    self.eat_punct(']')?;
                    let b = get_block(f, blocks, &label);
                    ops.push(v);
                    incoming.push(b);
                    let _ = block_fixups; // successors interned eagerly
                    idx += 1;
                    if self.tok == Tok::Punct(',') {
                        self.bump()?;
                        // Lookahead: another phi edge or trailing metadata?
                        if self.tok != Tok::Punct('[') {
                            // Restore the comma for the caller's metadata path.
                            // (Cheap approach: re-inject by faking state.)
                            return Err(self.err("unexpected token after phi edges"));
                        }
                    } else {
                        break;
                    }
                }
                Ok(Inst::new(Opcode::Phi, ty, ops).with_data(InstData::Phi { incoming }))
            }
            "zext" | "sext" | "trunc" | "fpext" | "fptrunc" | "fptosi" | "sitofp" | "ptrtoint"
            | "inttoptr" | "bitcast" => {
                let op = match mnemonic {
                    "zext" => Opcode::ZExt,
                    "sext" => Opcode::SExt,
                    "trunc" => Opcode::Trunc,
                    "fpext" => Opcode::FPExt,
                    "fptrunc" => Opcode::FPTrunc,
                    "fptosi" => Opcode::FPToSI,
                    "sitofp" => Opcode::SIToFP,
                    "ptrtoint" => Opcode::PtrToInt,
                    "inttoptr" => Opcode::IntToPtr,
                    _ => Opcode::BitCast,
                };
                let from_ty = self.parse_type()?;
                let v = self.parse_value(&from_ty, names, pending, 0)?;
                self.eat_word("to")?;
                let to_ty = self.parse_type()?;
                Ok(Inst::new(op, to_ty, vec![v]))
            }
            "br" => {
                if self.at_word("label") {
                    self.bump()?;
                    let label = match self.bump()? {
                        Tok::Local(l) => l,
                        other => return Err(self.err(format!("expected label, got {other:?}"))),
                    };
                    let dest = get_block(f, blocks, &label);
                    Ok(Inst::new(Opcode::Br, Type::Void, vec![]).with_data(InstData::Br { dest }))
                } else {
                    let cty = self.parse_type()?;
                    let c = self.parse_value(&cty, names, pending, 0)?;
                    self.eat_punct(',')?;
                    self.eat_word("label")?;
                    let t = match self.bump()? {
                        Tok::Local(l) => l,
                        other => return Err(self.err(format!("expected label, got {other:?}"))),
                    };
                    self.eat_punct(',')?;
                    self.eat_word("label")?;
                    let e = match self.bump()? {
                        Tok::Local(l) => l,
                        other => return Err(self.err(format!("expected label, got {other:?}"))),
                    };
                    let on_true = get_block(f, blocks, &t);
                    let on_false = get_block(f, blocks, &e);
                    Ok(Inst::new(Opcode::CondBr, Type::Void, vec![c])
                        .with_data(InstData::CondBr { on_true, on_false }))
                }
            }
            "ret" => {
                if self.at_word("void") {
                    self.bump()?;
                    Ok(Inst::new(Opcode::Ret, Type::Void, vec![]))
                } else {
                    let ty = self.parse_type()?;
                    let v = self.parse_value(&ty, names, pending, 0)?;
                    Ok(Inst::new(Opcode::Ret, Type::Void, vec![v]))
                }
            }
            "unreachable" => Ok(Inst::new(Opcode::Unreachable, Type::Void, vec![])),
            other => Err(self.err(format!("unknown instruction '{other}'"))),
        }
    }

    fn parse_md_def(&mut self) -> Result<(u32, RawMd)> {
        let id = match self.bump()? {
            Tok::Meta(n) => n,
            other => return Err(self.err(format!("expected !N, got {other:?}"))),
        };
        self.eat_punct('=')?;
        let distinct = if self.at_word("distinct") {
            self.bump()?;
            true
        } else {
            false
        };
        // `!{ ... }`
        match self.bump()? {
            Tok::Word(w) if w == "!" => {}
            Tok::Punct('!') => {}
            other => return Err(self.err(format!("expected '!{{', got {other:?}"))),
        }
        self.eat_punct('{')?;
        let mut elems = Vec::new();
        while self.tok != Tok::Punct('}') {
            match self.bump()? {
                Tok::Meta(n) => elems.push(MdElem::Ref(n)),
                Tok::MetaStr(s) => elems.push(MdElem::Str(s)),
                Tok::Word(w) if w.starts_with('i') => {
                    // `i32 4`
                    match self.bump()? {
                        Tok::Int(v) => elems.push(MdElem::Int(v)),
                        other => return Err(self.err(format!("expected int, got {other:?}"))),
                    }
                }
                other => return Err(self.err(format!("bad metadata element {other:?}"))),
            }
            if self.tok == Tok::Punct(',') {
                self.bump()?;
            }
        }
        self.eat_punct('}')?;
        Ok((id, RawMd { distinct, elems }))
    }
}

// Successor labels are interned eagerly during parsing; the fixup slot
// exists for completeness of the mechanism (future multi-edge payloads).
#[allow(dead_code)]
enum SuccSlot {
    PhiEdge(usize),
}

#[derive(Debug)]
enum MdElem {
    Ref(u32),
    Str(String),
    Int(i128),
}

struct RawMd {
    distinct: bool,
    elems: Vec<MdElem>,
}

fn decode_loop_md(id: u32, raws: &HashMap<u32, RawMd>) -> LoopMetadata {
    let mut out = LoopMetadata::default();
    let Some(node) = raws.get(&id) else {
        return out;
    };
    for e in &node.elems {
        let MdElem::Ref(r) = e else { continue };
        if *r == id {
            continue; // self-reference marker of distinct nodes
        }
        let Some(child) = raws.get(r) else { continue };
        let mut it = child.elems.iter();
        let Some(MdElem::Str(key)) = it.next() else {
            continue;
        };
        match key.as_str() {
            "llvm.loop.pipeline.enable" => {
                if let Some(MdElem::Int(v)) = it.next() {
                    out.pipeline_ii = Some(*v as u32);
                } else {
                    out.pipeline_ii = Some(1);
                }
            }
            "llvm.loop.unroll.count" => {
                if let Some(MdElem::Int(v)) = it.next() {
                    out.unroll_factor = Some(*v as u32);
                }
            }
            "llvm.loop.unroll.full" => out.unroll_full = true,
            "llvm.loop.flatten.enable" => out.flatten = true,
            "llvm.loop.dataflow.enable" => out.dataflow = true,
            "llvm.loop.tripcount" => {
                let lo = match it.next() {
                    Some(MdElem::Int(v)) => *v as u64,
                    _ => 0,
                };
                let hi = match it.next() {
                    Some(MdElem::Int(v)) => *v as u64,
                    _ => lo,
                };
                out.tripcount = Some((lo, hi));
            }
            _ => {}
        }
    }
    out
}

/// Parse a module from `.ll` text.
pub fn parse_module(name: &str, src: &str) -> Result<Module> {
    Parser::new(src)?.parse_module(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    const SCALE: &str = r#"
; a small strided kernel
define void @scale(float* %a, i32 %n) {
entry:
  br label %header

header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit

body:
  %idx = sext i32 %i to i64
  %p = getelementptr inbounds float, float* %a, i64 %idx
  %x = load float, float* %p, align 4
  %y = fmul float %x, 0x4000000000000000
  store float %y, float* %p, align 4
  %next = add nsw i32 %i, 1
  br label %header, !llvm.loop !0

exit:
  ret void
}

!0 = distinct !{!0, !1}
!1 = !{!"llvm.loop.pipeline.enable", i32 1}
"#;

    #[test]
    fn parses_scale_kernel() {
        let m = parse_module("scale", SCALE).unwrap();
        let f = m.function("scale").unwrap();
        assert_eq!(f.block_order.len(), 4);
        assert_eq!(f.count_opcode(Opcode::Phi), 1);
        assert_eq!(f.count_opcode(Opcode::Gep), 1);
        // loop metadata decoded and attached to the latch.
        assert_eq!(m.loop_mds.len(), 1);
        assert_eq!(m.loop_mds[0].pipeline_ii, Some(1));
        let body = f.block_by_name("body").unwrap();
        let latch = f.terminator(body).unwrap();
        assert_eq!(f.inst(latch).loop_md, Some(0));
    }

    #[test]
    fn phi_forward_reference_is_fixed_up() {
        let m = parse_module("scale", SCALE).unwrap();
        let f = m.function("scale").unwrap();
        let header = f.block_by_name("header").unwrap();
        let phi = f.block(header).insts[0];
        let inst = f.inst(phi);
        assert_eq!(inst.opcode, Opcode::Phi);
        // Second incoming must resolve to %next (an Inst value), not undef.
        assert!(matches!(inst.operands[1], Value::Inst(_)));
    }

    #[test]
    fn round_trips_through_printer() {
        let m1 = parse_module("scale", SCALE).unwrap();
        let text1 = print_module(&m1);
        let m2 = parse_module("scale", &text1).unwrap();
        let text2 = print_module(&m2);
        assert_eq!(text1, text2);
    }

    #[test]
    fn parses_globals_and_declarations() {
        let src = r#"
@lut = constant [3 x i32] [i32 1, i32 2, i32 3], align 4
@buf = global [4 x float] zeroinitializer

declare float @llvm.sqrt.f32(float %x)

define float @f() {
entry:
  %p = getelementptr inbounds [3 x i32], [3 x i32]* @lut, i64 0, i64 1
  %v = load i32, i32* %p, align 4
  %fv = sitofp i32 %v to float
  %r = call float @llvm.sqrt.f32(float %fv)
  ret float %r
}
"#;
        let m = parse_module("g", src).unwrap();
        assert_eq!(m.globals.len(), 2);
        assert!(m.globals[0].is_const);
        assert_eq!(
            m.globals[0].init,
            Some(GlobalInit::Array(vec![
                GlobalInit::Int(1),
                GlobalInit::Int(2),
                GlobalInit::Int(3)
            ]))
        );
        assert!(m.function("llvm.sqrt.f32").unwrap().is_declaration);
        let f = m.function("f").unwrap();
        assert_eq!(f.count_opcode(Opcode::Call), 1);
    }

    #[test]
    fn rejects_unknown_instruction() {
        let src = "define void @f() {\nentry:\n  frobnicate i32 1\n}\n";
        let e = parse_module("m", src).unwrap_err();
        match e {
            Error::Parse { line, msg } => {
                assert_eq!(line, 3);
                assert!(msg.contains("frobnicate"));
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn rejects_decimal_float_literals() {
        let src = "define float @f() {\nentry:\n  ret float 1.5\n}\n";
        assert!(parse_module("m", src).is_err());
    }

    #[test]
    fn rejects_undefined_value() {
        let src = "define i32 @f() {\nentry:\n  %x = add i32 %nope, 1\n  ret i32 %x\n}\n";
        let e = parse_module("m", src).unwrap_err();
        assert!(matches!(e, Error::Parse { .. }));
    }

    #[test]
    fn rejects_branch_to_metadata_without_def() {
        let src = "define void @f() {\nentry:\n  br label %entry, !llvm.loop !9\n}\n";
        let e = parse_module("m", src).unwrap_err();
        assert!(matches!(e, Error::Parse { .. }), "{e:?}");
    }

    #[test]
    fn accepts_wrap_flags_and_comments() {
        let src = "; header comment\ndefine i32 @f(i32 %a) {\nentry:\n  %x = add nsw i32 %a, 1 ; trailing\n  %y = mul nuw i32 %x, 2\n  ret i32 %y\n}\n";
        let m = parse_module("m", src).unwrap();
        assert_eq!(m.function("f").unwrap().num_insts(), 3);
    }

    #[test]
    fn parses_param_and_fn_attrs() {
        let src = r#"
define void @top(float* "mha.shape"="8xfloat" %a) "hls.top"="1" {
entry:
  ret void
}
"#;
        let m = parse_module("m", src).unwrap();
        let f = m.function("top").unwrap();
        assert_eq!(f.attrs.get("hls.top").map(String::as_str), Some("1"));
        assert_eq!(
            f.params[0].attrs.get("mha.shape").map(String::as_str),
            Some("8xfloat")
        );
    }

    #[test]
    fn parses_select_and_casts() {
        let src = r#"
define i64 @f(i32 %a, i32 %b) {
entry:
  %c = icmp sgt i32 %a, %b
  %m = select i1 %c, i32 %a, i32 %b
  %w = sext i32 %m to i64
  ret i64 %w
}
"#;
        let m = parse_module("m", src).unwrap();
        let f = m.function("f").unwrap();
        assert_eq!(f.count_opcode(Opcode::Select), 1);
        assert_eq!(f.count_opcode(Opcode::SExt), 1);
    }

    #[test]
    fn pathological_type_nesting_is_an_error_not_a_stack_overflow() {
        let mut ty = String::from("float");
        for _ in 0..5000 {
            ty = format!("[1 x {ty}]");
        }
        let src = format!("@g = global {ty} zeroinitializer\n");
        let e = parse_module("m", &src).unwrap_err();
        assert!(e.to_string().contains("nesting deeper"), "{e}");
    }

    #[test]
    fn pathological_initializer_nesting_is_an_error_not_a_stack_overflow() {
        // An unbalanced initializer torrent must trip the depth bound, not
        // recurse to an abort.
        let src = format!("@g = global [1 x i32] {}0\n", "[i32 ".repeat(5000));
        let e = parse_module("m", &src).unwrap_err();
        assert!(e.to_string().contains("nesting deeper"), "{e}");
    }

    #[test]
    fn overflowing_integer_literal_is_an_error() {
        let src = "define void @f() {\nentry:\n  %x = add i32 9999999999999999999999999999999999999999, 1\n  ret void\n}\n";
        let e = parse_module("m", src).unwrap_err();
        assert!(e.to_string().contains("bad integer literal"), "{e}");
    }

    #[test]
    fn unterminated_tokens_are_errors() {
        for bad in [
            "@g = global [4 x float] zeroinitializer \"oops", // string
            "define void @\"unterminated() {\nentry:\n ret void\n}", // quoted sym
            "define void @f() {\nentry:\n  br label %x",      // truncated fn
        ] {
            assert!(parse_module("m", bad).is_err(), "{bad:?}");
        }
    }
}
