//! IR-to-IR transforms over [`Module`].
//!
//! The pass machinery itself lives in the `pass-core` crate — one
//! instrumented [`PassManager`] shared by the MLIR level, this crate, and
//! the HLS adaptor. This module re-exports it specialized to [`Module`]
//! and provides the standard pipelines plus the string-keyed registry the
//! `mha-opt` driver resolves pass names against.

pub mod dce;
pub mod fold;
pub mod licm;
pub mod mem2reg;
pub mod simplify_cfg;

pub use dce::Dce;
pub use fold::FoldConstants;
pub use licm::Licm;
pub use mem2reg::Mem2Reg;
pub use simplify_cfg::SimplifyCfg;

/// A module-level transformation (the generic `pass-core` trait; implement
/// it as `ModulePass<Module>`).
pub use pass_core::Pass as ModulePass;
pub use pass_core::{PassRecord, PassRegistry, PipelineReport};

use crate::module::Module;

/// The pass manager for LLVM-level pipelines.
pub type PassManager = pass_core::PassManager<Module>;

/// The standard cleanup pipeline run after lowering and after the C
/// frontend: promote memory to registers, fold, simplify, strip dead code.
pub fn standard_cleanup() -> PassManager {
    let mut pm = PassManager::with_label("standard-cleanup");
    pm.add(Mem2Reg).add(FoldConstants).add(SimplifyCfg).add(Dce);
    pm
}

/// Registry of this crate's LLVM-level passes, keyed by stable name.
pub fn registry() -> PassRegistry<Module> {
    let mut r = PassRegistry::new();
    r.register("mem2reg", || Box::new(Mem2Reg))
        .register("fold-constants", || Box::new(FoldConstants))
        .register("simplify-cfg", || Box::new(SimplifyCfg))
        .register("dce", || Box::new(Dce))
        .register("licm", || Box::new(Licm));
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;
    use pass_core::PassResult;

    struct Nop;
    impl ModulePass<Module> for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn run(&self, _m: &mut Module) -> PassResult<bool> {
            Ok(false)
        }
    }

    struct RenameOnce;
    impl ModulePass<Module> for RenameOnce {
        fn name(&self) -> &'static str {
            "rename-once"
        }
        fn run(&self, m: &mut Module) -> PassResult<bool> {
            if m.name == "renamed" {
                Ok(false)
            } else {
                m.name = "renamed".into();
                Ok(true)
            }
        }
    }

    #[test]
    fn pipeline_reports_stats() {
        let mut m = parse_module("m", "define void @f() {\nentry:\n  ret void\n}\n").unwrap();
        let mut pm = PassManager::new();
        pm.add(Nop).add(RenameOnce);
        let report = pm.run(&mut m).unwrap();
        let summary: Vec<(&str, bool)> = report
            .passes
            .iter()
            .map(|p| (p.pass.as_str(), p.changed))
            .collect();
        assert_eq!(summary, vec![("nop", false), ("rename-once", true)]);
        assert_eq!(report.changed_passes(), vec!["rename-once"]);
    }

    #[test]
    fn fixpoint_terminates() {
        let mut m = parse_module("m", "define void @f() {\nentry:\n  ret void\n}\n").unwrap();
        let mut pm = PassManager::new();
        pm.add(RenameOnce);
        let report = pm.run_to_fixpoint(&mut m, 10).unwrap();
        assert_eq!(report.iterations, 2); // one changing iteration + one quiescent
        assert_eq!(m.name, "renamed");
    }

    #[test]
    fn standard_cleanup_is_nonempty() {
        assert_eq!(standard_cleanup().len(), 4);
    }

    #[test]
    fn registry_round_trips_every_pass() {
        let r = registry();
        for name in r.names() {
            assert_eq!(r.create(name).unwrap().name(), name);
        }
        let pm = r.build_pipeline("mem2reg,dce").unwrap();
        assert_eq!(pm.len(), 2);
    }
}
