//! IR-to-IR transforms and the pass manager they plug into.
//!
//! The pass manager is the same machinery the HLS adaptor crate builds its
//! pipeline on: passes are module-level, report whether they changed the IR,
//! and can be run to a fixed point.

pub mod dce;
pub mod fold;
pub mod licm;
pub mod mem2reg;
pub mod simplify_cfg;

pub use dce::Dce;
pub use fold::FoldConstants;
pub use licm::Licm;
pub use mem2reg::Mem2Reg;
pub use simplify_cfg::SimplifyCfg;

use crate::module::Module;
use crate::Result;

/// A module-level transformation.
pub trait ModulePass {
    /// Stable pass name used in pipeline descriptions and statistics.
    fn name(&self) -> &'static str;
    /// Run over the module; return `true` if anything changed.
    fn run(&self, m: &mut Module) -> Result<bool>;
}

/// Per-pass execution record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassStat {
    /// Pass name.
    pub name: &'static str,
    /// Whether the pass reported a change.
    pub changed: bool,
}

/// An ordered pipeline of [`ModulePass`]es.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn ModulePass>>,
    /// Verify the module after each pass (on by default; pipelines are small).
    pub verify_each: bool,
}

impl PassManager {
    /// An empty pipeline with per-pass verification enabled.
    pub fn new() -> PassManager {
        PassManager {
            passes: Vec::new(),
            verify_each: true,
        }
    }

    /// Append a pass.
    pub fn add(&mut self, pass: impl ModulePass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// True when no passes are registered.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Run every pass once, in order. Returns per-pass stats.
    pub fn run(&self, m: &mut Module) -> Result<Vec<PassStat>> {
        let mut stats = Vec::with_capacity(self.passes.len());
        for p in &self.passes {
            let changed = p.run(m)?;
            if self.verify_each {
                crate::verifier::verify_module(m).map_err(|e| match e {
                    crate::Error::Verify(msg) => {
                        crate::Error::Verify(format!("after pass '{}': {msg}", p.name()))
                    }
                    other => other,
                })?;
            }
            stats.push(PassStat {
                name: p.name(),
                changed,
            });
        }
        Ok(stats)
    }

    /// Run the whole pipeline repeatedly until no pass reports a change
    /// (bounded by `max_iters` to guard against oscillating passes).
    pub fn run_to_fixpoint(&self, m: &mut Module, max_iters: usize) -> Result<usize> {
        for iter in 0..max_iters {
            let stats = self.run(m)?;
            if stats.iter().all(|s| !s.changed) {
                return Ok(iter + 1);
            }
        }
        Ok(max_iters)
    }
}

/// The standard cleanup pipeline run after lowering and after the C
/// frontend: promote memory to registers, fold, simplify, strip dead code.
pub fn standard_cleanup() -> PassManager {
    let mut pm = PassManager::new();
    pm.add(Mem2Reg)
        .add(FoldConstants)
        .add(SimplifyCfg)
        .add(Dce);
    pm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    struct Nop;
    impl ModulePass for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn run(&self, _m: &mut Module) -> Result<bool> {
            Ok(false)
        }
    }

    struct RenameOnce;
    impl ModulePass for RenameOnce {
        fn name(&self) -> &'static str {
            "rename-once"
        }
        fn run(&self, m: &mut Module) -> Result<bool> {
            if m.name == "renamed" {
                Ok(false)
            } else {
                m.name = "renamed".into();
                Ok(true)
            }
        }
    }

    #[test]
    fn pipeline_reports_stats() {
        let mut m = parse_module(
            "m",
            "define void @f() {\nentry:\n  ret void\n}\n",
        )
        .unwrap();
        let mut pm = PassManager::new();
        pm.add(Nop).add(RenameOnce);
        let stats = pm.run(&mut m).unwrap();
        assert_eq!(
            stats,
            vec![
                PassStat {
                    name: "nop",
                    changed: false
                },
                PassStat {
                    name: "rename-once",
                    changed: true
                }
            ]
        );
    }

    #[test]
    fn fixpoint_terminates() {
        let mut m = parse_module(
            "m",
            "define void @f() {\nentry:\n  ret void\n}\n",
        )
        .unwrap();
        let mut pm = PassManager::new();
        pm.add(RenameOnce);
        let iters = pm.run_to_fixpoint(&mut m, 10).unwrap();
        assert_eq!(iters, 2); // one changing iteration + one quiescent
        assert_eq!(m.name, "renamed");
    }

    #[test]
    fn standard_cleanup_is_nonempty() {
        assert_eq!(standard_cleanup().len(), 4);
    }
}
