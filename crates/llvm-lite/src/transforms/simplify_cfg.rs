//! CFG simplification.
//!
//! Three conservative rewrites, applied to a fixed point:
//!
//! 1. delete blocks unreachable from the entry;
//! 2. fold single-incoming PHIs into their operand;
//! 3. merge `A -> B` when `A` ends in an unconditional branch, `B` has `A`
//!    as its only predecessor, and the branch carries no loop metadata
//!    (merging a latch would silently drop HLS directives).

use crate::analysis::Cfg;
use crate::inst::{InstData, Opcode};
use crate::module::{Function, Module};
use crate::transforms::ModulePass;
use crate::value::Value;
use pass_core::PassResult;

/// The SimplifyCFG pass.
pub struct SimplifyCfg;

impl ModulePass<Module> for SimplifyCfg {
    fn name(&self) -> &'static str {
        "simplify-cfg"
    }

    fn run(&self, m: &mut Module) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.functions {
            if f.is_declaration {
                continue;
            }
            loop {
                let step = remove_unreachable(f) || fold_single_phis(f) || merge_linear(f);
                if !step {
                    break;
                }
                changed = true;
            }
        }
        Ok(changed)
    }
}

fn remove_unreachable(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let dead = cfg.unreachable_blocks(f);
    if dead.is_empty() {
        return false;
    }
    for &b in &dead {
        // Drop phi edges coming from the dead block in all successors.
        if let Some(t) = f.terminator(b) {
            for succ in f.inst(t).successors() {
                remove_phi_edge(f, succ, b);
            }
        }
        f.remove_block(b);
    }
    true
}

fn remove_phi_edge(f: &mut Function, block: u32, pred: u32) {
    let ids: Vec<u32> = f.blocks[block as usize].insts.clone();
    for id in ids {
        if !f.is_live(id) {
            continue;
        }
        let inst = f.inst_mut(id);
        if let InstData::Phi { incoming } = &mut inst.data {
            if let Some(pos) = incoming.iter().position(|&b| b == pred) {
                incoming.remove(pos);
                inst.operands.remove(pos);
            }
        }
    }
}

fn fold_single_phis(f: &mut Function) -> bool {
    let mut changed = false;
    for (_, id) in f.inst_ids() {
        let inst = f.inst(id);
        if inst.opcode != Opcode::Phi || inst.operands.len() != 1 {
            continue;
        }
        let replacement = inst.operands[0].clone();
        // A phi can (transiently) reference itself; don't replace with self.
        if replacement == Value::Inst(id) {
            continue;
        }
        f.replace_all_uses(&Value::Inst(id), &replacement);
        f.remove_inst(id);
        changed = true;
    }
    changed
}

fn merge_linear(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    for &a in &f.block_order.clone() {
        let Some(t) = f.terminator(a) else { continue };
        let term = f.inst(t);
        let InstData::Br { dest } = term.data else {
            continue;
        };
        if term.loop_md.is_some() {
            continue;
        }
        let b = dest;
        if b == a || cfg.preds[b as usize].len() != 1 {
            continue;
        }
        // B's phis (if any) have a single incoming and can be folded first.
        if f.blocks[b as usize]
            .insts
            .iter()
            .any(|&i| f.inst(i).opcode == Opcode::Phi)
        {
            continue; // fold_single_phis will clear these on the next round
        }
        // Splice B into A.
        f.blocks[a as usize].insts.pop(); // drop `br label %b`
        f.inst_removed[t as usize] = true;
        let moved = std::mem::take(&mut f.blocks[b as usize].insts);
        // Successor phis must now see A as the predecessor instead of B.
        if let Some(&new_term) = moved.last() {
            for s in f.insts[new_term as usize].successors() {
                f.replace_phi_incoming(s, b, a);
            }
        }
        f.blocks[a as usize].insts.extend(moved);
        f.block_order.retain(|&x| x != b);
        f.blocks[b as usize].removed = true;
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;
    use crate::verifier::verify_module;

    #[test]
    fn merges_linear_chain() {
        let src = r#"
define i32 @f(i32 %a) {
entry:
  br label %mid

mid:
  %x = add i32 %a, 1
  br label %tail

tail:
  ret i32 %x
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(SimplifyCfg.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let f = m.function("f").unwrap();
        assert_eq!(f.block_order.len(), 1);
        assert_eq!(f.num_insts(), 2);
    }

    #[test]
    fn preserves_latch_with_metadata() {
        let src = r#"
define void @f(i32 %n) {
entry:
  br label %header

header:
  %i = phi i32 [ 0, %entry ], [ %next, %header ]
  %next = add i32 %i, 1
  %c = icmp slt i32 %next, %n
  br i1 %c, label %header, label %exit

exit:
  br label %tail

tail:
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        SimplifyCfg.run(&mut m).unwrap();
        verify_module(&m).unwrap();
        let f = m.function("f").unwrap();
        // exit+tail merge; loop structure intact.
        assert!(f.block_by_name("header").is_some());
        assert_eq!(f.block_order.len(), 3);
    }

    #[test]
    fn removes_unreachable_blocks_and_phi_edges() {
        let src = r#"
define i32 @f(i32 %a) {
entry:
  br label %join

dead:
  br label %join

join:
  %x = phi i32 [ %a, %entry ], [ 0, %dead ]
  ret i32 %x
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(SimplifyCfg.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let f = m.function("f").unwrap();
        assert!(f.block_by_name("dead").is_none());
        // Single-edge phi then folds away entirely.
        assert_eq!(f.count_opcode(Opcode::Phi), 0);
    }

    #[test]
    fn does_not_merge_into_multi_pred_block() {
        let src = r#"
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b

a:
  br label %join

b:
  br label %join

join:
  %x = phi i32 [ 1, %a ], [ 2, %b ]
  ret i32 %x
}
"#;
        let mut m = parse_module("m", src).unwrap();
        SimplifyCfg.run(&mut m).unwrap();
        verify_module(&m).unwrap();
        let f = m.function("f").unwrap();
        assert!(f.block_by_name("join").is_some());
        assert_eq!(f.count_opcode(Opcode::Phi), 1);
    }

    #[test]
    fn idempotent_on_minimal_function() {
        let src = "define void @f() {\nentry:\n  ret void\n}\n";
        let mut m = parse_module("m", src).unwrap();
        assert!(!SimplifyCfg.run(&mut m).unwrap());
    }
}
