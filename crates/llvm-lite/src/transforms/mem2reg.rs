//! Classic SSA promotion of allocas (mem2reg).
//!
//! This is the first pass every HLS frontend runs over clang output: locals
//! arrive as `alloca` + `load`/`store`, and scheduling quality depends on
//! seeing them as SSA values. The baseline C++ flow in this repository
//! re-creates exactly that shape, so this pass is what puts the two flows
//! back on a comparable footing.
//!
//! Algorithm: Cytron-style — place PHIs on the iterated dominance frontier
//! of each promotable alloca's stores, then rename with a dominator-tree
//! walk.

use std::collections::{HashMap, HashSet};

use crate::analysis::{Cfg, DomTree};
use crate::inst::{Inst, InstData, Opcode};
use crate::module::{BlockId, Function, InstId, Module};
use crate::transforms::ModulePass;
use crate::types::Type;
use crate::value::Value;
use pass_core::PassResult;

/// The mem2reg pass.
pub struct Mem2Reg;

impl ModulePass<Module> for Mem2Reg {
    fn name(&self) -> &'static str {
        "mem2reg"
    }

    fn run(&self, m: &mut Module) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.functions {
            if !f.is_declaration {
                changed |= promote_function(f);
            }
        }
        Ok(changed)
    }
}

/// Is this alloca promotable: scalar type, and used only as the pointer of
/// loads and stores (never stored *as a value*, never GEP'd or passed on)?
fn promotable_allocas(f: &Function) -> Vec<InstId> {
    let mut candidates = Vec::new();
    'next: for (_, id) in f.inst_ids() {
        let inst = f.inst(id);
        if inst.opcode != Opcode::Alloca {
            continue;
        }
        let InstData::Alloca { allocated, .. } = &inst.data else {
            continue;
        };
        if !allocated.is_first_class_scalar() {
            continue;
        }
        for (_, uid) in f.inst_ids() {
            let user = f.inst(uid);
            for (oi, op) in user.operands.iter().enumerate() {
                if *op != Value::Inst(id) {
                    continue;
                }
                let ok = match user.opcode {
                    Opcode::Load => true,
                    // Only the *pointer* slot of a store; storing the
                    // address itself escapes the alloca.
                    Opcode::Store => oi == 1,
                    _ => false,
                };
                if !ok {
                    continue 'next;
                }
            }
        }
        candidates.push(id);
    }
    candidates
}

/// Cooper's dominance-frontier computation.
fn dominance_frontiers(f: &Function, cfg: &Cfg, dom: &DomTree) -> Vec<HashSet<BlockId>> {
    let mut df: Vec<HashSet<BlockId>> = vec![HashSet::new(); f.blocks.len()];
    for &b in &cfg.rpo {
        if cfg.preds[b as usize].len() < 2 {
            continue;
        }
        let Some(idom_b) = dom.idom[b as usize] else {
            continue;
        };
        for &p in &cfg.preds[b as usize] {
            let mut runner = p;
            while runner != idom_b {
                df[runner as usize].insert(b);
                match dom.idom[runner as usize] {
                    Some(d) if d != runner => runner = d,
                    _ => break,
                }
            }
        }
    }
    df
}

fn promote_function(f: &mut Function) -> bool {
    let allocas = promotable_allocas(f);
    if allocas.is_empty() {
        return false;
    }
    let cfg = Cfg::build(f);
    let dom = DomTree::build(f, &cfg);
    let df = dominance_frontiers(f, &cfg, &dom);

    // Dominator-tree children for the rename walk.
    let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); f.blocks.len()];
    for &b in &cfg.rpo {
        if let Some(d) = dom.idom[b as usize] {
            if d != b {
                children[d as usize].push(b);
            }
        }
    }

    // Phase 1: phi placement on the iterated dominance frontier.
    // phis[(block, alloca)] -> phi inst id
    let mut phis: HashMap<(BlockId, InstId), InstId> = HashMap::new();
    for &a in &allocas {
        let ty = alloca_type(f, a);
        let mut def_blocks: Vec<BlockId> = Vec::new();
        for (b, id) in f.inst_ids() {
            let inst = f.inst(id);
            if inst.opcode == Opcode::Store && inst.operands[1] == Value::Inst(a) {
                def_blocks.push(b);
            }
        }
        let mut placed: HashSet<BlockId> = HashSet::new();
        let mut work = def_blocks;
        while let Some(b) = work.pop() {
            for &front in &df[b as usize] {
                if placed.insert(front) {
                    let phi = f.insert_inst(
                        front,
                        0,
                        Inst::new(Opcode::Phi, ty.clone(), vec![])
                            .with_data(InstData::Phi {
                                incoming: Vec::new(),
                            })
                            .with_name(format!("{}.ssa", f.inst(a).name)),
                    );
                    phis.insert((front, a), phi);
                    work.push(front);
                }
            }
        }
    }

    // Phase 2: rename along the dominator tree.
    let alloca_set: HashSet<InstId> = allocas.iter().copied().collect();
    let mut stacks: HashMap<InstId, Vec<Value>> = allocas.iter().map(|&a| (a, vec![])).collect();
    let mut to_remove: Vec<InstId> = Vec::new();
    rename(
        f,
        f.entry(),
        &cfg,
        &children,
        &alloca_set,
        &phis,
        &mut stacks,
        &mut to_remove,
    );

    for id in to_remove {
        f.remove_inst(id);
    }
    for a in &allocas {
        f.remove_inst(*a);
    }
    true
}

fn alloca_type(f: &Function, a: InstId) -> Type {
    match &f.inst(a).data {
        InstData::Alloca { allocated, .. } => allocated.clone(),
        _ => unreachable!("alloca id"),
    }
}

#[allow(clippy::too_many_arguments)]
fn rename(
    f: &mut Function,
    block: BlockId,
    cfg: &Cfg,
    children: &[Vec<BlockId>],
    allocas: &HashSet<InstId>,
    phis: &HashMap<(BlockId, InstId), InstId>,
    stacks: &mut HashMap<InstId, Vec<Value>>,
    to_remove: &mut Vec<InstId>,
) {
    let mut pushed: Vec<InstId> = Vec::new();

    // Phis placed in this block define new current values.
    for (&(b, a), &phi) in phis.iter() {
        if b == block {
            stacks.get_mut(&a).unwrap().push(Value::Inst(phi));
            pushed.push(a);
        }
    }

    let inst_list: Vec<InstId> = f.blocks[block as usize].insts.clone();
    for id in inst_list {
        if !f.is_live(id) {
            continue;
        }
        let inst = f.inst(id);
        match inst.opcode {
            Opcode::Load => {
                if let Value::Inst(a) = inst.operands[0] {
                    if allocas.contains(&a) {
                        let ty = alloca_type(f, a);
                        let current = stacks[&a].last().cloned().unwrap_or(Value::Undef(ty));
                        f.replace_all_uses(&Value::Inst(id), &current);
                        to_remove.push(id);
                    }
                }
            }
            Opcode::Store => {
                if let Value::Inst(a) = inst.operands[1] {
                    if allocas.contains(&a) {
                        let v = inst.operands[0].clone();
                        stacks.get_mut(&a).unwrap().push(v);
                        pushed.push(a);
                        to_remove.push(id);
                    }
                }
            }
            _ => {}
        }
    }

    // Fill phi operands of successors.
    for &succ in &cfg.succs[block as usize] {
        for (&(b, a), &phi) in phis.iter() {
            if b != succ {
                continue;
            }
            let ty = alloca_type(f, a);
            let current = stacks[&a].last().cloned().unwrap_or(Value::Undef(ty));
            let inst = f.inst_mut(phi);
            inst.operands.push(current);
            match &mut inst.data {
                InstData::Phi { incoming } => incoming.push(block),
                _ => unreachable!(),
            }
        }
    }

    let kids = children[block as usize].clone();
    for child in kids {
        rename(f, child, cfg, children, allocas, phis, stacks, to_remove);
    }

    for a in pushed {
        stacks.get_mut(&a).unwrap().pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;
    use crate::verifier::verify_module;

    #[test]
    fn promotes_straightline_local() {
        let src = r#"
define i32 @f(i32 %a) {
entry:
  %x = alloca i32, align 4
  store i32 %a, i32* %x, align 4
  %v = load i32, i32* %x, align 4
  %r = add i32 %v, 1
  ret i32 %r
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(Mem2Reg.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let f = m.function("f").unwrap();
        assert_eq!(f.count_opcode(Opcode::Alloca), 0);
        assert_eq!(f.count_opcode(Opcode::Load), 0);
        assert_eq!(f.count_opcode(Opcode::Store), 0);
        // %r now adds the argument directly.
        let (_, add) = f
            .inst_ids()
            .into_iter()
            .find(|(_, i)| f.inst(*i).opcode == Opcode::Add)
            .unwrap();
        assert_eq!(f.inst(add).operands[0], Value::Arg(0));
    }

    #[test]
    fn places_phi_at_join() {
        let src = r#"
define i32 @max(i32 %a, i32 %b) {
entry:
  %m = alloca i32, align 4
  %c = icmp sgt i32 %a, %b
  br i1 %c, label %then, label %else

then:
  store i32 %a, i32* %m, align 4
  br label %join

else:
  store i32 %b, i32* %m, align 4
  br label %join

join:
  %v = load i32, i32* %m, align 4
  ret i32 %v
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(Mem2Reg.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let f = m.function("max").unwrap();
        assert_eq!(f.count_opcode(Opcode::Phi), 1);
        assert_eq!(f.count_opcode(Opcode::Alloca), 0);
    }

    #[test]
    fn loop_counter_becomes_phi() {
        let src = r#"
define i32 @sum(i32 %n) {
entry:
  %i = alloca i32, align 4
  %acc = alloca i32, align 4
  store i32 0, i32* %i, align 4
  store i32 0, i32* %acc, align 4
  br label %header

header:
  %iv = load i32, i32* %i, align 4
  %c = icmp slt i32 %iv, %n
  br i1 %c, label %body, label %exit

body:
  %av = load i32, i32* %acc, align 4
  %a2 = add i32 %av, %iv
  store i32 %a2, i32* %acc, align 4
  %i2 = add i32 %iv, 1
  store i32 %i2, i32* %i, align 4
  br label %header

exit:
  %r = load i32, i32* %acc, align 4
  ret i32 %r
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(Mem2Reg.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let f = m.function("sum").unwrap();
        // Two loop-carried variables -> two phis in the header.
        assert_eq!(f.count_opcode(Opcode::Phi), 2);
        assert_eq!(f.count_opcode(Opcode::Load), 0);
        assert_eq!(f.count_opcode(Opcode::Store), 0);
    }

    #[test]
    fn escaping_alloca_is_left_alone() {
        let src = r#"
declare void @sink(i32* %p)

define void @f() {
entry:
  %x = alloca i32, align 4
  store i32 1, i32* %x, align 4
  call void @sink(i32* %x)
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        Mem2Reg.run(&mut m).unwrap();
        let f = m.function("f").unwrap();
        assert_eq!(f.count_opcode(Opcode::Alloca), 1);
        assert_eq!(f.count_opcode(Opcode::Store), 1);
    }

    #[test]
    fn array_alloca_is_left_alone() {
        let src = r#"
define float @f() {
entry:
  %buf = alloca [8 x float], align 4
  %p = getelementptr inbounds [8 x float], [8 x float]* %buf, i64 0, i64 0
  %v = load float, float* %p, align 4
  ret float %v
}
"#;
        let mut m = parse_module("m", src).unwrap();
        let changed = Mem2Reg.run(&mut m).unwrap();
        assert!(!changed);
        assert_eq!(m.function("f").unwrap().count_opcode(Opcode::Alloca), 1);
    }

    #[test]
    fn uninitialized_read_becomes_undef() {
        let src = r#"
define i32 @f() {
entry:
  %x = alloca i32, align 4
  %v = load i32, i32* %x, align 4
  ret i32 %v
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(Mem2Reg.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let f = m.function("f").unwrap();
        let ret = f.terminator(f.entry()).unwrap();
        assert!(matches!(f.inst(ret).operands[0], Value::Undef(_)));
    }
}
