//! Loop-invariant code motion.
//!
//! Hoists pure, loop-invariant computations (arithmetic, comparisons,
//! casts, GEPs) out of natural loops into the preheader-position of the
//! loop — the block that is the unique out-of-loop predecessor of the
//! header. Memory operations and side-effecting instructions are never
//! moved; this is the conservative subset every HLS frontend runs to keep
//! address computations from being re-scheduled every iteration.

use std::collections::HashSet;

use crate::analysis::{Cfg, DomTree, LoopInfo};
use crate::inst::Opcode;
use crate::module::{BlockId, Function, InstId, Module};
use crate::transforms::ModulePass;
use crate::value::Value;
use pass_core::PassResult;

/// The LICM pass.
pub struct Licm;

impl ModulePass<Module> for Licm {
    fn name(&self) -> &'static str {
        "licm"
    }

    fn run(&self, m: &mut Module) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.functions {
            if f.is_declaration {
                continue;
            }
            // Iterate: hoisting can expose more invariant operands.
            loop {
                if !hoist_once(f) {
                    break;
                }
                changed = true;
            }
        }
        Ok(changed)
    }
}

/// Is this instruction hoistable when its operands are invariant?
fn hoistable(op: Opcode) -> bool {
    op.is_int_binop()
        && !matches!(
            op,
            Opcode::SDiv | Opcode::UDiv | Opcode::SRem | Opcode::URem
        )
        || matches!(
            op,
            Opcode::FAdd
                | Opcode::FSub
                | Opcode::FMul
                | Opcode::FNeg
                | Opcode::ICmp
                | Opcode::FCmp
                | Opcode::Select
                | Opcode::Gep
        )
        || op.is_cast()
}

/// Find one hoistable instruction and move it; returns whether any move
/// happened (restart semantics keep the analyses simple).
fn hoist_once(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let dom = DomTree::build(f, &cfg);
    let li = LoopInfo::build(f, &cfg, &dom);

    for l in &li.loops {
        // Preheader: the unique out-of-loop predecessor of the header.
        let outside: Vec<BlockId> = cfg.preds[l.header as usize]
            .iter()
            .copied()
            .filter(|p| !l.body.contains(p))
            .collect();
        let [preheader] = outside.as_slice() else {
            continue;
        };
        let body_set: HashSet<BlockId> = l.body.iter().copied().collect();
        // Defs inside the loop.
        let mut inside_defs: HashSet<InstId> = HashSet::new();
        for &b in &l.body {
            inside_defs.extend(f.block(b).insts.iter().copied());
        }
        for &b in &l.body {
            for &id in &f.block(b).insts.clone() {
                let inst = f.inst(id);
                if !hoistable(inst.opcode) || !inst.has_result() {
                    continue;
                }
                let invariant = inst.operands.iter().all(|v| match v {
                    Value::Inst(d) => !inside_defs.contains(d),
                    _ => true,
                });
                if !invariant {
                    continue;
                }
                // Move: unlink from its block, insert before the
                // preheader's terminator.
                let _ = body_set;
                f.block_mut(b).insts.retain(|&x| x != id);
                let pos = f.block(*preheader).insts.len().saturating_sub(1);
                f.block_mut(*preheader).insts.insert(pos, id);
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interpreter, RtVal};
    use crate::parser::parse_module;
    use crate::verifier::verify_module;

    const INVARIANT_MUL: &str = r#"
define void @f([64 x float]* %a, i64 %row, i64 %n) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit

body:
  %base = mul i64 %row, 8
  %lin = add i64 %base, %i
  %p = getelementptr inbounds [64 x float], [64 x float]* %a, i64 0, i64 %lin
  %v = load float, float* %p, align 4
  %w = fadd float %v, %v
  store float %w, float* %p, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

    #[test]
    fn hoists_invariant_address_math() {
        let mut m = parse_module("m", INVARIANT_MUL).unwrap();
        assert!(Licm.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let f = m.function("f").unwrap();
        // %base = mul %row, 8 must now live in the entry block.
        let entry_ops: Vec<Opcode> = f
            .block(f.entry())
            .insts
            .iter()
            .map(|&i| f.inst(i).opcode)
            .collect();
        assert!(entry_ops.contains(&Opcode::Mul), "{entry_ops:?}");
        // The loop-variant parts stay inside.
        let body = f.block_by_name("body").unwrap();
        let body_ops: Vec<Opcode> = f
            .block(body)
            .insts
            .iter()
            .map(|&i| f.inst(i).opcode)
            .collect();
        assert!(body_ops.contains(&Opcode::Gep));
        assert!(!body_ops.contains(&Opcode::Mul));
    }

    #[test]
    fn semantics_preserved() {
        let m1 = parse_module("m", INVARIANT_MUL).unwrap();
        let mut m2 = m1.clone();
        Licm.run(&mut m2).unwrap();
        let run = |m: &Module| {
            let mut i = Interpreter::new(m);
            let data: Vec<f32> = (0..64).map(|x| x as f32).collect();
            let p = i.mem.alloc_f32(&data);
            i.call("f", &[RtVal::P(p), RtVal::I(3), RtVal::I(8)])
                .unwrap();
            i.mem.read_f32(p, 64).unwrap()
        };
        assert_eq!(run(&m1), run(&m2));
    }

    #[test]
    fn never_hoists_loads_or_stores() {
        let mut m = parse_module("m", INVARIANT_MUL).unwrap();
        Licm.run(&mut m).unwrap();
        let f = m.function("f").unwrap();
        let entry_ops: Vec<Opcode> = f
            .block(f.entry())
            .insts
            .iter()
            .map(|&i| f.inst(i).opcode)
            .collect();
        assert!(!entry_ops.contains(&Opcode::Load));
        assert!(!entry_ops.contains(&Opcode::Store));
    }

    #[test]
    fn never_hoists_division() {
        // Hoisting a division past the loop guard could introduce a trap
        // on a zero divisor that the original program never executes.
        let src = r#"
define i64 @f(i64 %n, i64 %d) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %acc = phi i64 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit

body:
  %q = sdiv i64 100, %d
  %acc2 = add i64 %acc, %q
  %next = add i64 %i, 1
  br label %header

exit:
  ret i64 %acc
}
"#;
        let mut m = parse_module("m", src).unwrap();
        Licm.run(&mut m).unwrap();
        let f = m.function("f").unwrap();
        let body = f.block_by_name("body").unwrap();
        assert!(f
            .block(body)
            .insts
            .iter()
            .any(|&i| f.inst(i).opcode == Opcode::SDiv));
        // n=0, d=0: must still terminate without trapping.
        let mut i = Interpreter::new(&m);
        assert_eq!(
            i.call("f", &[RtVal::I(0), RtVal::I(0)]).unwrap(),
            RtVal::I(0)
        );
    }

    #[test]
    fn idempotent_after_fixpoint() {
        let mut m = parse_module("m", INVARIANT_MUL).unwrap();
        Licm.run(&mut m).unwrap();
        assert!(!Licm.run(&mut m).unwrap());
    }
}
