//! Constant folding and trivial algebraic identities.
//!
//! The affine-map expansion in the lowering pipeline produces long chains of
//! `mul`/`add` with constant operands (`i*32 + j` style address math); this
//! pass collapses them, which matters both for readability of the adapted IR
//! and for honest operation counts in the scheduler.

use crate::inst::{InstData, IntPred, Opcode};
use crate::module::Module;
use crate::transforms::ModulePass;
use crate::types::Type;
use crate::value::Value;
use pass_core::PassResult;

/// The constant-folding pass.
pub struct FoldConstants;

impl ModulePass<Module> for FoldConstants {
    fn name(&self) -> &'static str {
        "fold-constants"
    }

    fn run(&self, m: &mut Module) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.functions {
            if f.is_declaration {
                continue;
            }
            loop {
                let mut step = false;
                for (_, id) in f.inst_ids() {
                    let inst = f.inst(id);
                    let Some(folded) = fold_inst(inst.opcode, &inst.data, &inst.operands, &inst.ty)
                    else {
                        continue;
                    };
                    f.replace_all_uses(&Value::Inst(id), &folded);
                    f.remove_inst(id);
                    step = true;
                    break; // ids snapshot invalidated; restart scan
                }
                if !step {
                    break;
                }
                changed = true;
            }
        }
        Ok(changed)
    }
}

/// Wrap an integer to its type width (two's complement).
fn wrap(ty: &Type, v: i128) -> i128 {
    let w = ty.int_width().unwrap_or(64);
    if w >= 128 {
        return v;
    }
    let m = 1i128 << w;
    let r = v.rem_euclid(m);
    if w > 0 && r >= m / 2 {
        r - m
    } else {
        r
    }
}

fn fold_inst(op: Opcode, data: &InstData, ops: &[Value], ty: &Type) -> Option<Value> {
    // Two-constant integer folds.
    if op.is_int_binop() {
        let (a, b) = (ops[0].int_value(), ops[1].int_value());
        if let (Some(a), Some(b)) = (a, b) {
            let r = match op {
                Opcode::Add => a.checked_add(b)?,
                Opcode::Sub => a.checked_sub(b)?,
                Opcode::Mul => a.checked_mul(b)?,
                Opcode::SDiv => {
                    if b == 0 {
                        return None;
                    }
                    a.checked_div(b)?
                }
                Opcode::SRem => {
                    if b == 0 {
                        return None;
                    }
                    a.checked_rem(b)?
                }
                Opcode::UDiv => {
                    if b == 0 {
                        return None;
                    }
                    (a as u128).checked_div(b as u128)? as i128
                }
                Opcode::URem => {
                    if b == 0 {
                        return None;
                    }
                    (a as u128).checked_rem(b as u128)? as i128
                }
                Opcode::And => a & b,
                Opcode::Or => a | b,
                Opcode::Xor => a ^ b,
                Opcode::Shl => a.checked_shl(u32::try_from(b).ok()?)?,
                Opcode::LShr => ((a as u128) >> u32::try_from(b).ok()?) as i128,
                Opcode::AShr => a >> u32::try_from(b).ok()?,
                _ => return None,
            };
            return Some(Value::const_int(ty.clone(), wrap(ty, r)));
        }
        // Identities with one constant.
        match (op, a, b) {
            (Opcode::Add, Some(0), _) => return Some(ops[1].clone()),
            (Opcode::Add, _, Some(0)) => return Some(ops[0].clone()),
            (Opcode::Sub, _, Some(0)) => return Some(ops[0].clone()),
            (Opcode::Mul, Some(1), _) => return Some(ops[1].clone()),
            (Opcode::Mul, _, Some(1)) => return Some(ops[0].clone()),
            (Opcode::Mul, Some(0), _) | (Opcode::Mul, _, Some(0)) => {
                return Some(Value::const_int(ty.clone(), 0))
            }
            (Opcode::Shl, _, Some(0)) => return Some(ops[0].clone()),
            (Opcode::And, _, Some(0)) | (Opcode::And, Some(0), _) => {
                return Some(Value::const_int(ty.clone(), 0))
            }
            (Opcode::Or, _, Some(0)) => return Some(ops[0].clone()),
            (Opcode::Or, Some(0), _) => return Some(ops[1].clone()),
            _ => {}
        }
        return None;
    }
    match op {
        Opcode::ICmp => {
            let InstData::ICmp(pred) = data else {
                return None;
            };
            let (a, b) = (ops[0].int_value()?, ops[1].int_value()?);
            let r = match pred {
                IntPred::Eq => a == b,
                IntPred::Ne => a != b,
                IntPred::Slt => a < b,
                IntPred::Sle => a <= b,
                IntPred::Sgt => a > b,
                IntPred::Sge => a >= b,
                IntPred::Ult => (a as u128) < (b as u128),
                IntPred::Ule => (a as u128) <= (b as u128),
                IntPred::Ugt => (a as u128) > (b as u128),
                IntPred::Uge => (a as u128) >= (b as u128),
            };
            Some(Value::bool(r))
        }
        Opcode::Select => {
            let c = ops[0].int_value()?;
            Some(if c != 0 {
                ops[1].clone()
            } else {
                ops[2].clone()
            })
        }
        Opcode::SExt | Opcode::ZExt => {
            let v = ops[0].int_value()?;
            // Stored representation is already sign-extended i128; zext needs
            // masking by the source width, which we don't track here, so only
            // fold sext and non-negative zext.
            if op == Opcode::ZExt && v < 0 {
                return None;
            }
            Some(Value::const_int(ty.clone(), v))
        }
        Opcode::Trunc => {
            let v = ops[0].int_value()?;
            Some(Value::const_int(ty.clone(), wrap(ty, v)))
        }
        Opcode::SIToFP => {
            let v = ops[0].int_value()?;
            Some(match ty {
                Type::Float => Value::f32(v as f32),
                _ => Value::f64(v as f64),
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;
    use crate::verifier::verify_module;

    fn run(src: &str) -> Module {
        let mut m = parse_module("m", src).unwrap();
        FoldConstants.run(&mut m).unwrap();
        crate::transforms::Dce.run(&mut m).unwrap();
        verify_module(&m).unwrap();
        m
    }

    #[test]
    fn folds_constant_chain() {
        let m = run(r#"
define i32 @f() {
entry:
  %a = mul i32 6, 7
  %b = add i32 %a, 0
  %c = add i32 %b, 1
  ret i32 %c
}
"#);
        let f = m.function("f").unwrap();
        assert_eq!(f.num_insts(), 1);
        assert_eq!(
            f.inst(f.terminator(f.entry()).unwrap()).operands[0],
            Value::i32(43)
        );
    }

    #[test]
    fn identity_elimination() {
        let m = run(r#"
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 0
  %b = mul i32 %a, 1
  %c = mul i32 %b, 0
  ret i32 %c
}
"#);
        let f = m.function("f").unwrap();
        assert_eq!(f.num_insts(), 1);
        assert_eq!(
            f.inst(f.terminator(f.entry()).unwrap()).operands[0],
            Value::i32(0)
        );
    }

    #[test]
    fn wrapping_semantics() {
        let m = run(r#"
define i8 @f() {
entry:
  %a = add i8 127, 1
  ret i8 %a
}
"#);
        let f = m.function("f").unwrap();
        assert_eq!(
            f.inst(f.terminator(f.entry()).unwrap()).operands[0],
            Value::const_int(Type::Int(8), -128)
        );
    }

    #[test]
    fn never_folds_division_by_zero() {
        let src = r#"
define i32 @f() {
entry:
  %a = sdiv i32 1, 0
  ret i32 %a
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(!FoldConstants.run(&mut m).unwrap());
    }

    #[test]
    fn folds_icmp_and_select() {
        let m = run(r#"
define i32 @f() {
entry:
  %c = icmp slt i32 3, 5
  %r = select i1 %c, i32 10, i32 20
  ret i32 %r
}
"#);
        let f = m.function("f").unwrap();
        assert_eq!(
            f.inst(f.terminator(f.entry()).unwrap()).operands[0],
            Value::i32(10)
        );
    }

    #[test]
    fn folds_casts() {
        let m = run(r#"
define i64 @f() {
entry:
  %a = sext i32 -5 to i64
  ret i64 %a
}
"#);
        let f = m.function("f").unwrap();
        assert_eq!(
            f.inst(f.terminator(f.entry()).unwrap()).operands[0],
            Value::i64(-5)
        );
    }

    #[test]
    fn sitofp_fold() {
        let m = run(r#"
define float @f() {
entry:
  %a = sitofp i32 3 to float
  ret float %a
}
"#);
        let f = m.function("f").unwrap();
        assert_eq!(
            f.inst(f.terminator(f.entry()).unwrap()).operands[0],
            Value::f32(3.0)
        );
    }
}
