//! Dead code elimination.
//!
//! Iteratively removes value-producing instructions with no users and no
//! side effects. Runs to a local fixed point within each call.

use crate::analysis::DefUse;
use crate::module::Module;
use crate::transforms::ModulePass;
use pass_core::PassResult;

/// The DCE pass.
pub struct Dce;

impl ModulePass<Module> for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, m: &mut Module) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.functions {
            if f.is_declaration {
                continue;
            }
            loop {
                let du = DefUse::build(f);
                let dead: Vec<u32> = f
                    .inst_ids()
                    .into_iter()
                    .map(|(_, id)| id)
                    .filter(|&id| {
                        let inst = f.inst(id);
                        inst.has_result() && !inst.opcode.has_side_effects() && du.num_uses(id) == 0
                    })
                    .collect();
                if dead.is_empty() {
                    break;
                }
                for id in dead {
                    f.remove_inst(id);
                    changed = true;
                }
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Opcode;
    use crate::parser::parse_module;
    use crate::verifier::verify_module;

    #[test]
    fn removes_unused_chain() {
        let src = r#"
define i32 @f(i32 %a) {
entry:
  %dead1 = add i32 %a, 1
  %dead2 = mul i32 %dead1, 2
  %live = add i32 %a, 3
  ret i32 %live
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(Dce.run(&mut m).unwrap());
        verify_module(&m).unwrap();
        let f = m.function("f").unwrap();
        assert_eq!(f.num_insts(), 2); // %live + ret
        assert_eq!(f.count_opcode(Opcode::Mul), 0);
    }

    #[test]
    fn keeps_side_effecting_instructions() {
        let src = r#"
declare i32 @ext()

define void @f(i32* %p) {
entry:
  %unused = call i32 @ext()
  store i32 0, i32* %p, align 4
  ret void
}
"#;
        let mut m = parse_module("m", src).unwrap();
        let changed = Dce.run(&mut m).unwrap();
        assert!(!changed);
        let f = m.function("f").unwrap();
        assert_eq!(f.count_opcode(Opcode::Call), 1);
        assert_eq!(f.count_opcode(Opcode::Store), 1);
    }

    #[test]
    fn keeps_loads_with_uses_only() {
        // Loads are side-effect free here (no volatile), so an unused load
        // goes away, but a used one stays.
        let src = r#"
define i32 @f(i32* %p) {
entry:
  %dead = load i32, i32* %p, align 4
  %live = load i32, i32* %p, align 4
  ret i32 %live
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(Dce.run(&mut m).unwrap());
        let f = m.function("f").unwrap();
        assert_eq!(f.count_opcode(Opcode::Load), 1);
    }

    #[test]
    fn noop_on_clean_function() {
        let src = "define void @f() {\nentry:\n  ret void\n}\n";
        let mut m = parse_module("m", src).unwrap();
        assert!(!Dce.run(&mut m).unwrap());
    }
}
