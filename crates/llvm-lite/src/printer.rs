//! Textual output in `.ll` syntax.
//!
//! The emitted dialect is the typed-pointer one (LLVM ≤14 flavour) that HLS
//! front-ends accept; float constants are always printed in the exact
//! hexadecimal form (`0x<f64 bits>`) so the printer/parser pair round-trips
//! bit-exactly.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::inst::{Inst, InstData, Opcode};
use crate::module::{Function, Global, GlobalInit, InstId, Module};
use crate::types::Type;
use crate::value::Value;

/// Print a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; ModuleID = '{}'", m.name);
    if let Some(t) = &m.target_triple {
        let _ = writeln!(out, "target triple = \"{t}\"");
    }
    if !m.globals.is_empty() {
        out.push('\n');
    }
    for g in &m.globals {
        out.push_str(&print_global(g));
        out.push('\n');
    }
    for f in &m.functions {
        out.push('\n');
        out.push_str(&print_function(m, f));
    }
    if !m.loop_mds.is_empty() {
        out.push('\n');
        out.push_str(&print_loop_mds(m));
    }
    out
}

fn print_global(g: &Global) -> String {
    let kind = if g.is_const { "constant" } else { "global" };
    let init = match &g.init {
        None => String::from("external"),
        Some(i) => print_init(&g.ty, i),
    };
    let mut s = format!("@{} = {kind} {} {init}", g.name, g.ty);
    if g.align != 0 {
        let _ = write!(s, ", align {}", g.align);
    }
    s
}

fn print_init(ty: &Type, init: &GlobalInit) -> String {
    match init {
        GlobalInit::Zero => "zeroinitializer".to_string(),
        GlobalInit::Int(v) => v.to_string(),
        GlobalInit::Float(bits) => format!("0x{bits:016X}"),
        GlobalInit::Array(elems) => {
            let elem_ty = ty.array_elem().cloned().unwrap_or(Type::I8);
            let body: Vec<String> = elems
                .iter()
                .map(|e| format!("{elem_ty} {}", print_init(&elem_ty, e)))
                .collect();
            format!("[{}]", body.join(", "))
        }
    }
}

/// Names assigned to instruction results and blocks during printing.
pub struct NameMap {
    inst_names: HashMap<InstId, String>,
}

impl NameMap {
    /// Build names for every live value-producing instruction: the `name`
    /// hint when present and unique, else `%tN`.
    pub fn build(f: &Function) -> NameMap {
        let mut used: HashMap<String, u32> = HashMap::new();
        for p in &f.params {
            used.insert(p.name.clone(), 1);
        }
        let mut inst_names = HashMap::new();
        let mut counter = 0u32;
        for (_, id) in f.inst_ids() {
            let inst = f.inst(id);
            if !inst.has_result() {
                continue;
            }
            let base = if inst.name.is_empty() {
                let n = format!("t{counter}");
                counter += 1;
                n
            } else {
                inst.name.clone()
            };
            let name = match used.get(&base) {
                None => base.clone(),
                Some(n) => format!("{base}{n}"),
            };
            *used.entry(base).or_insert(0) += 1;
            inst_names.insert(id, name);
        }
        NameMap { inst_names }
    }

    /// The printed name (without `%`) of an instruction result.
    pub fn inst(&self, id: InstId) -> &str {
        self.inst_names
            .get(&id)
            .map(String::as_str)
            .unwrap_or("<dead>")
    }
}

/// Print one function (definition or declaration).
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| {
            let mut s = p.ty.to_string();
            for (k, v) in &p.attrs {
                let _ = write!(s, " \"{k}\"=\"{v}\"");
            }
            let _ = write!(s, " %{}", p.name);
            s
        })
        .collect();
    let attrs: String = f
        .attrs
        .iter()
        .map(|(k, v)| format!(" \"{k}\"=\"{v}\""))
        .collect();
    if f.is_declaration {
        let _ = writeln!(
            out,
            "declare {} @{}({}){attrs}",
            f.ret_ty,
            f.name,
            params.join(", ")
        );
        return out;
    }
    let _ = writeln!(
        out,
        "define {} @{}({}){attrs} {{",
        f.ret_ty,
        f.name,
        params.join(", ")
    );
    let names = NameMap::build(f);
    for (i, &b) in f.block_order.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let _ = writeln!(out, "{}:", f.blocks[b as usize].name);
        for &iid in &f.blocks[b as usize].insts {
            let _ = writeln!(out, "  {}", print_inst(m, f, &names, iid));
        }
    }
    out.push_str("}\n");
    out
}

fn val(_m: &Module, f: &Function, names: &NameMap, v: &Value) -> String {
    match v {
        Value::Arg(i) => format!("%{}", f.params[*i as usize].name),
        Value::Inst(id) => format!("%{}", names.inst(*id)),
        Value::ConstInt { value, .. } => value.to_string(),
        Value::ConstFloat { bits, .. } => format!("0x{bits:016X}"),
        Value::Global(name) => format!("@{name}"),
        Value::NullPtr(_) => "null".to_string(),
        Value::Undef(_) => "undef".to_string(),
    }
}

fn typed_val(m: &Module, f: &Function, names: &NameMap, v: &Value) -> String {
    format!("{} {}", f.value_type(m, v), val(m, f, names, v))
}

/// Print a single instruction (without indentation).
pub fn print_inst(m: &Module, f: &Function, names: &NameMap, id: InstId) -> String {
    let inst = f.inst(id);
    let lhs = if inst.has_result() {
        format!("%{} = ", names.inst(id))
    } else {
        String::new()
    };
    let body = print_inst_body(m, f, names, inst);
    let md = match inst.loop_md {
        Some(n) => format!(", !llvm.loop !{n}"),
        None => String::new(),
    };
    format!("{lhs}{body}{md}")
}

fn print_inst_body(m: &Module, f: &Function, names: &NameMap, inst: &Inst) -> String {
    let v = |x: &Value| val(m, f, names, x);
    let tv = |x: &Value| typed_val(m, f, names, x);
    let bname = |b: u32| f.blocks[b as usize].name.clone();
    match (&inst.opcode, &inst.data) {
        (op, _) if op.is_int_binop() || op.is_float_binop() => format!(
            "{} {} {}, {}",
            op.mnemonic(),
            inst.ty,
            v(&inst.operands[0]),
            v(&inst.operands[1])
        ),
        (Opcode::FNeg, _) => format!("fneg {} {}", inst.ty, v(&inst.operands[0])),
        (Opcode::ICmp, InstData::ICmp(p)) => format!(
            "icmp {} {} {}, {}",
            p.mnemonic(),
            f.value_type(m, &inst.operands[0]),
            v(&inst.operands[0]),
            v(&inst.operands[1])
        ),
        (Opcode::FCmp, InstData::FCmp(p)) => format!(
            "fcmp {} {} {}, {}",
            p.mnemonic(),
            f.value_type(m, &inst.operands[0]),
            v(&inst.operands[0]),
            v(&inst.operands[1])
        ),
        (Opcode::Load, InstData::Load { align }) => {
            format!("load {}, {}, align {align}", inst.ty, tv(&inst.operands[0]))
        }
        (Opcode::Store, InstData::Store { align }) => format!(
            "store {}, {}, align {align}",
            tv(&inst.operands[0]),
            tv(&inst.operands[1])
        ),
        (Opcode::Gep, InstData::Gep { base_ty, inbounds }) => {
            let mut s = String::from("getelementptr ");
            if *inbounds {
                s.push_str("inbounds ");
            }
            let _ = write!(s, "{base_ty}, {}", tv(&inst.operands[0]));
            for idx in &inst.operands[1..] {
                let _ = write!(s, ", {}", tv(idx));
            }
            s
        }
        (Opcode::Alloca, InstData::Alloca { allocated, align }) => {
            format!("alloca {allocated}, align {align}")
        }
        (Opcode::Call, InstData::Call { callee }) => {
            let args: Vec<String> = inst.operands.iter().map(tv).collect();
            format!("call {} @{callee}({})", inst.ty, args.join(", "))
        }
        (Opcode::Select, _) => format!(
            "select {}, {}, {}",
            tv(&inst.operands[0]),
            tv(&inst.operands[1]),
            tv(&inst.operands[2])
        ),
        (Opcode::Phi, InstData::Phi { incoming }) => {
            let edges: Vec<String> = inst
                .operands
                .iter()
                .zip(incoming)
                .map(|(op, b)| format!("[ {}, %{} ]", v(op), bname(*b)))
                .collect();
            format!("phi {} {}", inst.ty, edges.join(", "))
        }
        (op, _) if op.is_cast() => {
            format!("{} {} to {}", op.mnemonic(), tv(&inst.operands[0]), inst.ty)
        }
        (Opcode::Br, InstData::Br { dest }) => format!("br label %{}", bname(*dest)),
        (Opcode::CondBr, InstData::CondBr { on_true, on_false }) => format!(
            "br {}, label %{}, label %{}",
            tv(&inst.operands[0]),
            bname(*on_true),
            bname(*on_false)
        ),
        (Opcode::Ret, _) => match inst.operands.first() {
            None => "ret void".to_string(),
            Some(x) => format!("ret {}", tv(x)),
        },
        (Opcode::Unreachable, _) => "unreachable".to_string(),
        (op, data) => panic!("malformed instruction {op:?} with payload {data:?}"),
    }
}

fn print_loop_mds(m: &Module) -> String {
    let mut out = String::new();
    let mut aux = m.loop_mds.len() as u32;
    for (i, md) in m.loop_mds.iter().enumerate() {
        let mut refs = Vec::new();
        let mut lines = Vec::new();
        let mut emit = |line: String, aux: &mut u32| {
            let id = *aux;
            *aux += 1;
            lines.push(format!("!{id} = !{{{line}}}"));
            id
        };
        if let Some(ii) = md.pipeline_ii {
            let id = emit(
                format!("!\"llvm.loop.pipeline.enable\", i32 {ii}"),
                &mut aux,
            );
            refs.push(id);
        }
        if let Some(fac) = md.unroll_factor {
            let id = emit(format!("!\"llvm.loop.unroll.count\", i32 {fac}"), &mut aux);
            refs.push(id);
        }
        if md.unroll_full {
            let id = emit("!\"llvm.loop.unroll.full\"".to_string(), &mut aux);
            refs.push(id);
        }
        if md.flatten {
            let id = emit("!\"llvm.loop.flatten.enable\"".to_string(), &mut aux);
            refs.push(id);
        }
        if md.dataflow {
            let id = emit("!\"llvm.loop.dataflow.enable\"".to_string(), &mut aux);
            refs.push(id);
        }
        if let Some((lo, hi)) = md.tripcount {
            let id = emit(
                format!("!\"llvm.loop.tripcount\", i32 {lo}, i32 {hi}"),
                &mut aux,
            );
            refs.push(id);
        }
        let mut parts = vec![format!("!{i}")];
        parts.extend(refs.iter().map(|r| format!("!{r}")));
        let _ = writeln!(out, "!{i} = distinct !{{{}}}", parts.join(", "));
        for l in lines {
            let _ = writeln!(out, "{l}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IrBuilder;
    use crate::inst::IntPred;
    use crate::metadata::LoopMetadata;
    use crate::module::Param;

    fn demo_module() -> Module {
        let mut m = Module::new("demo");
        let mut f = Function::new(
            "scale",
            vec![
                Param::new("a", Type::Float.ptr_to()),
                Param::new("n", Type::I32),
            ],
            Type::Void,
        );
        let entry = f.add_block("entry");
        let header = f.add_block("loop.header");
        let body = f.add_block("loop.body");
        let exit = f.add_block("exit");
        let mut b = IrBuilder::new(&mut f, entry);
        b.br(header);
        b.position_at(header);
        let i = b.phi(Type::I32);
        b.phi_add_incoming(i, Value::i32(0), entry);
        let cond = b.icmp(IntPred::Slt, Value::Inst(i), Value::Arg(1));
        b.cond_br(cond, body, exit);
        b.position_at(body);
        let i64v = b.sext(Value::Inst(i), Type::I64);
        let p = b.gep(Type::Float, Value::Arg(0), vec![i64v]);
        let x = b.load(Type::Float, p.clone());
        let y = b.fmul(Type::Float, x, Value::f32(2.0));
        b.store(y, p, 4);
        let next = b.add(Type::I32, Value::Inst(i), Value::i32(1));
        b.phi_add_incoming(i, next, body);
        let latch = b.br(header);
        b.position_at(exit);
        b.ret(None);
        let md = m.add_loop_md(LoopMetadata::pipelined(1));
        f.inst_mut(latch).loop_md = Some(md);
        m.functions.push(f);
        m
    }

    #[test]
    fn prints_structural_elements() {
        let m = demo_module();
        let text = print_module(&m);
        assert!(text.contains("define void @scale(float* %a, i32 %n) {"));
        assert!(text.contains("phi i32 [ 0, %entry ]"));
        assert!(text.contains("br label %loop.header, !llvm.loop !0"));
        assert!(text.contains("!0 = distinct !{!0, !1}"));
        assert!(text.contains("!\"llvm.loop.pipeline.enable\", i32 1"));
        assert!(text.contains("getelementptr inbounds float, float* %a, i64"));
        assert!(text.contains("load float, float*"));
        assert!(text.contains("ret void"));
    }

    #[test]
    fn float_constants_are_hex_exact() {
        let m = demo_module();
        let text = print_module(&m);
        let bits = (2.0f32 as f64).to_bits();
        assert!(text.contains(&format!("0x{bits:016X}")));
    }

    #[test]
    fn declaration_prints_one_line() {
        let mut m = Module::new("m");
        m.functions.push(Function::declaration(
            "llvm.sqrt.f32",
            vec![Param::new("x", Type::Float)],
            Type::Float,
        ));
        let text = print_module(&m);
        assert!(text.contains("declare float @llvm.sqrt.f32(float %x)"));
    }

    #[test]
    fn global_printing() {
        let mut m = Module::new("m");
        m.globals.push(Global {
            name: "lut".into(),
            ty: Type::I32.array_of(3),
            init: Some(GlobalInit::Array(vec![
                GlobalInit::Int(1),
                GlobalInit::Int(2),
                GlobalInit::Int(3),
            ])),
            is_const: true,
            align: 4,
        });
        m.globals.push(Global {
            name: "buf".into(),
            ty: Type::Float.array_of(16),
            init: Some(GlobalInit::Zero),
            is_const: false,
            align: 0,
        });
        let text = print_module(&m);
        assert!(text.contains("@lut = constant [3 x i32] [i32 1, i32 2, i32 3], align 4"));
        assert!(text.contains("@buf = global [16 x float] zeroinitializer"));
    }

    #[test]
    fn name_hints_are_respected_and_uniqued() {
        let mut f = Function::new("f", vec![], Type::I32);
        let e = f.add_block("entry");
        let a = f.push_inst(
            e,
            Inst::new(Opcode::Add, Type::I32, vec![Value::i32(1), Value::i32(2)]).with_name("sum"),
        );
        let b2 = f.push_inst(
            e,
            Inst::new(Opcode::Add, Type::I32, vec![Value::Inst(a), Value::i32(3)]).with_name("sum"),
        );
        f.push_inst(e, Inst::new(Opcode::Ret, Type::Void, vec![Value::Inst(b2)]));
        let names = NameMap::build(&f);
        assert_eq!(names.inst(a), "sum");
        assert_eq!(names.inst(b2), "sum1");
    }

    #[test]
    fn function_attrs_are_printed() {
        let mut m = Module::new("m");
        let mut f = Function::new("top", vec![], Type::Void);
        f.attrs.insert("hls.top".into(), "1".into());
        let e = f.add_block("entry");
        f.push_inst(e, Inst::new(Opcode::Ret, Type::Void, vec![]));
        m.functions.push(f);
        let text = print_module(&m);
        assert!(text.contains("define void @top() \"hls.top\"=\"1\" {"));
    }
}
