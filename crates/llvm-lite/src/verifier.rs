//! Structural verifier.
//!
//! Checks the invariants the rest of the crate (and the Vitis simulator)
//! relies on: every block terminated exactly once, operand types consistent,
//! PHIs matching predecessor edges, defs dominating uses, and metadata
//! references in range.
//!
//! Failures are reported as located [`Diagnostic`]s naming the function,
//! block and instruction involved, rendered as
//! `error[verifier] @func:block:%N: message`.

use std::collections::HashSet;

use pass_core::{Diagnostic, Loc, PassResult};

use crate::analysis::{Cfg, DomTree};
use crate::inst::{InstData, Opcode};
use crate::module::{BlockId, Function, InstId, Module};
use crate::types::Type;
use crate::value::Value;
use crate::Result;

fn diag(msg: impl Into<String>, loc: Loc) -> Diagnostic {
    Diagnostic::error("verifier", msg).with_loc(loc)
}

/// Verify a whole module, producing a located diagnostic on failure.
pub fn verify_module_diag(m: &Module) -> PassResult<()> {
    let mut names = HashSet::new();
    for f in &m.functions {
        if !names.insert(&f.name) {
            return Err(diag("duplicate function", Loc::function(&f.name)));
        }
        if !f.is_declaration {
            verify_function_diag(m, f)?;
        }
    }
    let mut gnames = HashSet::new();
    for g in &m.globals {
        if !gnames.insert(&g.name) {
            return Err(diag(
                format!("duplicate global @{}", g.name),
                Loc::default(),
            ));
        }
    }
    Ok(())
}

/// Verify a whole module (crate-error wrapper around [`verify_module_diag`]).
pub fn verify_module(m: &Module) -> Result<()> {
    verify_module_diag(m).map_err(crate::Error::from)
}

/// Verify a single function definition (crate-error wrapper).
pub fn verify_function(m: &Module, f: &Function) -> Result<()> {
    verify_function_diag(m, f).map_err(crate::Error::from)
}

/// Verify a single function definition.
pub fn verify_function_diag(m: &Module, f: &Function) -> PassResult<()> {
    let err = |msg: String| Err(diag(msg, Loc::function(&f.name)));
    let berr = |b: BlockId, msg: String| {
        Err(diag(
            msg,
            Loc::function(&f.name).in_block(&f.blocks[b as usize].name),
        ))
    };

    if f.block_order.is_empty() {
        return err("definition has no blocks".into());
    }
    // Unique labels.
    let mut labels = HashSet::new();
    for &b in &f.block_order {
        if !labels.insert(&f.blocks[b as usize].name) {
            return berr(b, format!("duplicate label {}", f.blocks[b as usize].name));
        }
    }
    // Block shape: exactly one terminator, at the end; phis lead the block.
    for &b in &f.block_order {
        let insts = &f.blocks[b as usize].insts;
        let Some(&last) = insts.last() else {
            return berr(b, "block is empty".into());
        };
        if !f.inst(last).is_terminator() {
            return berr(b, "block does not end in a terminator".into());
        }
        let mut seen_non_phi = false;
        for (pos, &i) in insts.iter().enumerate() {
            let inst = f.inst(i);
            if inst.is_terminator() && pos + 1 != insts.len() {
                return berr(b, "terminator in the middle of the block".into());
            }
            if inst.opcode == Opcode::Phi {
                if seen_non_phi {
                    return berr(b, format!("phi %{i} after non-phi"));
                }
            } else {
                seen_non_phi = true;
            }
        }
    }
    let cfg = Cfg::build(f);
    // PHI edges must exactly match predecessors.
    for &b in &f.block_order {
        let preds: HashSet<u32> = cfg.preds[b as usize].iter().copied().collect();
        for &i in &f.blocks[b as usize].insts {
            let inst = f.inst(i);
            if let InstData::Phi { incoming } = &inst.data {
                if inst.operands.len() != incoming.len() {
                    return berr(b, format!("phi %{i} operand/block count mismatch"));
                }
                let inc: HashSet<u32> = incoming.iter().copied().collect();
                if inc != preds {
                    return berr(
                        b,
                        format!("phi %{i} incoming blocks do not match predecessors"),
                    );
                }
            }
        }
    }
    // Operand sanity + type rules.
    for (b, id) in f.inst_ids() {
        verify_inst(m, f, b, id)?;
    }
    // Defs dominate uses (phi uses checked at the incoming edge).
    let dom = DomTree::build(f, &cfg);
    for (b, id) in f.inst_ids() {
        let inst = f.inst(id);
        let iloc = || {
            Loc::function(&f.name)
                .in_block(&f.blocks[b as usize].name)
                .at_inst(format!("%{id}"))
        };
        for (oi, op) in inst.operands.iter().enumerate() {
            let Value::Inst(def) = op else { continue };
            if !f.is_live(*def) {
                return Err(diag(format!("use of removed instruction %{def}"), iloc()));
            }
            let Some(def_block) = f.block_of(*def) else {
                return Err(diag(format!("use of unplaced instruction %{def}"), iloc()));
            };
            let use_block = match &inst.data {
                InstData::Phi { incoming } => incoming[oi],
                _ => b,
            };
            let ok = if def_block == use_block && !matches!(inst.data, InstData::Phi { .. }) {
                // Same-block ordering.
                let blk = &f.blocks[b as usize].insts;
                let dpos = blk.iter().position(|&x| x == *def);
                let upos = blk.iter().position(|&x| x == id);
                match (dpos, upos) {
                    (Some(d), Some(u)) => d < u,
                    _ => false,
                }
            } else {
                dom.dominates(def_block, use_block)
            };
            if !ok {
                return Err(diag(
                    format!("use of %{def} is not dominated by its def"),
                    iloc(),
                ));
            }
        }
    }
    // Metadata references in range.
    for (b, id) in f.inst_ids() {
        let iloc = || {
            Loc::function(&f.name)
                .in_block(&f.blocks[b as usize].name)
                .at_inst(format!("%{id}"))
        };
        if let Some(md) = f.inst(id).loop_md {
            if md as usize >= m.loop_mds.len() {
                return Err(diag(
                    format!("references out-of-range loop metadata !{md}"),
                    iloc(),
                ));
            }
            if !f.inst(id).is_terminator() {
                return Err(diag(
                    "loop metadata on a non-terminator".to_string(),
                    iloc(),
                ));
            }
        }
    }
    // Return types.
    for (b, id) in f.inst_ids() {
        let inst = f.inst(id);
        if inst.opcode == Opcode::Ret {
            match (inst.operands.first(), &f.ret_ty) {
                (None, Type::Void) => {}
                (Some(v), ty) if &f.value_type(m, v) == ty => {}
                _ => {
                    return Err(diag(
                        "ret type mismatch".to_string(),
                        Loc::function(&f.name)
                            .in_block(&f.blocks[b as usize].name)
                            .at_inst(format!("%{id}")),
                    ))
                }
            }
        }
    }
    Ok(())
}

fn verify_inst(m: &Module, f: &Function, b: BlockId, id: InstId) -> PassResult<()> {
    let inst = f.inst(id);
    let err = |msg: String| {
        Err(diag(
            msg,
            Loc::function(&f.name)
                .in_block(&f.blocks[b as usize].name)
                .at_inst(format!("%{id}")),
        ))
    };
    let op_ty = |i: usize| f.value_type(m, &inst.operands[i]);
    match inst.opcode {
        op if op.is_int_binop() => {
            if inst.operands.len() != 2 {
                return err("binary op needs 2 operands".into());
            }
            if !inst.ty.is_int() || op_ty(0) != inst.ty || op_ty(1) != inst.ty {
                return err(format!("integer binop type mismatch ({})", inst.ty));
            }
        }
        op if op.is_float_binop() => {
            if inst.operands.len() != 2 || !inst.ty.is_float() {
                return err("float binop malformed".into());
            }
            if op_ty(0) != inst.ty || op_ty(1) != inst.ty {
                return err("float binop operand type mismatch".into());
            }
        }
        Opcode::FNeg if (inst.operands.len() != 1 || !inst.ty.is_float()) => {
            return err("fneg malformed".into());
        }
        Opcode::ICmp => {
            if op_ty(0) != op_ty(1) || !(op_ty(0).is_int() || op_ty(0).is_ptr()) {
                return err("icmp operand mismatch".into());
            }
            if inst.ty != Type::I1 {
                return err("icmp must produce i1".into());
            }
        }
        Opcode::FCmp if (op_ty(0) != op_ty(1) || !op_ty(0).is_float()) => {
            return err("fcmp operand mismatch".into());
        }
        Opcode::Load => {
            let pt = op_ty(0);
            match pt.pointee() {
                Some(p) if *p == inst.ty => {}
                _ => return err(format!("load type {} from pointer {}", inst.ty, pt)),
            }
        }
        Opcode::Store => {
            let vt = op_ty(0);
            let pt = op_ty(1);
            match pt.pointee() {
                Some(p) if *p == vt => {}
                _ => return err(format!("store type {vt} through pointer {pt}")),
            }
        }
        Opcode::Gep => {
            let InstData::Gep { base_ty, .. } = &inst.data else {
                return err("gep without payload".into());
            };
            let pt = op_ty(0);
            match pt.pointee() {
                Some(p) if p == base_ty => {}
                _ => return err(format!("gep base type {base_ty} vs pointer {pt}")),
            }
            for idx in &inst.operands[1..] {
                if !f.value_type(m, idx).is_int() {
                    return err("gep index must be an integer".into());
                }
            }
            let expect = crate::builder::gep_result_type(base_ty, inst.operands.len());
            if expect != inst.ty {
                return err(format!("gep result {} but computed {}", inst.ty, expect));
            }
        }
        Opcode::Alloca => {
            let InstData::Alloca { allocated, .. } = &inst.data else {
                return err("alloca without payload".into());
            };
            if inst.ty != allocated.ptr_to() {
                return err("alloca result type mismatch".into());
            }
        }
        Opcode::Call => {
            let InstData::Call { callee } = &inst.data else {
                return err("call without payload".into());
            };
            if let Some(target) = m.function(callee) {
                if !callee.starts_with("llvm.") {
                    if target.params.len() != inst.operands.len() {
                        return err(format!("call @{callee}: arity mismatch"));
                    }
                    for (i, p) in target.params.iter().enumerate() {
                        if op_ty(i) != p.ty {
                            return err(format!("call @{callee}: argument {i} type mismatch"));
                        }
                    }
                    if target.ret_ty != inst.ty {
                        return err(format!("call @{callee}: return type mismatch"));
                    }
                }
            }
        }
        Opcode::Select if (op_ty(0) != Type::I1 || op_ty(1) != inst.ty || op_ty(2) != inst.ty) => {
            return err("select type mismatch".into());
        }
        Opcode::Phi => {
            for op in &inst.operands {
                if f.value_type(m, op) != inst.ty {
                    return err("phi operand type mismatch".into());
                }
            }
        }
        op if op.is_cast() => {
            if inst.operands.len() != 1 {
                return err("cast needs exactly one operand".into());
            }
            let from = op_ty(0);
            let to = &inst.ty;
            let ok = match op {
                Opcode::ZExt | Opcode::SExt => {
                    from.is_int()
                        && to.is_int()
                        && from.int_width().unwrap() < to.int_width().unwrap()
                }
                Opcode::Trunc => {
                    from.is_int()
                        && to.is_int()
                        && from.int_width().unwrap() > to.int_width().unwrap()
                }
                Opcode::FPExt => from == Type::Float && *to == Type::Double,
                Opcode::FPTrunc => from == Type::Double && *to == Type::Float,
                Opcode::FPToSI => from.is_float() && to.is_int(),
                Opcode::SIToFP => from.is_int() && to.is_float(),
                Opcode::PtrToInt => from.is_ptr() && to.is_int(),
                Opcode::IntToPtr => from.is_int() && to.is_ptr(),
                Opcode::BitCast => from.is_ptr() && to.is_ptr(),
                _ => unreachable!(),
            };
            if !ok {
                return err(format!("invalid cast {} -> {}", from, inst.ty));
            }
        }
        Opcode::CondBr if op_ty(0) != Type::I1 => {
            return err("conditional branch condition must be i1".into());
        }
        Opcode::Br | Opcode::Ret | Opcode::Unreachable => {}
        // Every concrete opcode is covered by the guards above; the compiler
        // cannot see through `is_int_binop`-style guards.
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IrBuilder;
    use crate::inst::Inst;
    use crate::module::Param;

    fn ok_module() -> Module {
        let src = r#"
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  ret i32 %x
}
"#;
        crate::parser::parse_module("m", src).unwrap()
    }

    #[test]
    fn accepts_valid_module() {
        assert!(verify_module(&ok_module()).is_ok());
    }

    #[test]
    fn rejects_duplicate_function() {
        let mut m = ok_module();
        let f = m.functions[0].clone();
        m.functions.push(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![], Type::Void);
        let e = f.add_block("entry");
        f.push_inst(
            e,
            Inst::new(Opcode::Add, Type::I32, vec![Value::i32(1), Value::i32(2)]),
        );
        m.functions.push(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("terminator"));
    }

    #[test]
    fn diagnostics_carry_function_block_and_inst() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![Param::new("a", Type::I64)], Type::Void);
        let e = f.add_block("entry");
        let mut b = IrBuilder::new(&mut f, e);
        // i32 add fed an i64 argument: invalid.
        b.add(Type::I32, Value::Arg(0), Value::i32(1));
        b.ret(None);
        m.functions.push(f);
        let d = verify_module_diag(&m).unwrap_err();
        assert_eq!(d.loc.function.as_deref(), Some("f"));
        assert_eq!(d.loc.block.as_deref(), Some("entry"));
        assert_eq!(d.loc.inst.as_deref(), Some("%0"));
        assert_eq!(
            d.to_string(),
            "error[verifier] @f:entry:%0: integer binop type mismatch (i32)"
        );
        // The crate-error wrapper renders the same text.
        assert_eq!(
            verify_module(&m).unwrap_err().to_string(),
            "error[verifier] @f:entry:%0: integer binop type mismatch (i32)"
        );
    }

    #[test]
    fn rejects_type_mismatch_binop() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![Param::new("a", Type::I64)], Type::Void);
        let e = f.add_block("entry");
        let mut b = IrBuilder::new(&mut f, e);
        // i32 add fed an i64 argument: invalid.
        b.add(Type::I32, Value::Arg(0), Value::i32(1));
        b.ret(None);
        m.functions.push(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_phi_mismatched_predecessors() {
        let src = r#"
define i32 @f(i32 %a) {
entry:
  br label %next

next:
  %x = phi i32 [ 0, %entry ], [ 1, %next ]
  ret i32 %x
}
"#;
        let m = crate::parser::parse_module("m", src).unwrap();
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("incoming blocks"));
    }

    #[test]
    fn rejects_use_before_def_in_block() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![], Type::Void);
        let e = f.add_block("entry");
        // Manually create use-before-def: inst 0 uses inst 1.
        f.push_inst(
            e,
            Inst::new(Opcode::Add, Type::I32, vec![Value::Inst(1), Value::i32(1)]),
        );
        f.push_inst(
            e,
            Inst::new(Opcode::Add, Type::I32, vec![Value::i32(2), Value::i32(3)]),
        );
        f.push_inst(e, Inst::new(Opcode::Ret, Type::Void, vec![]));
        m.functions.push(f);
        let err = verify_module(&m).unwrap_err();
        assert!(err.to_string().contains("dominated"));
    }

    #[test]
    fn rejects_bad_cast() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![Param::new("a", Type::I64)], Type::Void);
        let e = f.add_block("entry");
        let mut b = IrBuilder::new(&mut f, e);
        b.cast(Opcode::SExt, Value::Arg(0), Type::I32); // narrowing sext
        b.ret(None);
        m.functions.push(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_ret_type_mismatch() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![], Type::I32);
        let e = f.add_block("entry");
        let mut b = IrBuilder::new(&mut f, e);
        b.ret(Some(Value::f32(1.0)));
        m.functions.push(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let src = r#"
define void @callee(i32 %x) {
entry:
  ret void
}

define void @caller() {
entry:
  call void @callee(i32 1, i32 2)
  ret void
}
"#;
        let m = crate::parser::parse_module("m", src).unwrap();
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("arity"));
    }

    #[test]
    fn rejects_out_of_range_metadata() {
        let mut m = ok_module();
        let f = &mut m.functions[0];
        let t = f.terminator(f.entry()).unwrap();
        f.inst_mut(t).loop_md = Some(42);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_load_type_mismatch() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![Param::new("p", Type::Float.ptr_to())], Type::Void);
        let e = f.add_block("entry");
        let mut b = IrBuilder::new(&mut f, e);
        b.load(Type::I32, Value::Arg(0)); // i32 load through float*
        b.ret(None);
        m.functions.push(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn gep_verification_checks_result_type() {
        let src = r#"
define float* @f([8 x float]* %a) {
entry:
  %p = getelementptr inbounds [8 x float], [8 x float]* %a, i64 0, i64 3
  ret float* %p
}
"#;
        let m = crate::parser::parse_module("m", src).unwrap();
        assert!(verify_module(&m).is_ok());
    }
}
