//! `!llvm.loop` metadata.
//!
//! This is the channel through which HLS directives survive the journey from
//! MLIR loop attributes down to the synthesis backend in the paper's
//! "adaptor flow". Vitis HLS reads `llvm.loop.pipeline.enable`,
//! `llvm.loop.unroll.*` and friends off the loop latch branch; we model the
//! same attachment point (`Inst::loop_md` on branch terminators).

/// Index of a [`LoopMetadata`] node in `Module::loop_mds`.
pub type MdId = u32;

/// Tripcount/II-affecting loop directives, the decoded form of a
/// `!llvm.loop` distinct node.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoopMetadata {
    /// `llvm.loop.pipeline.enable` with the requested initiation interval
    /// (`ii = 1` is the common "pipeline as hard as possible" request).
    pub pipeline_ii: Option<u32>,
    /// `llvm.loop.unroll.count` — partial unroll factor.
    pub unroll_factor: Option<u32>,
    /// `llvm.loop.unroll.full`.
    pub unroll_full: bool,
    /// `llvm.loop.flatten.enable` — collapse a perfect loop nest.
    pub flatten: bool,
    /// `llvm.loop.tripcount` hint `(min, max)` for bound-unknown loops.
    pub tripcount: Option<(u64, u64)>,
    /// `llvm.loop.dataflow.enable` — task-level pipelining request.
    pub dataflow: bool,
}

impl LoopMetadata {
    /// A node requesting pipelining at the given II.
    pub fn pipelined(ii: u32) -> LoopMetadata {
        LoopMetadata {
            pipeline_ii: Some(ii),
            ..LoopMetadata::default()
        }
    }

    /// A node requesting a partial unroll.
    pub fn unrolled(factor: u32) -> LoopMetadata {
        LoopMetadata {
            unroll_factor: Some(factor),
            ..LoopMetadata::default()
        }
    }

    /// True if the node carries no directive at all (printable as a bare
    /// distinct node, which LLVM uses to inhibit loop fusion).
    pub fn is_empty(&self) -> bool {
        *self == LoopMetadata::default()
    }

    /// Merge another node's directives into this one. Later wins on
    /// conflicting scalar fields, mirroring LLVM's "last metadata operand
    /// wins" convention.
    pub fn merge(&mut self, other: &LoopMetadata) {
        if other.pipeline_ii.is_some() {
            self.pipeline_ii = other.pipeline_ii;
        }
        if other.unroll_factor.is_some() {
            self.unroll_factor = other.unroll_factor;
        }
        self.unroll_full |= other.unroll_full;
        self.flatten |= other.flatten;
        if other.tripcount.is_some() {
            self.tripcount = other.tripcount;
        }
        self.dataflow |= other.dataflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let p = LoopMetadata::pipelined(2);
        assert_eq!(p.pipeline_ii, Some(2));
        assert!(!p.is_empty());
        let u = LoopMetadata::unrolled(4);
        assert_eq!(u.unroll_factor, Some(4));
        assert!(LoopMetadata::default().is_empty());
    }

    #[test]
    fn merge_last_wins() {
        let mut a = LoopMetadata::pipelined(1);
        a.merge(&LoopMetadata::pipelined(4));
        assert_eq!(a.pipeline_ii, Some(4));
        a.merge(&LoopMetadata::unrolled(8));
        // Merging a node without pipeline info must not clear pipeline info.
        assert_eq!(a.pipeline_ii, Some(4));
        assert_eq!(a.unroll_factor, Some(8));
    }

    #[test]
    fn merge_ors_flags() {
        let mut a = LoopMetadata::default();
        let b = LoopMetadata {
            flatten: true,
            dataflow: true,
            unroll_full: true,
            tripcount: Some((1, 64)),
            ..LoopMetadata::default()
        };
        a.merge(&b);
        assert!(a.flatten && a.dataflow && a.unroll_full);
        assert_eq!(a.tripcount, Some((1, 64)));
    }
}
