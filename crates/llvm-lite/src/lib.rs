//! `llvm-lite` — a self-contained, dependency-free subset of LLVM IR.
//!
//! This crate models the slice of LLVM IR that matters for High-Level
//! Synthesis front-ends: typed pointers (the pre-opaque-pointer dialect that
//! Vitis-era clang front-ends emit and accept), integer/floating arithmetic,
//! `getelementptr`-based memory addressing, allocas, calls, PHI-based SSA
//! control flow, and `!llvm.loop` metadata carrying pipelining/unrolling
//! directives.
//!
//! It provides:
//!
//! * an arena-backed [`Module`]/[`Function`]/[`Block`]/[`Inst`] representation
//!   ([`module`], [`inst`], [`value`], [`types`]);
//! * an [`builder::IrBuilder`] for programmatic construction;
//! * a textual printer ([`printer`]) and parser ([`parser`]) for a `.ll`
//!   subset that round-trips;
//! * a structural [`verifier`];
//! * analyses: CFG utilities, dominators, natural loops, def-use
//!   ([`analysis`]);
//! * transforms: `mem2reg`, dead-code elimination, CFG simplification
//!   ([`transforms`]);
//! * a reference [`interp`]reter used for co-simulation of HLS flows.
//!
//! The representation is deliberately index-based (no `Rc` graphs): values are
//! small copyable handles resolved against per-function arenas, which keeps
//! rewriting passes cache-friendly and makes structural equality cheap.

pub mod analysis;
pub mod builder;
pub mod inst;
pub mod interp;
pub mod metadata;
pub mod module;
pub mod parser;
pub mod printer;
pub mod transforms;
pub mod types;
pub mod value;
pub mod verifier;

pub use builder::IrBuilder;
pub use inst::{FloatPred, Inst, InstData, IntPred, Opcode};
pub use metadata::{LoopMetadata, MdId};
pub use module::{Block, BlockId, Function, Global, GlobalInit, InstId, Module};
pub use types::Type;
pub use value::Value;

/// Errors produced anywhere in the crate (parsing, verification,
/// interpretation). Kept as one enum so callers can uniformly `?` through
/// flow drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Textual parse error with 1-based line number.
    Parse { line: u32, msg: String },
    /// Module/function failed structural verification.
    Verify(String),
    /// Interpreter trapped (OOB access, missing function, div-by-zero...).
    Interp(String),
    /// A transform was asked to do something unsupported.
    Transform(String),
    /// A structured, located diagnostic from the pass/verifier layer.
    Diag(pass_core::Diagnostic),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            Error::Verify(m) => write!(f, "verification error: {m}"),
            Error::Interp(m) => write!(f, "interpreter trap: {m}"),
            Error::Transform(m) => write!(f, "transform error: {m}"),
            Error::Diag(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<pass_core::Diagnostic> for Error {
    fn from(d: pass_core::Diagnostic) -> Error {
        Error::Diag(d)
    }
}

impl From<Error> for pass_core::Diagnostic {
    fn from(e: Error) -> pass_core::Diagnostic {
        match e {
            Error::Diag(d) => d,
            other => pass_core::Diagnostic::error("llvm-lite", other.to_string()),
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

impl pass_core::PassIr for Module {
    /// Live instructions across all function definitions.
    fn ir_size(&self) -> usize {
        self.functions.iter().map(|f| f.num_insts()).sum()
    }

    fn verify_ir(&self) -> pass_core::PassResult<()> {
        verifier::verify_module_diag(self)
    }
}
