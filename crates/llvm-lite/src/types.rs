//! The LLVM-lite type system.
//!
//! Types are plain trees (`Box`-nested). This costs a little cloning but
//! keeps equality/hashing structural and removes the need for a context
//! object, which keeps every other API in the crate free of lifetimes.
//!
//! Pointers are **typed** (`float*`, `[32 x float]*`) — the pre-LLVM-15
//! dialect. This is deliberate: the paper's adaptor exists precisely because
//! commercial HLS front-ends (Vitis HLS builds on an old LLVM) reject modern
//! IR, and typed pointers are the most visible symptom of the version gap.

/// A first-class IR type.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// The unit type of functions that return nothing and of side-effecting
    /// instructions such as `store`.
    Void,
    /// Arbitrary-width integer `iN`. Widths used in practice here: 1, 8, 16,
    /// 32, 64.
    Int(u32),
    /// IEEE-754 binary32 (`float`).
    Float,
    /// IEEE-754 binary64 (`double`).
    Double,
    /// Typed pointer `T*`.
    Ptr(Box<Type>),
    /// Fixed-size array `[N x T]`.
    Array(u64, Box<Type>),
    /// Function type; only appears behind pointers and in declarations.
    Func { ret: Box<Type>, params: Vec<Type> },
}

impl Type {
    /// `i1`, the boolean produced by comparisons.
    pub const I1: Type = Type::Int(1);
    /// `i8`.
    pub const I8: Type = Type::Int(8);
    /// `i16`.
    pub const I16: Type = Type::Int(16);
    /// `i32`.
    pub const I32: Type = Type::Int(32);
    /// `i64`, also the index width used for `getelementptr`.
    pub const I64: Type = Type::Int(64);

    /// Shorthand for a pointer to `self`.
    pub fn ptr_to(&self) -> Type {
        Type::Ptr(Box::new(self.clone()))
    }

    /// Shorthand for `[n x self]`.
    pub fn array_of(&self, n: u64) -> Type {
        Type::Array(n, Box::new(self.clone()))
    }

    /// True for `iN`.
    pub fn is_int(&self) -> bool {
        matches!(self, Type::Int(_))
    }

    /// True for `float` or `double`.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float | Type::Double)
    }

    /// True for any pointer.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Integer bit width, if an integer.
    pub fn int_width(&self) -> Option<u32> {
        match self {
            Type::Int(w) => Some(*w),
            _ => None,
        }
    }

    /// The pointee of a pointer type.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(p) => Some(p),
            _ => None,
        }
    }

    /// The element type of an array type.
    pub fn array_elem(&self) -> Option<&Type> {
        match self {
            Type::Array(_, e) => Some(e),
            _ => None,
        }
    }

    /// Array length, if an array.
    pub fn array_len(&self) -> Option<u64> {
        match self {
            Type::Array(n, _) => Some(*n),
            _ => None,
        }
    }

    /// Strips all array dimensions: `[4 x [8 x float]] -> float`.
    pub fn scalar_base(&self) -> &Type {
        match self {
            Type::Array(_, e) => e.scalar_base(),
            other => other,
        }
    }

    /// Total number of scalar elements in a (possibly nested) array type;
    /// `1` for scalars.
    pub fn flat_len(&self) -> u64 {
        match self {
            Type::Array(n, e) => n * e.flat_len(),
            _ => 1,
        }
    }

    /// Size in bytes following a conventional 64-bit data layout. Pointers
    /// are 8 bytes; `i1` occupies 1 byte like `i8` (as clang stores bools).
    pub fn size_in_bytes(&self) -> u64 {
        match self {
            Type::Void => 0,
            Type::Int(w) => u64::from((*w).div_ceil(8)).max(1),
            Type::Float => 4,
            Type::Double => 8,
            Type::Ptr(_) => 8,
            Type::Array(n, e) => n * e.size_in_bytes(),
            Type::Func { .. } => 8,
        }
    }

    /// Natural alignment in bytes (same rules as [`Type::size_in_bytes`] for
    /// scalars; arrays align as their elements).
    pub fn align_in_bytes(&self) -> u64 {
        match self {
            Type::Array(_, e) => e.align_in_bytes(),
            Type::Void => 1,
            other => other.size_in_bytes().max(1),
        }
    }

    /// Whether this type can be loaded/stored as a single scalar access.
    pub fn is_first_class_scalar(&self) -> bool {
        matches!(
            self,
            Type::Int(_) | Type::Float | Type::Double | Type::Ptr(_)
        )
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int(w) => write!(f, "i{w}"),
            Type::Float => write!(f, "float"),
            Type::Double => write!(f, "double"),
            Type::Ptr(p) => write!(f, "{p}*"),
            Type::Array(n, e) => write!(f, "[{n} x {e}]"),
            Type::Func { ret, params } => {
                write!(f, "{ret} (")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_scalars() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::Float.to_string(), "float");
        assert_eq!(Type::Double.to_string(), "double");
        assert_eq!(Type::Void.to_string(), "void");
        assert_eq!(Type::Int(1).to_string(), "i1");
    }

    #[test]
    fn display_composites() {
        let a = Type::Float.array_of(8).array_of(4);
        assert_eq!(a.to_string(), "[4 x [8 x float]]");
        assert_eq!(a.ptr_to().to_string(), "[4 x [8 x float]]*");
    }

    #[test]
    fn sizes_follow_layout() {
        assert_eq!(Type::I32.size_in_bytes(), 4);
        assert_eq!(Type::Int(1).size_in_bytes(), 1);
        assert_eq!(Type::Double.size_in_bytes(), 8);
        assert_eq!(Type::Float.ptr_to().size_in_bytes(), 8);
        assert_eq!(Type::Float.array_of(10).size_in_bytes(), 40);
        assert_eq!(Type::I64.array_of(3).array_of(2).size_in_bytes(), 48);
    }

    #[test]
    fn flat_len_counts_scalars() {
        assert_eq!(Type::Float.flat_len(), 1);
        assert_eq!(Type::Float.array_of(8).array_of(4).flat_len(), 32);
    }

    #[test]
    fn scalar_base_strips_arrays() {
        let a = Type::I32.array_of(8).array_of(4);
        assert_eq!(*a.scalar_base(), Type::I32);
        assert_eq!(*Type::Float.scalar_base(), Type::Float);
    }

    #[test]
    fn accessors() {
        let p = Type::Float.ptr_to();
        assert!(p.is_ptr());
        assert_eq!(p.pointee(), Some(&Type::Float));
        assert_eq!(Type::I32.int_width(), Some(32));
        assert_eq!(Type::Float.int_width(), None);
        let a = Type::Float.array_of(7);
        assert_eq!(a.array_len(), Some(7));
        assert_eq!(a.array_elem(), Some(&Type::Float));
    }

    #[test]
    fn alignment_of_arrays_is_elementwise() {
        assert_eq!(Type::Double.array_of(3).align_in_bytes(), 8);
        assert_eq!(Type::Int(8).array_of(3).align_in_bytes(), 1);
    }
}
