//! Reference interpreter.
//!
//! Executes IR with a byte-addressed, bounds-checked memory model. Used to
//! co-simulate the adaptor flow against the HLS-C++ flow and against native
//! Rust reference kernels — the IR-level equivalent of Vitis' C/RTL
//! co-simulation step.
//!
//! Pointers are encoded as `((buffer_id + 1) << 32) | offset`, so null is 0
//! and every dereference can be checked against its owning buffer.

use std::collections::HashMap;

use crate::inst::{FloatPred, InstData, IntPred, Opcode};
use crate::module::{BlockId, Function, GlobalInit, Module};
use crate::types::Type;
use crate::value::Value;
use crate::{Error, Result};

/// A runtime value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RtVal {
    /// Any integer (stored sign-extended).
    I(i128),
    /// Any float.
    F(f64),
    /// An encoded pointer.
    P(u64),
    /// The unit value of `void` calls.
    Unit,
}

impl RtVal {
    fn as_i(self) -> Result<i128> {
        match self {
            RtVal::I(v) => Ok(v),
            other => Err(Error::Interp(format!("expected integer, got {other:?}"))),
        }
    }
    fn as_f(self) -> Result<f64> {
        match self {
            RtVal::F(v) => Ok(v),
            other => Err(Error::Interp(format!("expected float, got {other:?}"))),
        }
    }
    fn as_p(self) -> Result<u64> {
        match self {
            RtVal::P(v) => Ok(v),
            other => Err(Error::Interp(format!("expected pointer, got {other:?}"))),
        }
    }
}

/// The interpreter's heap: a set of independent, bounds-checked buffers.
#[derive(Default)]
pub struct Memory {
    buffers: Vec<Vec<u8>>,
}

impl Memory {
    /// Allocate `size` zeroed bytes; returns the base pointer.
    pub fn alloc(&mut self, size: u64) -> u64 {
        self.buffers.push(vec![0u8; size as usize]);
        (self.buffers.len() as u64) << 32
    }

    fn slice_mut(&mut self, ptr: u64, len: u64) -> Result<&mut [u8]> {
        let id = (ptr >> 32) as usize;
        let off = (ptr & 0xFFFF_FFFF) as usize;
        if id == 0 {
            return Err(Error::Interp("null pointer dereference".into()));
        }
        let buf = self
            .buffers
            .get_mut(id - 1)
            .ok_or_else(|| Error::Interp(format!("wild pointer {ptr:#x}")))?;
        let end = off
            .checked_add(len as usize)
            .ok_or_else(|| Error::Interp("pointer overflow".into()))?;
        if end > buf.len() {
            return Err(Error::Interp(format!(
                "out-of-bounds access at offset {off}+{len} in buffer of {} bytes",
                buf.len()
            )));
        }
        Ok(&mut buf[off..end])
    }

    fn slice(&self, ptr: u64, len: u64) -> Result<&[u8]> {
        let id = (ptr >> 32) as usize;
        let off = (ptr & 0xFFFF_FFFF) as usize;
        if id == 0 {
            return Err(Error::Interp("null pointer dereference".into()));
        }
        let buf = self
            .buffers
            .get(id - 1)
            .ok_or_else(|| Error::Interp(format!("wild pointer {ptr:#x}")))?;
        let end = off + len as usize;
        if end > buf.len() {
            return Err(Error::Interp(format!(
                "out-of-bounds access at offset {off}+{len} in buffer of {} bytes",
                buf.len()
            )));
        }
        Ok(&buf[off..end])
    }

    /// Typed store.
    pub fn store(&mut self, ptr: u64, ty: &Type, v: RtVal) -> Result<()> {
        let size = ty.size_in_bytes();
        match ty {
            Type::Int(w) => {
                let raw = v.as_i()? as u128;
                let bytes = raw.to_le_bytes();
                let n = ((*w).div_ceil(8) as usize).max(1);
                self.slice_mut(ptr, size)?.copy_from_slice(&bytes[..n]);
            }
            Type::Float => {
                let bits = (v.as_f()? as f32).to_bits();
                self.slice_mut(ptr, 4)?.copy_from_slice(&bits.to_le_bytes());
            }
            Type::Double => {
                let bits = v.as_f()?.to_bits();
                self.slice_mut(ptr, 8)?.copy_from_slice(&bits.to_le_bytes());
            }
            Type::Ptr(_) => {
                let raw = v.as_p()?;
                self.slice_mut(ptr, 8)?.copy_from_slice(&raw.to_le_bytes());
            }
            other => return Err(Error::Interp(format!("cannot store type {other}"))),
        }
        Ok(())
    }

    /// Typed load.
    pub fn load(&self, ptr: u64, ty: &Type) -> Result<RtVal> {
        Ok(match ty {
            Type::Int(w) => {
                let n = ((*w).div_ceil(8) as usize).max(1);
                let bytes = self.slice(ptr, n as u64)?;
                let mut raw = [0u8; 16];
                raw[..n].copy_from_slice(bytes);
                let mut v = u128::from_le_bytes(raw) as i128;
                // Sign extend from width w.
                if *w < 128 {
                    let shift = 128 - *w;
                    v = (v << shift) >> shift;
                }
                RtVal::I(v)
            }
            Type::Float => {
                let bytes = self.slice(ptr, 4)?;
                RtVal::F(f32::from_le_bytes(bytes.try_into().unwrap()) as f64)
            }
            Type::Double => {
                let bytes = self.slice(ptr, 8)?;
                RtVal::F(f64::from_le_bytes(bytes.try_into().unwrap()))
            }
            Type::Ptr(_) => {
                let bytes = self.slice(ptr, 8)?;
                RtVal::P(u64::from_le_bytes(bytes.try_into().unwrap()))
            }
            other => return Err(Error::Interp(format!("cannot load type {other}"))),
        })
    }

    /// Write an `f32` slice into a fresh buffer; returns its pointer.
    pub fn alloc_f32(&mut self, data: &[f32]) -> u64 {
        let p = self.alloc(4 * data.len() as u64);
        for (i, v) in data.iter().enumerate() {
            self.store(p + 4 * i as u64, &Type::Float, RtVal::F(*v as f64))
                .expect("in-bounds");
        }
        p
    }

    /// Read `n` `f32`s starting at `ptr`.
    pub fn read_f32(&self, ptr: u64, n: usize) -> Result<Vec<f32>> {
        (0..n)
            .map(|i| Ok(self.load(ptr + 4 * i as u64, &Type::Float)?.as_f()? as f32))
            .collect()
    }

    /// Write an `i32` slice into a fresh buffer.
    pub fn alloc_i32(&mut self, data: &[i32]) -> u64 {
        let p = self.alloc(4 * data.len() as u64);
        for (i, v) in data.iter().enumerate() {
            self.store(p + 4 * i as u64, &Type::I32, RtVal::I(*v as i128))
                .expect("in-bounds");
        }
        p
    }

    /// Read `n` `i32`s starting at `ptr`.
    pub fn read_i32(&self, ptr: u64, n: usize) -> Result<Vec<i32>> {
        (0..n)
            .map(|i| Ok(self.load(ptr + 4 * i as u64, &Type::I32)?.as_i()? as i32))
            .collect()
    }
}

/// Execution statistics — doubles as a crude dynamic profile.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Instructions executed.
    pub steps: u64,
    /// Function calls made (including intrinsics).
    pub calls: u64,
}

/// The interpreter: owns memory and global bindings for one module.
pub struct Interpreter<'m> {
    module: &'m Module,
    /// Heap.
    pub mem: Memory,
    globals: HashMap<String, u64>,
    /// Instruction budget; a trap fires when exceeded (guards non-
    /// terminating kernels in tests).
    pub step_limit: u64,
    /// Counters.
    pub stats: InterpStats,
}

impl<'m> Interpreter<'m> {
    /// Create an interpreter and materialize the module's globals.
    pub fn new(module: &'m Module) -> Interpreter<'m> {
        let mut mem = Memory::default();
        let mut globals = HashMap::new();
        for g in &module.globals {
            let p = mem.alloc(g.ty.size_in_bytes());
            if let Some(init) = &g.init {
                write_init(&mut mem, p, &g.ty, init);
            }
            globals.insert(g.name.clone(), p);
        }
        Interpreter {
            module,
            mem,
            globals,
            step_limit: 500_000_000,
            stats: InterpStats::default(),
        }
    }

    /// Call a function by name.
    pub fn call(&mut self, name: &str, args: &[RtVal]) -> Result<RtVal> {
        self.stats.calls += 1;
        if let Some(v) = self.try_intrinsic(name, args)? {
            return Ok(v);
        }
        let f = self
            .module
            .function(name)
            .ok_or_else(|| Error::Interp(format!("unknown function @{name}")))?;
        if f.is_declaration {
            return Err(Error::Interp(format!(
                "call to body-less declaration @{name}"
            )));
        }
        if args.len() != f.params.len() {
            return Err(Error::Interp(format!(
                "@{name} called with {} args, expects {}",
                args.len(),
                f.params.len()
            )));
        }
        self.run_function(f, args)
    }

    fn try_intrinsic(&mut self, name: &str, args: &[RtVal]) -> Result<Option<RtVal>> {
        let v = match name {
            "llvm.sqrt.f32" | "llvm.sqrt.f64" | "sqrtf" | "sqrt" => {
                RtVal::F(args[0].as_f()?.sqrt())
            }
            "llvm.fabs.f32" | "llvm.fabs.f64" | "fabsf" | "fabs" => RtVal::F(args[0].as_f()?.abs()),
            "llvm.exp.f32" | "llvm.exp.f64" | "expf" | "exp" => RtVal::F(args[0].as_f()?.exp()),
            "llvm.smax.i32" | "llvm.smax.i64" => RtVal::I(args[0].as_i()?.max(args[1].as_i()?)),
            "llvm.smin.i32" | "llvm.smin.i64" => RtVal::I(args[0].as_i()?.min(args[1].as_i()?)),
            "llvm.maxnum.f32" | "llvm.maxnum.f64" | "fmaxf" => {
                RtVal::F(args[0].as_f()?.max(args[1].as_f()?))
            }
            "llvm.minnum.f32" | "llvm.minnum.f64" | "fminf" => {
                RtVal::F(args[0].as_f()?.min(args[1].as_f()?))
            }
            "llvm.assume" => RtVal::Unit,
            n if n.starts_with("llvm.lifetime.") => RtVal::Unit,
            n if n.starts_with("llvm.memcpy.") => {
                let dst = args[0].as_p()?;
                let src = args[1].as_p()?;
                let len = args[2].as_i()? as u64;
                let data = self.mem.slice(src, len)?.to_vec();
                self.mem.slice_mut(dst, len)?.copy_from_slice(&data);
                RtVal::Unit
            }
            n if n.starts_with("llvm.memset.") => {
                let dst = args[0].as_p()?;
                let byte = args[1].as_i()? as u8;
                let len = args[2].as_i()? as u64;
                self.mem.slice_mut(dst, len)?.fill(byte);
                RtVal::Unit
            }
            "malloc" => {
                let size = args[0].as_i()? as u64;
                RtVal::P(self.mem.alloc(size))
            }
            "free" => RtVal::Unit,
            _ => return Ok(None),
        };
        Ok(Some(v))
    }

    fn eval(&self, f: &Function, env: &HashMap<u32, RtVal>, v: &Value) -> Result<RtVal> {
        Ok(match v {
            Value::Arg(i) => env[&(u32::MAX - *i)],
            Value::Inst(id) => *env
                .get(id)
                .ok_or_else(|| Error::Interp(format!("read of unset %{id} in @{}", f.name)))?,
            Value::ConstInt { value, .. } => RtVal::I(*value),
            Value::ConstFloat { bits, .. } => RtVal::F(f64::from_bits(*bits)),
            Value::Global(name) => RtVal::P(
                *self
                    .globals
                    .get(name)
                    .ok_or_else(|| Error::Interp(format!("unknown global @{name}")))?,
            ),
            Value::NullPtr(_) => RtVal::P(0),
            Value::Undef(ty) => match ty {
                Type::Float | Type::Double => RtVal::F(0.0),
                Type::Ptr(_) => RtVal::P(0),
                _ => RtVal::I(0),
            },
        })
    }

    fn run_function(&mut self, f: &Function, args: &[RtVal]) -> Result<RtVal> {
        // Args live in the same env map keyed from the top of the id space.
        let mut env: HashMap<u32, RtVal> = HashMap::new();
        for (i, a) in args.iter().enumerate() {
            env.insert(u32::MAX - i as u32, *a);
        }
        let mut block = f.entry();
        let mut prev: Option<BlockId> = None;
        loop {
            // Parallel phi evaluation at block entry.
            if let Some(p) = prev {
                let mut phi_vals: Vec<(u32, RtVal)> = Vec::new();
                for &id in &f.blocks[block as usize].insts {
                    let inst = f.inst(id);
                    let InstData::Phi { incoming } = &inst.data else {
                        break;
                    };
                    let pos = incoming.iter().position(|&b| b == p).ok_or_else(|| {
                        Error::Interp(format!("phi %{id} has no edge from block {p}"))
                    })?;
                    phi_vals.push((id, self.eval(f, &env, &inst.operands[pos])?));
                }
                for (id, v) in phi_vals {
                    env.insert(id, v);
                }
            }
            // Straight-line execution.
            let insts = f.blocks[block as usize].insts.clone();
            for id in insts {
                let inst = f.inst(id);
                if inst.opcode == Opcode::Phi {
                    if prev.is_none() {
                        return Err(Error::Interp("phi in entry block".into()));
                    }
                    continue;
                }
                self.stats.steps += 1;
                if self.stats.steps > self.step_limit {
                    return Err(Error::Interp("step limit exceeded".into()));
                }
                match inst.opcode {
                    Opcode::Br => {
                        let InstData::Br { dest } = inst.data else {
                            unreachable!()
                        };
                        prev = Some(block);
                        block = dest;
                        break;
                    }
                    Opcode::CondBr => {
                        let InstData::CondBr { on_true, on_false } = inst.data else {
                            unreachable!()
                        };
                        let c = self.eval(f, &env, &inst.operands[0])?.as_i()?;
                        prev = Some(block);
                        block = if c != 0 { on_true } else { on_false };
                        break;
                    }
                    Opcode::Ret => {
                        return match inst.operands.first() {
                            None => Ok(RtVal::Unit),
                            Some(v) => self.eval(f, &env, v),
                        };
                    }
                    Opcode::Unreachable => {
                        return Err(Error::Interp("executed unreachable".into()))
                    }
                    _ => {
                        let v = self.exec_inst(f, &env, id)?;
                        if f.inst(id).has_result() {
                            env.insert(id, v);
                        }
                    }
                }
            }
        }
    }

    fn exec_inst(&mut self, f: &Function, env: &HashMap<u32, RtVal>, id: u32) -> Result<RtVal> {
        let inst = f.inst(id);
        let ev = |s: &Self, i: usize| s.eval(f, env, &inst.operands[i]);
        let wrap_to = |ty: &Type, v: i128| -> i128 {
            let w = ty.int_width().unwrap_or(64);
            if w >= 128 {
                return v;
            }
            let m = 1i128 << w;
            let r = v.rem_euclid(m);
            if r >= m / 2 {
                r - m
            } else {
                r
            }
        };
        Ok(match inst.opcode {
            op if op.is_int_binop() => {
                let a = ev(self, 0)?.as_i()?;
                let b = ev(self, 1)?.as_i()?;
                let r = match op {
                    Opcode::Add => a.wrapping_add(b),
                    Opcode::Sub => a.wrapping_sub(b),
                    Opcode::Mul => a.wrapping_mul(b),
                    Opcode::SDiv => {
                        if b == 0 {
                            return Err(Error::Interp("sdiv by zero".into()));
                        }
                        a.wrapping_div(b)
                    }
                    Opcode::SRem => {
                        if b == 0 {
                            return Err(Error::Interp("srem by zero".into()));
                        }
                        a.wrapping_rem(b)
                    }
                    Opcode::UDiv => {
                        if b == 0 {
                            return Err(Error::Interp("udiv by zero".into()));
                        }
                        ((a as u128) / (b as u128)) as i128
                    }
                    Opcode::URem => {
                        if b == 0 {
                            return Err(Error::Interp("urem by zero".into()));
                        }
                        ((a as u128) % (b as u128)) as i128
                    }
                    Opcode::And => a & b,
                    Opcode::Or => a | b,
                    Opcode::Xor => a ^ b,
                    Opcode::Shl => a.wrapping_shl(b as u32),
                    Opcode::LShr => ((a as u128) >> (b as u32)) as i128,
                    Opcode::AShr => a >> (b as u32),
                    _ => unreachable!(),
                };
                RtVal::I(wrap_to(&inst.ty, r))
            }
            op if op.is_float_binop() => {
                let a = ev(self, 0)?.as_f()?;
                let b = ev(self, 1)?.as_f()?;
                let r = match op {
                    Opcode::FAdd => a + b,
                    Opcode::FSub => a - b,
                    Opcode::FMul => a * b,
                    Opcode::FDiv => a / b,
                    Opcode::FRem => a % b,
                    _ => unreachable!(),
                };
                // Emulate single precision where the type says so.
                if inst.ty == Type::Float {
                    RtVal::F((r as f32) as f64)
                } else {
                    RtVal::F(r)
                }
            }
            Opcode::FNeg => RtVal::F(-ev(self, 0)?.as_f()?),
            Opcode::ICmp => {
                let InstData::ICmp(pred) = &inst.data else {
                    unreachable!()
                };
                let (av, bv) = (ev(self, 0)?, ev(self, 1)?);
                let (a, b) = match (av, bv) {
                    (RtVal::P(a), RtVal::P(b)) => (a as i128, b as i128),
                    _ => (av.as_i()?, bv.as_i()?),
                };
                let r = match pred {
                    IntPred::Eq => a == b,
                    IntPred::Ne => a != b,
                    IntPred::Slt => a < b,
                    IntPred::Sle => a <= b,
                    IntPred::Sgt => a > b,
                    IntPred::Sge => a >= b,
                    IntPred::Ult => (a as u128) < (b as u128),
                    IntPred::Ule => (a as u128) <= (b as u128),
                    IntPred::Ugt => (a as u128) > (b as u128),
                    IntPred::Uge => (a as u128) >= (b as u128),
                };
                RtVal::I(i128::from(r))
            }
            Opcode::FCmp => {
                let InstData::FCmp(pred) = &inst.data else {
                    unreachable!()
                };
                let a = ev(self, 0)?.as_f()?;
                let b = ev(self, 1)?.as_f()?;
                let r = match pred {
                    FloatPred::Oeq => a == b,
                    FloatPred::One => a != b && !a.is_nan() && !b.is_nan(),
                    FloatPred::Olt => a < b,
                    FloatPred::Ole => a <= b,
                    FloatPred::Ogt => a > b,
                    FloatPred::Oge => a >= b,
                    FloatPred::Une => a != b,
                    FloatPred::Ord => !a.is_nan() && !b.is_nan(),
                    FloatPred::Uno => a.is_nan() || b.is_nan(),
                };
                RtVal::I(i128::from(r))
            }
            Opcode::Load => {
                let p = ev(self, 0)?.as_p()?;
                self.mem.load(p, &inst.ty)?
            }
            Opcode::Store => {
                let v = ev(self, 0)?;
                let p = ev(self, 1)?.as_p()?;
                let vty = f.value_type(self.module, &inst.operands[0]);
                self.mem.store(p, &vty, v)?;
                RtVal::Unit
            }
            Opcode::Gep => {
                let InstData::Gep { base_ty, .. } = &inst.data else {
                    unreachable!()
                };
                let mut p = ev(self, 0)?.as_p()?;
                let mut ty = base_ty.clone();
                for (k, idx) in inst.operands[1..].iter().enumerate() {
                    let i = self.eval(f, env, idx)?.as_i()?;
                    if k == 0 {
                        p = p.wrapping_add((i as i64 as u64).wrapping_mul(ty.size_in_bytes()));
                    } else {
                        match ty {
                            Type::Array(_, e) => {
                                ty = (*e).clone();
                                p = p.wrapping_add(
                                    (i as i64 as u64).wrapping_mul(ty.size_in_bytes()),
                                );
                            }
                            other => {
                                return Err(Error::Interp(format!(
                                    "gep steps into non-array {other}"
                                )))
                            }
                        }
                    }
                }
                RtVal::P(p)
            }
            Opcode::Alloca => {
                let InstData::Alloca { allocated, .. } = &inst.data else {
                    unreachable!()
                };
                RtVal::P(self.mem.alloc(allocated.size_in_bytes()))
            }
            Opcode::Call => {
                let InstData::Call { callee } = &inst.data else {
                    unreachable!()
                };
                let args: Vec<RtVal> = (0..inst.operands.len())
                    .map(|i| ev(self, i))
                    .collect::<Result<_>>()?;
                let callee = callee.clone();
                self.call(&callee, &args)?
            }
            Opcode::Select => {
                let c = ev(self, 0)?.as_i()?;
                if c != 0 {
                    ev(self, 1)?
                } else {
                    ev(self, 2)?
                }
            }
            Opcode::ZExt => {
                let v = ev(self, 0)?.as_i()?;
                let from_w = f
                    .value_type(self.module, &inst.operands[0])
                    .int_width()
                    .unwrap_or(64);
                let mask = if from_w >= 128 {
                    -1i128
                } else {
                    (1i128 << from_w) - 1
                };
                RtVal::I(v & mask)
            }
            Opcode::SExt => RtVal::I(ev(self, 0)?.as_i()?),
            Opcode::Trunc => {
                let v = ev(self, 0)?.as_i()?;
                RtVal::I(wrap_to(&inst.ty, v))
            }
            Opcode::FPExt | Opcode::FPTrunc => {
                let v = ev(self, 0)?.as_f()?;
                if inst.ty == Type::Float {
                    RtVal::F((v as f32) as f64)
                } else {
                    RtVal::F(v)
                }
            }
            Opcode::FPToSI => RtVal::I(ev(self, 0)?.as_f()? as i128),
            Opcode::SIToFP => {
                let v = ev(self, 0)?.as_i()? as f64;
                if inst.ty == Type::Float {
                    RtVal::F((v as f32) as f64)
                } else {
                    RtVal::F(v)
                }
            }
            Opcode::PtrToInt => RtVal::I(ev(self, 0)?.as_p()? as i128),
            Opcode::IntToPtr => RtVal::P(ev(self, 0)?.as_i()? as u64),
            Opcode::BitCast => ev(self, 0)?,
            op => return Err(Error::Interp(format!("cannot execute {op:?} here"))),
        })
    }
}

fn write_init(mem: &mut Memory, ptr: u64, ty: &Type, init: &GlobalInit) {
    match (ty, init) {
        (_, GlobalInit::Zero) => {}
        (t, GlobalInit::Int(v)) => {
            let _ = mem.store(ptr, t, RtVal::I(*v));
        }
        (t, GlobalInit::Float(bits)) => {
            let _ = mem.store(ptr, t, RtVal::F(f64::from_bits(*bits)));
        }
        (Type::Array(_, elem), GlobalInit::Array(items)) => {
            let sz = elem.size_in_bytes();
            for (i, item) in items.iter().enumerate() {
                write_init(mem, ptr + sz * i as u64, elem, item);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn run(src: &str, name: &str, args: &[RtVal]) -> Result<RtVal> {
        let m = parse_module("m", src).unwrap();
        crate::verifier::verify_module(&m).unwrap();
        let mut i = Interpreter::new(&m);
        i.call(name, args)
    }

    #[test]
    fn arith_and_control_flow() {
        let src = r#"
define i32 @max(i32 %a, i32 %b) {
entry:
  %c = icmp sgt i32 %a, %b
  br i1 %c, label %then, label %else

then:
  ret i32 %a

else:
  ret i32 %b
}
"#;
        assert_eq!(
            run(src, "max", &[RtVal::I(3), RtVal::I(9)]).unwrap(),
            RtVal::I(9)
        );
        assert_eq!(
            run(src, "max", &[RtVal::I(10), RtVal::I(9)]).unwrap(),
            RtVal::I(10)
        );
    }

    #[test]
    fn loop_with_phi() {
        let src = r#"
define i32 @sum(i32 %n) {
entry:
  br label %header

header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit

body:
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  br label %header

exit:
  ret i32 %acc
}
"#;
        assert_eq!(run(src, "sum", &[RtVal::I(10)]).unwrap(), RtVal::I(45));
        assert_eq!(run(src, "sum", &[RtVal::I(0)]).unwrap(), RtVal::I(0));
    }

    #[test]
    fn memory_gep_load_store() {
        let src = r#"
define void @scale(float* %a, i32 %n) {
entry:
  br label %header

header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit

body:
  %w = sext i32 %i to i64
  %p = getelementptr inbounds float, float* %a, i64 %w
  %x = load float, float* %p, align 4
  %y = fmul float %x, 0x4000000000000000
  store float %y, float* %p, align 4
  %next = add i32 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let m = parse_module("m", src).unwrap();
        let mut interp = Interpreter::new(&m);
        let a = interp.mem.alloc_f32(&[1.0, 2.0, 3.0, 4.0]);
        interp.call("scale", &[RtVal::P(a), RtVal::I(4)]).unwrap();
        assert_eq!(interp.mem.read_f32(a, 4).unwrap(), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn two_d_array_gep() {
        let src = r#"
define float @get([4 x [8 x float]]* %a, i64 %i, i64 %j) {
entry:
  %p = getelementptr inbounds [4 x [8 x float]], [4 x [8 x float]]* %a, i64 0, i64 %i, i64 %j
  %v = load float, float* %p, align 4
  ret float %v
}
"#;
        let m = parse_module("m", src).unwrap();
        let mut interp = Interpreter::new(&m);
        let data: Vec<f32> = (0..32).map(|x| x as f32).collect();
        let a = interp.mem.alloc_f32(&data);
        let v = interp
            .call("get", &[RtVal::P(a), RtVal::I(2), RtVal::I(5)])
            .unwrap();
        assert_eq!(v, RtVal::F(21.0));
    }

    #[test]
    fn oob_access_traps() {
        let src = r#"
define float @bad(float* %a) {
entry:
  %p = getelementptr inbounds float, float* %a, i64 100
  %v = load float, float* %p, align 4
  ret float %v
}
"#;
        let m = parse_module("m", src).unwrap();
        let mut interp = Interpreter::new(&m);
        let a = interp.mem.alloc_f32(&[0.0; 4]);
        let e = interp.call("bad", &[RtVal::P(a)]).unwrap_err();
        assert!(e.to_string().contains("out-of-bounds"));
    }

    #[test]
    fn null_deref_traps() {
        let src = r#"
define i32 @bad() {
entry:
  %v = load i32, i32* null, align 4
  ret i32 %v
}
"#;
        let e = run(src, "bad", &[]).unwrap_err();
        assert!(e.to_string().contains("null"));
    }

    #[test]
    fn step_limit_guards_infinite_loops() {
        let src = r#"
define void @spin() {
entry:
  br label %entry2

entry2:
  br label %entry2
}
"#;
        let m = parse_module("m", src).unwrap();
        let mut interp = Interpreter::new(&m);
        interp.step_limit = 1000;
        let e = interp.call("spin", &[]).unwrap_err();
        assert!(e.to_string().contains("step limit"));
    }

    #[test]
    fn intrinsics_and_calls() {
        let src = r#"
declare float @llvm.sqrt.f32(float)

define float @hyp(float %a, float %b) {
entry:
  %a2 = fmul float %a, %a
  %b2 = fmul float %b, %b
  %s = fadd float %a2, %b2
  %r = call float @llvm.sqrt.f32(float %s)
  ret float %r
}
"#;
        assert_eq!(
            run(src, "hyp", &[RtVal::F(3.0), RtVal::F(4.0)]).unwrap(),
            RtVal::F(5.0)
        );
    }

    #[test]
    fn memcpy_memset() {
        let src = r#"
declare void @llvm.memcpy.p0i8.p0i8.i64(i8* %d, i8* %s, i64 %n, i1 %v)
declare void @llvm.memset.p0i8.i64(i8* %d, i8 %b, i64 %n, i1 %v)

define void @f(i8* %dst, i8* %src) {
entry:
  call void @llvm.memcpy.p0i8.p0i8.i64(i8* %dst, i8* %src, i64 8, i1 false)
  %p = getelementptr inbounds i8, i8* %dst, i64 8
  call void @llvm.memset.p0i8.i64(i8* %p, i8 7, i64 4, i1 false)
  ret void
}
"#;
        let m = parse_module("m", src).unwrap();
        let mut interp = Interpreter::new(&m);
        let src_buf = interp.mem.alloc_i32(&[0x01020304, 0x05060708]);
        let dst = interp.mem.alloc(16);
        interp
            .call("f", &[RtVal::P(dst), RtVal::P(src_buf)])
            .unwrap();
        let out = interp.mem.read_i32(dst, 3).unwrap();
        assert_eq!(out[0], 0x01020304);
        assert_eq!(out[1], 0x05060708);
        assert_eq!(out[2], 0x07070707);
    }

    #[test]
    fn globals_are_initialized() {
        let src = r#"
@lut = constant [3 x i32] [i32 10, i32 20, i32 30], align 4

define i32 @get(i64 %i) {
entry:
  %p = getelementptr inbounds [3 x i32], [3 x i32]* @lut, i64 0, i64 %i
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"#;
        assert_eq!(run(src, "get", &[RtVal::I(1)]).unwrap(), RtVal::I(20));
        assert_eq!(run(src, "get", &[RtVal::I(2)]).unwrap(), RtVal::I(30));
    }

    #[test]
    fn float_precision_is_single_where_typed() {
        // 1e8 + 1 is not representable in f32; the interpreter must round
        // like 32-bit hardware would.
        let src = r#"
define float @f(float %a) {
entry:
  %r = fadd float %a, 0x3FF0000000000000
  ret float %r
}
"#;
        let v = run(src, "f", &[RtVal::F(1.0e8)]).unwrap();
        assert_eq!(v, RtVal::F(1.0e8f32 as f64));
    }
}
