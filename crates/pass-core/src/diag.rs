//! Structured, source-located diagnostics.
//!
//! Every failure that crosses a pass-manager boundary — verifier rejection,
//! compat-gate failure, pass error — is a [`Diagnostic`]: a severity, the
//! pass (or component) that produced it, a message, and a [`Loc`] naming
//! the function/block/instruction it refers to. The rendered form is
//! stable and asserted by tests:
//!
//! ```text
//! error[verify-compat] @gemm:entry:%7: dynamic allocation is not synthesizable
//! ```

use serde::{Deserialize, Serialize};

/// How bad it is.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational note.
    Note,
    /// Suspicious but not fatal.
    Warning,
    /// The operation failed.
    #[default]
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where in the IR a diagnostic points. All components are optional;
/// rendering includes whatever is known, in `@function:block:inst` order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Loc {
    /// Enclosing function (symbol name, no sigil).
    pub function: Option<String>,
    /// Basic block / MLIR block label.
    pub block: Option<String>,
    /// Instruction / operation (printed form, e.g. `%7` or `affine.for`).
    pub inst: Option<String>,
}

impl Loc {
    /// Location naming just a function.
    pub fn function(name: impl Into<String>) -> Loc {
        Loc {
            function: Some(name.into()),
            ..Loc::default()
        }
    }

    /// Extend with a block label.
    pub fn in_block(mut self, block: impl Into<String>) -> Loc {
        self.block = Some(block.into());
        self
    }

    /// Extend with an instruction/operation reference.
    pub fn at_inst(mut self, inst: impl Into<String>) -> Loc {
        self.inst = Some(inst.into());
        self
    }

    /// True when nothing is known.
    pub fn is_empty(&self) -> bool {
        self.function.is_none() && self.block.is_none() && self.inst.is_none()
    }
}

impl std::fmt::Display for Loc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut wrote = false;
        if let Some(func) = &self.function {
            write!(f, "@{func}")?;
            wrote = true;
        }
        if let Some(block) = &self.block {
            if wrote {
                f.write_str(":")?;
            }
            f.write_str(block)?;
            wrote = true;
        }
        if let Some(inst) = &self.inst {
            if wrote {
                f.write_str(":")?;
            }
            f.write_str(inst)?;
        }
        Ok(())
    }
}

/// One structured diagnostic.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Pass or component that raised it (e.g. `verifier`, `verify-compat`).
    pub pass: String,
    /// Human-readable description.
    pub message: String,
    /// IR location, as precise as the producer knows.
    pub loc: Loc,
}

impl Diagnostic {
    /// An error diagnostic from the given component.
    pub fn error(pass: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            pass: pass.into(),
            message: message.into(),
            loc: Loc::default(),
        }
    }

    /// A warning diagnostic from the given component.
    pub fn warning(pass: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(pass, message)
        }
    }

    /// An informational note from the given component.
    pub fn note(pass: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Note,
            ..Diagnostic::error(pass, message)
        }
    }

    /// Attach a location.
    pub fn with_loc(mut self, loc: Loc) -> Diagnostic {
        self.loc = loc;
        self
    }

    /// Re-attribute to a different pass (used by pass managers to stamp the
    /// failing pipeline stage onto verifier output).
    pub fn in_pass(mut self, pass: impl Into<String>) -> Diagnostic {
        self.pass = pass.into();
        self
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.severity, self.pass)?;
        if !self.loc.is_empty() {
            write!(f, " {}", self.loc)?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_format_is_stable() {
        let d = Diagnostic::error("verify-compat", "dynamic allocation is not synthesizable")
            .with_loc(Loc::function("gemm").in_block("entry").at_inst("%7"));
        assert_eq!(
            d.to_string(),
            "error[verify-compat] @gemm:entry:%7: dynamic allocation is not synthesizable"
        );
    }

    #[test]
    fn partial_locations_render_what_they_know() {
        let d = Diagnostic::error("verifier", "bad").with_loc(Loc::function("f"));
        assert_eq!(d.to_string(), "error[verifier] @f: bad");
        let d = Diagnostic::warning("p", "msg");
        assert_eq!(d.to_string(), "warning[p]: msg");
    }
}
