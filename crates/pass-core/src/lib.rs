//! `pass-core` — the shared pass-management substrate.
//!
//! The workspace used to carry three near-duplicate pass infrastructures
//! (`mlir_lite::passes::MlirPassManager`, `llvm_lite::transforms::PassManager`,
//! and the ad-hoc adaptor pipeline). This crate replaces all three with one
//! generic, instrumented implementation:
//!
//! * [`Pass<IR>`] — a named module-level transformation over any IR that
//!   implements [`PassIr`];
//! * [`PassManager<IR>`] — ordered pipelines with per-pass wall-clock
//!   timing, changed/IR-size-delta stats, optional verify-after-each, and
//!   fixed-point iteration;
//! * [`PassRegistry<IR>`] — string-keyed pass resolution with
//!   list-valid-names-on-error diagnostics;
//! * [`PipelineReport`] — a serializable `-time-passes`-style execution
//!   report (JSON schema in EXPERIMENTS.md);
//! * [`Diagnostic`] — structured, source-located errors shared by passes,
//!   verifiers, and the HLS compat gate.
//!
//! # Example: define an IR, a pass, and run an instrumented pipeline
//!
//! Any type can be piped through a [`PassManager`] by implementing
//! [`PassIr`] (a size measure plus a verifier) and giving it passes:
//!
//! ```
//! use pass_core::{Pass, PassIr, PassManager, PassResult};
//!
//! /// A toy IR: a list of numbers; "verification" forbids negatives.
//! struct Numbers(Vec<i64>);
//!
//! impl PassIr for Numbers {
//!     fn ir_size(&self) -> usize {
//!         self.0.len()
//!     }
//!     fn verify_ir(&self) -> PassResult<()> {
//!         match self.0.iter().find(|n| **n < 0) {
//!             Some(n) => Err(pass_core::Diagnostic::error("verify", format!("negative {n}"))),
//!             None => Ok(()),
//!         }
//!     }
//! }
//!
//! /// A "DCE" pass: drop zeros, report whether anything changed.
//! struct DropZeros;
//!
//! impl Pass<Numbers> for DropZeros {
//!     fn name(&self) -> &'static str {
//!         "drop-zeros"
//!     }
//!     fn run(&self, ir: &mut Numbers) -> PassResult<bool> {
//!         let before = ir.0.len();
//!         ir.0.retain(|n| *n != 0);
//!         Ok(ir.0.len() != before)
//!     }
//! }
//!
//! let mut pm = PassManager::with_label("cleanup");
//! pm.add(DropZeros);
//! let mut ir = Numbers(vec![3, 0, 1, 0]);
//! let report = pm.run(&mut ir).expect("pipeline runs");
//! assert_eq!(ir.0, vec![3, 1]);
//! assert_eq!(report.passes[0].size_delta(), -2);
//! assert_eq!(report.changed_passes(), vec!["drop-zeros"]);
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod diag;
pub mod hist;
pub mod json;
pub mod registry;
pub mod report;

pub use budget::{Budget, BudgetError, BudgetKind};
pub use diag::{Diagnostic, Loc, Severity};
pub use hist::Histogram;
pub use registry::PassRegistry;
pub use report::{PassRecord, PipelineReport};

/// Result alias for pass execution.
pub type PassResult<T> = std::result::Result<T, Diagnostic>;

/// What an IR must provide for the pass manager to instrument and check it.
pub trait PassIr {
    /// A size measure (operation/instruction count) for delta stats.
    fn ir_size(&self) -> usize;

    /// Structural verification, returning a located diagnostic on failure.
    fn verify_ir(&self) -> PassResult<()>;
}

/// A module-level transformation over `IR`.
pub trait Pass<IR: PassIr> {
    /// Stable name used in pipeline specs, registries, and reports.
    fn name(&self) -> &'static str;

    /// Run over the IR; report whether anything changed.
    fn run(&self, ir: &mut IR) -> PassResult<bool>;
}

/// An ordered, instrumented pipeline of passes.
pub struct PassManager<IR: PassIr> {
    passes: Vec<Box<dyn Pass<IR>>>,
    /// Verify the IR after each pass (on by default).
    pub verify_each: bool,
    label: String,
}

impl<IR: PassIr> Default for PassManager<IR> {
    fn default() -> Self {
        PassManager::new()
    }
}

impl<IR: PassIr> PassManager<IR> {
    /// Empty pipeline with per-pass verification enabled.
    pub fn new() -> PassManager<IR> {
        PassManager::with_label("pipeline")
    }

    /// Empty pipeline with a label used in reports.
    pub fn with_label(label: impl Into<String>) -> PassManager<IR> {
        PassManager {
            passes: Vec::new(),
            verify_each: true,
            label: label.into(),
        }
    }

    /// Append a pass.
    pub fn add(&mut self, pass: impl Pass<IR> + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Append an already-boxed pass (registry output).
    pub fn add_boxed(&mut self, pass: Box<dyn Pass<IR>>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// True when no passes are registered.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Run every pass once, in order.
    pub fn run(&self, ir: &mut IR) -> PassResult<PipelineReport> {
        self.run_observed(ir, &mut |_, _| {})
    }

    /// Run every pass once, invoking `observer` with the IR and the pass's
    /// record after each pass completes (and verifies, when enabled). This
    /// is how callers sample pass-dependent metrics — e.g. the adaptor
    /// counts remaining HLS compat issues between passes — without a second
    /// pass-manager implementation.
    pub fn run_observed(
        &self,
        ir: &mut IR,
        observer: &mut dyn FnMut(&IR, &PassRecord),
    ) -> PassResult<PipelineReport> {
        self.run_observed_budgeted(ir, observer, &Budget::unlimited())
    }

    /// [`PassManager::run`] under a [`Budget`]: one fuel unit is charged
    /// per pass (before it runs), and the deadline is checked at the same
    /// points. A trip surfaces as the [`budget::BUDGET_COMPONENT`]
    /// diagnostic produced by [`BudgetError::to_diagnostic`], so callers on
    /// stringly error channels can still recover it with
    /// [`BudgetError::from_rendered`].
    pub fn run_budgeted(&self, ir: &mut IR, budget: &Budget) -> PassResult<PipelineReport> {
        self.run_observed_budgeted(ir, &mut |_, _| {}, budget)
    }

    /// [`PassManager::run_observed`] under a [`Budget`].
    pub fn run_observed_budgeted(
        &self,
        ir: &mut IR,
        observer: &mut dyn FnMut(&IR, &PassRecord),
        budget: &Budget,
    ) -> PassResult<PipelineReport> {
        let mut report = PipelineReport::new(&self.label);
        self.run_once(ir, &mut report, observer, budget)?;
        Ok(report)
    }

    fn run_once(
        &self,
        ir: &mut IR,
        report: &mut PipelineReport,
        observer: &mut dyn FnMut(&IR, &PassRecord),
        budget: &Budget,
    ) -> PassResult<bool> {
        let mut any_changed = false;
        for pass in &self.passes {
            budget
                .charge(1, pass.name())
                .map_err(|e| e.to_diagnostic())?;
            let size_before = ir.ir_size();
            let start = std::time::Instant::now();
            let changed = pass.run(ir).map_err(|d| d.in_pass(pass.name()))?;
            if self.verify_each {
                ir.verify_ir().map_err(|d| {
                    Diagnostic {
                        message: format!("IR broken after pass '{}': {}", pass.name(), d.message),
                        ..d
                    }
                    .in_pass(pass.name())
                })?;
            }
            let rec = PassRecord {
                pass: pass.name().to_string(),
                changed,
                wall_us: start.elapsed().as_micros() as u64,
                size_before,
                size_after: ir.ir_size(),
                cached: false,
            };
            observer(ir, &rec);
            report.push(rec);
            any_changed |= changed;
        }
        Ok(any_changed)
    }

    /// Run the pipeline repeatedly until no pass reports a change, bounded
    /// by `max_iters`. The report accumulates records across iterations and
    /// its `iterations` field records how many sweeps ran.
    pub fn run_to_fixpoint(&self, ir: &mut IR, max_iters: usize) -> PassResult<PipelineReport> {
        self.run_to_fixpoint_budgeted(ir, max_iters, &Budget::unlimited())
    }

    /// [`PassManager::run_to_fixpoint`] under a [`Budget`]: besides the
    /// per-pass fuel charge, the budget is checked between fixed-point
    /// iterations, so a livelocked pipeline (oscillating passes that never
    /// quiesce) is cut off at an iteration boundary instead of spinning
    /// until `max_iters`.
    pub fn run_to_fixpoint_budgeted(
        &self,
        ir: &mut IR,
        max_iters: usize,
        budget: &Budget,
    ) -> PassResult<PipelineReport> {
        let mut report = PipelineReport::new(&self.label);
        report.iterations = 0;
        for iter in 0..max_iters {
            if iter > 0 {
                budget
                    .check(&format!("{}/fixpoint", self.label))
                    .map_err(|e| e.to_diagnostic())?;
            }
            report.iterations += 1;
            if !self.run_once(ir, &mut report, &mut |_, _| {}, budget)? {
                break;
            }
        }
        Ok(report)
    }
}

/// Tiny IR + passes shared by this crate's unit tests (kept out of `#[cfg(test)]`
/// so the registry tests can use them too).
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// An "IR" that is just a counter, with a verifier tripwire.
    #[derive(Default)]
    pub struct CountIr {
        pub count: usize,
        pub poison: bool,
    }

    impl PassIr for CountIr {
        fn ir_size(&self) -> usize {
            self.count
        }

        fn verify_ir(&self) -> PassResult<()> {
            if self.poison {
                Err(Diagnostic::error("verifier", "poisoned counter")
                    .with_loc(Loc::function("f").in_block("entry").at_inst("%0")))
            } else {
                Ok(())
            }
        }
    }

    /// Grows the counter by `by` until it reaches `until`.
    pub struct Grow {
        pub by: usize,
        pub until: usize,
    }

    impl Pass<CountIr> for Grow {
        fn name(&self) -> &'static str {
            "grow"
        }

        fn run(&self, ir: &mut CountIr) -> PassResult<bool> {
            if ir.count >= self.until {
                Ok(false)
            } else {
                ir.count = (ir.count + self.by).min(self.until);
                Ok(true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::{CountIr, Grow};
    use super::*;

    struct Nop;

    impl Pass<CountIr> for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }

        fn run(&self, _ir: &mut CountIr) -> PassResult<bool> {
            Ok(false)
        }
    }

    struct Poison;

    impl Pass<CountIr> for Poison {
        fn name(&self) -> &'static str {
            "poison"
        }

        fn run(&self, ir: &mut CountIr) -> PassResult<bool> {
            ir.poison = true;
            Ok(true)
        }
    }

    #[test]
    fn fixpoint_terminates_immediately_on_noop() {
        let mut pm = PassManager::new();
        pm.add(Nop);
        let mut ir = CountIr::default();
        let report = pm.run_to_fixpoint(&mut ir, 100).unwrap();
        assert_eq!(report.iterations, 1);
        assert_eq!(report.passes.len(), 1);
    }

    #[test]
    fn fixpoint_converges_and_counts_iterations() {
        let mut pm = PassManager::new();
        pm.add(Grow { by: 2, until: 5 });
        let mut ir = CountIr::default();
        let report = pm.run_to_fixpoint(&mut ir, 100).unwrap();
        // 0→2→4→5, then one quiescent sweep.
        assert_eq!(ir.count, 5);
        assert_eq!(report.iterations, 4);
    }

    #[test]
    fn report_records_timing_and_size_deltas() {
        let mut pm = PassManager::with_label("unit");
        pm.add(Grow { by: 3, until: 3 }).add(Nop);
        let mut ir = CountIr::default();
        let report = pm.run(&mut ir).unwrap();
        assert_eq!(report.label, "unit");
        assert_eq!(report.passes.len(), 2);
        let grow = &report.passes[0];
        assert_eq!((grow.pass.as_str(), grow.changed), ("grow", true));
        assert_eq!((grow.size_before, grow.size_after), (0, 3));
        assert_eq!(grow.size_delta(), 3);
        let nop = &report.passes[1];
        assert_eq!((nop.pass.as_str(), nop.changed), ("nop", false));
        assert_eq!(report.changed_passes(), vec!["grow"]);
        // Timing is recorded (possibly 0us for a trivial pass, but present
        // and summable).
        assert_eq!(
            report.total_us(),
            report.passes.iter().map(|p| p.wall_us).sum()
        );
    }

    #[test]
    fn verify_each_surfaces_located_diagnostic() {
        let mut pm = PassManager::new();
        pm.add(Poison);
        let mut ir = CountIr::default();
        let err = pm.run(&mut ir).unwrap_err();
        assert_eq!(err.pass, "poison");
        assert_eq!(err.loc.function.as_deref(), Some("f"));
        assert_eq!(err.loc.block.as_deref(), Some("entry"));
        assert_eq!(err.loc.inst.as_deref(), Some("%0"));
        assert_eq!(
            err.to_string(),
            "error[poison] @f:entry:%0: IR broken after pass 'poison': poisoned counter"
        );
        // With verification off, the pipeline completes.
        let mut pm = PassManager::new();
        pm.add(Poison);
        pm.verify_each = false;
        assert!(pm.run(&mut CountIr::default()).is_ok());
    }

    #[test]
    fn fuel_exhaustion_stops_pipeline_with_budget_diagnostic() {
        let mut pm = PassManager::with_label("budgeted");
        pm.add(Grow { by: 1, until: 100 });
        let mut ir = CountIr::default();
        // 3 fuel units = 3 pass executions, tripping inside sweep 4.
        let budget = Budget::unlimited().with_fuel(3);
        let err = pm
            .run_to_fixpoint_budgeted(&mut ir, 100, &budget)
            .unwrap_err();
        assert_eq!(err.pass, budget::BUDGET_COMPONENT);
        let trip = BudgetError::from_diagnostic(&err).expect("parsable trip");
        assert_eq!(trip.kind, BudgetKind::Fuel);
        // Fuel hits zero after sweep 3, so the inter-iteration check trips.
        assert_eq!(trip.stage, "budgeted/fixpoint");
        assert_eq!(ir.count, 3, "exactly 3 fueled passes ran");
    }

    #[test]
    fn expired_deadline_checked_between_fixpoint_iterations() {
        let mut pm = PassManager::with_label("budgeted");
        pm.add(Grow {
            by: 1,
            until: 1_000_000,
        });
        let mut ir = CountIr::default();
        let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let err = pm.run_budgeted(&mut ir, &budget).unwrap_err();
        let trip = BudgetError::from_diagnostic(&err).expect("parsable trip");
        assert_eq!(trip.kind, BudgetKind::Deadline);
        assert_eq!(ir.count, 0, "no pass may run past the deadline");
    }

    #[test]
    fn unlimited_budget_matches_plain_run() {
        let mut pm = PassManager::new();
        pm.add(Grow { by: 2, until: 5 });
        let (mut a, mut b) = (CountIr::default(), CountIr::default());
        let ra = pm.run_to_fixpoint(&mut a, 100).unwrap();
        let rb = pm
            .run_to_fixpoint_budgeted(&mut b, 100, &Budget::unlimited())
            .unwrap();
        assert_eq!((a.count, ra.iterations), (b.count, rb.iterations));
    }

    #[test]
    fn observer_sees_ir_state_after_each_pass() {
        let mut pm = PassManager::new();
        pm.add(Grow { by: 1, until: 2 })
            .add(Grow { by: 1, until: 2 });
        let mut ir = CountIr::default();
        let mut seen = Vec::new();
        pm.run_observed(&mut ir, &mut |ir, rec| {
            seen.push((rec.pass.clone(), ir.count))
        })
        .unwrap();
        assert_eq!(seen, vec![("grow".to_string(), 1), ("grow".to_string(), 2)]);
    }
}
