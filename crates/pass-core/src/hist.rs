//! Fixed-footprint latency histograms for long-running instrumentation.
//!
//! [`PipelineReport`](crate::PipelineReport) records the exact per-stage
//! timings of *one* run; a long-running process (the `mha-serve` daemon)
//! needs the aggregate shape of *millions* of runs without unbounded
//! memory. A [`Histogram`] gives that: 64 power-of-two buckets over
//! microsecond values, constant size, O(1) recording, and quantile
//! estimates read straight from the bucket counts.
//!
//! The bucket for a value `v` is `ceil(log2(v + 1))`, so bucket `b` covers
//! `[2^(b-1), 2^b)` microseconds (bucket 0 holds exact zeros). Quantiles
//! are therefore estimates with at most 2× relative error — plenty for
//! p50/p99 service-latency reporting, where the interesting signal is
//! orders of magnitude, not microseconds.

use crate::report::json_str;

/// Number of power-of-two buckets; covers the full `u64` range.
const BUCKETS: usize = 65;

/// A fixed-size log2-bucket histogram of microsecond latencies.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket(v: u64) -> usize {
        // ceil(log2(v + 1)): 0 → 0, 1 → 1, 2..=3 → 2, 4..=7 → 3, ...
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Upper bound (exclusive) of bucket `b`, saturating at `u64::MAX`.
    fn bucket_upper(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64.checked_shl(b as u32).map_or(u64::MAX, |x| x - 1)
        }
    }

    /// Record one value (microseconds).
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating), microseconds.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket containing the `ceil(q * count)`-th smallest value, clamped
    /// to the observed min/max so estimates never leave the recorded
    /// range. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The p50 estimate (microseconds).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The p99 estimate (microseconds).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serialize as a JSON object under `label` (hand-rolled, same style
    /// as `PipelineReport::to_json`): count, sum, min/mean/max, p50/p99.
    pub fn to_json(&self, label: &str) -> String {
        format!(
            "{{\"stage\":{},\"count\":{},\"sum_us\":{},\"min_us\":{},\"mean_us\":{},\"max_us\":{},\"p50_us\":{},\"p99_us\":{}}}",
            json_str(label),
            self.count,
            self.sum,
            self.min(),
            self.mean(),
            self.max,
            self.p50(),
            self.p99()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn quantiles_track_the_distribution_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 500);
        // True p50 = 500; bucket estimate may overshoot by at most 2x.
        let p50 = h.p50();
        assert!((500..=1023).contains(&p50), "p50 {p50}");
        let p99 = h.p99();
        assert!((990..=1000).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn extremes_and_zeros_are_representable() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in [3, 17, 250, 9000] {
            a.record(v);
            c.record(v);
        }
        for v in [1, 64, 100_000] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.sum(), c.sum());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        assert_eq!(a.p50(), c.p50());
        assert_eq!(a.p99(), c.p99());
    }

    #[test]
    fn empty_histogram_quantiles_are_zero_at_every_q() {
        let h = Histogram::new();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        // Out-of-range q values clamp rather than panic or index wild.
        assert_eq!(h.quantile(-1.0), 0);
        assert_eq!(h.quantile(2.0), 0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = Histogram::new();
        h.record(777);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 777);
        assert_eq!(h.max(), 777);
        assert_eq!(h.mean(), 777);
        // The bucket upper bound would be 1023, but the estimate clamps
        // to the observed range, so every quantile is the sample itself.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 777, "q={q}");
        }
    }

    #[test]
    fn top_bucket_saturates_without_overflow() {
        let mut h = Histogram::new();
        // All of these land in the last bucket, whose upper bound would
        // be 2^65 - 1: it must saturate at u64::MAX, not wrap.
        for v in [u64::MAX, u64::MAX - 1, 1u64 << 63] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 1u64 << 63);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.p50(), u64::MAX);
        // Sum saturates instead of wrapping around zero.
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn merge_of_disjoint_bucket_ranges_keeps_both_tails() {
        let mut lo = Histogram::new();
        let mut hi = Histogram::new();
        for v in [1, 2, 3, 4] {
            lo.record(v);
        }
        for v in [1u64 << 40, (1 << 40) + 1, 1 << 50] {
            hi.record(v);
        }
        lo.merge(&hi);
        assert_eq!(lo.count(), 7);
        assert_eq!(lo.min(), 1);
        assert_eq!(lo.max(), 1 << 50);
        // The median still lives in the low cluster (4 of 7 samples):
        // within 2x bucket error of the true median 4, far from the tail.
        assert!(lo.p50() <= 7, "p50 {} escaped the low cluster", lo.p50());
        // ...while the tail quantiles come from the high cluster.
        assert!(lo.p99() >= 1 << 40, "p99 {} lost the high tail", lo.p99());
        // Merging into an empty histogram must not keep the empty
        // sentinel min (u64::MAX).
        let mut empty = Histogram::new();
        empty.merge(&hi);
        assert_eq!(empty.min(), 1 << 40);
        assert_eq!(empty.count(), 3);
    }

    #[test]
    fn json_shape_parses_and_carries_the_stats() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        let j = h.to_json("flow");
        let v = crate::json::parse(&j).unwrap();
        assert_eq!(v.get("stage").unwrap().as_str(), Some("flow"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("sum_us").unwrap().as_u64(), Some(30));
        assert_eq!(v.get("min_us").unwrap().as_u64(), Some(10));
        assert!(v.get("p50_us").unwrap().as_u64().unwrap() >= 10);
    }
}
