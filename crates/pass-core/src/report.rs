//! Pipeline execution reports (LLVM `-time-passes` / `mlir-timing` style).
//!
//! A [`PipelineReport`] records, per executed pass/stage: wall-clock time,
//! whether the IR changed, and the IR size before/after. Reports render as
//! an aligned text table and serialize to JSON (hand-rolled emitter — the
//! schema is documented in EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

/// One executed pass or pipeline stage.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassRecord {
    /// Pass/stage name (nested stages use `outer/inner`).
    pub pass: String,
    /// Whether the pass reported an IR change.
    pub changed: bool,
    /// Wall-clock time, microseconds.
    pub wall_us: u64,
    /// IR size (op/instruction count) before the pass.
    pub size_before: usize,
    /// IR size after the pass.
    pub size_after: usize,
    /// True when the stage's output was materialized from the artifact
    /// cache instead of being recomputed (`wall_us` is then the cache load
    /// time). Ordinary pass executions leave this false.
    pub cached: bool,
}

impl PassRecord {
    /// Signed size delta (negative = the pass shrank the IR).
    pub fn size_delta(&self) -> i64 {
        self.size_after as i64 - self.size_before as i64
    }
}

/// Execution report for one pipeline run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Pipeline label (e.g. `hls-adaptor`, `standard-cleanup`).
    pub label: String,
    /// Fixed-point iterations executed (1 for a single sweep).
    pub iterations: usize,
    /// True when this report describes a degraded run: the primary flow
    /// failed and the supervisor fell back to the baseline path (the
    /// records then describe the fallback execution). Set by
    /// `driver::batch`; ordinary runs leave it false.
    pub degraded: bool,
    /// Per-pass records, in execution order (repeated across iterations).
    pub passes: Vec<PassRecord>,
}

impl PipelineReport {
    /// Empty report with a label.
    pub fn new(label: impl Into<String>) -> PipelineReport {
        PipelineReport {
            label: label.into(),
            iterations: 1,
            degraded: false,
            passes: Vec::new(),
        }
    }

    /// Append a record.
    pub fn push(&mut self, rec: PassRecord) {
        self.passes.push(rec);
    }

    /// Total wall-clock time across all recorded passes, microseconds.
    pub fn total_us(&self) -> u64 {
        self.passes.iter().map(|p| p.wall_us).sum()
    }

    /// Names of passes that changed the IR (deduplicated, in order).
    pub fn changed_passes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for p in &self.passes {
            if p.changed && !out.contains(&p.pass.as_str()) {
                out.push(&p.pass);
            }
        }
        out
    }

    /// Time one arbitrary stage (not necessarily a registered pass) and
    /// record it. IR sizes are the caller's to supply via
    /// [`PipelineReport::push`] when known; stages recorded here carry 0/0.
    pub fn time_stage<T, E>(
        &mut self,
        name: &str,
        f: impl FnOnce() -> Result<T, E>,
    ) -> Result<T, E> {
        let start = std::time::Instant::now();
        let out = f()?;
        self.push(PassRecord {
            pass: name.to_string(),
            changed: true,
            wall_us: start.elapsed().as_micros() as u64,
            size_before: 0,
            size_after: 0,
            cached: false,
        });
        Ok(out)
    }

    /// Record a stage whose output came from the artifact cache: no work
    /// was done beyond loading it, which took `wall_us` microseconds.
    /// Cached stages report `changed: false` (they did not transform
    /// anything this run) and render with a `cache` marker.
    pub fn record_cached(&mut self, name: &str, wall_us: u64) {
        self.push(PassRecord {
            pass: name.to_string(),
            changed: false,
            wall_us,
            size_before: 0,
            size_after: 0,
            cached: true,
        });
    }

    /// How many recorded stages were served from the artifact cache.
    pub fn cached_stages(&self) -> usize {
        self.passes.iter().filter(|p| p.cached).count()
    }

    /// Merge another report's records under `prefix/`.
    pub fn extend_prefixed(&mut self, prefix: &str, other: &PipelineReport) {
        for p in &other.passes {
            self.passes.push(PassRecord {
                pass: format!("{prefix}/{}", p.pass),
                ..p.clone()
            });
        }
    }

    /// Render the aligned text table shown by the CLIs.
    pub fn render(&self) -> String {
        let mut out = format!(
            "=== pipeline '{}': {} pass(es), {} iteration(s), {} us total{}\n",
            self.label,
            self.passes.len(),
            self.iterations,
            self.total_us(),
            if self.degraded { " [degraded]" } else { "" }
        );
        let name_w = self
            .passes
            .iter()
            .map(|p| p.pass.len())
            .max()
            .unwrap_or(4)
            .max(4);
        out.push_str(&format!(
            "{:<name_w$}  {:>10}  {:>9}  {:>12}  {}\n",
            "pass", "wall (us)", "size", "delta", "changed"
        ));
        for p in &self.passes {
            let delta = p.size_delta();
            let size_col = if p.size_before == 0 && p.size_after == 0 {
                "-".to_string()
            } else {
                format!("{}->{}", p.size_before, p.size_after)
            };
            out.push_str(&format!(
                "{:<name_w$}  {:>10}  {:>9}  {:>12}  {}\n",
                p.pass,
                p.wall_us,
                size_col,
                if delta == 0 {
                    "0".to_string()
                } else {
                    format!("{delta:+}")
                },
                if p.cached {
                    "cache"
                } else if p.changed {
                    "yes"
                } else {
                    "-"
                }
            ));
        }
        out
    }

    /// Serialize to JSON (schema in EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"label\":{},", json_str(&self.label)));
        out.push_str(&format!("\"iterations\":{},", self.iterations));
        out.push_str(&format!("\"degraded\":{},", self.degraded));
        out.push_str(&format!("\"total_us\":{},", self.total_us()));
        out.push_str("\"passes\":[");
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"pass\":{},\"changed\":{},\"wall_us\":{},\"size_before\":{},\"size_after\":{},\"cached\":{}}}",
                json_str(&p.pass),
                p.changed,
                p.wall_us,
                p.size_before,
                p.size_after,
                p.cached
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parse a report back out of its [`PipelineReport::to_json`] form
    /// (used by the batch run journal to replay completed kernels on
    /// `--resume`). The derived `total_us` field is ignored; missing
    /// optional fields (`degraded`, from pre-supervisor journals) default.
    pub fn parse_json(text: &str) -> Result<PipelineReport, String> {
        let v = crate::json::parse(text)?;
        PipelineReport::from_json_value(&v)
    }

    /// [`PipelineReport::parse_json`] over an already-parsed value.
    pub fn from_json_value(v: &crate::json::JsonValue) -> Result<PipelineReport, String> {
        let field_u64 = |v: &crate::json::JsonValue, k: &str| {
            v.get(k)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("report JSON: missing numeric field '{k}'"))
        };
        let mut report = PipelineReport::new(
            v.get("label")
                .and_then(|x| x.as_str())
                .ok_or("report JSON: missing 'label'")?,
        );
        report.iterations = field_u64(v, "iterations")? as usize;
        report.degraded = v.get("degraded").and_then(|x| x.as_bool()).unwrap_or(false);
        for p in v
            .get("passes")
            .and_then(|x| x.as_arr())
            .ok_or("report JSON: missing 'passes' array")?
        {
            report.push(PassRecord {
                pass: p
                    .get("pass")
                    .and_then(|x| x.as_str())
                    .ok_or("report JSON: pass record missing 'pass'")?
                    .to_string(),
                changed: p.get("changed").and_then(|x| x.as_bool()).unwrap_or(false),
                wall_us: field_u64(p, "wall_us")?,
                size_before: field_u64(p, "size_before")? as usize,
                size_after: field_u64(p, "size_after")? as usize,
                cached: p.get("cached").and_then(|x| x.as_bool()).unwrap_or(false),
            });
        }
        Ok(report)
    }
}

/// Escape a string for JSON.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineReport {
        let mut r = PipelineReport::new("demo");
        r.push(PassRecord {
            pass: "mem2reg".into(),
            changed: true,
            wall_us: 120,
            size_before: 40,
            size_after: 31,
            cached: false,
        });
        r.push(PassRecord {
            pass: "dce".into(),
            changed: false,
            wall_us: 15,
            size_before: 31,
            size_after: 31,
            cached: false,
        });
        r
    }

    #[test]
    fn totals_and_changed() {
        let r = sample();
        assert_eq!(r.total_us(), 135);
        assert_eq!(r.changed_passes(), vec!["mem2reg"]);
        assert_eq!(r.passes[0].size_delta(), -9);
    }

    #[test]
    fn render_contains_all_passes() {
        let text = sample().render();
        assert!(text.contains("pipeline 'demo'"));
        assert!(text.contains("mem2reg"));
        assert!(text.contains("40->31"));
        assert!(text.contains("-9"));
    }

    #[test]
    fn json_shape() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"label\":\"demo\""));
        assert!(j.contains("\"pass\":\"mem2reg\""));
        assert!(j.contains("\"size_before\":40"));
        assert!(j.contains("\"total_us\":135"));
    }

    #[test]
    fn json_round_trips_through_parse_json() {
        let mut r = sample();
        r.iterations = 3;
        r.degraded = true;
        r.record_cached("csynth", 7);
        let back = PipelineReport::parse_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        // Pre-supervisor journals lack `degraded`: it defaults to false.
        let legacy = r.to_json().replace("\"degraded\":true,", "");
        let parsed = PipelineReport::parse_json(&legacy).unwrap();
        assert!(!parsed.degraded);
        assert!(PipelineReport::parse_json("{\"label\":1}").is_err());
    }

    #[test]
    fn degraded_flag_renders_and_serializes() {
        let mut r = sample();
        assert!(!r.render().contains("[degraded]"));
        assert!(r.to_json().contains("\"degraded\":false"));
        r.degraded = true;
        assert!(r.render().contains("[degraded]"));
        assert!(r.to_json().contains("\"degraded\":true"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn cached_stages_are_counted_and_marked() {
        let mut r = sample();
        r.record_cached("csynth", 7);
        assert_eq!(r.cached_stages(), 1);
        let cached = r.passes.last().unwrap();
        assert!(cached.cached && !cached.changed);
        assert_eq!(cached.wall_us, 7);
        // Cached stages never show up as IR-changing passes.
        assert_eq!(r.changed_passes(), vec!["mem2reg"]);
        assert!(r.render().contains("cache"));
        assert!(r
            .to_json()
            .contains("\"pass\":\"csynth\",\"changed\":false"));
        assert!(r.to_json().contains("\"cached\":true"));
    }
}
