//! Execution budgets: cooperative deadlines and fuel.
//!
//! A [`Budget`] is a cheap-to-clone handle carried through every long loop
//! in the workspace — pass pipelines, fixed-point iteration, `vitis-sim`
//! block scheduling and II search. Stages call [`Budget::charge`] (or the
//! non-consuming [`Budget::check`]) at loop boundaries; when the wall-clock
//! deadline has passed or the shared fuel pool runs dry, the call returns a
//! structured [`BudgetError`] naming the stage that tripped, and the stage
//! unwinds cooperatively instead of wedging its worker thread.
//!
//! Two resources are tracked:
//!
//! * **deadline** — an absolute [`Instant`]; checked on every charge.
//! * **fuel** — a shared signed counter ([`AtomicI64`] behind an [`Arc`]),
//!   decremented per unit of work. All clones of a budget draw from the
//!   same pool, so a kernel's flow, csynth, and cosim stages together
//!   cannot exceed the per-kernel allowance.
//!
//! Budget errors must survive the workspace's stringly error boundaries
//! (`DriverError` wraps rendered text). The rendered grammar is therefore
//! stable — `"{kind} budget exceeded in {stage}: {detail}"` — and
//! [`BudgetError::from_rendered`] parses it back out of any error string,
//! letting the supervisor classify a budget trip as `BudgetExceeded` even
//! after it has been flattened to text.

use std::fmt;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::diag::Diagnostic;

/// Diagnostic `pass` component used for budget trips crossing
/// [`Diagnostic`]-typed boundaries (e.g. the adaptor pipeline).
pub const BUDGET_COMPONENT: &str = "budget";

/// Which budget resource was exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// The wall-clock deadline passed.
    Deadline,
    /// The fuel pool ran dry.
    Fuel,
}

impl BudgetKind {
    /// Canonical lowercase name used in the rendered grammar.
    pub fn as_str(self) -> &'static str {
        match self {
            BudgetKind::Deadline => "deadline",
            BudgetKind::Fuel => "fuel",
        }
    }

    /// Inverse of [`BudgetKind::as_str`].
    pub fn parse(s: &str) -> Option<BudgetKind> {
        match s {
            "deadline" => Some(BudgetKind::Deadline),
            "fuel" => Some(BudgetKind::Fuel),
            _ => None,
        }
    }
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A budget trip: which resource, in which stage, with detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetError {
    /// Exhausted resource.
    pub kind: BudgetKind,
    /// Stage that observed the trip (e.g. a pass name, `csynth/schedule`).
    pub stage: String,
    /// Human detail (remaining fuel, overshoot).
    pub detail: String,
}

impl BudgetError {
    /// Build a trip record for `stage`.
    pub fn new(kind: BudgetKind, stage: &str, detail: impl Into<String>) -> BudgetError {
        BudgetError {
            kind,
            stage: stage.to_string(),
            detail: detail.into(),
        }
    }

    /// Convert to a [`Diagnostic`] under the [`BUDGET_COMPONENT`] pass so
    /// the trip survives `Diagnostic`-typed error channels.
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::error(BUDGET_COMPONENT, self.to_string())
    }

    /// Recover a budget trip from a diagnostic produced by
    /// [`BudgetError::to_diagnostic`] (possibly re-attributed to another
    /// pass by intermediate layers — only the message grammar matters).
    pub fn from_diagnostic(d: &Diagnostic) -> Option<BudgetError> {
        BudgetError::from_rendered(&d.message)
    }

    /// Scan any rendered error text for the stable grammar
    /// `"{kind} budget exceeded in {stage}: {detail}"` and parse the trip
    /// back out. Returns `None` when the text does not embed a budget trip.
    pub fn from_rendered(text: &str) -> Option<BudgetError> {
        const NEEDLE: &str = " budget exceeded in ";
        let idx = text.find(NEEDLE)?;
        let kind_word = text[..idx]
            .rsplit(|c: char| c.is_whitespace() || c == '[' || c == ']' || c == ':')
            .next()?;
        let kind = BudgetKind::parse(kind_word)?;
        let rest = &text[idx + NEEDLE.len()..];
        let (stage, detail) = rest.split_once(": ")?;
        Some(BudgetError {
            kind,
            stage: stage.to_string(),
            detail: detail.to_string(),
        })
    }
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} budget exceeded in {}: {}",
            self.kind, self.stage, self.detail
        )
    }
}

impl std::error::Error for BudgetError {}

/// A deadline and/or fuel allowance shared by every stage of one unit of
/// work. Cloning is cheap; clones share the fuel pool.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    fuel: Option<Arc<AtomicI64>>,
}

impl Budget {
    /// A budget that never trips (both resources absent).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// True when neither a deadline nor fuel is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.fuel.is_none()
    }

    /// Add a wall-clock deadline `d` from now.
    pub fn with_deadline(mut self, d: Duration) -> Budget {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Add a fuel pool of `units`. Each [`Budget::charge`] unit drains it;
    /// all clones share the pool.
    pub fn with_fuel(mut self, units: u64) -> Budget {
        self.fuel = Some(Arc::new(AtomicI64::new(units.min(i64::MAX as u64) as i64)));
        self
    }

    /// Remaining fuel, if a pool is set (may be negative after a trip).
    pub fn remaining_fuel(&self) -> Option<i64> {
        self.fuel.as_ref().map(|f| f.load(Ordering::Relaxed))
    }

    /// Time left before the deadline, if one is set (zero once expired).
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Drain the fuel pool immediately (fault injection). No-op without a
    /// pool.
    pub fn exhaust_fuel(&self) {
        if let Some(f) = &self.fuel {
            f.store(-1, Ordering::Relaxed);
        }
    }

    fn check_deadline(&self, stage: &str) -> Result<(), BudgetError> {
        if let Some(d) = self.deadline {
            let now = Instant::now();
            if now >= d {
                return Err(BudgetError::new(
                    BudgetKind::Deadline,
                    stage,
                    format!("wall clock over by {:?}", now.saturating_duration_since(d)),
                ));
            }
        }
        Ok(())
    }

    /// Consume `units` of fuel on behalf of `stage`, checking the deadline
    /// first. Errs with a structured [`BudgetError`] when either resource
    /// is exhausted. With no deadline and no pool this is free.
    pub fn charge(&self, units: u64, stage: &str) -> Result<(), BudgetError> {
        self.check_deadline(stage)?;
        if let Some(f) = &self.fuel {
            let units = units.min(i64::MAX as u64) as i64;
            let before = f.fetch_sub(units, Ordering::Relaxed);
            if before < units {
                return Err(BudgetError::new(
                    BudgetKind::Fuel,
                    stage,
                    format!("pool empty ({} unit(s) requested)", units),
                ));
            }
        }
        Ok(())
    }

    /// Non-consuming probe: deadline not passed and fuel (if any) positive.
    pub fn check(&self, stage: &str) -> Result<(), BudgetError> {
        self.check_deadline(stage)?;
        if let Some(f) = &self.fuel {
            if f.load(Ordering::Relaxed) <= 0 {
                return Err(BudgetError::new(BudgetKind::Fuel, stage, "pool empty"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..10_000 {
            b.charge(1, "loop").unwrap();
        }
        b.check("tail").unwrap();
        assert_eq!(b.remaining_fuel(), None);
        assert_eq!(b.remaining_time(), None);
    }

    #[test]
    fn fuel_pool_is_shared_across_clones_and_trips() {
        let b = Budget::unlimited().with_fuel(3);
        let c = b.clone();
        b.charge(2, "a").unwrap();
        c.charge(1, "b").unwrap();
        let err = c.charge(1, "c").unwrap_err();
        assert_eq!(err.kind, BudgetKind::Fuel);
        assert_eq!(err.stage, "c");
        // Once dry, every clone observes the trip.
        assert!(b.check("after").is_err());
    }

    #[test]
    fn expired_deadline_trips_with_stage() {
        let b = Budget::unlimited().with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        let err = b.charge(1, "schedule").unwrap_err();
        assert_eq!(err.kind, BudgetKind::Deadline);
        assert_eq!(err.stage, "schedule");
        assert_eq!(b.remaining_time(), Some(Duration::ZERO));
    }

    #[test]
    fn exhaust_fuel_is_immediate() {
        let b = Budget::unlimited().with_fuel(1_000_000);
        b.exhaust_fuel();
        assert_eq!(b.check("x").unwrap_err().kind, BudgetKind::Fuel);
    }

    #[test]
    fn rendered_grammar_round_trips() {
        let e = BudgetError::new(
            BudgetKind::Fuel,
            "csynth/schedule",
            "pool empty (1 unit(s) requested)",
        );
        assert_eq!(BudgetError::from_rendered(&e.to_string()).unwrap(), e);
        // Survives diagnostic rendering and arbitrary prefixes.
        let d = e.to_diagnostic();
        assert_eq!(BudgetError::from_diagnostic(&d).unwrap(), e);
        let wrapped = format!("llvm: {d}");
        assert_eq!(BudgetError::from_rendered(&wrapped).unwrap(), e);
        assert_eq!(BudgetError::from_rendered("no trip here"), None);
        assert_eq!(
            BudgetError::from_rendered("weird budget exceeded in x: y"),
            None,
            "unknown kind word must not parse"
        );
    }
}
