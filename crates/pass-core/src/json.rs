//! A minimal JSON parser for the workspace's own emitters.
//!
//! The repo hand-rolls all JSON *output* (see [`crate::report::json_str`]);
//! the supervisor layer additionally needs to *read* JSON back — the batch
//! run journal, nested `PipelineReport`s, and structural summary
//! comparison in tests ("byte-identical modulo timings"). This module is a
//! dependency-free recursive-descent parser covering exactly the JSON the
//! workspace emits: objects, arrays, strings with the standard escapes
//! (including `\uXXXX`), numbers, booleans, and `null`.
//!
//! Object key order is preserved ([`JsonValue::Obj`] is a `Vec`), which
//! keeps equality comparisons honest about what the emitters actually
//! wrote.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; the workspace emits only integers small
    /// enough to round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in emission order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as u64 (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object fields in emission order.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Structural equality that skips object fields named in `ignored`
    /// (at every nesting level). This is how tests compare a resumed batch
    /// summary to an uninterrupted one "byte-identical modulo timings":
    /// `a.equals_ignoring(&b, &["wall_us", "total_us", "wall_ms"])`.
    pub fn equals_ignoring(&self, other: &JsonValue, ignored: &[&str]) -> bool {
        match (self, other) {
            (JsonValue::Obj(a), JsonValue::Obj(b)) => {
                let keep = |fields: &[(String, JsonValue)]| -> Vec<(String, JsonValue)> {
                    fields
                        .iter()
                        .filter(|(k, _)| !ignored.contains(&k.as_str()))
                        .cloned()
                        .collect()
                };
                let (a, b) = (keep(a), keep(b));
                a.len() == b.len()
                    && a.iter()
                        .zip(&b)
                        .all(|((ka, va), (kb, vb))| ka == kb && va.equals_ignoring(vb, ignored))
            }
            (JsonValue::Arr(a), JsonValue::Arr(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.equals_ignoring(y, ignored))
            }
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::Str(s) => f.write_str(&crate::report::json_str(s)),
            JsonValue::Arr(v) => {
                f.write_str("[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(v) => {
                f.write_str("{")?;
                for (i, (k, x)) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{x}", crate::report::json_str(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_workspace_report_emitter() {
        let mut r = crate::PipelineReport::new("demo \"quoted\"");
        r.push(crate::PassRecord {
            pass: "mem2reg".into(),
            changed: true,
            wall_us: 120,
            size_before: 40,
            size_after: 31,
            cached: false,
        });
        let v = parse(&r.to_json()).unwrap();
        assert_eq!(v.get("label").unwrap().as_str(), Some("demo \"quoted\""));
        assert_eq!(v.get("total_us").unwrap().as_u64(), Some(120));
        let passes = v.get("passes").unwrap().as_arr().unwrap();
        assert_eq!(passes[0].get("pass").unwrap().as_str(), Some("mem2reg"));
        assert_eq!(passes[0].get("changed").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn handles_escapes_nesting_and_numbers() {
        let v = parse(r#"{"a":[1,-2.5,true,null],"b":{"c":"x\nyA"},"d":""}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\nyA")
        );
        assert_eq!(v.get("d").unwrap().as_str(), Some(""));
        // Round-trips through Display.
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{}trailing").is_err());
        assert!(parse(r#"{"a"}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn equals_ignoring_skips_timing_keys_at_depth() {
        let a = parse(r#"{"x":1,"wall_us":5,"inner":{"wall_us":9,"y":[{"wall_us":1,"z":2}]}}"#)
            .unwrap();
        let b = parse(r#"{"x":1,"wall_us":7,"inner":{"wall_us":0,"y":[{"wall_us":3,"z":2}]}}"#)
            .unwrap();
        assert!(a.equals_ignoring(&b, &["wall_us"]));
        assert!(!a.equals_ignoring(&b, &[]));
        let c = parse(r#"{"x":2,"wall_us":5,"inner":{"wall_us":9,"y":[{"wall_us":1,"z":2}]}}"#)
            .unwrap();
        assert!(!a.equals_ignoring(&c, &["wall_us"]));
    }
}
