//! String-keyed pass registry.
//!
//! Every IR level registers its passes by stable name; CLIs and ablation
//! harnesses resolve names uniformly and get the full list of valid names
//! in the error when a name does not resolve.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::{Pass, PassIr, PassManager};

/// Factory producing a fresh boxed pass.
type Factory<IR> = Box<dyn Fn() -> Box<dyn Pass<IR>>>;

/// Name → pass factory map for one IR level.
pub struct PassRegistry<IR: PassIr> {
    factories: BTreeMap<&'static str, Factory<IR>>,
}

impl<IR: PassIr> Default for PassRegistry<IR> {
    fn default() -> Self {
        PassRegistry {
            factories: BTreeMap::new(),
        }
    }
}

impl<IR: PassIr> PassRegistry<IR> {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a pass factory under a stable name. Re-registering a name
    /// replaces the factory (later registrations win, so downstream crates
    /// can override upstream defaults).
    pub fn register(
        &mut self,
        name: &'static str,
        factory: impl Fn() -> Box<dyn Pass<IR>> + 'static,
    ) -> &mut Self {
        self.factories.insert(name, Box::new(factory));
        self
    }

    /// Absorb every factory from `other` (its registrations win on name
    /// clashes). Lets a driver expose several IR levels' passes — e.g. the
    /// LLVM cleanup passes plus the HLS adaptor passes — as one namespace.
    pub fn merge(&mut self, other: PassRegistry<IR>) -> &mut Self {
        self.factories.extend(other.factories);
        self
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        self.factories.keys().copied().collect()
    }

    /// Whether a name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Instantiate a pass by name. Unknown names produce a [`Diagnostic`]
    /// listing every valid name.
    pub fn create(&self, name: &str) -> Result<Box<dyn Pass<IR>>, Diagnostic> {
        match self.factories.get(name) {
            Some(f) => Ok(f()),
            None => Err(self.unknown(name)),
        }
    }

    /// The unknown-name diagnostic (shared with callers that do their own
    /// name matching, e.g. ablation configs).
    pub fn unknown(&self, name: &str) -> Diagnostic {
        Diagnostic::error(
            "pass-registry",
            format!(
                "unknown pass '{name}'; valid passes: {}",
                self.names().join(", ")
            ),
        )
    }

    /// Build a pipeline from a comma-separated spec (`mem2reg,dce,...`).
    /// Empty segments are ignored so trailing commas are harmless.
    pub fn build_pipeline(&self, spec: &str) -> Result<PassManager<IR>, Diagnostic> {
        let mut pm = PassManager::with_label(spec);
        for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            pm.add_boxed(self.create(name)?);
        }
        Ok(pm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{CountIr, Grow};

    fn registry() -> PassRegistry<CountIr> {
        let mut r = PassRegistry::new();
        r.register("grow", || Box::new(Grow { by: 1, until: 5 }));
        r
    }

    #[test]
    fn create_resolves_registered_names() {
        let r = registry();
        assert!(r.contains("grow"));
        assert_eq!(r.create("grow").unwrap().name(), "grow");
    }

    #[test]
    fn unknown_name_lists_valid_names() {
        let Err(e) = registry().create("nonsense").map(|_| ()) else {
            panic!("expected unknown-pass error");
        };
        assert!(e.message.contains("unknown pass 'nonsense'"));
        assert!(e.message.contains("valid passes: grow"));
    }

    #[test]
    fn pipeline_spec_builds_in_order() {
        let pm = registry().build_pipeline("grow,grow,").unwrap();
        assert_eq!(pm.len(), 2);
        assert!(registry().build_pipeline("grow,bogus").is_err());
    }
}
