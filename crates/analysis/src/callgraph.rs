//! Call graph over defined functions, with Tarjan SCCs.
//!
//! Used for recursion detection: a function is unsynthesizable if it sits
//! on a call cycle — a strongly connected component with more than one
//! node, or a single node with a self edge.

use std::collections::HashMap;

use llvm_lite::{InstData, Module};

/// The call graph of a module (declarations excluded — calls into them are
/// a separate compat issue).
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Defined function names, in module order.
    pub names: Vec<String>,
    /// `edges[i]` — indices of functions called by `names[i]` (deduped).
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Build the graph from every call instruction in `m`.
    pub fn build(m: &Module) -> CallGraph {
        let names: Vec<String> = m
            .functions
            .iter()
            .filter(|f| !f.is_declaration)
            .map(|f| f.name.clone())
            .collect();
        let index: HashMap<&str, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut edges = vec![Vec::new(); names.len()];
        for f in m.functions.iter().filter(|f| !f.is_declaration) {
            let from = index[f.name.as_str()];
            for (_, id) in f.inst_ids() {
                if let InstData::Call { callee } = &f.inst(id).data {
                    if let Some(&to) = index.get(callee.as_str()) {
                        if !edges[from].contains(&to) {
                            edges[from].push(to);
                        }
                    }
                }
            }
        }
        CallGraph { names, edges }
    }

    /// Tarjan's algorithm; each SCC is a list of node indices.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        struct State<'a> {
            g: &'a CallGraph,
            index: Vec<Option<usize>>,
            lowlink: Vec<usize>,
            on_stack: Vec<bool>,
            stack: Vec<usize>,
            next: usize,
            out: Vec<Vec<usize>>,
        }
        fn strongconnect(s: &mut State, v: usize) {
            s.index[v] = Some(s.next);
            s.lowlink[v] = s.next;
            s.next += 1;
            s.stack.push(v);
            s.on_stack[v] = true;
            for i in 0..s.g.edges[v].len() {
                let w = s.g.edges[v][i];
                if s.index[w].is_none() {
                    strongconnect(s, w);
                    s.lowlink[v] = s.lowlink[v].min(s.lowlink[w]);
                } else if s.on_stack[w] {
                    s.lowlink[v] = s.lowlink[v].min(s.index[w].unwrap());
                }
            }
            if s.lowlink[v] == s.index[v].unwrap() {
                let mut scc = Vec::new();
                loop {
                    let w = s.stack.pop().unwrap();
                    s.on_stack[w] = false;
                    scc.push(w);
                    if w == v {
                        break;
                    }
                }
                scc.sort_unstable();
                s.out.push(scc);
            }
        }
        let n = self.names.len();
        let mut s = State {
            g: self,
            index: vec![None; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next: 0,
            out: Vec::new(),
        };
        for v in 0..n {
            if s.index[v].is_none() {
                strongconnect(&mut s, v);
            }
        }
        s.out
    }

    /// Recursive cycles: for every SCC that contains a cycle, the function
    /// names along one cycle path, starting at the SCC's first-in-module
    /// function and following call edges back to it.
    pub fn recursive_cycles(&self) -> Vec<Vec<String>> {
        let mut cycles = Vec::new();
        for scc in self.sccs() {
            let cyclic = scc.len() > 1 || self.edges[scc[0]].contains(&scc[0]);
            if !cyclic {
                continue;
            }
            // Trace one in-SCC path from the first node back to itself.
            let start = scc[0];
            let mut path = vec![start];
            let mut cur = start;
            loop {
                let next = self.edges[cur]
                    .iter()
                    .copied()
                    .find(|n| scc.contains(n) && (*n == start || !path.contains(n)));
                match next {
                    Some(n) if n == start => break,
                    Some(n) => {
                        path.push(n);
                        cur = n;
                    }
                    None => break, // dense SCC; the prefix already shows the cycle
                }
            }
            cycles.push(path.into_iter().map(|i| self.names[i].clone()).collect());
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;

    #[test]
    fn self_recursion_is_a_cycle() {
        let src = r#"
define void @f() {
entry:
  call void @f()
  ret void
}
"#;
        let m = parse_module("m", src).unwrap();
        let cg = CallGraph::build(&m);
        assert_eq!(cg.recursive_cycles(), vec![vec!["f".to_string()]]);
    }

    #[test]
    fn mutual_recursion_traces_the_cycle() {
        let src = r#"
define void @a() {
entry:
  call void @b()
  ret void
}

define void @b() {
entry:
  call void @a()
  ret void
}
"#;
        let m = parse_module("m", src).unwrap();
        let cg = CallGraph::build(&m);
        assert_eq!(
            cg.recursive_cycles(),
            vec![vec!["a".to_string(), "b".to_string()]]
        );
    }

    #[test]
    fn acyclic_call_tree_is_clean() {
        let src = r#"
define void @leaf() {
entry:
  ret void
}

define void @top() {
entry:
  call void @leaf()
  call void @leaf()
  ret void
}
"#;
        let m = parse_module("m", src).unwrap();
        let cg = CallGraph::build(&m);
        assert!(cg.recursive_cycles().is_empty());
        assert_eq!(cg.sccs().len(), 2);
    }
}
