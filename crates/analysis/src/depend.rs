//! Polyhedral-lite loop-nest dependence analysis and transform legality.
//!
//! This is the engine behind legality-gated loop transforms: it recovers
//! per-nest affine access functions (multi-IV, non-unit coefficients),
//! computes direction/distance vectors per array pair with the classic
//! ZIV / strong-SIV / GCD dependence tests, and answers "is this
//! interchange / unroll / partition legal?" with a *witness* — the exact
//! store/load pair and dependence vector — attached to every refusal.
//!
//! # Precision lattice
//!
//! Subscripts are normalized into **iteration-number space**: a subscript
//! `a*IV + c` over a loop `IV = init + step*k` becomes the linear form
//! `a*step*k + (a*init + c)`. Each dependence-vector element is then one
//! of
//!
//! - `Exact(d)` — the accesses conflict exactly `d` iterations apart at
//!   that loop level (from a ZIV constant match or a strong-SIV solve);
//! - `Star` — any distance is possible at that level, either because the
//!   level is genuinely unconstrained (the subscript ignores it — still
//!   an *exact* dependence) or because only a GCD feasibility test
//!   applied (a *may* dependence, [`Dependence::exact`]` == false`).
//!
//! Anything non-affine (symbol-scaled subscripts, non-IV phis, unknown
//! bases) degrades to an assumed all-`Star` may dependence, never to
//! silence: the lattice only ever over-approximates, so a "legal" verdict
//! is trustworthy while "illegal" may be conservative.
//!
//! The core types ([`LinExpr`], [`LoopNest`], [`Dependence`],
//! [`TransformLegality`]) are IR-neutral so both the `llvm-lite` front
//! end in this module and the `mlir-lite` affine front end can feed them.

use std::collections::BTreeMap;

use llvm_lite::analysis::{counted_loop_tripcount, LoopInfo, NaturalLoop};
use llvm_lite::{Function, InstData, InstId, Opcode, Type, Value};

use crate::alias::{resolve_base, MemObject};

/// A linear expression over the iteration numbers of a loop nest:
/// `sum(coeffs[l] * k_l) + sum(syms[s] * s) + konst`, with `k_l` the
/// iteration number (not the raw IV value) of nest level `l`,
/// outermost-first, and symbols standing for nest-invariant unknowns.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct LinExpr {
    /// Per-level iteration-number coefficients, outermost-first.
    pub coeffs: Vec<i64>,
    /// Nest-invariant symbolic terms (keyed by a front-end-chosen name).
    pub syms: BTreeMap<String, i64>,
    /// Constant term.
    pub konst: i64,
}

impl LinExpr {
    /// The constant expression `c` over `levels` loops.
    pub fn konst(levels: usize, c: i64) -> LinExpr {
        LinExpr {
            coeffs: vec![0; levels],
            syms: BTreeMap::new(),
            konst: c,
        }
    }

    /// The expression `coeff * k_level` over `levels` loops.
    pub fn term(levels: usize, level: usize, coeff: i64) -> LinExpr {
        let mut e = LinExpr::konst(levels, 0);
        e.coeffs[level] = coeff;
        e
    }

    /// A single symbolic term `coeff * name`.
    pub fn sym(levels: usize, name: impl Into<String>, coeff: i64) -> LinExpr {
        let mut e = LinExpr::konst(levels, 0);
        e.syms.insert(name.into(), coeff);
        e
    }

    /// Pointwise sum. Both operands must span the same nest.
    pub fn add(&self, o: &LinExpr) -> Option<LinExpr> {
        if self.coeffs.len() != o.coeffs.len() {
            return None;
        }
        let mut r = self.clone();
        for (a, b) in r.coeffs.iter_mut().zip(&o.coeffs) {
            *a = a.checked_add(*b)?;
        }
        for (k, v) in &o.syms {
            let e = r.syms.entry(k.clone()).or_insert(0);
            *e = e.checked_add(*v)?;
            if *e == 0 {
                r.syms.remove(k);
            }
        }
        r.konst = r.konst.checked_add(o.konst)?;
        Some(r)
    }

    /// Scale every term by `k`.
    pub fn scale(&self, k: i64) -> Option<LinExpr> {
        let mut r = self.clone();
        for c in r.coeffs.iter_mut() {
            *c = c.checked_mul(k)?;
        }
        if k == 0 {
            r.syms.clear();
        } else {
            for v in r.syms.values_mut() {
                *v = v.checked_mul(k)?;
            }
        }
        r.konst = r.konst.checked_mul(k)?;
        Some(r)
    }

    /// `self - o`.
    pub fn sub(&self, o: &LinExpr) -> Option<LinExpr> {
        self.add(&o.scale(-1)?)
    }

    /// True when the expression has no loop or symbol terms.
    pub fn is_const(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0) && self.syms.is_empty()
    }
}

/// One loop level of a nest.
#[derive(Clone, Debug)]
pub struct NestLoop {
    /// Human-readable label for witnesses (IV name or header name).
    pub label: String,
    /// Trip count when provable; `None` = unknown (assumed unbounded).
    pub trip: Option<u64>,
}

/// One memory access inside a nest.
#[derive(Clone, Debug)]
pub struct NestAccess {
    /// Front-end-assigned opaque id (LLVM `InstId`, MLIR op uid) used to
    /// map dependences back to IR objects.
    pub id: usize,
    /// Human-readable label for witnesses (e.g. `%v`).
    pub label: String,
    /// True for stores.
    pub is_store: bool,
    /// Resolved base-object name; `None` = no provable base.
    pub base: Option<String>,
    /// One linear subscript per array dimension; `None` = unanalyzable
    /// address expression.
    pub subs: Option<Vec<LinExpr>>,
}

/// A loop nest with its memory accesses, ready for dependence testing.
#[derive(Clone, Debug, Default)]
pub struct LoopNest {
    /// Enclosing function name (for diagnostics).
    pub func: String,
    /// Nest levels, outermost-first.
    pub loops: Vec<NestLoop>,
    /// All analyzed accesses.
    pub accesses: Vec<NestAccess>,
}

/// One element of a dependence-distance vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistElem {
    /// Conflict exactly this many iterations apart at this level.
    Exact(i64),
    /// Any distance possible at this level.
    Star,
}

impl std::fmt::Display for DistElem {
    fn fmt(&self, w: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistElem::Exact(d) => write!(w, "{d}"),
            DistElem::Star => write!(w, "*"),
        }
    }
}

/// Classic dependence kinds, named from the source (earlier) access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepKind {
    /// Store then load (read-after-write).
    Flow,
    /// Load then store (write-after-read).
    Anti,
    /// Store then store (write-after-write).
    Output,
}

impl DepKind {
    fn name(self) -> &'static str {
        match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        }
    }
}

/// One dependence edge between two accesses of a nest.
#[derive(Clone, Debug)]
pub struct Dependence {
    /// Index into [`LoopNest::accesses`] of the source access.
    pub src: usize,
    /// Index into [`LoopNest::accesses`] of the sink access.
    pub dst: usize,
    /// Flow / anti / output.
    pub kind: DepKind,
    /// Distance vector, one element per nest level, outermost-first,
    /// normalized so the leading exact prefix is lexicographically
    /// non-negative.
    pub dist: Vec<DistElem>,
    /// True when every constraint came from an exact solve (the
    /// dependence definitely occurs); false for GCD-only or assumed may
    /// dependences.
    pub exact: bool,
}

/// A refusal witness: the dependence (when one exists) plus a rendered,
/// self-contained explanation.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The offending dependence, if the refusal is dependence-backed
    /// (`None` for "nest not analyzable" refusals).
    pub dep: Option<Dependence>,
    /// Human-readable one-line explanation.
    pub reason: String,
}

impl std::fmt::Display for Witness {
    fn fmt(&self, w: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(w, "{}", self.reason)
    }
}

/// How the carried distance of a dependence looks from one loop level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CarriedDistance {
    /// Not carried by this level (independent or carried further out).
    NotCarried,
    /// Carried with this exact iteration distance (>= 1).
    Exact(u64),
    /// Carried, distance >= 1 but not provable (may dependence).
    AtLeastOne,
}

/// Per-level constraint accumulator used while merging subscript dims.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Level {
    Free,
    Eq(i64),
    Star,
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl LoopNest {
    /// Index of the innermost level.
    pub fn innermost_level(&self) -> usize {
        self.loops.len().saturating_sub(1)
    }

    /// True when every access has a known base and affine subscripts, so
    /// legality verdicts are dependence-backed rather than assumed.
    pub fn fully_analyzable(&self) -> bool {
        self.accesses
            .iter()
            .all(|a| a.base.is_some() && a.subs.is_some())
    }

    /// All dependences between access pairs (at least one store), with
    /// assumed all-`Star` edges for unanalyzable pairs.
    pub fn dependences(&self) -> Vec<Dependence> {
        let levels = self.loops.len();
        if self.loops.iter().any(|l| l.trip == Some(0)) {
            return Vec::new(); // 0-trip nest: the body never executes
        }
        let mut out = Vec::new();
        for i in 0..self.accesses.len() {
            for j in i..self.accesses.len() {
                let (a, b) = (&self.accesses[i], &self.accesses[j]);
                if !a.is_store && !b.is_store {
                    continue;
                }
                if i == j && !a.is_store {
                    continue;
                }
                let assumed = |out: &mut Vec<Dependence>| {
                    out.push(Dependence {
                        src: i,
                        dst: j,
                        kind: kind_of(a.is_store, b.is_store),
                        dist: vec![DistElem::Star; levels],
                        exact: false,
                    });
                };
                match (&a.base, &b.base) {
                    (None, None) => {
                        assumed(&mut out);
                        continue;
                    }
                    // One side resolved, the other not: follow the
                    // established memdep convention that a resolved base
                    // is disjoint from unresolved pointers.
                    (None, Some(_)) | (Some(_), None) => continue,
                    (Some(ba), Some(bb)) if ba != bb => continue,
                    _ => {}
                }
                let (Some(sa), Some(sb)) = (&a.subs, &b.subs) else {
                    assumed(&mut out);
                    continue;
                };
                if sa.len() != sb.len() {
                    assumed(&mut out);
                    continue;
                }
                if let Some((dist, exact)) = self.solve_pair(sa, sb) {
                    if dist.iter().all(|e| *e == DistElem::Exact(0)) {
                        continue; // loop-independent: order is preserved
                    }
                    let (src, dst, dist) = normalize(i, j, dist);
                    let kind = kind_of(self.accesses[src].is_store, self.accesses[dst].is_store);
                    out.push(Dependence {
                        src,
                        dst,
                        kind,
                        dist,
                        exact,
                    });
                }
            }
        }
        out
    }

    /// Solve `addr_a(I) = addr_b(I + d)` for the distance vector `d`.
    /// Returns `None` when the accesses are proven independent.
    fn solve_pair(&self, sa: &[LinExpr], sb: &[LinExpr]) -> Option<(Vec<DistElem>, bool)> {
        let levels = self.loops.len();
        let mut lv = vec![Level::Free; levels];
        let mut exact = true;
        for (ea, eb) in sa.iter().zip(sb) {
            if ea.coeffs.len() != levels || eb.coeffs.len() != levels {
                return Some((vec![DistElem::Star; levels], false));
            }
            // Symbols must cancel exactly: nest-invariant unknowns take
            // the same value at both iterations, so equal coefficients
            // drop out; anything else is unresolvable.
            if ea.syms != eb.syms {
                return Some((vec![DistElem::Star; levels], false));
            }
            if ea.coeffs == eb.coeffs {
                // sum(c_l * d_l) = Ka - Kb
                let diff = ea.konst - eb.konst;
                let nz: Vec<usize> = (0..levels).filter(|&l| ea.coeffs[l] != 0).collect();
                match nz.len() {
                    0 => {
                        // ZIV: constant subscripts either always or never
                        // collide.
                        if diff != 0 {
                            return None;
                        }
                    }
                    1 => {
                        // Strong SIV: a single level pins the distance.
                        let l = nz[0];
                        let c = ea.coeffs[l];
                        if diff % c != 0 {
                            return None;
                        }
                        let d = diff / c;
                        if let Some(trip) = self.loops[l].trip {
                            if d.unsigned_abs() >= trip {
                                return None;
                            }
                        }
                        match lv[l] {
                            Level::Free => lv[l] = Level::Eq(d),
                            Level::Eq(prev) if prev == d => {}
                            Level::Eq(_) => return None,
                            Level::Star => {
                                lv[l] = Level::Eq(d);
                                exact = false;
                            }
                        }
                    }
                    _ => {
                        // MIV with matching coefficients: GCD feasibility,
                        // then trip-bounded exact enumeration when the
                        // solution space is small (this is what resolves
                        // flat `N*i + j` subscripts from memref lowering).
                        let g = nz.iter().fold(0, |g, &l| gcd(g, ea.coeffs[l]));
                        if g != 0 && diff % g != 0 {
                            return None;
                        }
                        match self.miv_solutions(&nz, &ea.coeffs, diff) {
                            Some(sols) if sols.is_empty() => return None,
                            Some(sols) => {
                                for (pos, &l) in nz.iter().enumerate() {
                                    let first = sols[0][pos];
                                    if sols.iter().all(|s| s[pos] == first) {
                                        match lv[l] {
                                            Level::Free => lv[l] = Level::Eq(first),
                                            Level::Eq(prev) if prev == first => {}
                                            Level::Eq(_) => return None,
                                            Level::Star => {
                                                lv[l] = Level::Eq(first);
                                                exact = false;
                                            }
                                        }
                                    } else {
                                        if lv[l] == Level::Free {
                                            lv[l] = Level::Star;
                                        }
                                        exact = false;
                                    }
                                }
                            }
                            None => {
                                for &l in &nz {
                                    if lv[l] == Level::Free {
                                        lv[l] = Level::Star;
                                    }
                                }
                                exact = false;
                            }
                        }
                    }
                }
            } else {
                // Mismatched coefficients: the absolute iteration leaks
                // into the equation; fall back to the two-sided GCD test
                // over sum(ca_l * i_l) - sum(cb_l * j_l) = Kb - Ka.
                let mut g = 0;
                for l in 0..levels {
                    g = gcd(g, ea.coeffs[l]);
                    g = gcd(g, eb.coeffs[l]);
                }
                if g != 0 && (eb.konst - ea.konst) % g != 0 {
                    return None;
                }
                for (l, slot) in lv.iter_mut().enumerate() {
                    if (ea.coeffs[l] != 0 || eb.coeffs[l] != 0) && *slot == Level::Free {
                        *slot = Level::Star;
                    }
                }
                exact = false;
            }
        }
        let dist = lv
            .into_iter()
            .map(|c| match c {
                Level::Eq(d) => DistElem::Exact(d),
                // A level no subscript constrains admits every distance.
                Level::Free | Level::Star => DistElem::Star,
            })
            .collect();
        Some((dist, exact))
    }

    /// Enumerate all `d` with `sum(coeffs[l] * d_l) = diff` and
    /// `|d_l| < trip_l` over the levels in `nz`. `None` when a trip is
    /// unknown or the space is too large to enumerate.
    fn miv_solutions(&self, nz: &[usize], coeffs: &[i64], diff: i64) -> Option<Vec<Vec<i64>>> {
        const CAP: u64 = 20_000;
        let mut space = 1u64;
        for &l in nz {
            let trip = self.loops[l].trip?;
            if trip == 0 {
                return Some(Vec::new());
            }
            space = space.checked_mul(2 * trip - 1)?;
            if space > CAP {
                return None;
            }
        }
        let mut sols = Vec::new();
        let mut cur = vec![0i64; nz.len()];
        fn rec(
            nz: &[usize],
            coeffs: &[i64],
            trips: &[u64],
            diff: i64,
            pos: usize,
            cur: &mut Vec<i64>,
            sols: &mut Vec<Vec<i64>>,
        ) {
            if pos == nz.len() {
                if diff == 0 {
                    sols.push(cur.clone());
                }
                return;
            }
            let bound = trips[pos] as i64 - 1;
            for d in -bound..=bound {
                cur[pos] = d;
                rec(
                    nz,
                    coeffs,
                    trips,
                    diff - coeffs[nz[pos]] * d,
                    pos + 1,
                    cur,
                    sols,
                );
            }
        }
        let trips: Vec<u64> = nz.iter().map(|&l| self.loops[l].trip.unwrap()).collect();
        rec(nz, coeffs, &trips, diff, 0, &mut cur, &mut sols);
        Some(sols)
    }

    /// Render a dependence as a one-line witness, e.g.
    /// `flow dependence store %t -> load %s on %acc, distance vector (0, 1)`.
    pub fn render_dep(&self, d: &Dependence) -> String {
        let (s, t) = (&self.accesses[d.src], &self.accesses[d.dst]);
        let vec: Vec<String> = d.dist.iter().map(|e| e.to_string()).collect();
        let base = s.base.as_deref().unwrap_or("<unknown base>");
        let may = if d.exact { "" } else { " (assumed)" };
        format!(
            "{} dependence {} {} -> {} {} on {}, distance vector ({}){}",
            d.kind.name(),
            acc_kind(s.is_store),
            s.label,
            acc_kind(t.is_store),
            t.label,
            base,
            vec.join(", "),
            may
        )
    }

    /// How `dep` looks from `level`: not carried there, carried with an
    /// exact distance, or carried with an unprovable distance >= 1.
    pub fn carried_distance_at(&self, dep: &Dependence, level: usize) -> CarriedDistance {
        let mut best: Option<u64> = None;
        let mut star_at_level = false;
        for w in instantiations(&dep.dist) {
            let w = match lex_sign(&w) {
                std::cmp::Ordering::Greater => w,
                std::cmp::Ordering::Less => w.iter().map(|x| -x).collect(),
                std::cmp::Ordering::Equal => continue,
            };
            let first_nz = w.iter().position(|&x| x != 0);
            if first_nz != Some(level) {
                continue;
            }
            let d = w[level].unsigned_abs();
            if dep.dist[level] == DistElem::Star {
                star_at_level = true;
            }
            best = Some(best.map_or(d, |b: u64| b.min(d)));
        }
        match best {
            None => CarriedDistance::NotCarried,
            // A Star level of an exact dependence admits *every*
            // distance, so distance 1 genuinely occurs; a may dependence
            // only guarantees ">= 1 if it occurs at all".
            Some(_) if star_at_level && dep.exact => CarriedDistance::Exact(1),
            Some(_) if star_at_level => CarriedDistance::AtLeastOne,
            Some(d) => CarriedDistance::Exact(d),
        }
    }
}

fn acc_kind(is_store: bool) -> &'static str {
    if is_store {
        "store"
    } else {
        "load"
    }
}

fn kind_of(src_store: bool, dst_store: bool) -> DepKind {
    match (src_store, dst_store) {
        (true, true) => DepKind::Output,
        (true, false) => DepKind::Flow,
        (false, true) => DepKind::Anti,
        (false, false) => unreachable!("load-load pairs are filtered out"),
    }
}

/// Lexicographic sign of a concrete vector.
fn lex_sign(w: &[i64]) -> std::cmp::Ordering {
    for &x in w {
        match x.cmp(&0) {
            std::cmp::Ordering::Equal => continue,
            o => return o,
        }
    }
    std::cmp::Ordering::Equal
}

/// Orient a solved vector so its leading exact prefix is lex-non-negative,
/// swapping source and sink when flipping.
fn normalize(i: usize, j: usize, dist: Vec<DistElem>) -> (usize, usize, Vec<DistElem>) {
    for e in &dist {
        match e {
            DistElem::Exact(d) if *d > 0 => return (i, j, dist),
            DistElem::Exact(d) if *d < 0 => {
                let flipped = dist
                    .iter()
                    .map(|e| match e {
                        DistElem::Exact(d) => DistElem::Exact(-d),
                        DistElem::Star => DistElem::Star,
                    })
                    .collect();
                return (j, i, flipped);
            }
            DistElem::Exact(_) => continue,
            // First non-zero is a Star: both directions are possible;
            // keep the computed orientation.
            DistElem::Star => return (i, j, dist),
        }
    }
    (i, j, dist)
}

/// Concrete sign instantiations of a vector: each `Star` ranges over
/// `{-1, 0, 1}` (magnitude is irrelevant for lexicographic reasoning).
fn instantiations(dist: &[DistElem]) -> Vec<Vec<i64>> {
    let mut out = vec![Vec::with_capacity(dist.len())];
    for e in dist {
        let choices: &[i64] = match e {
            DistElem::Exact(d) => &[*d][..],
            DistElem::Star => &[-1, 0, 1][..],
        };
        let mut next = Vec::with_capacity(out.len() * choices.len());
        for w in &out {
            for &c in choices {
                let mut w2 = w.clone();
                w2.push(c);
                next.push(w2);
            }
        }
        out = next;
    }
    out
}

/// Transform-legality oracle over one nest: every verdict is either
/// `Ok(())` or a [`Witness`] naming the offending dependence.
pub struct TransformLegality<'a> {
    nest: &'a LoopNest,
    deps: Vec<Dependence>,
}

impl<'a> TransformLegality<'a> {
    /// Analyze `nest` once; verdict methods are then cheap.
    pub fn new(nest: &'a LoopNest) -> TransformLegality<'a> {
        TransformLegality {
            deps: nest.dependences(),
            nest,
        }
    }

    /// The dependence set backing the verdicts.
    pub fn dependences(&self) -> &[Dependence] {
        &self.deps
    }

    fn opaque_witness(&self) -> Option<Witness> {
        let bad = self
            .nest
            .accesses
            .iter()
            .find(|a| a.base.is_none() || a.subs.is_none())?;
        Some(Witness {
            dep: None,
            reason: format!(
                "access {} has no affine subscript form; legality cannot be proven",
                bad.label
            ),
        })
    }

    /// Is interchanging levels `i` and `j` legal? Illegal when any
    /// dependence that is lexicographically positive before the swap
    /// becomes negative after it (i.e. the transform would read values
    /// before they are written).
    pub fn interchange_legal(&self, i: usize, j: usize) -> Result<(), Witness> {
        if let Some(w) = self.opaque_witness() {
            return Err(w);
        }
        for dep in &self.deps {
            for w in instantiations(&dep.dist) {
                let w = match lex_sign(&w) {
                    std::cmp::Ordering::Greater => w,
                    std::cmp::Ordering::Less => w.iter().map(|x| -x).collect(),
                    std::cmp::Ordering::Equal => continue,
                };
                let mut sw = w.clone();
                sw.swap(i, j);
                if lex_sign(&sw) == std::cmp::Ordering::Less {
                    return Err(Witness {
                        dep: Some(dep.clone()),
                        reason: format!(
                            "interchanging {} and {} would reverse the {}",
                            self.nest.loops[i].label,
                            self.nest.loops[j].label,
                            self.nest.render_dep(dep)
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Can iterations of level `depth` run in parallel (full unroll with
    /// no inter-copy ordering, or array partitioning across that level)?
    /// Illegal when any dependence is carried at that level.
    pub fn unroll_parallel(&self, depth: usize) -> Result<(), Witness> {
        if let Some(w) = self.opaque_witness() {
            return Err(w);
        }
        for dep in &self.deps {
            if self.nest.carried_distance_at(dep, depth) != CarriedDistance::NotCarried {
                return Err(Witness {
                    dep: Some(dep.clone()),
                    reason: format!(
                        "level {} carries the {}",
                        self.nest.loops[depth].label,
                        self.nest.render_dep(dep)
                    ),
                });
            }
        }
        Ok(())
    }

    /// Is a cyclic partition of `base` by `factor` banks along subscript
    /// dimension `dim` conflict-free within one iteration? Conservative:
    /// accesses must share that dimension's loop coefficients so the bank
    /// difference is a compile-time constant; two accesses landing in one
    /// bank at different addresses is a conflict.
    pub fn partition_conflict_free(
        &self,
        base: &str,
        dim: usize,
        factor: u64,
    ) -> Result<(), Witness> {
        if factor <= 1 {
            return Ok(());
        }
        let accs: Vec<&NestAccess> = self
            .nest
            .accesses
            .iter()
            .filter(|a| a.base.as_deref() == Some(base))
            .collect();
        for (x, a) in accs.iter().enumerate() {
            for b in accs.iter().skip(x + 1) {
                let conflict = |why: String| Witness {
                    dep: None,
                    reason: format!(
                        "accesses {} and {} of {} may hit one bank of a {}-way partition: {}",
                        a.label, b.label, base, factor, why
                    ),
                };
                let (Some(sa), Some(sb)) = (&a.subs, &b.subs) else {
                    return Err(conflict("unanalyzable subscripts".into()));
                };
                if sa.len() != sb.len() || dim >= sa.len() {
                    return Err(conflict("mismatched subscript arity".into()));
                }
                if sa == sb {
                    continue; // same address: one location, no bank clash
                }
                let (ea, eb) = (&sa[dim], &sb[dim]);
                if ea.coeffs != eb.coeffs || ea.syms != eb.syms {
                    return Err(conflict(format!(
                        "bank distance along dim {dim} is not a constant"
                    )));
                }
                let delta = ea.konst - eb.konst;
                if delta.rem_euclid(factor as i64) == 0 {
                    return Err(conflict(format!(
                        "constant offsets {} and {} are congruent mod {}",
                        ea.konst, eb.konst, factor
                    )));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// llvm-lite front end
// ---------------------------------------------------------------------------

/// IV facts for one chain loop: (phi, init, step).
type IvInfo = (InstId, i64, i64);

/// Recover a [`LinExpr`] in iteration-number space for `v`, given the
/// nest's IVs outermost-first. A raw IV reference `IV_l` contributes
/// `step_l * k_l + init_l`. Returns `None` for anything non-affine.
fn lin_expr_of(f: &Function, v: &Value, ivs: &[IvInfo], depth: u32) -> Option<LinExpr> {
    let levels = ivs.len();
    if depth > 16 {
        return None;
    }
    match v {
        Value::ConstInt { value, .. } => Some(LinExpr::konst(levels, i64::try_from(*value).ok()?)),
        Value::Arg(a) => Some(LinExpr::sym(levels, format!("arg{a}"), 1)),
        Value::Global(g) => Some(LinExpr::sym(levels, format!("@{g}"), 1)),
        Value::Inst(id) => {
            if let Some(l) = ivs.iter().position(|(iv, _, _)| iv == id) {
                let (_, init, step) = ivs[l];
                let mut e = LinExpr::term(levels, l, step);
                e.konst = init;
                return Some(e);
            }
            let inst = f.inst(*id);
            match inst.opcode {
                Opcode::SExt | Opcode::ZExt | Opcode::Trunc => {
                    lin_expr_of(f, &inst.operands[0], ivs, depth + 1)
                }
                Opcode::Add => {
                    let a = lin_expr_of(f, &inst.operands[0], ivs, depth + 1)?;
                    let b = lin_expr_of(f, &inst.operands[1], ivs, depth + 1)?;
                    a.add(&b)
                }
                Opcode::Sub => {
                    let a = lin_expr_of(f, &inst.operands[0], ivs, depth + 1)?;
                    let b = lin_expr_of(f, &inst.operands[1], ivs, depth + 1)?;
                    a.sub(&b)
                }
                Opcode::Mul => {
                    let a = lin_expr_of(f, &inst.operands[0], ivs, depth + 1)?;
                    let b = lin_expr_of(f, &inst.operands[1], ivs, depth + 1)?;
                    if a.is_const() {
                        b.scale(a.konst)
                    } else if b.is_const() {
                        a.scale(b.konst)
                    } else {
                        None
                    }
                }
                Opcode::Shl => {
                    let a = lin_expr_of(f, &inst.operands[0], ivs, depth + 1)?;
                    let sh = inst.operands[1].int_value()?;
                    if !(0..63).contains(&sh) {
                        return None;
                    }
                    a.scale(1i64 << sh)
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn inst_label(f: &Function, id: InstId) -> String {
    let n = &f.inst(id).name;
    if n.is_empty() {
        format!("%{id}")
    } else {
        format!("%{n}")
    }
}

/// Extract `(phi, init, step)` for a counted loop.
fn iv_info(f: &Function, l: &NaturalLoop) -> Option<IvInfo> {
    let (phi, init, step) = crate::range::iv_seed(f, l)?;
    Some((phi, i64::try_from(init).ok()?, i64::try_from(step).ok()?))
}

/// Build the [`LoopNest`] whose innermost level is `inner`: the chain of
/// enclosing counted loops plus every load/store in blocks belonging to
/// that chain (blocks of sibling loops are excluded). Returns `None` when
/// any chain loop has no recognizable IV.
pub fn nest_of_innermost(f: &Function, li: &LoopInfo, inner: &NaturalLoop) -> Option<LoopNest> {
    let mut chain: Vec<&NaturalLoop> = Vec::new();
    let mut cur = Some(inner.header);
    while let Some(h) = cur {
        let l = li.loop_with_header(h)?;
        chain.push(l);
        cur = l.parent;
    }
    chain.reverse();
    let ivs: Vec<IvInfo> = chain
        .iter()
        .map(|l| iv_info(f, l))
        .collect::<Option<Vec<_>>>()?;
    let loops: Vec<NestLoop> = chain
        .iter()
        .zip(&ivs)
        .map(|(l, (phi, _, _))| NestLoop {
            label: inst_label(f, *phi),
            trip: counted_loop_tripcount(f, l),
        })
        .collect();
    let in_chain = |h: llvm_lite::BlockId| chain.iter().any(|l| l.header == h);
    let mut accesses = Vec::new();
    for &b in &chain[0].body {
        // Skip blocks whose innermost enclosing loop is a sibling nest.
        let owner = li.innermost_containing(b)?;
        if !in_chain(owner.header) {
            continue;
        }
        for &id in &f.block(b).insts {
            let inst = f.inst(id);
            let (is_store, ptr) = match inst.opcode {
                Opcode::Load => (false, &inst.operands[0]),
                Opcode::Store => (true, &inst.operands[1]),
                _ => continue,
            };
            let base = match resolve_base(f, ptr) {
                MemObject::Unknown => None,
                o => Some(o.describe(f)),
            };
            // Stores have no result name; label them by the stored value.
            let label = if is_store {
                match &inst.operands[0] {
                    Value::Inst(vid) => inst_label(f, *vid),
                    _ => inst_label(f, id),
                }
            } else {
                inst_label(f, id)
            };
            let subs = match ptr {
                Value::Inst(gid) if f.inst(*gid).opcode == Opcode::Gep => {
                    let gep = f.inst(*gid);
                    let structured = matches!(
                        &gep.data,
                        InstData::Gep { base_ty, .. } if matches!(base_ty, Type::Array(..))
                    );
                    let idx_ops: &[Value] = if structured {
                        &gep.operands[2..]
                    } else {
                        &gep.operands[1..]
                    };
                    idx_ops
                        .iter()
                        .map(|v| lin_expr_of(f, v, &ivs, 0))
                        .collect::<Option<Vec<_>>>()
                }
                // A direct (non-GEP) pointer with a known base is the
                // whole object: a zero-dimensional constant address.
                _ if base.is_some() => Some(Vec::new()),
                _ => None,
            };
            accesses.push(NestAccess {
                id: id as usize,
                label,
                is_store,
                base,
                subs,
            });
        }
    }
    Some(LoopNest {
        func: f.name.clone(),
        loops,
        accesses,
    })
}

/// All nests of a function, one per innermost loop.
pub fn nests(f: &Function) -> Vec<LoopNest> {
    let cfg = llvm_lite::analysis::Cfg::build(f);
    let dom = llvm_lite::analysis::DomTree::build(f, &cfg);
    let li = LoopInfo::build(f, &cfg, &dom);
    li.innermost_loops()
        .iter()
        .filter_map(|l| nest_of_innermost(f, &li, l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;

    fn nests_of(src: &str) -> (llvm_lite::Module, Vec<LoopNest>) {
        let m = parse_module("m", src).unwrap();
        let ns = nests(&m.functions[0]);
        (m, ns)
    }

    /// for i in 0..8 step 1 { for j in 0..8 { A[i+1][j] = A[i][j+1] } }
    /// Flow dependence (1, -1): legal as written, illegal to interchange.
    const SKEWED: &str = r#"
define void @f([16 x [16 x float]]* %a) {
entry:
  br label %oh

oh:
  %i = phi i64 [ 0, %entry ], [ %inext, %ol ]
  %ci = icmp slt i64 %i, 8
  br i1 %ci, label %ih, label %exit

ih:
  %j = phi i64 [ 0, %oh ], [ %jnext, %ib ]
  %cj = icmp slt i64 %j, 8
  br i1 %cj, label %ib, label %ol

ib:
  %jp1 = add i64 %j, 1
  %ip1 = add i64 %i, 1
  %pl = getelementptr inbounds [16 x [16 x float]], [16 x [16 x float]]* %a, i64 0, i64 %i, i64 %jp1
  %v = load float, float* %pl, align 4
  %ps = getelementptr inbounds [16 x [16 x float]], [16 x [16 x float]]* %a, i64 0, i64 %ip1, i64 %j
  store float %v, float* %ps, align 4
  %jnext = add i64 %j, 1
  br label %ih

ol:
  %inext = add i64 %i, 1
  br label %oh

exit:
  ret void
}
"#;

    #[test]
    fn skewed_nest_has_flow_dep_1_m1() {
        let (_m, ns) = nests_of(SKEWED);
        assert_eq!(ns.len(), 1);
        let deps = ns[0].dependences();
        assert_eq!(deps.len(), 1);
        let d = &deps[0];
        assert_eq!(d.kind, DepKind::Flow);
        assert!(d.exact);
        assert_eq!(d.dist, vec![DistElem::Exact(1), DistElem::Exact(-1)]);
        assert!(ns[0].accesses[d.src].is_store);
    }

    #[test]
    fn skewed_nest_interchange_is_illegal_with_witness() {
        let (_m, ns) = nests_of(SKEWED);
        let leg = TransformLegality::new(&ns[0]);
        let w = leg.interchange_legal(0, 1).unwrap_err();
        assert!(w.dep.is_some());
        assert!(
            w.reason.contains("distance vector (1, -1)"),
            "witness: {}",
            w.reason
        );
        // The dependence is carried by the outer loop, so the *inner*
        // level alone is parallel-safe while the outer is not.
        assert!(leg.unroll_parallel(1).is_ok());
        assert!(leg.unroll_parallel(0).is_err());
    }

    /// Stride-2 accesses: A[2i] = A[2i+1] never overlap.
    const STRIDE2: &str = r#"
define void @f([64 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 31
  br i1 %c, label %body, label %exit

body:
  %even = mul i64 %i, 2
  %odd = add i64 %even, 1
  %pl = getelementptr inbounds [64 x float], [64 x float]* %a, i64 0, i64 %odd
  %v = load float, float* %pl, align 4
  %ps = getelementptr inbounds [64 x float], [64 x float]* %a, i64 0, i64 %even
  store float %v, float* %ps, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

    #[test]
    fn stride_2_even_odd_are_independent() {
        let (_m, ns) = nests_of(STRIDE2);
        // Store A[2i] vs load A[2i+1]: 2d = 1 has no integer solution;
        // the only dependence left is the store's self output dep at
        // distance 0, which is dropped.
        assert!(ns[0].dependences().is_empty());
        let leg = TransformLegality::new(&ns[0]);
        assert!(leg.unroll_parallel(0).is_ok());
    }

    /// A[i] accumulation through a zero-dim pointer: every iteration
    /// collides (all-Star exact dependence).
    const ACCUM: &str = r#"
define void @f([32 x float]* %a, [1 x float]* %acc) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %p = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %i
  %v = load float, float* %p, align 4
  %q = getelementptr inbounds [1 x float], [1 x float]* %acc, i64 0, i64 0
  %s = load float, float* %q, align 4
  %t = fadd float %s, %v
  store float %t, float* %q, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;

    #[test]
    fn accumulator_is_carried_at_distance_one() {
        let (_m, ns) = nests_of(ACCUM);
        let nest = &ns[0];
        let deps = nest.dependences();
        let flow = deps.iter().find(|d| d.kind == DepKind::Anti).unwrap();
        assert!(flow.exact);
        assert_eq!(flow.dist, vec![DistElem::Star]);
        assert_eq!(nest.carried_distance_at(flow, 0), CarriedDistance::Exact(1));
        let leg = TransformLegality::new(nest);
        let w = leg.unroll_parallel(0).unwrap_err();
        assert!(w.reason.contains("%acc"), "witness: {}", w.reason);
    }

    #[test]
    fn zero_trip_nest_has_no_dependences() {
        let src = ACCUM.replace("%i, 32", "%i, 0");
        let (_m, ns) = nests_of(&src);
        assert!(ns[0].dependences().is_empty());
    }

    #[test]
    fn trip_one_loop_cannot_carry_a_shift() {
        // Store A[i], load A[i-1] is distance 1 — but a 1-trip loop
        // cannot realize it (size-1 iteration-space edge case).
        let src = r#"
define void @f([32 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 1, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 2
  br i1 %c, label %body, label %exit

body:
  %im1 = add i64 %i, -1
  %pl = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %im1
  %v = load float, float* %pl, align 4
  %ps = getelementptr inbounds [32 x float], [32 x float]* %a, i64 0, i64 %i
  store float %v, float* %ps, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let (_m, ns) = nests_of(src);
        assert!(ns[0].dependences().is_empty());
    }

    #[test]
    fn stride_2_shift_has_no_spurious_unit_distance() {
        // Store A[i], load A[i-1] with step 2: the addresses interleave
        // and never collide across iterations.
        let src = r#"
define void @f([64 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 2, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 62
  br i1 %c, label %body, label %exit

body:
  %im1 = add i64 %i, -1
  %pl = getelementptr inbounds [64 x float], [64 x float]* %a, i64 0, i64 %im1
  %v = load float, float* %pl, align 4
  %ps = getelementptr inbounds [64 x float], [64 x float]* %a, i64 0, i64 %i
  store float %v, float* %ps, align 4
  %next = add i64 %i, 2
  br label %header

exit:
  ret void
}
"#;
        let (_m, ns) = nests_of(src);
        assert!(ns[0].dependences().is_empty());
    }

    #[test]
    fn mvt_style_nest_interchange_is_legal() {
        // x1[i] += A[i][j] * y1[j]: the x1 dependence is (0, *), which
        // stays lex-non-negative under interchange.
        let src = r#"
define void @f([16 x [16 x float]]* %A, [16 x float]* %x1, [16 x float]* %y1) {
entry:
  br label %oh

oh:
  %i = phi i64 [ 0, %entry ], [ %inext, %ol ]
  %ci = icmp slt i64 %i, 16
  br i1 %ci, label %ih, label %exit

ih:
  %j = phi i64 [ 0, %oh ], [ %jnext, %ib ]
  %cj = icmp slt i64 %j, 16
  br i1 %cj, label %ib, label %ol

ib:
  %pa = getelementptr inbounds [16 x [16 x float]], [16 x [16 x float]]* %A, i64 0, i64 %i, i64 %j
  %va = load float, float* %pa, align 4
  %py = getelementptr inbounds [16 x float], [16 x float]* %y1, i64 0, i64 %j
  %vy = load float, float* %py, align 4
  %px = getelementptr inbounds [16 x float], [16 x float]* %x1, i64 0, i64 %i
  %vx = load float, float* %px, align 4
  %m = fmul float %va, %vy
  %s = fadd float %vx, %m
  store float %s, float* %px, align 4
  %jnext = add i64 %j, 1
  br label %ih

ol:
  %inext = add i64 %i, 1
  br label %oh

exit:
  ret void
}
"#;
        let (_m, ns) = nests_of(src);
        let leg = TransformLegality::new(&ns[0]);
        assert!(leg.interchange_legal(0, 1).is_ok());
        // The x1 recurrence is carried by the inner level once outer
        // iterations are fixed: inner unroll is NOT parallel-safe.
        assert!(leg.unroll_parallel(1).is_err());
    }

    #[test]
    fn partition_checks_bank_congruence() {
        let (_m, ns) = nests_of(SKEWED);
        let leg = TransformLegality::new(&ns[0]);
        // Column subscripts j+1 and j differ by 1: distinct banks for
        // factor 2, congruent (conflicting) for factor 1 is trivially ok.
        assert!(leg.partition_conflict_free("%a", 1, 2).is_ok());
        // Row subscripts i and i+1 also split across 2 banks.
        assert!(leg.partition_conflict_free("%a", 0, 2).is_ok());
        // But a same-parity pair conflicts: A[i][j+2] vs A[i][j] mod 2.
        let src = SKEWED.replace("%j, 1", "%j, 2");
        let (_m2, ns2) = nests_of(&src);
        let leg2 = TransformLegality::new(&ns2[0]);
        assert!(leg2.partition_conflict_free("%a", 1, 2).is_err());
    }

    #[test]
    fn symbolic_offsets_cancel_when_equal() {
        // A[i+n] load vs A[i+n] store: the symbol cancels, distance 0,
        // no carried dependence.
        let src = r#"
define void @f([64 x float]* %a, i64 %n) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %ipn = add i64 %i, %n
  %p = getelementptr inbounds [64 x float], [64 x float]* %a, i64 0, i64 %ipn
  %v = load float, float* %p, align 4
  store float %v, float* %p, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let (_m, ns) = nests_of(src);
        assert!(ns[0].dependences().is_empty());
        assert!(TransformLegality::new(&ns[0]).unroll_parallel(0).is_ok());
    }

    #[test]
    fn gcd_test_proves_even_odd_strides_independent() {
        // Store A[2i], load A[2i + 1] via shl: gcd 2 does not divide 1.
        let src = r#"
define void @f([128 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %even = shl i64 %i, 1
  %odd = add i64 %even, 1
  %pl = getelementptr inbounds [128 x float], [128 x float]* %a, i64 0, i64 %odd
  %v = load float, float* %pl, align 4
  %ps = getelementptr inbounds [128 x float], [128 x float]* %a, i64 0, i64 %even
  store float %v, float* %ps, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let (_m, ns) = nests_of(src);
        assert!(ns[0].dependences().is_empty());
    }

    #[test]
    fn opaque_pointer_blocks_legality_with_named_witness() {
        let src = r#"
define void @f(float* "hls.interface"="m_axi" %a, i64 %stride) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 32
  br i1 %c, label %body, label %exit

body:
  %off = mul i64 %i, %stride
  %p = getelementptr inbounds float, float* %a, i64 %off
  %v = load float, float* %p, align 4
  store float %v, float* %p, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let (_m, ns) = nests_of(src);
        let leg = TransformLegality::new(&ns[0]);
        let w = leg.unroll_parallel(0).unwrap_err();
        assert!(w.dep.is_none());
        assert!(w.reason.contains("no affine subscript form"));
    }

    #[test]
    fn gemm_nest_dependence_vector_and_interchange() {
        let src = r#"
define void @f([8 x [8 x float]]* %C, [8 x [8 x float]]* %A, [8 x [8 x float]]* %B) {
entry:
  br label %ih

ih:
  %i = phi i64 [ 0, %entry ], [ %inext, %il ]
  %ci = icmp slt i64 %i, 8
  br i1 %ci, label %jh, label %exit

jh:
  %j = phi i64 [ 0, %ih ], [ %jnext, %jl ]
  %cj = icmp slt i64 %j, 8
  br i1 %cj, label %kh, label %il

kh:
  %k = phi i64 [ 0, %jh ], [ %knext, %kb ]
  %ck = icmp slt i64 %k, 8
  br i1 %ck, label %kb, label %jl

kb:
  %pa = getelementptr inbounds [8 x [8 x float]], [8 x [8 x float]]* %A, i64 0, i64 %i, i64 %k
  %va = load float, float* %pa, align 4
  %pb = getelementptr inbounds [8 x [8 x float]], [8 x [8 x float]]* %B, i64 0, i64 %k, i64 %j
  %vb = load float, float* %pb, align 4
  %pc = getelementptr inbounds [8 x [8 x float]], [8 x [8 x float]]* %C, i64 0, i64 %i, i64 %j
  %vc = load float, float* %pc, align 4
  %m = fmul float %va, %vb
  %s = fadd float %vc, %m
  store float %s, float* %pc, align 4
  %knext = add i64 %k, 1
  br label %kh

jl:
  %jnext = add i64 %j, 1
  br label %jh

il:
  %inext = add i64 %i, 1
  br label %ih

exit:
  ret void
}
"#;
        let (_m, ns) = nests_of(src);
        assert_eq!(ns.len(), 1);
        let nest = &ns[0];
        let deps = nest.dependences();
        // C[i][j] anti + output (+ flow folded by orientation): all
        // vectors are (0, 0, *).
        assert!(!deps.is_empty());
        for d in &deps {
            assert_eq!(
                d.dist,
                vec![DistElem::Exact(0), DistElem::Exact(0), DistElem::Star],
                "unexpected vector in {}",
                nest.render_dep(d)
            );
        }
        let leg = TransformLegality::new(nest);
        // Every interchange of the i-j-k gemm nest is legal.
        assert!(leg.interchange_legal(0, 1).is_ok());
        assert!(leg.interchange_legal(1, 2).is_ok());
        assert!(leg.interchange_legal(0, 2).is_ok());
        // The k level carries the accumulation; i and j are parallel.
        assert!(leg.unroll_parallel(0).is_ok());
        assert!(leg.unroll_parallel(1).is_ok());
        assert!(leg.unroll_parallel(2).is_err());
    }

    #[test]
    fn witness_rendering_is_stable() {
        let (_m, ns) = nests_of(SKEWED);
        let deps = ns[0].dependences();
        assert_eq!(
            ns[0].render_dep(&deps[0]),
            "flow dependence store %v -> load %v on %a, distance vector (1, -1)"
        );
    }
}
