//! Liveness of SSA values (backward may-analysis on the dataflow engine).
//!
//! PHI semantics are edge-precise: a PHI's operands are *not* uses inside
//! its own block; each operand is live out of the predecessor it flows
//! from. The engine's `edge` hook injects them when a fact crosses the
//! corresponding edge.

use std::collections::BTreeSet;

use llvm_lite::analysis::Cfg;
use llvm_lite::{BlockId, Function, InstData, InstId, Opcode, Value};

use crate::dataflow::{solve, BlockFacts, Direction, Lattice, TransferFunction};

/// An SSA value that can be live: an instruction result or an argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VarId {
    /// Instruction result.
    Inst(InstId),
    /// Function argument index.
    Arg(u32),
}

fn var_of(v: &Value) -> Option<VarId> {
    match v {
        Value::Inst(id) => Some(VarId::Inst(*id)),
        Value::Arg(i) => Some(VarId::Arg(*i)),
        _ => None,
    }
}

/// The liveness analysis (unit struct; all state lives in the facts).
pub struct Liveness;

impl Lattice for Liveness {
    type Fact = BTreeSet<VarId>;

    fn bottom(&self, _f: &Function) -> Self::Fact {
        BTreeSet::new()
    }

    fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool {
        let before = into.len();
        into.extend(other.iter().copied());
        into.len() != before
    }
}

impl TransferFunction for Liveness {
    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn transfer(&self, f: &Function, b: BlockId, fact: &Self::Fact) -> Self::Fact {
        let mut live = fact.clone();
        for &id in f.block(b).insts.iter().rev() {
            let inst = f.inst(id);
            live.remove(&VarId::Inst(id));
            if inst.opcode == Opcode::Phi {
                continue; // operands belong to predecessor edges
            }
            for op in &inst.operands {
                if let Some(v) = var_of(op) {
                    live.insert(v);
                }
            }
        }
        live
    }

    fn edge(&self, f: &Function, from: BlockId, to: BlockId, fact: &Self::Fact) -> Self::Fact {
        let mut live = fact.clone();
        for &id in &f.block(to).insts {
            let inst = f.inst(id);
            let InstData::Phi { incoming } = &inst.data else {
                break; // PHIs lead the block
            };
            for (op, inb) in inst.operands.iter().zip(incoming) {
                if *inb == from {
                    if let Some(v) = var_of(op) {
                        live.insert(v);
                    }
                }
            }
        }
        live
    }
}

/// Live-in/live-out sets per block.
pub fn live_sets(f: &Function, cfg: &Cfg) -> BlockFacts<BTreeSet<VarId>> {
    solve(f, cfg, &Liveness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;

    #[test]
    fn value_is_live_across_the_blocks_that_need_it() {
        let src = r#"
define i32 @f(i32 %x, i1 %c) {
entry:
  %a = add i32 %x, 1
  br i1 %c, label %use, label %skip

use:
  %b = add i32 %a, 2
  br label %done

skip:
  br label %done

done:
  %r = phi i32 [ %b, %use ], [ 0, %skip ]
  ret i32 %r
}
"#;
        let m = parse_module("m", src).unwrap();
        let f = &m.functions[0];
        let cfg = Cfg::build(f);
        let facts = live_sets(f, &cfg);

        let entry = f.entry();
        let a = f.block(entry).insts[0];
        let use_b = f.block_by_name("use").unwrap();
        let skip_b = f.block_by_name("skip").unwrap();
        let b = f.block(use_b).insts[0];

        // %a is live out of entry (used in %use) …
        assert!(facts.exit[entry as usize].contains(&VarId::Inst(a)));
        // … but not live through the arm that ignores it.
        assert!(!facts.entry[skip_b as usize].contains(&VarId::Inst(a)));
        // The PHI operand %b is live out of %use only (edge-precise).
        assert!(facts.exit[use_b as usize].contains(&VarId::Inst(b)));
        assert!(!facts.exit[skip_b as usize].contains(&VarId::Inst(b)));
        // %x is consumed in entry, so nothing keeps it live afterwards.
        assert!(!facts.exit[entry as usize].contains(&VarId::Arg(0)));
    }

    #[test]
    fn loop_carried_values_stay_live_around_the_loop() {
        let src = r#"
define i32 @f(i32 %n) {
entry:
  br label %header

header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit

body:
  %next = add i32 %i, 1
  br label %header

exit:
  ret i32 %i
}
"#;
        let m = parse_module("m", src).unwrap();
        let f = &m.functions[0];
        let cfg = Cfg::build(f);
        let facts = live_sets(f, &cfg);
        let body = f.block_by_name("body").unwrap();
        let header = f.block_by_name("header").unwrap();
        let next = f.block(body).insts[0];
        // %next is live out of the body (feeds the header PHI on the back
        // edge) and the bound %n stays live around the whole loop.
        assert!(facts.exit[body as usize].contains(&VarId::Inst(next)));
        assert!(facts.entry[header as usize].contains(&VarId::Arg(0)));
    }
}
