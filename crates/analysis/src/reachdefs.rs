//! Reaching definitions over memory (forward may-analysis).
//!
//! Definitions are store instructions, plus one synthetic `Uninit` def per
//! alloca injected at the function boundary. Granularity is the base
//! object: any store to an alloca counts as initializing it (we do not
//! track elements), and a store strongly kills only earlier stores through
//! the *identical* pointer SSA value. This is deliberately coarse but
//! sound for the two lints built on top:
//!
//! * **read-before-write** — a load whose base alloca still carries its
//!   `Uninit` def may observe garbage;
//! * **dead store** — a store to a non-escaping alloca that reaches no
//!   aliasing load is never observed.

use std::collections::{BTreeSet, HashMap};

use llvm_lite::analysis::{counted_loop_tripcount, Cfg, DomTree, LoopInfo};
use llvm_lite::{BlockId, Function, InstId, Opcode, Value};

use crate::alias::{resolve_base, MemObject};
use crate::dataflow::{solve, BlockFacts, Direction, Lattice, TransferFunction};

/// One memory definition.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Def {
    /// A store instruction.
    Store(InstId),
    /// The named alloca has not been written on some path.
    Uninit(InstId),
}

/// The reaching-definitions analysis, with per-store bases precomputed.
pub struct ReachingDefs {
    /// Base object of each store's address.
    pub store_base: HashMap<InstId, MemObject>,
    /// Address operand of each store (for strong updates).
    store_ptr: HashMap<InstId, Value>,
    /// All allocas of the function.
    pub allocas: Vec<InstId>,
    /// Per-edge `Uninit` kills: on the exit edges of a counted loop with
    /// trip count >= 1, an alloca stored on *every* iteration (its store
    /// block dominates every latch) is definitely initialized — the
    /// structural zero-trip bypass through the header is infeasible. This
    /// is what keeps `for (i) buf[i] = 0; … read buf` patterns (atax's
    /// intermediate vector) from tripping the read-before-write lint.
    exit_kill: HashMap<(BlockId, BlockId), BTreeSet<InstId>>,
}

impl ReachingDefs {
    /// Scan `f` for stores and allocas.
    pub fn new(f: &Function) -> ReachingDefs {
        let mut store_base = HashMap::new();
        let mut store_ptr = HashMap::new();
        let mut allocas = Vec::new();
        let mut store_block = HashMap::new();
        for (b, id) in f.inst_ids() {
            let inst = f.inst(id);
            match inst.opcode {
                Opcode::Store => {
                    store_base.insert(id, resolve_base(f, &inst.operands[1]));
                    store_ptr.insert(id, inst.operands[1].clone());
                    store_block.insert(id, b);
                }
                Opcode::Alloca => allocas.push(id),
                _ => {}
            }
        }

        let cfg = Cfg::build(f);
        let dom = DomTree::build(f, &cfg);
        let loops = LoopInfo::build(f, &cfg, &dom);
        // Allocas definitely initialized by one complete iteration of each
        // loop: a store whose block dominates every latch runs every
        // iteration; so does everything an inner counted (trip >= 1) loop
        // initializes, if that inner header dominates the latches. Process
        // innermost-first so nests compose (two_mm's demoted intermediate
        // is filled by a k-loop inside the i/j nest).
        let mut order: Vec<&llvm_lite::analysis::NaturalLoop> = loops.loops.iter().collect();
        order.sort_by_key(|l| l.body.len());
        let mut per_loop: HashMap<BlockId, BTreeSet<InstId>> = HashMap::new();
        for l in &order {
            let mut certain = BTreeSet::new();
            for (s, base) in &store_base {
                if let MemObject::Alloca(a) = base {
                    let sb = store_block[s];
                    if l.body.contains(&sb) && l.latches.iter().all(|&lt| dom.dominates(sb, lt)) {
                        certain.insert(*a);
                    }
                }
            }
            for inner in &order {
                if inner.header == l.header || !l.body.contains(&inner.header) {
                    continue;
                }
                if counted_loop_tripcount(f, inner).is_none_or(|t| t < 1) {
                    continue;
                }
                if l.latches.iter().all(|&lt| dom.dominates(inner.header, lt)) {
                    if let Some(init) = per_loop.get(&inner.header) {
                        certain.extend(init.iter().copied());
                    }
                }
            }
            per_loop.insert(l.header, certain);
        }
        let mut exit_kill: HashMap<(BlockId, BlockId), BTreeSet<InstId>> = HashMap::new();
        for l in &order {
            if counted_loop_tripcount(f, l).is_none_or(|t| t < 1) {
                continue;
            }
            let certain = &per_loop[&l.header];
            if certain.is_empty() {
                continue;
            }
            for &b in &l.body {
                for &s in &cfg.succs[b as usize] {
                    if !l.body.contains(&s) {
                        exit_kill
                            .entry((b, s))
                            .or_default()
                            .extend(certain.iter().copied());
                    }
                }
            }
        }

        ReachingDefs {
            store_base,
            store_ptr,
            allocas,
            exit_kill,
        }
    }

    /// Apply one instruction's gen/kill to a fact in place.
    pub fn apply(&self, id: InstId, inst_opcode: Opcode, fact: &mut BTreeSet<Def>) {
        if inst_opcode != Opcode::Store {
            return;
        }
        let base = &self.store_base[&id];
        // Any store to an alloca clears its uninitialized def.
        if let MemObject::Alloca(a) = base {
            fact.remove(&Def::Uninit(*a));
        }
        // Strong update: identical address overwrites the previous store.
        let ptr = &self.store_ptr[&id];
        fact.retain(|d| match d {
            Def::Store(s) => self.store_ptr.get(s) != Some(ptr),
            Def::Uninit(_) => true,
        });
        fact.insert(Def::Store(id));
    }

    /// Walk a block from its entry fact, invoking `visit` with the fact in
    /// force *before* each instruction.
    pub fn walk_block(
        &self,
        f: &Function,
        b: BlockId,
        entry_fact: &BTreeSet<Def>,
        mut visit: impl FnMut(InstId, &BTreeSet<Def>),
    ) {
        let mut cur = entry_fact.clone();
        for &id in &f.block(b).insts {
            visit(id, &cur);
            self.apply(id, f.inst(id).opcode, &mut cur);
        }
    }
}

impl Lattice for ReachingDefs {
    type Fact = BTreeSet<Def>;

    fn bottom(&self, _f: &Function) -> Self::Fact {
        BTreeSet::new()
    }

    fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool {
        let before = into.len();
        into.extend(other.iter().cloned());
        into.len() != before
    }
}

impl TransferFunction for ReachingDefs {
    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, _f: &Function) -> Self::Fact {
        self.allocas.iter().map(|&a| Def::Uninit(a)).collect()
    }

    fn transfer(&self, f: &Function, b: BlockId, fact: &Self::Fact) -> Self::Fact {
        let mut cur = fact.clone();
        for &id in &f.block(b).insts {
            self.apply(id, f.inst(id).opcode, &mut cur);
        }
        cur
    }

    fn edge(&self, _f: &Function, from: BlockId, to: BlockId, fact: &Self::Fact) -> Self::Fact {
        let mut cur = fact.clone();
        if let Some(kills) = self.exit_kill.get(&(from, to)) {
            cur.retain(|d| match d {
                Def::Uninit(a) => !kills.contains(a),
                Def::Store(_) => true,
            });
        }
        cur
    }
}

/// Solve reaching definitions for `f`.
pub fn reaching_defs(f: &Function, cfg: &Cfg) -> (ReachingDefs, BlockFacts<BTreeSet<Def>>) {
    let rd = ReachingDefs::new(f);
    let facts = solve(f, cfg, &rd);
    (rd, facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;

    #[test]
    fn store_clears_uninit_and_reaches_the_load() {
        let src = r#"
define float @f() {
entry:
  %buf = alloca [4 x float], align 4
  %p = getelementptr inbounds [4 x float], [4 x float]* %buf, i64 0, i64 0
  store float 0x0000000000000000, float* %p, align 4
  %v = load float, float* %p, align 4
  ret float %v
}
"#;
        let m = parse_module("m", src).unwrap();
        let f = &m.functions[0];
        let cfg = Cfg::build(f);
        let (rd, facts) = reaching_defs(f, &cfg);
        let entry = f.entry();
        let buf = f.block(entry).insts[0];
        let store = f.block(entry).insts[2];
        let load = f.block(entry).insts[3];
        let mut seen_at_load = None;
        rd.walk_block(f, entry, &facts.entry[entry as usize], |id, fact| {
            if id == load {
                seen_at_load = Some(fact.clone());
            }
        });
        let at_load = seen_at_load.unwrap();
        assert!(at_load.contains(&Def::Store(store)));
        assert!(!at_load.contains(&Def::Uninit(buf)));
    }

    #[test]
    fn uninit_survives_the_unwritten_path() {
        let src = r#"
define float @f(i1 %c) {
entry:
  %buf = alloca [4 x float], align 4
  %p = getelementptr inbounds [4 x float], [4 x float]* %buf, i64 0, i64 0
  br i1 %c, label %init, label %join

init:
  store float 0x0000000000000000, float* %p, align 4
  br label %join

join:
  %v = load float, float* %p, align 4
  ret float %v
}
"#;
        let m = parse_module("m", src).unwrap();
        let f = &m.functions[0];
        let cfg = Cfg::build(f);
        let (_, facts) = reaching_defs(f, &cfg);
        let join = f.block_by_name("join").unwrap();
        let buf = f.block(f.entry()).insts[0];
        // The fall-through path never wrote the alloca.
        assert!(facts.entry[join as usize].contains(&Def::Uninit(buf)));
    }

    #[test]
    fn counted_init_loop_definitely_initializes() {
        // for (i = 0; i < 4; i++) buf[i] = 0;  then read buf[0]: the
        // zero-trip bypass through the header is structurally present but
        // infeasible (trip = 4), so the read is NOT uninitialized.
        let src = r#"
define float @f() {
entry:
  %buf = alloca [4 x float], align 4
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 4
  br i1 %c, label %body, label %after

body:
  %p = getelementptr inbounds [4 x float], [4 x float]* %buf, i64 0, i64 %i
  store float 0x0000000000000000, float* %p, align 4
  %next = add i64 %i, 1
  br label %header

after:
  %q = getelementptr inbounds [4 x float], [4 x float]* %buf, i64 0, i64 0
  %v = load float, float* %q, align 4
  ret float %v
}
"#;
        let m = parse_module("m", src).unwrap();
        let f = &m.functions[0];
        let cfg = Cfg::build(f);
        let (_, facts) = reaching_defs(f, &cfg);
        let after = f.block_by_name("after").unwrap();
        let buf = f.block(f.entry()).insts[0];
        assert!(!facts.entry[after as usize].contains(&Def::Uninit(buf)));
    }

    #[test]
    fn conditional_store_in_a_loop_does_not_initialize() {
        // The store only happens on some iterations (guarded); the bypass
        // kill must not fire because the store block does not dominate the
        // latch.
        let src = r#"
define float @f(i1 %g) {
entry:
  %buf = alloca [4 x float], align 4
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %latch ]
  %c = icmp slt i64 %i, 4
  br i1 %c, label %body, label %after

body:
  br i1 %g, label %write, label %latch

write:
  %p = getelementptr inbounds [4 x float], [4 x float]* %buf, i64 0, i64 %i
  store float 0x0000000000000000, float* %p, align 4
  br label %latch

latch:
  %next = add i64 %i, 1
  br label %header

after:
  %q = getelementptr inbounds [4 x float], [4 x float]* %buf, i64 0, i64 0
  %v = load float, float* %q, align 4
  ret float %v
}
"#;
        let m = parse_module("m", src).unwrap();
        let f = &m.functions[0];
        let cfg = Cfg::build(f);
        let (_, facts) = reaching_defs(f, &cfg);
        let after = f.block_by_name("after").unwrap();
        let buf = f.block(f.entry()).insts[0];
        assert!(facts.entry[after as usize].contains(&Def::Uninit(buf)));
    }

    #[test]
    fn identical_pointer_store_is_a_strong_update() {
        let src = r#"
define void @f() {
entry:
  %buf = alloca [4 x float], align 4
  %p = getelementptr inbounds [4 x float], [4 x float]* %buf, i64 0, i64 0
  store float 0x0000000000000000, float* %p, align 4
  store float 0x3ff0000000000000, float* %p, align 4
  ret void
}
"#;
        let m = parse_module("m", src).unwrap();
        let f = &m.functions[0];
        let cfg = Cfg::build(f);
        let (_, facts) = reaching_defs(f, &cfg);
        let entry = f.entry();
        let first = f.block(entry).insts[2];
        let second = f.block(entry).insts[3];
        let out = &facts.exit[entry as usize];
        assert!(!out.contains(&Def::Store(first)));
        assert!(out.contains(&Def::Store(second)));
    }
}
