//! The generic worklist dataflow engine.
//!
//! An analysis is a [`Lattice`] (a fact type with a bottom element and a
//! join) plus a [`TransferFunction`] (direction, boundary fact, and a
//! per-block transfer). [`solve`] iterates block facts to a fixed point,
//! seeding the worklist in reverse post order (forward) or post order
//! (backward) so that acyclic regions converge in one sweep.
//!
//! Must-analyses are expressed by inverting the lattice: `bottom` is the
//! universal set and `join` is intersection — unreachable predecessors then
//! contribute the neutral element automatically.

use std::collections::VecDeque;

use llvm_lite::analysis::Cfg;
use llvm_lite::{BlockId, Function};

/// Which way facts propagate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow along CFG edges (entry → exits).
    Forward,
    /// Facts flow against CFG edges (exits → entry).
    Backward,
}

/// The value domain of an analysis.
pub trait Lattice {
    /// The per-program-point fact.
    type Fact: Clone + PartialEq;

    /// The initial fact at every program point (⊥ of the join).
    fn bottom(&self, f: &Function) -> Self::Fact;

    /// Join `other` into `into`; return whether `into` changed.
    fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool;
}

/// The program-dependent half of an analysis.
pub trait TransferFunction: Lattice {
    /// Forward or backward.
    fn direction(&self) -> Direction;

    /// The fact at the boundary: function entry (forward) or every exit
    /// block (backward).
    fn boundary(&self, f: &Function) -> Self::Fact {
        self.bottom(f)
    }

    /// Apply the whole block's effect to an incoming fact.
    fn transfer(&self, f: &Function, b: BlockId, fact: &Self::Fact) -> Self::Fact;

    /// Refine a fact as it crosses the edge `from → to` (e.g. attribute PHI
    /// operands to the predecessor edge they flow along). The fact passed in
    /// is the one at `to`'s entry (forward) or `to`'s... the propagated
    /// endpoint; the default is the identity.
    fn edge(&self, _f: &Function, _from: BlockId, _to: BlockId, fact: &Self::Fact) -> Self::Fact {
        fact.clone()
    }
}

/// Per-block solution: the fact at each block's entry and exit.
#[derive(Clone, Debug)]
pub struct BlockFacts<F> {
    /// Fact at the top of each block (indexed by `BlockId as usize`).
    pub entry: Vec<F>,
    /// Fact at the bottom of each block.
    pub exit: Vec<F>,
}

/// Run `t` over `f` to a fixed point and return the per-block facts.
pub fn solve<T: TransferFunction>(f: &Function, cfg: &Cfg, t: &T) -> BlockFacts<T::Fact> {
    let n = f.blocks.len();
    let mut entry: Vec<T::Fact> = (0..n).map(|_| t.bottom(f)).collect();
    let mut exit: Vec<T::Fact> = (0..n).map(|_| t.bottom(f)).collect();
    if cfg.rpo.is_empty() {
        return BlockFacts { entry, exit };
    }

    let forward = t.direction() == Direction::Forward;
    let order: Vec<BlockId> = if forward {
        cfg.rpo.clone()
    } else {
        cfg.rpo.iter().rev().copied().collect()
    };

    let mut queue: VecDeque<BlockId> = order.iter().copied().collect();
    let mut queued = vec![false; n];
    for &b in &order {
        queued[b as usize] = true;
    }

    // Monotone joins terminate; the step cap only guards against a
    // non-monotone transfer in a client.
    let mut steps = 0usize;
    let max_steps = (n + 1) * 256;
    while let Some(b) = queue.pop_front() {
        queued[b as usize] = false;
        steps += 1;
        if steps > max_steps {
            break;
        }
        if forward {
            // entry[b] = boundary (entry block) ⊔ ⨆ edge(p→b, exit[p])
            let mut inb = t.bottom(f);
            if b == f.entry() {
                t.join(&mut inb, &t.boundary(f));
            }
            for &p in &cfg.preds[b as usize] {
                let along = t.edge(f, p, b, &exit[p as usize]);
                t.join(&mut inb, &along);
            }
            let outb = t.transfer(f, b, &inb);
            entry[b as usize] = inb;
            if outb != exit[b as usize] {
                exit[b as usize] = outb;
                for &s in &cfg.succs[b as usize] {
                    if !queued[s as usize] {
                        queued[s as usize] = true;
                        queue.push_back(s);
                    }
                }
            }
        } else {
            // exit[b] = boundary (exit blocks) ⊔ ⨆ edge(b→s, entry[s])
            let mut outb = t.bottom(f);
            if cfg.succs[b as usize].is_empty() {
                t.join(&mut outb, &t.boundary(f));
            }
            for &s in &cfg.succs[b as usize] {
                let along = t.edge(f, b, s, &entry[s as usize]);
                t.join(&mut outb, &along);
            }
            let inb = t.transfer(f, b, &outb);
            exit[b as usize] = outb;
            if inb != entry[b as usize] {
                entry[b as usize] = inb;
                for &p in &cfg.preds[b as usize] {
                    if !queued[p as usize] {
                        queued[p as usize] = true;
                        queue.push_back(p);
                    }
                }
            }
        }
    }
    BlockFacts { entry, exit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;
    use std::collections::BTreeSet;

    /// A toy forward analysis: the set of block names reachable-through on
    /// some path from the entry (gen = own name, no kill, union join).
    struct TracePaths;

    impl Lattice for TracePaths {
        type Fact = BTreeSet<String>;
        fn bottom(&self, _f: &Function) -> Self::Fact {
            BTreeSet::new()
        }
        fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool {
            let before = into.len();
            into.extend(other.iter().cloned());
            into.len() != before
        }
    }

    impl TransferFunction for TracePaths {
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn transfer(&self, f: &Function, b: BlockId, fact: &Self::Fact) -> Self::Fact {
            let mut out = fact.clone();
            out.insert(f.block(b).name.clone());
            out
        }
    }

    const DIAMOND: &str = r#"
define void @f(i1 %c) {
entry:
  br i1 %c, label %left, label %right

left:
  br label %join

right:
  br label %join

join:
  ret void
}
"#;

    #[test]
    fn forward_union_reaches_fixed_point() {
        let m = parse_module("m", DIAMOND).unwrap();
        let f = &m.functions[0];
        let cfg = llvm_lite::analysis::Cfg::build(f);
        let facts = solve(f, &cfg, &TracePaths);
        let join = f.block_by_name("join").unwrap() as usize;
        let at_join: Vec<&str> = facts.entry[join].iter().map(|s| s.as_str()).collect();
        assert_eq!(at_join, vec!["entry", "left", "right"]);
    }

    /// The same domain backward: blocks on some path to an exit.
    struct TraceToExit;

    impl Lattice for TraceToExit {
        type Fact = BTreeSet<String>;
        fn bottom(&self, _f: &Function) -> Self::Fact {
            BTreeSet::new()
        }
        fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool {
            let before = into.len();
            into.extend(other.iter().cloned());
            into.len() != before
        }
    }

    impl TransferFunction for TraceToExit {
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn transfer(&self, f: &Function, b: BlockId, fact: &Self::Fact) -> Self::Fact {
            let mut out = fact.clone();
            out.insert(f.block(b).name.clone());
            out
        }
    }

    #[test]
    fn backward_propagates_against_edges() {
        let m = parse_module("m", DIAMOND).unwrap();
        let f = &m.functions[0];
        let cfg = llvm_lite::analysis::Cfg::build(f);
        let facts = solve(f, &cfg, &TraceToExit);
        let entry = f.entry() as usize;
        // Everything downstream of the entry shows up in its exit fact.
        assert!(facts.exit[entry].contains("join"));
        assert!(facts.exit[entry].contains("left"));
        assert!(facts.exit[entry].contains("right"));
        assert!(!facts.exit[entry].contains("entry"));
    }

    #[test]
    fn loops_converge() {
        let src = r#"
define void @f(i32 %n) {
entry:
  br label %header

header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit

body:
  %next = add i32 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let m = parse_module("m", src).unwrap();
        let f = &m.functions[0];
        let cfg = llvm_lite::analysis::Cfg::build(f);
        let facts = solve(f, &cfg, &TracePaths);
        let exit = f.block_by_name("exit").unwrap() as usize;
        // The loop body is on a path to the exit fact via the back edge.
        assert!(facts.entry[exit].contains("body"));
    }
}
