//! Static analysis over `llvm-lite` IR.
//!
//! The crate has two layers:
//!
//! * A generic **worklist dataflow engine** ([`dataflow`]) over the
//!   [`llvm_lite::analysis::Cfg`]: a [`dataflow::Lattice`] /
//!   [`dataflow::TransferFunction`] trait pair, forward/backward direction,
//!   and RPO-ordered iteration to a fixed point. [`liveness`] and
//!   [`reachdefs`] are the two CFG-shaped clients; [`alias`] (Andersen-lite
//!   points-to) and [`range`] (integer value ranges over induction
//!   variables) are flow-insensitive companions, and [`callgraph`] provides
//!   module-level SCCs.
//!
//! * The **`mha-lint` check suite** ([`lint`]): checks that consume the
//!   analyses and emit located [`pass_core::Diagnostic`]s for HLS-breaking
//!   IR — out-of-bounds accesses, reads of uninitialized allocas, dead
//!   stores, unreachable blocks, unsynthesizable constructs.
//!
//! The alias layer is shared infrastructure: `vitis-sim::memdep` resolves
//! its base objects through [`alias::resolve_base`] and `adaptor::compat`
//! uses the same resolution plus [`callgraph`], so scheduler pessimism and
//! lint findings can never disagree about what a pointer may reference.
//!
//! # Example: a custom analysis on the dataflow engine
//!
//! A client supplies a [`dataflow::Lattice`] (fact type, bottom, join) and a
//! [`dataflow::TransferFunction`] (direction, boundary, per-block effect);
//! [`solve`] runs it to a fixed point over a function's CFG. Here is block
//! reachability as a minimal forward may-analysis:
//!
//! ```
//! use analysis::{solve, Direction, Lattice, TransferFunction};
//! use llvm_lite::analysis::Cfg;
//! use llvm_lite::{BlockId, Function};
//!
//! struct Reachable;
//!
//! impl Lattice for Reachable {
//!     type Fact = bool;
//!     fn bottom(&self, _f: &Function) -> bool {
//!         false
//!     }
//!     fn join(&self, into: &mut bool, other: &bool) -> bool {
//!         let changed = !*into && *other;
//!         *into |= *other;
//!         changed
//!     }
//! }
//!
//! impl TransferFunction for Reachable {
//!     fn direction(&self) -> Direction {
//!         Direction::Forward
//!     }
//!     fn boundary(&self, _f: &Function) -> bool {
//!         true // the entry block is reachable
//!     }
//!     fn transfer(&self, _f: &Function, _b: BlockId, fact: &bool) -> bool {
//!         *fact // blocks pass reachability through unchanged
//!     }
//! }
//!
//! let m = llvm_lite::parser::parse_module(
//!     "demo",
//!     r#"
//! define float @diamond(i1 %c) {
//! entry:
//!   br i1 %c, label %left, label %right
//! left:
//!   br label %exit
//! right:
//!   br label %exit
//! exit:
//!   ret float 0x0000000000000000
//! }
//! "#,
//! )
//! .expect("parses");
//! let f = &m.functions[0];
//! let facts = solve(f, &Cfg::build(f), &Reachable);
//! assert!(facts.entry.iter().all(|reachable| *reachable));
//! ```

#![warn(missing_docs)]

pub mod alias;
pub mod callgraph;
pub mod dataflow;
pub mod depend;
pub mod lint;
pub mod liveness;
pub mod range;
pub mod reachdefs;

pub use alias::{resolve_base, MemObject, PointsTo};
pub use dataflow::{solve, BlockFacts, Direction, Lattice, TransferFunction};
pub use depend::{
    CarriedDistance, DepKind, Dependence, DistElem, LinExpr, LoopNest, NestAccess, NestLoop,
    TransformLegality, Witness,
};
pub use lint::lint_module;
pub use range::{Range, ValueRanges};
