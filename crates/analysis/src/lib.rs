//! Static analysis over `llvm-lite` IR.
//!
//! The crate has two layers:
//!
//! * A generic **worklist dataflow engine** ([`dataflow`]) over the
//!   [`llvm_lite::analysis::Cfg`]: a [`dataflow::Lattice`] /
//!   [`dataflow::TransferFunction`] trait pair, forward/backward direction,
//!   and RPO-ordered iteration to a fixed point. [`liveness`] and
//!   [`reachdefs`] are the two CFG-shaped clients; [`alias`] (Andersen-lite
//!   points-to) and [`range`] (integer value ranges over induction
//!   variables) are flow-insensitive companions, and [`callgraph`] provides
//!   module-level SCCs.
//!
//! * The **`mha-lint` check suite** ([`lint`]): checks that consume the
//!   analyses and emit located [`pass_core::Diagnostic`]s for HLS-breaking
//!   IR — out-of-bounds accesses, reads of uninitialized allocas, dead
//!   stores, unreachable blocks, unsynthesizable constructs.
//!
//! The alias layer is shared infrastructure: `vitis-sim::memdep` resolves
//! its base objects through [`alias::resolve_base`] and `adaptor::compat`
//! uses the same resolution plus [`callgraph`], so scheduler pessimism and
//! lint findings can never disagree about what a pointer may reference.

pub mod alias;
pub mod callgraph;
pub mod dataflow;
pub mod lint;
pub mod liveness;
pub mod range;
pub mod reachdefs;

pub use alias::{resolve_base, MemObject, PointsTo};
pub use dataflow::{solve, BlockFacts, Direction, Lattice, TransferFunction};
pub use lint::lint_module;
pub use range::{Range, ValueRanges};
