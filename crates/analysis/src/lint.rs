//! The `mha-lint` check suite: HLS-breaking IR caught before synthesis.
//!
//! Every check emits located [`Diagnostic`]s whose pass name is a stable
//! `lint-*` identifier, rendering as
//!
//! ```text
//! error[lint-oob] @f:body:%p: subscript 0 of %a ranges [0, 11], outside [0, 7]
//! ```
//!
//! Severities follow one rule: **errors** are constructs the downstream
//! tool would miscompile or reject (out-of-bounds access, reads of
//! uninitialized memory, recursion, aliasing that defeats a partition
//! directive); **warnings** are QoR or hygiene hazards (dead stores,
//! unreachable blocks, unprovable trip counts, ambiguous pointers);
//! **notes** are dependence facts from the [`crate::depend`] engine
//! (loop-carried recurrences, interchange hazards, parallel-safety
//! certificates) — information about the kernel, never defects, and never
//! part of an exit code. The II-blocker explainer lives in `vitis-sim` (it
//! needs operator latencies) and joins these findings at the `mha-lint`
//! driver level.

use std::collections::HashSet;

use llvm_lite::analysis::{counted_loop_tripcount, Cfg, DomTree, LoopInfo};
use llvm_lite::{Function, InstData, InstId, Module, Opcode, Type};
use pass_core::{Diagnostic, Loc};

use crate::alias::{escaping_allocas, points_to_set, MemObject};
use crate::range::ValueRanges;
use crate::reachdefs::{Def, ReachingDefs};

/// Out-of-bounds GEP/array access.
pub const LINT_OOB: &str = "lint-oob";
/// Load of an alloca before any store.
pub const LINT_UNINIT_READ: &str = "lint-uninit-read";
/// Store whose value is never read.
pub const LINT_DEAD_STORE: &str = "lint-dead-store";
/// Block unreachable from the entry.
pub const LINT_UNREACHABLE: &str = "lint-unreachable";
/// Loop with no provable trip count.
pub const LINT_TRIPCOUNT: &str = "lint-tripcount";
/// Recursive call cycle.
pub const LINT_RECURSION: &str = "lint-recursion";
/// Aliased access onto a partitioned array.
pub const LINT_ALIASED_PARTITION: &str = "lint-aliased-partition";
/// Pointer with no unique base object.
pub const LINT_AMBIGUOUS_BASE: &str = "lint-ambiguous-base";
/// Loop-carried dependence in an innermost loop (note: a fact, not a defect).
pub const LINT_CARRIED_DEP: &str = "lint-carried-dep";
/// Interchanging the two innermost loops would reverse a dependence.
pub const LINT_ILLEGAL_INTERCHANGE: &str = "lint-illegal-interchange";
/// Positive certificate: the innermost loop carries no dependence.
pub const LINT_PARALLEL_SAFE: &str = "lint-parallel-safe";

/// Printable reference to an instruction (`%name` or `%id`).
fn inst_ref(f: &Function, id: InstId) -> String {
    let n = &f.inst(id).name;
    if n.is_empty() {
        format!("%{id}")
    } else {
        format!("%{n}")
    }
}

fn loc_of(f: &Function, b: llvm_lite::BlockId, id: InstId) -> Loc {
    Loc::function(&f.name)
        .in_block(&f.block(b).name)
        .at_inst(inst_ref(f, id))
}

/// Leading integer dimensions of an `mha.shape` attr (`"4x4xf32"` → `[4, 4]`).
fn shape_dims(shape: &str) -> Vec<u64> {
    shape
        .split('x')
        .map_while(|s| s.parse::<u64>().ok())
        .collect()
}

/// Nested array dimensions of a type (`[4 x [8 x float]]` → `[4, 8]`).
fn array_dims(ty: &Type) -> Vec<u64> {
    let mut dims = Vec::new();
    let mut cur = ty;
    while let Type::Array(n, inner) = cur {
        dims.push(*n);
        cur = inner;
    }
    dims
}

/// Lint one function. All checks except recursion are intraprocedural.
pub fn lint_function(f: &Function) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let cfg = Cfg::build(f);

    // Unreachable blocks (`Cfg::unreachable_blocks`, finally wired up).
    for b in cfg.unreachable_blocks(f) {
        diags.push(
            Diagnostic::warning(LINT_UNREACHABLE, "block is unreachable from the entry")
                .with_loc(Loc::function(&f.name).in_block(&f.block(b).name)),
        );
    }

    // Loops with no provable trip count: latency and pipeline depth become
    // guesses, and Vitis would report "undetermined" latency.
    let dom = DomTree::build(f, &cfg);
    let loops = LoopInfo::build(f, &cfg, &dom);
    for l in &loops.loops {
        if counted_loop_tripcount(f, l).is_none() {
            diags.push(
                Diagnostic::warning(LINT_TRIPCOUNT, "loop has no provable trip count")
                    .with_loc(Loc::function(&f.name).in_block(&f.block(l.header).name)),
            );
        }
    }

    // Out-of-bounds subscripts: value ranges vs array dims / mha.shape.
    let vr = ValueRanges::build(f);
    let reachable: Vec<_> = cfg.rpo.clone();
    for &b in &reachable {
        for &id in &f.block(b).insts {
            let inst = f.inst(id);
            if inst.opcode != Opcode::Gep {
                continue;
            }
            let InstData::Gep { base_ty, .. } = &inst.data else {
                continue;
            };
            let base = crate::alias::resolve_base(f, &inst.operands[0]);
            let base_name = base.describe(f);
            let dims = array_dims(base_ty);
            if !dims.is_empty() {
                // Structured GEP: operand 1 steps over the whole object and
                // must stay at 0; operands 2.. are per-dimension subscripts.
                if let Some(r) = vr.of_value(&inst.operands[1]) {
                    if r.min > 0 || r.max < 0 {
                        diags.push(
                            Diagnostic::error(
                                LINT_OOB,
                                format!(
                                    "pointer-level index of {base_name} ranges [{}, {}], \
                                     stepping off the array object",
                                    r.min, r.max
                                ),
                            )
                            .with_loc(loc_of(f, b, id)),
                        );
                    }
                }
                for (dim_i, (op, &dim)) in inst.operands[2..].iter().zip(&dims).enumerate() {
                    let Some(r) = vr.of_value(op) else { continue };
                    if r.min < 0 || r.max >= dim as i128 {
                        diags.push(
                            Diagnostic::error(
                                LINT_OOB,
                                format!(
                                    "subscript {dim_i} of {base_name} ranges [{}, {}], \
                                     outside [0, {}]",
                                    r.min,
                                    r.max,
                                    dim - 1
                                ),
                            )
                            .with_loc(loc_of(f, b, id)),
                        );
                    }
                }
            } else if inst.operands.len() == 2 {
                // Flat GEP: bounded only when the base parameter declares
                // its shape.
                if let MemObject::Param(p) = base {
                    if let Some(shape) = f.params[p as usize].attrs.get("mha.shape") {
                        let total: u64 = shape_dims(shape).iter().product();
                        if total > 0 {
                            if let Some(r) = vr.of_value(&inst.operands[1]) {
                                if r.min < 0 || r.max >= total as i128 {
                                    diags.push(
                                        Diagnostic::error(
                                            LINT_OOB,
                                            format!(
                                                "flat index into {base_name} ranges [{}, {}], \
                                                 outside [0, {}] of shape {shape}",
                                                r.min,
                                                r.max,
                                                total - 1
                                            ),
                                        )
                                        .with_loc(loc_of(f, b, id)),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Read-before-write and dead stores, off reaching definitions.
    let rd = ReachingDefs::new(f);
    let facts = crate::dataflow::solve(f, &cfg, &rd);
    let escaped = escaping_allocas(f);
    let mut used_stores: HashSet<InstId> = HashSet::new();
    for &b in &reachable {
        rd.walk_block(f, b, &facts.entry[b as usize], |id, fact| {
            let inst = f.inst(id);
            if inst.opcode != Opcode::Load {
                return;
            }
            let pts = points_to_set(f, &inst.operands[0]);
            let opaque = pts.contains(&MemObject::Unknown);
            let mut reported = false;
            for d in fact {
                match d {
                    Def::Uninit(a) if !reported && pts.contains(&MemObject::Alloca(*a)) => {
                        diags.push(
                            Diagnostic::error(
                                LINT_UNINIT_READ,
                                format!(
                                    "load may read {} before it is written",
                                    MemObject::Alloca(*a).describe(f)
                                ),
                            )
                            .with_loc(loc_of(f, b, id)),
                        );
                        reported = true;
                    }
                    Def::Store(s) => {
                        let sb = &rd.store_base[s];
                        if opaque || *sb == MemObject::Unknown || pts.contains(sb) {
                            used_stores.insert(*s);
                        }
                    }
                    _ => {}
                }
            }
        });
    }
    for &b in &reachable {
        for &id in &f.block(b).insts {
            if f.inst(id).opcode != Opcode::Store || used_stores.contains(&id) {
                continue;
            }
            if let MemObject::Alloca(a) = &rd.store_base[&id] {
                if !escaped.contains(a) {
                    diags.push(
                        Diagnostic::warning(
                            LINT_DEAD_STORE,
                            format!(
                                "store to {} is never read (dead store)",
                                MemObject::Alloca(*a).describe(f)
                            ),
                        )
                        .with_loc(loc_of(f, b, id)),
                    );
                }
            }
        }
    }

    // Ambiguous bases and aliased partitions: an access the binder cannot
    // pin to one memory. If any candidate base carries an array-partition
    // directive, banking is defeated outright — that is an error.
    for &b in &reachable {
        for &id in &f.block(b).insts {
            let inst = f.inst(id);
            let ptr = match inst.opcode {
                Opcode::Load => &inst.operands[0],
                Opcode::Store => &inst.operands[1],
                _ => continue,
            };
            let pts = points_to_set(f, ptr);
            if pts.len() <= 1 && !pts.contains(&MemObject::Unknown) {
                continue;
            }
            let partitioned: Vec<String> = pts
                .iter()
                .filter_map(|o| match o {
                    MemObject::Param(p)
                        if f.params[*p as usize]
                            .attrs
                            .contains_key("hls.array_partition") =>
                    {
                        Some(o.describe(f))
                    }
                    _ => None,
                })
                .collect();
            let candidates: Vec<String> = pts.iter().map(|o| o.describe(f)).collect();
            if !partitioned.is_empty() {
                diags.push(
                    Diagnostic::error(
                        LINT_ALIASED_PARTITION,
                        format!(
                            "access may touch any of {{{}}}; aliasing defeats the array \
                             partitioning of {}",
                            candidates.join(", "),
                            partitioned.join(", ")
                        ),
                    )
                    .with_loc(loc_of(f, b, id)),
                );
            } else {
                diags.push(
                    Diagnostic::warning(
                        LINT_AMBIGUOUS_BASE,
                        format!(
                            "pointer has no unique base (candidates: {{{}}}); the scheduler \
                             must assume a distance-1 carried dependence",
                            candidates.join(", ")
                        ),
                    )
                    .with_loc(loc_of(f, b, id)),
                );
            }
        }
    }

    // Dependence facts from the nest engine, as notes: what the innermost
    // loop carries, whether interchanging the two innermost levels is
    // legal, and — when nothing is carried — a positive parallel-safety
    // certificate. Notes never contribute to exit codes.
    for inner in loops.innermost_loops() {
        let Some(nest) = crate::depend::nest_of_innermost(f, &loops, inner) else {
            continue;
        };
        let loc = Loc::function(&f.name).in_block(&f.block(inner.header).name);
        let legal = crate::depend::TransformLegality::new(&nest);
        let level = nest.innermost_level();
        let mut carried = false;
        for dep in legal.dependences() {
            let d = nest.carried_distance_at(dep, level);
            let dist = match d {
                crate::depend::CarriedDistance::NotCarried => continue,
                crate::depend::CarriedDistance::Exact(x) => format!("distance {x}"),
                crate::depend::CarriedDistance::AtLeastOne => "distance >= 1".into(),
            };
            carried = true;
            diags.push(
                Diagnostic::note(
                    LINT_CARRIED_DEP,
                    format!(
                        "loop {} carries a dependence ({dist}): {}",
                        nest.loops[level].label,
                        nest.render_dep(dep)
                    ),
                )
                .with_loc(loc.clone()),
            );
        }
        if level >= 1 {
            if let Err(w) = legal.interchange_legal(level - 1, level) {
                if w.dep.is_some() {
                    diags.push(
                        Diagnostic::note(LINT_ILLEGAL_INTERCHANGE, w.reason).with_loc(loc.clone()),
                    );
                }
            }
        }
        if !carried && !nest.accesses.is_empty() && legal.unroll_parallel(level).is_ok() {
            diags.push(
                Diagnostic::note(
                    LINT_PARALLEL_SAFE,
                    format!(
                        "loop {} carries no dependence: iterations are \
                         parallel; unrolling and partitioning are safe",
                        nest.loops[level].label
                    ),
                )
                .with_loc(loc),
            );
        }
    }

    diags
}

/// Lint a whole module: every defined function, plus call-graph recursion.
pub fn lint_module(m: &Module) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in m.functions.iter().filter(|f| !f.is_declaration) {
        diags.extend(lint_function(f));
    }
    let cg = crate::callgraph::CallGraph::build(m);
    for cycle in cg.recursive_cycles() {
        let root = &cycle[0];
        let next = cycle.get(1).unwrap_or(root);
        let mut loc = Loc::function(root);
        if let Some(f) = m.function(root) {
            // Point at the call that closes (or starts) the cycle.
            for (b, id) in f.inst_ids() {
                if let InstData::Call { callee } = &f.inst(id).data {
                    if callee == next {
                        loc = loc_of(f, b, id);
                        break;
                    }
                }
            }
        }
        let mut path: Vec<String> = cycle.iter().map(|n| format!("@{n}")).collect();
        path.push(format!("@{root}"));
        diags.push(
            Diagnostic::error(
                LINT_RECURSION,
                format!("recursive call cycle: {}", path.join(" -> ")),
            )
            .with_loc(loc),
        );
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_module(&parse_module("m", src).unwrap())
    }

    #[test]
    fn clean_kernel_shape_has_no_findings() {
        let src = r#"
define void @f([8 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 8
  br i1 %c, label %body, label %exit

body:
  %p = getelementptr inbounds [8 x float], [8 x float]* %a, i64 0, i64 %i
  %v = load float, float* %p, align 4
  store float %v, float* %p, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let diags = lint(src);
        // No defects — the only finding is the positive parallel-safety
        // certificate (same-address load/store is intra-iteration only).
        assert!(
            diags
                .iter()
                .all(|d| d.severity == pass_core::Severity::Note),
            "{diags:?}"
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].pass, LINT_PARALLEL_SAFE);
        assert!(diags[0].message.contains("loop %i carries no dependence"));
    }

    #[test]
    fn carried_dependence_is_noted_with_its_distance() {
        // b[i] = b[i-1] + a[i]: flow dependence at distance 1.
        let src = r#"
define void @f([32 x float]* %a, [33 x float]* %b) {
entry:
  br label %header

header:
  %i = phi i64 [ 1, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 33
  br i1 %c, label %body, label %exit

body:
  %im1 = add i64 %i, -1
  %p = getelementptr inbounds [33 x float], [33 x float]* %b, i64 0, i64 %im1
  %v = load float, float* %p, align 4
  %q = getelementptr inbounds [33 x float], [33 x float]* %b, i64 0, i64 %i
  store float %v, float* %q, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let diags = lint(src);
        let carried: Vec<_> = diags
            .iter()
            .filter(|d| d.pass == LINT_CARRIED_DEP)
            .collect();
        assert_eq!(carried.len(), 1, "{diags:?}");
        assert_eq!(carried[0].severity, pass_core::Severity::Note);
        assert!(
            carried[0].message.contains("distance vector (1)")
                && carried[0].message.contains("(distance 1)"),
            "{}",
            carried[0].message
        );
        assert!(diags.iter().all(|d| d.pass != LINT_PARALLEL_SAFE));
    }

    #[test]
    fn illegal_interchange_is_noted_on_skewed_nests() {
        // A[i+1][j] = A[i][j+1]: distance (1, -1) reverses under
        // interchange.
        let src = r#"
define void @f([8 x [8 x float]]* %a) {
entry:
  br label %oheader

oheader:
  %i = phi i64 [ 0, %entry ], [ %inext, %olatch ]
  %oc = icmp slt i64 %i, 7
  br i1 %oc, label %iheader, label %exit

iheader:
  %j = phi i64 [ 0, %oheader ], [ %jnext, %body ]
  %ic = icmp slt i64 %j, 7
  br i1 %ic, label %body, label %olatch

body:
  %jp1 = add i64 %j, 1
  %ip1 = add i64 %i, 1
  %p = getelementptr inbounds [8 x [8 x float]], [8 x [8 x float]]* %a, i64 0, i64 %i, i64 %jp1
  %v = load float, float* %p, align 4
  %q = getelementptr inbounds [8 x [8 x float]], [8 x [8 x float]]* %a, i64 0, i64 %ip1, i64 %j
  store float %v, float* %q, align 4
  %jnext = add i64 %j, 1
  br label %iheader

olatch:
  %inext = add i64 %i, 1
  br label %oheader

exit:
  ret void
}
"#;
        let diags = lint(src);
        let ill: Vec<_> = diags
            .iter()
            .filter(|d| d.pass == LINT_ILLEGAL_INTERCHANGE)
            .collect();
        assert_eq!(ill.len(), 1, "{diags:?}");
        assert_eq!(ill[0].severity, pass_core::Severity::Note);
        assert!(
            ill[0].message.contains("interchanging %i and %j")
                && ill[0].message.contains("distance vector (1, -1)"),
            "{}",
            ill[0].message
        );
    }

    #[test]
    fn oob_constant_subscript_is_an_error() {
        let src = r#"
define void @f([8 x float]* %a) {
entry:
  %p = getelementptr inbounds [8 x float], [8 x float]* %a, i64 0, i64 9
  store float 0x0000000000000000, float* %p, align 4
  ret void
}
"#;
        let diags = lint(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(
            diags[0].to_string(),
            "error[lint-oob] @f:entry:%p: subscript 0 of %a ranges [9, 9], outside [0, 7]"
        );
    }

    #[test]
    fn oob_iv_range_is_an_error() {
        let src = r#"
define void @f([8 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 12
  br i1 %c, label %body, label %exit

body:
  %p = getelementptr inbounds [8 x float], [8 x float]* %a, i64 0, i64 %i
  store float 0x0000000000000000, float* %p, align 4
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let diags = lint(src);
        assert!(diags
            .iter()
            .any(|d| d.pass == LINT_OOB && d.message.contains("[0, 11]")));
    }

    #[test]
    fn uninit_read_and_dead_store_are_found() {
        let src = r#"
define float @f() {
entry:
  %buf = alloca [4 x float], align 4
  %tmp = alloca [4 x float], align 4
  %p = getelementptr inbounds [4 x float], [4 x float]* %buf, i64 0, i64 0
  %v = load float, float* %p, align 4
  %q = getelementptr inbounds [4 x float], [4 x float]* %tmp, i64 0, i64 0
  store float %v, float* %q, align 4
  ret float %v
}
"#;
        let diags = lint(src);
        assert!(diags
            .iter()
            .any(|d| d.pass == LINT_UNINIT_READ && d.message.contains("%buf")));
        assert!(diags
            .iter()
            .any(|d| d.pass == LINT_DEAD_STORE && d.message.contains("%tmp")));
    }

    #[test]
    fn initialized_alloca_is_clean() {
        let src = r#"
define float @f() {
entry:
  %buf = alloca [4 x float], align 4
  %p = getelementptr inbounds [4 x float], [4 x float]* %buf, i64 0, i64 0
  store float 0x0000000000000000, float* %p, align 4
  %v = load float, float* %p, align 4
  ret float %v
}
"#;
        let diags = lint(src);
        assert!(diags.iter().all(|d| d.pass != LINT_UNINIT_READ));
        assert!(diags.iter().all(|d| d.pass != LINT_DEAD_STORE));
    }

    #[test]
    fn unreachable_block_is_flagged() {
        let src = r#"
define void @f() {
entry:
  ret void

orphan:
  ret void
}
"#;
        let diags = lint(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(
            diags[0].to_string(),
            "warning[lint-unreachable] @f:orphan: block is unreachable from the entry"
        );
    }

    #[test]
    fn unbounded_loop_is_flagged() {
        let src = r#"
define void @f(i64 %n) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit

body:
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let diags = lint(src);
        assert!(diags.iter().any(|d| d.pass == LINT_TRIPCOUNT));
    }

    #[test]
    fn recursion_is_an_error_with_the_cycle_named() {
        let src = r#"
define void @a() {
entry:
  call void @b()
  ret void
}

define void @b() {
entry:
  call void @a()
  ret void
}
"#;
        let diags = lint(src);
        let rec: Vec<_> = diags.iter().filter(|d| d.pass == LINT_RECURSION).collect();
        assert_eq!(rec.len(), 1);
        assert_eq!(
            rec[0].to_string(),
            "error[lint-recursion] @a:entry:%0: recursive call cycle: @a -> @b -> @a"
        );
    }

    #[test]
    fn aliased_partition_is_an_error() {
        let src = r#"
define void @f([8 x float]* "hls.array_partition"="cyclic:2" %a, [8 x float]* "hls.array_partition"="cyclic:2" %b, i1 %c) {
entry:
  %p = getelementptr inbounds [8 x float], [8 x float]* %a, i64 0, i64 0
  %q = getelementptr inbounds [8 x float], [8 x float]* %b, i64 0, i64 0
  %s = select i1 %c, float* %p, float* %q
  store float 0x0000000000000000, float* %s, align 4
  ret void
}
"#;
        let diags = lint(src);
        assert!(diags
            .iter()
            .any(|d| d.pass == LINT_ALIASED_PARTITION && d.message.contains("%a")));
    }

    #[test]
    fn select_of_one_base_is_not_ambiguous() {
        let src = r#"
define void @f([8 x float]* %a, i1 %c) {
entry:
  %p = getelementptr inbounds [8 x float], [8 x float]* %a, i64 0, i64 0
  %q = getelementptr inbounds [8 x float], [8 x float]* %a, i64 0, i64 1
  %s = select i1 %c, float* %p, float* %q
  %v = load float, float* %s, align 4
  ret void
}
"#;
        let diags = lint(src);
        assert!(diags.iter().all(|d| d.pass != LINT_AMBIGUOUS_BASE));
        assert!(diags.iter().all(|d| d.pass != LINT_ALIASED_PARTITION));
    }
}
