//! Integer value-range analysis over induction variables.
//!
//! Counted loops give their IV PHIs an exact range `[init, init +
//! (trip−1)·step]`; ranges then propagate through the arithmetic kernels
//! actually use for subscripts (add/sub/mul, width casts, select). PHIs
//! that are not recognized IVs — and anything loaded, called, or passed in
//! as an argument — stay unbounded, so a known range is always a sound
//! over-approximation of the runtime values. That makes the ranges usable
//! for proving out-of-bounds accesses (the `lint-oob` check): a subscript
//! whose range escapes the array dimension is a real bug, never noise from
//! the analysis guessing.

use std::collections::HashMap;

use llvm_lite::analysis::{counted_loop_tripcount, loop_induction_phi, Cfg, DomTree, LoopInfo};
use llvm_lite::{Function, InstData, InstId, Opcode, Type, Value};

/// An inclusive integer interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Range {
    /// Smallest possible value.
    pub min: i128,
    /// Largest possible value.
    pub max: i128,
}

impl Range {
    /// The single-point interval.
    pub fn exact(v: i128) -> Range {
        Range { min: v, max: v }
    }

    fn add(self, o: Range) -> Option<Range> {
        Some(Range {
            min: self.min.checked_add(o.min)?,
            max: self.max.checked_add(o.max)?,
        })
    }

    fn sub(self, o: Range) -> Option<Range> {
        Some(Range {
            min: self.min.checked_sub(o.max)?,
            max: self.max.checked_sub(o.min)?,
        })
    }

    fn mul(self, o: Range) -> Option<Range> {
        let corners = [
            self.min.checked_mul(o.min)?,
            self.min.checked_mul(o.max)?,
            self.max.checked_mul(o.min)?,
            self.max.checked_mul(o.max)?,
        ];
        Some(Range {
            min: *corners.iter().min().unwrap(),
            max: *corners.iter().max().unwrap(),
        })
    }

    fn shl(self, o: Range) -> Option<Range> {
        // Only a constant non-negative shift amount is a clean scale.
        if o.min != o.max || !(0..=62).contains(&o.min) {
            return None;
        }
        self.mul(Range::exact(1i128 << o.min))
    }

    fn bitor(self, o: Range) -> Option<Range> {
        // For non-negative operands, `a | b` is bounded below by both
        // operands and above by their sum (bits can only be set).
        if self.min < 0 || o.min < 0 {
            return None;
        }
        Some(Range {
            min: self.min.max(o.min),
            max: self.max.checked_add(o.max)?,
        })
    }

    /// Smallest interval containing both.
    pub fn hull(self, o: Range) -> Range {
        Range {
            min: self.min.min(o.min),
            max: self.max.max(o.max),
        }
    }

    /// Does the interval fit a signed integer of the given bit width?
    fn fits_int(self, width: u32) -> bool {
        if width == 0 || width > 127 {
            return false;
        }
        let half = 1i128 << (width - 1);
        self.min >= -half && self.max < half
    }
}

/// Per-instruction ranges for one function.
#[derive(Clone, Debug, Default)]
pub struct ValueRanges {
    map: HashMap<InstId, Range>,
}

impl ValueRanges {
    /// Seed IV ranges from the loop forest, then propagate through the
    /// subscript arithmetic in RPO (SSA dominance makes one sweep enough:
    /// every non-PHI operand is defined upstream, and non-IV PHIs stay
    /// unbounded).
    pub fn build(f: &Function) -> ValueRanges {
        let cfg = Cfg::build(f);
        let dom = DomTree::build(f, &cfg);
        let loops = LoopInfo::build(f, &cfg, &dom);

        let mut vr = ValueRanges::default();
        for l in &loops.loops {
            let Some((phi, init, step)) = iv_seed(f, l) else {
                continue;
            };
            let Some(trip) = counted_loop_tripcount(f, l) else {
                continue;
            };
            let last = if trip == 0 {
                init
            } else {
                let Some(span) = step.checked_mul(trip as i128 - 1) else {
                    continue;
                };
                let Some(last) = init.checked_add(span) else {
                    continue;
                };
                last
            };
            vr.map.insert(
                phi,
                Range {
                    min: init,
                    max: last,
                },
            );
        }

        for &b in &cfg.rpo {
            for &id in &f.block(b).insts {
                if vr.map.contains_key(&id) {
                    continue; // seeded IV
                }
                let inst = f.inst(id);
                let r = match inst.opcode {
                    Opcode::Add => vr.binary(&inst.operands, Range::add),
                    Opcode::Sub => vr.binary(&inst.operands, Range::sub),
                    Opcode::Mul => vr.binary(&inst.operands, Range::mul),
                    // `2*i` and `2*i + 1` style subscripts are routinely
                    // emitted as shifts and (disjoint) ors; without these
                    // the scaled form has no range and `lint-oob` skips
                    // the subscript silently.
                    Opcode::Shl => vr.binary(&inst.operands, Range::shl),
                    Opcode::Or => vr.binary(&inst.operands, Range::bitor),
                    Opcode::SExt => vr.of_value(&inst.operands[0]),
                    Opcode::ZExt => vr.of_value(&inst.operands[0]).filter(|r| r.min >= 0),
                    Opcode::Trunc => {
                        let target = match inst.ty {
                            Type::Int(w) => w,
                            _ => 0,
                        };
                        vr.of_value(&inst.operands[0])
                            .filter(|r| r.fits_int(target))
                    }
                    Opcode::Select => {
                        match (
                            vr.of_value(&inst.operands[1]),
                            vr.of_value(&inst.operands[2]),
                        ) {
                            (Some(a), Some(bq)) => Some(a.hull(bq)),
                            _ => None,
                        }
                    }
                    Opcode::ICmp => Some(Range { min: 0, max: 1 }),
                    _ => None,
                };
                if let Some(r) = r {
                    vr.map.insert(id, r);
                }
            }
        }
        vr
    }

    fn binary(&self, ops: &[Value], op: impl Fn(Range, Range) -> Option<Range>) -> Option<Range> {
        let a = self.of_value(&ops[0])?;
        let b = self.of_value(&ops[1])?;
        op(a, b)
    }

    /// The known range of a value, if any.
    pub fn of_value(&self, v: &Value) -> Option<Range> {
        match v {
            Value::ConstInt { value, .. } => Some(Range::exact(*value)),
            Value::Inst(id) => self.map.get(id).copied(),
            _ => None,
        }
    }
}

/// Recognize the IV PHI of a counted loop and return `(phi, init, step)`.
pub(crate) fn iv_seed(
    f: &Function,
    l: &llvm_lite::analysis::NaturalLoop,
) -> Option<(InstId, i128, i128)> {
    let phi_id = loop_induction_phi(f, l)?;
    let phi = f.inst(phi_id);
    let InstData::Phi { incoming } = &phi.data else {
        return None;
    };
    let mut init = None;
    let mut step = None;
    for (v, b) in phi.operands.iter().zip(incoming) {
        if l.body.contains(b) {
            if let Value::Inst(add_id) = v {
                let add = f.inst(*add_id);
                if add.opcode == Opcode::Add {
                    let (a, b2) = (&add.operands[0], &add.operands[1]);
                    if *a == Value::Inst(phi_id) {
                        step = b2.int_value();
                    } else if *b2 == Value::Inst(phi_id) {
                        step = a.int_value();
                    }
                }
            }
        } else {
            init = v.int_value();
        }
    }
    match (init, step) {
        (Some(i), Some(s)) if s > 0 => Some((phi_id, i, s)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;

    fn ranges_of(src: &str) -> (llvm_lite::Module, ValueRanges) {
        let m = parse_module("m", src).unwrap();
        let vr = ValueRanges::build(&m.functions[0]);
        (m, vr)
    }

    #[test]
    fn iv_and_derived_subscripts_are_bounded() {
        let src = r#"
define void @f([32 x float]* %a) {
entry:
  br label %header

header:
  %i = phi i64 [ 1, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 31
  br i1 %c, label %body, label %exit

body:
  %im1 = add i64 %i, -1
  %twice = mul i64 %i, 2
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let (m, vr) = ranges_of(src);
        let f = &m.functions[0];
        let header = f.block_by_name("header").unwrap();
        let body = f.block_by_name("body").unwrap();
        let iv = f.block(header).insts[0];
        let im1 = f.block(body).insts[0];
        let twice = f.block(body).insts[1];
        assert_eq!(
            vr.of_value(&Value::Inst(iv)),
            Some(Range { min: 1, max: 30 })
        );
        assert_eq!(
            vr.of_value(&Value::Inst(im1)),
            Some(Range { min: 0, max: 29 })
        );
        assert_eq!(
            vr.of_value(&Value::Inst(twice)),
            Some(Range { min: 2, max: 60 })
        );
    }

    #[test]
    fn shifted_and_ored_subscripts_are_bounded() {
        // `2*i + 1` as codegen emits it: shl + or.
        let src = r#"
define void @f() {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 16
  br i1 %c, label %body, label %exit

body:
  %even = shl i64 %i, 1
  %odd = or i64 %even, 1
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let (m, vr) = ranges_of(src);
        let f = &m.functions[0];
        let body = f.block_by_name("body").unwrap();
        let even = f.block(body).insts[0];
        let odd = f.block(body).insts[1];
        assert_eq!(
            vr.of_value(&Value::Inst(even)),
            Some(Range { min: 0, max: 30 })
        );
        assert_eq!(
            vr.of_value(&Value::Inst(odd)),
            Some(Range { min: 1, max: 31 })
        );
    }

    #[test]
    fn unknown_bounds_stay_unbounded() {
        let src = r#"
define void @f(i64 %n) {
entry:
  br label %header

header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit

body:
  %next = add i64 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let (m, vr) = ranges_of(src);
        let f = &m.functions[0];
        let header = f.block_by_name("header").unwrap();
        let iv = f.block(header).insts[0];
        // Trip count depends on %n: no provable range.
        assert_eq!(vr.of_value(&Value::Inst(iv)), None);
        assert_eq!(vr.of_value(&Value::Arg(0)), None);
    }

    #[test]
    fn casts_preserve_ranges_when_sound() {
        let src = r#"
define void @f() {
entry:
  br label %header

header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i32 %i, 16
  br i1 %c, label %body, label %exit

body:
  %w = sext i32 %i to i64
  %z = zext i32 %i to i64
  %next = add i32 %i, 1
  br label %header

exit:
  ret void
}
"#;
        let (m, vr) = ranges_of(src);
        let f = &m.functions[0];
        let body = f.block_by_name("body").unwrap();
        let w = f.block(body).insts[0];
        let z = f.block(body).insts[1];
        assert_eq!(
            vr.of_value(&Value::Inst(w)),
            Some(Range { min: 0, max: 15 })
        );
        assert_eq!(
            vr.of_value(&Value::Inst(z)),
            Some(Range { min: 0, max: 15 })
        );
    }

    #[test]
    fn nested_loop_ivs_combine() {
        let src = r#"
define void @f() {
entry:
  br label %oh

oh:
  %i = phi i64 [ 0, %entry ], [ %inext, %ol ]
  %ci = icmp slt i64 %i, 64
  br i1 %ci, label %ih, label %exit

ih:
  %k = phi i64 [ 0, %oh ], [ %knext, %ib ]
  %ck = icmp slt i64 %k, 8
  br i1 %ck, label %ib, label %ol

ib:
  %idx = add i64 %i, %k
  %knext = add i64 %k, 1
  br label %ih

ol:
  %inext = add i64 %i, 1
  br label %oh

exit:
  ret void
}
"#;
        let (m, vr) = ranges_of(src);
        let f = &m.functions[0];
        let ib = f.block_by_name("ib").unwrap();
        let idx = f.block(ib).insts[0];
        // i in [0,63], k in [0,7]: the FIR-style x[n+k] subscript.
        assert_eq!(
            vr.of_value(&Value::Inst(idx)),
            Some(Range { min: 0, max: 70 })
        );
    }
}
