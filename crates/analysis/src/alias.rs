//! Andersen-lite points-to / alias analysis.
//!
//! Every pointer value is resolved to a *set* of root memory objects
//! ([`MemObject`]): parameters, allocas, globals, or the conservative
//! `Unknown`. GEP and bitcast are transparent; `phi` and `select` take the
//! union of their pointer operands — the generalization over the old
//! single-base walk, which gave up on any control-flow merge. The equations
//! are union-only, so a memoizing DFS with a cycle guard computes the least
//! fixed point directly.
//!
//! [`resolve_base`] is the query the rest of the workspace shares:
//! `vitis-sim::memdep` (dependence distances, port pressure) and
//! `adaptor::compat` (flattened-access detection) both funnel through it,
//! which keeps the scheduler and the lints agreeing about aliasing.

use std::collections::{BTreeSet, HashMap, HashSet};

use llvm_lite::{Function, InstId, Opcode, Type, Value};

/// A root memory object a pointer may reference.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemObject {
    /// Function parameter index.
    Param(u32),
    /// Alloca instruction.
    Alloca(InstId),
    /// Module global.
    Global(String),
    /// Unresolvable pointer.
    Unknown,
}

impl MemObject {
    /// Printable name (`%param`, `%alloca`, `@global`, `<unknown>`).
    pub fn describe(&self, f: &Function) -> String {
        match self {
            MemObject::Param(i) => format!("%{}", f.params[*i as usize].name),
            MemObject::Alloca(id) => {
                let n = &f.inst(*id).name;
                if n.is_empty() {
                    format!("%{id}")
                } else {
                    format!("%{n}")
                }
            }
            MemObject::Global(g) => format!("@{g}"),
            MemObject::Unknown => "<unknown>".to_string(),
        }
    }
}

/// Collect the points-to set of `v` into `out`. `visiting` breaks PHI
/// cycles: a back edge contributes nothing, which is exactly ⊥ of the
/// union-only system.
fn gather(f: &Function, v: &Value, visiting: &mut HashSet<InstId>, out: &mut BTreeSet<MemObject>) {
    match v {
        Value::Arg(i) => {
            out.insert(MemObject::Param(*i));
        }
        Value::Global(g) => {
            out.insert(MemObject::Global(g.clone()));
        }
        Value::Inst(id) => {
            if !visiting.insert(*id) {
                return;
            }
            let inst = f.inst(*id);
            match inst.opcode {
                Opcode::Alloca => {
                    out.insert(MemObject::Alloca(*id));
                }
                Opcode::Gep | Opcode::BitCast => gather(f, &inst.operands[0], visiting, out),
                Opcode::Phi => {
                    for op in &inst.operands {
                        gather(f, op, visiting, out);
                    }
                }
                Opcode::Select => {
                    gather(f, &inst.operands[1], visiting, out);
                    gather(f, &inst.operands[2], visiting, out);
                }
                // Loaded pointers, call results, int→ptr casts: no model.
                _ => {
                    out.insert(MemObject::Unknown);
                }
            }
        }
        _ => {
            out.insert(MemObject::Unknown);
        }
    }
}

/// The points-to set of a single pointer value.
pub fn points_to_set(f: &Function, v: &Value) -> BTreeSet<MemObject> {
    let mut out = BTreeSet::new();
    gather(f, v, &mut HashSet::new(), &mut out);
    out
}

/// Resolve a pointer to its unique base object, or `Unknown` when the
/// points-to set is empty, ambiguous, or contains `Unknown`. This is the
/// drop-in replacement for the old single-base walk — with the improvement
/// that a `phi`/`select` whose operands all reach the *same* root now
/// resolves instead of giving up.
pub fn resolve_base(f: &Function, v: &Value) -> MemObject {
    let set = points_to_set(f, v);
    let mut iter = set.into_iter();
    match (iter.next(), iter.next()) {
        (Some(only), None) => only,
        _ => MemObject::Unknown,
    }
}

/// Whole-function points-to solution: one set per pointer-typed
/// instruction, plus set queries for arbitrary values.
#[derive(Clone, Debug, Default)]
pub struct PointsTo {
    sets: HashMap<InstId, BTreeSet<MemObject>>,
}

impl PointsTo {
    /// Compute points-to sets for every pointer-typed instruction of `f`.
    pub fn build(f: &Function) -> PointsTo {
        let mut pt = PointsTo::default();
        for (_, id) in f.inst_ids() {
            if matches!(f.inst(id).ty, Type::Ptr(_)) {
                pt.sets.insert(id, points_to_set(f, &Value::Inst(id)));
            }
        }
        pt
    }

    /// The points-to set of any value (instructions hit the cache).
    pub fn of(&self, f: &Function, v: &Value) -> BTreeSet<MemObject> {
        if let Value::Inst(id) = v {
            if let Some(s) = self.sets.get(id) {
                return s.clone();
            }
        }
        points_to_set(f, v)
    }

    /// Unique base of `v`, or `Unknown` (see [`resolve_base`]).
    pub fn unique_base(&self, f: &Function, v: &Value) -> MemObject {
        let set = self.of(f, v);
        let mut iter = set.into_iter();
        match (iter.next(), iter.next()) {
            (Some(only), None) => only,
            _ => MemObject::Unknown,
        }
    }

    /// May the two pointers reference the same memory?
    pub fn may_alias(&self, f: &Function, a: &Value, b: &Value) -> bool {
        let sa = self.of(f, a);
        let sb = self.of(f, b);
        if sa.contains(&MemObject::Unknown) || sb.contains(&MemObject::Unknown) {
            return true;
        }
        sa.intersection(&sb).next().is_some()
    }
}

/// Allocas whose address escapes the function: passed to a call, stored as
/// a *value*, cast to an integer, or returned. Loads/stores through them
/// are then visible to the outside and must not be treated as dead.
pub fn escaping_allocas(f: &Function) -> HashSet<InstId> {
    let mut escaped = HashSet::new();
    let leak = |v: &Value, escaped: &mut HashSet<InstId>| {
        for obj in points_to_set(f, v) {
            if let MemObject::Alloca(a) = obj {
                escaped.insert(a);
            }
        }
    };
    for (_, id) in f.inst_ids() {
        let inst = f.inst(id);
        match inst.opcode {
            Opcode::Call => {
                for op in &inst.operands {
                    leak(op, &mut escaped);
                }
            }
            // The stored value (operand 0) escaping; the address operand
            // does not.
            Opcode::Store => leak(&inst.operands[0], &mut escaped),
            Opcode::PtrToInt => leak(&inst.operands[0], &mut escaped),
            Opcode::Ret => {
                for op in &inst.operands {
                    leak(op, &mut escaped);
                }
            }
            _ => {}
        }
    }
    escaped
}

#[cfg(test)]
mod tests {
    use super::*;
    use llvm_lite::parser::parse_module;

    fn func(src: &str) -> llvm_lite::Module {
        parse_module("m", src).unwrap()
    }

    #[test]
    fn direct_and_gep_bases_resolve() {
        let m = func(
            r#"
define void @f([8 x float]* %a) {
entry:
  %p = getelementptr inbounds [8 x float], [8 x float]* %a, i64 0, i64 3
  %v = load float, float* %p, align 4
  ret void
}
"#,
        );
        let f = &m.functions[0];
        let p = f.block_order[0];
        let gep = f.block(p).insts[0];
        assert_eq!(resolve_base(f, &Value::Inst(gep)), MemObject::Param(0));
    }

    #[test]
    fn select_of_same_base_resolves() {
        let m = func(
            r#"
define void @f([8 x float]* %a, i1 %c) {
entry:
  %p = getelementptr inbounds [8 x float], [8 x float]* %a, i64 0, i64 0
  %q = getelementptr inbounds [8 x float], [8 x float]* %a, i64 0, i64 1
  %s = select i1 %c, float* %p, float* %q
  %v = load float, float* %s, align 4
  ret void
}
"#,
        );
        let f = &m.functions[0];
        let sel = f.block(f.entry()).insts[2];
        // The old walk returned Unknown here; the set-based one resolves.
        assert_eq!(resolve_base(f, &Value::Inst(sel)), MemObject::Param(0));
    }

    #[test]
    fn select_of_two_bases_is_a_set() {
        let m = func(
            r#"
define void @f([8 x float]* %a, [8 x float]* %b, i1 %c) {
entry:
  %p = getelementptr inbounds [8 x float], [8 x float]* %a, i64 0, i64 0
  %q = getelementptr inbounds [8 x float], [8 x float]* %b, i64 0, i64 0
  %s = select i1 %c, float* %p, float* %q
  %v = load float, float* %s, align 4
  ret void
}
"#,
        );
        let f = &m.functions[0];
        let sel = f.block(f.entry()).insts[2];
        let set = points_to_set(f, &Value::Inst(sel));
        assert_eq!(set.len(), 2);
        assert_eq!(resolve_base(f, &Value::Inst(sel)), MemObject::Unknown);
        let pt = PointsTo::build(f);
        assert!(pt.may_alias(
            f,
            &Value::Inst(sel),
            &Value::Inst(f.block(f.entry()).insts[0])
        ));
    }

    #[test]
    fn phi_cycle_terminates_and_resolves() {
        let m = func(
            r#"
define void @f([8 x float]* %a, i32 %n) {
entry:
  %p0 = getelementptr inbounds [8 x float], [8 x float]* %a, i64 0, i64 0
  br label %header

header:
  %p = phi float* [ %p0, %entry ], [ %pn, %body ]
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit

body:
  %pn = getelementptr inbounds float, float* %p, i64 1
  %next = add i32 %i, 1
  br label %header

exit:
  ret void
}
"#,
        );
        let f = &m.functions[0];
        let header = f.block_by_name("header").unwrap();
        let phi = f.block(header).insts[0];
        assert_eq!(resolve_base(f, &Value::Inst(phi)), MemObject::Param(0));
    }

    #[test]
    fn escape_analysis_finds_leaks() {
        let m = func(
            r#"
declare void @sink(float* %p)

define void @f() {
entry:
  %kept = alloca [4 x float], align 4
  %leaked = alloca [4 x float], align 4
  %p = getelementptr inbounds [4 x float], [4 x float]* %leaked, i64 0, i64 0
  call void @sink(float* %p)
  ret void
}
"#,
        );
        let f = &m.functions[1];
        let kept = f.block(f.entry()).insts[0];
        let leaked = f.block(f.entry()).insts[1];
        let esc = escaping_allocas(f);
        assert!(esc.contains(&leaked));
        assert!(!esc.contains(&kept));
    }
}
