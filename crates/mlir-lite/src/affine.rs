//! Affine expressions and maps.
//!
//! These are the "expression details" the paper argues a direct IR path
//! preserves: multi-dimensional subscripts like `(d0, d1) -> (d0 + 1, 2*d1)`
//! survive as structured maps in the adaptor flow, whereas the HLS-C++
//! detour flattens them into pointer arithmetic the downstream frontend must
//! re-derive.

use std::fmt;

/// An affine expression over dimensions `d0..dN` and symbols `s0..sM`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AffineExpr {
    /// `dI` — loop induction dimension.
    Dim(u32),
    /// `sI` — symbolic (loop-invariant) operand.
    Sym(u32),
    /// Integer constant.
    Const(i64),
    /// Sum of two affine expressions.
    Add(Box<AffineExpr>, Box<AffineExpr>),
    /// Product — affine only when one side is constant.
    Mul(Box<AffineExpr>, Box<AffineExpr>),
    /// Euclidean remainder by a positive constant.
    Mod(Box<AffineExpr>, i64),
    /// Floor division by a positive constant.
    FloorDiv(Box<AffineExpr>, i64),
    /// Ceiling division by a positive constant.
    CeilDiv(Box<AffineExpr>, i64),
}

// The builder methods `add`/`mul`/`sub` intentionally shadow operator names:
// they are the AffineExpr algebra, taken by value with eager folding, and
// implementing the std operator traits would hide the folding contract.
#[allow(clippy::should_implement_trait)]
impl AffineExpr {
    /// `d<i>`.
    pub fn dim(i: u32) -> AffineExpr {
        AffineExpr::Dim(i)
    }

    /// `s<i>`.
    pub fn sym(i: u32) -> AffineExpr {
        AffineExpr::Sym(i)
    }

    /// Constant expression.
    pub fn cst(v: i64) -> AffineExpr {
        AffineExpr::Const(v)
    }

    /// `self + rhs`, with eager constant folding.
    pub fn add(self, rhs: AffineExpr) -> AffineExpr {
        match (self, rhs) {
            (AffineExpr::Const(a), AffineExpr::Const(b)) => AffineExpr::Const(a + b),
            (a, AffineExpr::Const(0)) | (AffineExpr::Const(0), a) => a,
            (a, b) => AffineExpr::Add(Box::new(a), Box::new(b)),
        }
    }

    /// `self * rhs`, with eager constant folding. Panics if neither side is
    /// constant (that would not be affine).
    pub fn mul(self, rhs: AffineExpr) -> AffineExpr {
        match (self, rhs) {
            (AffineExpr::Const(a), AffineExpr::Const(b)) => AffineExpr::Const(a * b),
            (a, AffineExpr::Const(1)) | (AffineExpr::Const(1), a) => a,
            (_, AffineExpr::Const(0)) | (AffineExpr::Const(0), _) => AffineExpr::Const(0),
            (a, b @ AffineExpr::Const(_)) => AffineExpr::Mul(Box::new(a), Box::new(b)),
            (a @ AffineExpr::Const(_), b) => AffineExpr::Mul(Box::new(b), Box::new(a)),
            (a, b) => panic!("non-affine product of {a:?} and {b:?}"),
        }
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: AffineExpr) -> AffineExpr {
        self.add(rhs.mul(AffineExpr::Const(-1)))
    }

    /// Evaluate with concrete dimension and symbol values.
    pub fn eval(&self, dims: &[i64], syms: &[i64]) -> i64 {
        match self {
            AffineExpr::Dim(i) => dims[*i as usize],
            AffineExpr::Sym(i) => syms[*i as usize],
            AffineExpr::Const(v) => *v,
            AffineExpr::Add(a, b) => a.eval(dims, syms) + b.eval(dims, syms),
            AffineExpr::Mul(a, b) => a.eval(dims, syms) * b.eval(dims, syms),
            AffineExpr::Mod(a, m) => a.eval(dims, syms).rem_euclid(*m),
            AffineExpr::FloorDiv(a, d) => a.eval(dims, syms).div_euclid(*d),
            AffineExpr::CeilDiv(a, d) => {
                let v = a.eval(dims, syms);
                -((-v).div_euclid(*d))
            }
        }
    }

    /// Largest dimension index referenced, plus one (0 if none).
    pub fn num_dims_used(&self) -> u32 {
        match self {
            AffineExpr::Dim(i) => i + 1,
            AffineExpr::Sym(_) | AffineExpr::Const(_) => 0,
            AffineExpr::Add(a, b) | AffineExpr::Mul(a, b) => {
                a.num_dims_used().max(b.num_dims_used())
            }
            AffineExpr::Mod(a, _) | AffineExpr::FloorDiv(a, _) | AffineExpr::CeilDiv(a, _) => {
                a.num_dims_used()
            }
        }
    }

    /// Is this expression a bare `dI` or constant (i.e. trivially
    /// pattern-matchable by a downstream dependence analyzer)?
    pub fn is_simple(&self) -> bool {
        matches!(self, AffineExpr::Dim(_) | AffineExpr::Const(_))
    }

    /// Normal form: flatten to `sum(coeff_i * d_i) + sum(coeff_j * s_j) + c`
    /// when the expression contains no mod/div; returns
    /// `(dim_coeffs, sym_coeffs, constant)` padded to the given sizes.
    pub fn linear_form(&self, num_dims: u32, num_syms: u32) -> Option<(Vec<i64>, Vec<i64>, i64)> {
        let mut dims = vec![0i64; num_dims as usize];
        let mut syms = vec![0i64; num_syms as usize];
        let mut cst = 0i64;
        if self.accumulate(1, &mut dims, &mut syms, &mut cst) {
            Some((dims, syms, cst))
        } else {
            None
        }
    }

    fn accumulate(&self, factor: i64, dims: &mut [i64], syms: &mut [i64], cst: &mut i64) -> bool {
        match self {
            AffineExpr::Dim(i) => {
                if (*i as usize) < dims.len() {
                    dims[*i as usize] += factor;
                    true
                } else {
                    false
                }
            }
            AffineExpr::Sym(i) => {
                if (*i as usize) < syms.len() {
                    syms[*i as usize] += factor;
                    true
                } else {
                    false
                }
            }
            AffineExpr::Const(v) => {
                *cst += factor * v;
                true
            }
            AffineExpr::Add(a, b) => {
                a.accumulate(factor, dims, syms, cst) && b.accumulate(factor, dims, syms, cst)
            }
            AffineExpr::Mul(a, b) => match (&**a, &**b) {
                (x, AffineExpr::Const(k)) | (AffineExpr::Const(k), x) => {
                    x.accumulate(factor * k, dims, syms, cst)
                }
                _ => false,
            },
            AffineExpr::Mod(..) | AffineExpr::FloorDiv(..) | AffineExpr::CeilDiv(..) => false,
        }
    }

    /// Canonicalize into sorted linear form where possible; returns `self`
    /// unchanged for expressions with mod/div.
    pub fn canonicalize(&self, num_dims: u32, num_syms: u32) -> AffineExpr {
        let Some((dims, syms, cst)) = self.linear_form(num_dims, num_syms) else {
            return self.clone();
        };
        let mut out: Option<AffineExpr> = None;
        let push = |e: AffineExpr, out: &mut Option<AffineExpr>| {
            *out = Some(match out.take() {
                None => e,
                Some(acc) => acc.add(e),
            });
        };
        for (i, &c) in dims.iter().enumerate() {
            if c != 0 {
                push(AffineExpr::dim(i as u32).mul(AffineExpr::cst(c)), &mut out);
            }
        }
        for (i, &c) in syms.iter().enumerate() {
            if c != 0 {
                push(AffineExpr::sym(i as u32).mul(AffineExpr::cst(c)), &mut out);
            }
        }
        if cst != 0 || out.is_none() {
            push(AffineExpr::cst(cst), &mut out);
        }
        out.unwrap()
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffineExpr::Dim(i) => write!(f, "d{i}"),
            AffineExpr::Sym(i) => write!(f, "s{i}"),
            AffineExpr::Const(v) => write!(f, "{v}"),
            AffineExpr::Add(a, b) => match &**b {
                AffineExpr::Const(c) if *c < 0 => write!(f, "{a} - {}", -c),
                AffineExpr::Mul(x, k) if matches!(&**k, AffineExpr::Const(c) if *c < 0) => {
                    let AffineExpr::Const(c) = &**k else {
                        unreachable!()
                    };
                    write!(f, "{a} - {} * {x}", -c)
                }
                _ => write!(f, "{a} + {b}"),
            },
            AffineExpr::Mul(a, b) => write!(f, "{b} * {a}"),
            AffineExpr::Mod(a, m) => write!(f, "({a}) mod {m}"),
            AffineExpr::FloorDiv(a, d) => write!(f, "({a}) floordiv {d}"),
            AffineExpr::CeilDiv(a, d) => write!(f, "({a}) ceildiv {d}"),
        }
    }
}

/// An affine map `(d0, ..) [s0, ..] -> (e0, .., eK)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AffineMap {
    /// Number of dimension inputs.
    pub num_dims: u32,
    /// Number of symbol inputs.
    pub num_syms: u32,
    /// Result expressions.
    pub results: Vec<AffineExpr>,
}

impl AffineMap {
    /// A new map (panics if a result references an out-of-range dim).
    pub fn new(num_dims: u32, num_syms: u32, results: Vec<AffineExpr>) -> AffineMap {
        for r in &results {
            assert!(
                r.num_dims_used() <= num_dims,
                "expression uses dim beyond num_dims"
            );
        }
        AffineMap {
            num_dims,
            num_syms,
            results,
        }
    }

    /// The identity map over `n` dimensions: `(d0..dn-1) -> (d0..dn-1)`.
    pub fn identity(n: u32) -> AffineMap {
        AffineMap::new(n, 0, (0..n).map(AffineExpr::dim).collect())
    }

    /// A map returning a single constant.
    pub fn constant(v: i64) -> AffineMap {
        AffineMap::new(0, 0, vec![AffineExpr::cst(v)])
    }

    /// Evaluate every result.
    pub fn eval(&self, dims: &[i64], syms: &[i64]) -> Vec<i64> {
        assert_eq!(dims.len(), self.num_dims as usize, "dim arity");
        assert_eq!(syms.len(), self.num_syms as usize, "sym arity");
        self.results.iter().map(|e| e.eval(dims, syms)).collect()
    }

    /// Canonicalize all results.
    pub fn canonicalize(&self) -> AffineMap {
        AffineMap {
            num_dims: self.num_dims,
            num_syms: self.num_syms,
            results: self
                .results
                .iter()
                .map(|e| e.canonicalize(self.num_dims, self.num_syms))
                .collect(),
        }
    }

    /// True when every result is a bare dim or constant — the "clean
    /// subscript" property downstream dependence analysis keys on.
    pub fn is_simple(&self) -> bool {
        self.results.iter().all(AffineExpr::is_simple)
    }

    /// Whether this is an identity map.
    pub fn is_identity(&self) -> bool {
        self.results.len() == self.num_dims as usize
            && self
                .results
                .iter()
                .enumerate()
                .all(|(i, e)| *e == AffineExpr::Dim(i as u32))
    }
}

impl fmt::Display for AffineMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for i in 0..self.num_dims {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "d{i}")?;
        }
        write!(f, ")")?;
        if self.num_syms > 0 {
            write!(f, "[")?;
            for i in 0..self.num_syms {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "s{i}")?;
            }
            write!(f, "]")?;
        }
        write!(f, " -> (")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_linear() {
        // (d0, d1) -> (d0*8 + d1 + 1)
        let e = AffineExpr::dim(0)
            .mul(AffineExpr::cst(8))
            .add(AffineExpr::dim(1))
            .add(AffineExpr::cst(1));
        assert_eq!(e.eval(&[2, 3], &[]), 20);
    }

    #[test]
    fn eval_mod_floordiv_euclidean() {
        let m = AffineExpr::Mod(Box::new(AffineExpr::dim(0)), 4);
        assert_eq!(m.eval(&[-1], &[]), 3); // euclidean, not truncated
        let fd = AffineExpr::FloorDiv(Box::new(AffineExpr::dim(0)), 4);
        assert_eq!(fd.eval(&[-1], &[]), -1);
        assert_eq!(fd.eval(&[7], &[]), 1);
        let cd = AffineExpr::CeilDiv(Box::new(AffineExpr::dim(0)), 4);
        assert_eq!(cd.eval(&[7], &[]), 2);
        assert_eq!(cd.eval(&[8], &[]), 2);
    }

    #[test]
    fn constant_folding_in_builders() {
        assert_eq!(
            AffineExpr::cst(2).add(AffineExpr::cst(3)),
            AffineExpr::Const(5)
        );
        assert_eq!(
            AffineExpr::dim(0).mul(AffineExpr::cst(0)),
            AffineExpr::Const(0)
        );
        assert_eq!(
            AffineExpr::dim(0).mul(AffineExpr::cst(1)),
            AffineExpr::dim(0)
        );
        assert_eq!(
            AffineExpr::dim(0).add(AffineExpr::cst(0)),
            AffineExpr::dim(0)
        );
    }

    #[test]
    #[should_panic(expected = "non-affine")]
    fn non_affine_product_panics() {
        let _ = AffineExpr::dim(0).mul(AffineExpr::dim(1));
    }

    #[test]
    fn linear_form_collects_coefficients() {
        // d0*4 + d1 + d0*2 + 7  ->  dims [6, 1], const 7
        let e = AffineExpr::dim(0)
            .mul(AffineExpr::cst(4))
            .add(AffineExpr::dim(1))
            .add(AffineExpr::dim(0).mul(AffineExpr::cst(2)))
            .add(AffineExpr::cst(7));
        let (dims, syms, c) = e.linear_form(2, 0).unwrap();
        assert_eq!(dims, vec![6, 1]);
        assert!(syms.is_empty());
        assert_eq!(c, 7);
    }

    #[test]
    fn linear_form_rejects_mod() {
        let e = AffineExpr::Mod(Box::new(AffineExpr::dim(0)), 2);
        assert!(e.linear_form(1, 0).is_none());
    }

    #[test]
    fn canonicalize_is_idempotent_and_semantics_preserving() {
        let e = AffineExpr::dim(1)
            .add(AffineExpr::dim(0).mul(AffineExpr::cst(3)))
            .add(AffineExpr::dim(0).mul(AffineExpr::cst(5)))
            .sub(AffineExpr::cst(2));
        let c1 = e.canonicalize(2, 0);
        let c2 = c1.canonicalize(2, 0);
        assert_eq!(c1, c2);
        for d0 in -3..4 {
            for d1 in -3..4 {
                assert_eq!(e.eval(&[d0, d1], &[]), c1.eval(&[d0, d1], &[]));
            }
        }
    }

    #[test]
    fn map_identity_and_eval() {
        let id = AffineMap::identity(3);
        assert!(id.is_identity());
        assert!(id.is_simple());
        assert_eq!(id.eval(&[4, 5, 6], &[]), vec![4, 5, 6]);
        let c = AffineMap::constant(9);
        assert_eq!(c.eval(&[], &[]), vec![9]);
        assert!(!c.is_identity());
    }

    #[test]
    fn map_display() {
        let m = AffineMap::new(
            2,
            0,
            vec![
                AffineExpr::dim(0).add(AffineExpr::cst(1)),
                AffineExpr::dim(1).mul(AffineExpr::cst(2)),
            ],
        );
        assert_eq!(m.to_string(), "(d0, d1) -> (d0 + 1, 2 * d1)");
        let s = AffineMap::new(1, 1, vec![AffineExpr::dim(0).add(AffineExpr::sym(0))]);
        assert_eq!(s.to_string(), "(d0)[s0] -> (d0 + s0)");
    }

    #[test]
    fn display_negative_terms_as_subtraction() {
        let e = AffineExpr::dim(0).sub(AffineExpr::cst(1));
        assert_eq!(e.to_string(), "d0 - 1");
    }

    #[test]
    #[should_panic(expected = "dim arity")]
    fn eval_checks_arity() {
        AffineMap::identity(2).eval(&[1], &[]);
    }

    #[test]
    #[should_panic(expected = "beyond num_dims")]
    fn map_rejects_out_of_range_dims() {
        AffineMap::new(1, 0, vec![AffineExpr::dim(3)]);
    }
}
