//! Attributes — compile-time constants attached to operations.

use std::collections::BTreeMap;
use std::fmt;

use crate::affine::AffineMap;
use crate::ir::MType;

/// An attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum Attr {
    /// Integer with an associated type (`1 : i32`, `4 : index`).
    Int(i64, MType),
    /// Float constant (stored as f64 bits live in the type).
    Float(f64, MType),
    /// String attribute.
    Str(String),
    /// Bare unit attribute (presence is the information).
    Unit,
    /// Boolean.
    Bool(bool),
    /// A type attribute (e.g. function signatures).
    Type(MType),
    /// An affine map (subscript maps of `affine.load`/`store`/`apply`).
    Map(AffineMap),
    /// Array of attributes.
    Array(Vec<Attr>),
    /// Nested dictionary.
    Dict(BTreeMap<String, Attr>),
    /// A symbol reference (`@gemm`).
    SymbolRef(String),
}

impl Attr {
    /// `v : i64` helper.
    pub fn i64(v: i64) -> Attr {
        Attr::Int(v, MType::Int(64))
    }

    /// `v : index` helper.
    pub fn index(v: i64) -> Attr {
        Attr::Int(v, MType::Index)
    }

    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attr::Int(v, _) => Some(*v),
            Attr::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// The float payload, if any.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Attr::Float(v, _) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attr::Str(s) | Attr::SymbolRef(s) => Some(s),
            _ => None,
        }
    }

    /// The affine-map payload, if any.
    pub fn as_map(&self) -> Option<&AffineMap> {
        match self {
            Attr::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The type payload, if any.
    pub fn as_type(&self) -> Option<&MType> {
        match self {
            Attr::Type(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attr::Int(v, t) => write!(f, "{v} : {t}"),
            Attr::Float(v, t) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1} : {t}")
                } else {
                    write!(f, "{v} : {t}")
                }
            }
            Attr::Str(s) => write!(f, "\"{s}\""),
            Attr::Unit => write!(f, "unit"),
            Attr::Bool(b) => write!(f, "{b}"),
            Attr::Type(t) => write!(f, "{t}"),
            Attr::Map(m) => write!(f, "affine_map<{m}>"),
            Attr::Array(items) => {
                write!(f, "[")?;
                for (i, a) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "]")
            }
            Attr::Dict(d) => {
                write!(f, "{{")?;
                for (i, (k, v)) in d.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} = {v}")?;
                }
                write!(f, "}}")
            }
            Attr::SymbolRef(s) => write!(f, "@{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineExpr;

    #[test]
    fn accessors() {
        assert_eq!(Attr::i64(5).as_int(), Some(5));
        assert_eq!(Attr::Bool(true).as_int(), Some(1));
        assert_eq!(Attr::Float(1.5, MType::F32).as_float(), Some(1.5));
        assert_eq!(Attr::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Attr::i64(5).as_str(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Attr::Int(3, MType::Index).to_string(), "3 : index");
        assert_eq!(Attr::Float(2.0, MType::F32).to_string(), "2.0 : f32");
        assert_eq!(Attr::Str("hi".into()).to_string(), "\"hi\"");
        assert_eq!(Attr::SymbolRef("f".into()).to_string(), "@f");
        let m = AffineMap::new(1, 0, vec![AffineExpr::dim(0)]);
        assert_eq!(Attr::Map(m).to_string(), "affine_map<(d0) -> (d0)>");
        assert_eq!(
            Attr::Array(vec![Attr::i64(1), Attr::i64(2)]).to_string(),
            "[1 : i64, 2 : i64]"
        );
    }
}
