//! Structural verification of MLIR modules.
//!
//! Checks region shape (structured ops own exactly the regions their
//! definition says), terminator discipline, operand visibility (a value must
//! be defined by an op earlier in the same block or in an enclosing region)
//! and per-op typing rules for the dialects in this crate.

use std::collections::HashSet;

use pass_core::{Diagnostic, Loc, PassResult};

use crate::attr::Attr;
use crate::ir::{MType, MValue, MValueKind, MlirModule, Op};
use crate::Result;

fn diag(msg: impl Into<String>) -> Diagnostic {
    Diagnostic::error("verifier", msg)
}

/// Verify a module, producing a located diagnostic on failure (the
/// enclosing function ends up in `loc.function`, the offending op in
/// `loc.inst`).
pub fn verify_module_diag(m: &MlirModule) -> PassResult<()> {
    let mut names = HashSet::new();
    for op in &m.ops {
        if op.name != "func.func" {
            return Err(diag(format!(
                "top-level op must be func.func, found {}",
                op.name
            )));
        }
        let name = op
            .attrs
            .get("sym_name")
            .and_then(Attr::as_str)
            .ok_or_else(|| diag("func.func without sym_name"))?;
        if !names.insert(name.to_string()) {
            return Err(diag("duplicate function").with_loc(Loc::function(name)));
        }
        verify_func(op).map_err(|mut d| {
            d.loc.function = Some(name.to_string());
            d
        })?;
    }
    Ok(())
}

/// Verify a module (crate-error wrapper around [`verify_module_diag`]).
pub fn verify_module(m: &MlirModule) -> Result<()> {
    verify_module_diag(m).map_err(crate::Error::from)
}

struct Scope {
    /// Uids of ops whose results are visible, and blocks whose args are
    /// visible, at the current point.
    visible_ops: HashSet<u32>,
    visible_blocks: HashSet<u32>,
}

fn verify_func(f: &Op) -> PassResult<()> {
    if f.regions.len() != 1 {
        return Err(diag("func.func must have exactly 1 region"));
    }
    let mut scope = Scope {
        visible_ops: HashSet::new(),
        visible_blocks: HashSet::new(),
    };
    verify_region_block(f, 0, &mut scope)?;
    // Body must end in func.return.
    match f.regions[0].entry().ops.last() {
        Some(last) if last.name == "func.return" => Ok(()),
        _ => Err(diag("func.func body must end in func.return")),
    }
}

fn verify_region_block(op: &Op, region: usize, scope: &mut Scope) -> PassResult<()> {
    let block = op.regions[region].entry();
    scope.visible_blocks.insert(block.uid);
    let mut added_ops = Vec::new();
    for inner in &block.ops {
        verify_op(inner, scope)?;
        scope.visible_ops.insert(inner.uid);
        added_ops.push(inner.uid);
    }
    // Results defined in this block go out of scope on exit.
    for uid in added_ops {
        scope.visible_ops.remove(&uid);
    }
    scope.visible_blocks.remove(&block.uid);
    Ok(())
}

fn check_operand(op: &Op, v: &MValue, scope: &Scope) -> PassResult<()> {
    let ok = match v.kind {
        MValueKind::OpResult { op: uid, .. } => scope.visible_ops.contains(&uid),
        MValueKind::BlockArg { block, .. } => scope.visible_blocks.contains(&block),
    };
    if ok {
        Ok(())
    } else {
        Err(
            diag(format!("operand {:?} is not visible at its use", v.kind))
                .with_loc(Loc::default().at_inst(&op.name)),
        )
    }
}

fn expect(cond: bool, op: &Op, msg: &str) -> PassResult<()> {
    if cond {
        Ok(())
    } else {
        Err(diag(msg).with_loc(Loc::default().at_inst(&op.name)))
    }
}

fn verify_op(op: &Op, scope: &mut Scope) -> PassResult<()> {
    for v in &op.operands {
        check_operand(op, v, scope)?;
    }
    match op.name.as_str() {
        "affine.for" => {
            expect(op.regions.len() == 1, op, "needs exactly 1 region")?;
            expect(
                op.regions[0].entry().arg_types == vec![MType::Index],
                op,
                "body must take a single index argument",
            )?;
            let lb = op.int_attr("lower_bound");
            let ub = op.int_attr("upper_bound");
            let step = op.int_attr("step");
            expect(
                lb.is_some() && ub.is_some() && step.is_some(),
                op,
                "missing bound attributes",
            )?;
            expect(step.unwrap() > 0, op, "step must be positive")?;
            expect(
                op.regions[0]
                    .entry()
                    .ops
                    .last()
                    .map(|o| o.name == "affine.yield")
                    .unwrap_or(false),
                op,
                "body must end in affine.yield",
            )?;
            verify_region_block(op, 0, scope)?;
        }
        "scf.for" => {
            expect(op.operands.len() == 3, op, "needs lb, ub, step operands")?;
            for v in &op.operands {
                expect(v.ty == MType::Index, op, "bounds must be index-typed")?;
            }
            expect(
                op.regions[0]
                    .entry()
                    .ops
                    .last()
                    .map(|o| o.name == "scf.yield")
                    .unwrap_or(false),
                op,
                "body must end in scf.yield",
            )?;
            verify_region_block(op, 0, scope)?;
        }
        "scf.if" => {
            expect(op.operands[0].ty == MType::I1, op, "condition must be i1")?;
            expect(op.regions.len() == 2, op, "needs then and else regions")?;
            verify_region_block(op, 0, scope)?;
            verify_region_block(op, 1, scope)?;
        }
        "affine.load" | "memref.load" => {
            let mref = &op.operands[0];
            let elem = mref.ty.memref_elem().ok_or_else(|| {
                diag("not a memref operand").with_loc(Loc::default().at_inst(&op.name))
            })?;
            expect(
                op.result_types == vec![elem.clone()],
                op,
                "result must be the memref element type",
            )?;
            if op.name == "affine.load" {
                let map = op.attrs.get("map").and_then(Attr::as_map).ok_or_else(|| {
                    diag("missing map").with_loc(Loc::default().at_inst("affine.load"))
                })?;
                expect(
                    map.num_dims as usize == op.operands.len() - 1,
                    op,
                    "map arity must match dim operands",
                )?;
                expect(
                    map.results.len() == mref.ty.memref_shape().map(|s| s.len()).unwrap_or(0),
                    op,
                    "map rank must match memref rank",
                )?;
            }
            for idx in &op.operands[1..] {
                expect(idx.ty == MType::Index, op, "indices must be index-typed")?;
            }
        }
        "affine.store" | "memref.store" => {
            let v = &op.operands[0];
            let mref = &op.operands[1];
            let elem = mref.ty.memref_elem().ok_or_else(|| {
                diag("not a memref operand").with_loc(Loc::default().at_inst(&op.name))
            })?;
            expect(&v.ty == elem, op, "stored value must match element type")?;
            if op.name == "affine.store" {
                let map = op.attrs.get("map").and_then(Attr::as_map).ok_or_else(|| {
                    diag("missing map").with_loc(Loc::default().at_inst("affine.store"))
                })?;
                expect(
                    map.num_dims as usize == op.operands.len() - 2,
                    op,
                    "map arity must match dim operands",
                )?;
            }
            for idx in &op.operands[2..] {
                expect(idx.ty == MType::Index, op, "indices must be index-typed")?;
            }
        }
        "arith.constant" => {
            expect(
                op.attrs.contains_key("value"),
                op,
                "missing value attribute",
            )?;
        }
        "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" => {
            expect(op.operands.len() == 2, op, "needs 2 operands")?;
            expect(
                op.operands[0].ty.is_float() && op.operands[0].ty == op.operands[1].ty,
                op,
                "operands must be matching floats",
            )?;
            expect(
                op.result_types == vec![op.operands[0].ty.clone()],
                op,
                "result type mismatch",
            )?;
        }
        "arith.addi" | "arith.subi" | "arith.muli" | "arith.divsi" | "arith.remsi" => {
            expect(op.operands.len() == 2, op, "needs 2 operands")?;
            expect(
                op.operands[0].ty.is_int_like() && op.operands[0].ty == op.operands[1].ty,
                op,
                "operands must be matching integers",
            )?;
        }
        "arith.cmpi" | "arith.cmpf" => {
            expect(op.operands.len() == 2, op, "needs 2 operands")?;
            expect(
                op.operands[0].ty == op.operands[1].ty,
                op,
                "operands must match",
            )?;
            expect(
                op.attrs.get("predicate").and_then(Attr::as_str).is_some(),
                op,
                "missing predicate",
            )?;
            expect(op.result_types == vec![MType::I1], op, "must produce i1")?;
        }
        "arith.select" => {
            expect(op.operands.len() == 3, op, "needs 3 operands")?;
            expect(op.operands[0].ty == MType::I1, op, "condition must be i1")?;
            expect(
                op.operands[1].ty == op.operands[2].ty,
                op,
                "branch types must match",
            )?;
        }
        "func.return" | "affine.yield" | "scf.yield" => {}
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialects::{affine, arith, func, memref};
    use crate::parser::parse_module;

    #[test]
    fn accepts_parsed_gemm() {
        let src = r#"
func.func @f(%A: memref<4x4xf32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 4 {
      %v = affine.load %A[%i, %j] : memref<4x4xf32>
      %w = arith.mulf %v, %v : f32
      affine.store %w, %A[%i, %j] : memref<4x4xf32>
    }
  }
  func.return
}
"#;
        let m = parse_module("m", src).unwrap();
        verify_module(&m).unwrap();
    }

    #[test]
    fn rejects_duplicate_function() {
        let src = "func.func @f() {\n  func.return\n}\nfunc.func @f() {\n  func.return\n}\n";
        let m = parse_module("m", src).unwrap();
        assert!(verify_module(&m)
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn rejects_missing_return() {
        let mut m = MlirModule::new("m");
        let f = func::func("f", vec![], MType::None);
        m.ops.push(f);
        assert!(verify_module(&m)
            .unwrap_err()
            .to_string()
            .contains("func.return"));
    }

    #[test]
    fn rejects_out_of_scope_iv_use() {
        // Build: loop defines %iv; a later op outside the loop uses it.
        let mut m = MlirModule::new("m");
        let mut f = func::func("f", vec![MType::F32.memref(&[4])], MType::None);
        let a = f.regions[0].entry().arg(0);
        let mut l = affine::for_loop(0, 4, 1);
        let iv = l.regions[0].entry().arg(0);
        l.regions[0].entry_mut().ops.push(affine::yield_());
        let leak = memref::load(a, vec![iv]); // uses iv outside the loop
        {
            let body = f.regions[0].entry_mut();
            body.ops.push(l);
            body.ops.push(leak);
            body.ops.push(func::ret(None));
        }
        m.ops.push(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("not visible"));
    }

    #[test]
    fn rejects_mixed_float_types() {
        let mut m = MlirModule::new("m");
        let mut f = func::func("f", vec![], MType::None);
        let a = arith::const_float(1.0, MType::F32);
        let b = arith::const_float(1.0, MType::F64);
        let mut bad = arith::addf(a.result(0), b.result(0));
        bad.result_types = vec![MType::F32];
        {
            let body = f.regions[0].entry_mut();
            body.ops.push(a);
            body.ops.push(b);
            body.ops.push(bad);
            body.ops.push(func::ret(None));
        }
        m.ops.push(f);
        assert!(verify_module(&m)
            .unwrap_err()
            .to_string()
            .contains("matching floats"));
    }

    #[test]
    fn rejects_map_rank_mismatch() {
        let src = r#"
func.func @f(%A: memref<4x4xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %A[%i] : memref<4x4xf32>
  }
  func.return
}
"#;
        let m = parse_module("m", src).unwrap();
        assert!(verify_module(&m).unwrap_err().to_string().contains("rank"));
    }

    #[test]
    fn rejects_missing_yield() {
        let mut m = MlirModule::new("m");
        let mut f = func::func("f", vec![], MType::None);
        let l = affine::for_loop(0, 4, 1); // body left empty — no yield
        {
            let body = f.regions[0].entry_mut();
            body.ops.push(l);
            body.ops.push(func::ret(None));
        }
        m.ops.push(f);
        assert!(verify_module(&m)
            .unwrap_err()
            .to_string()
            .contains("affine.yield"));
    }

    #[test]
    fn rejects_store_type_mismatch() {
        let mut m = MlirModule::new("m");
        let mut f = func::func("f", vec![MType::F32.memref(&[4])], MType::None);
        let a = f.regions[0].entry().arg(0);
        let c = arith::const_index(0);
        let bad =
            crate::ir::Op::new("memref.store").with_operands(vec![c.result(0), a, c.result(0)]); // stores an index into f32 memref
        {
            let body = f.regions[0].entry_mut();
            body.ops.push(c);
            body.ops.push(bad);
            body.ops.push(func::ret(None));
        }
        m.ops.push(f);
        assert!(verify_module(&m)
            .unwrap_err()
            .to_string()
            .contains("element type"));
    }
}
