//! Textual MLIR parser for the structured, affine-level subset used to
//! author kernels.
//!
//! Scope (deliberate): `module`, `func.func`, `func.return`, `func.call`,
//! `affine.for/load/store/apply`, the `arith`/`math` ops the kernels use,
//! and `memref.alloc/alloca/dealloc/load/store`. The `scf`/`cf`/LLVM stages
//! of the pipeline exist only in memory (they are produced by lowering, not
//! written by humans), so they are printable but not parseable.

use std::collections::HashMap;

use crate::affine::{AffineExpr, AffineMap};
use crate::attr::Attr;
use crate::dialects::{affine as affine_ops, arith, func as func_ops, math, memref};
use crate::ir::{MType, MValue, MlirModule, Op};
use crate::{Error, Result};

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Word(String),
    /// `%name`.
    Val(String),
    /// `@name`.
    Sym(String),
    Int(i64),
    Float(f64),
    Str(String),
    Punct(char),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Consume raw text up to (and including) the matching `close`,
    /// balancing nested `open`/`close`. Used for `memref<...>` payloads.
    fn raw_until_balanced(&mut self, open: u8, close: u8) -> Result<String> {
        let start = self.pos;
        let mut depth = 1;
        while let Some(c) = self.peek() {
            self.pos += 1;
            if c == open {
                depth += 1;
            } else if c == close {
                depth -= 1;
                if depth == 0 {
                    return Ok(String::from_utf8_lossy(&self.src[start..self.pos - 1]).into_owned());
                }
            } else if c == b'\n' {
                self.line += 1;
            }
        }
        Err(self.err("unterminated type bracket"))
    }

    fn next(&mut self) -> Result<Tok> {
        self.skip_ws();
        let Some(c) = self.peek() else {
            return Ok(Tok::Eof);
        };
        match c {
            b'%' => {
                self.pos += 1;
                Ok(Tok::Val(self.ident()))
            }
            b'@' => {
                self.pos += 1;
                Ok(Tok::Sym(self.ident()))
            }
            b'"' => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'"' {
                        let s = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                        self.pos += 1;
                        return Ok(Tok::Str(s));
                    }
                    self.pos += 1;
                }
                Err(self.err("unterminated string"))
            }
            b'-' if !self
                .src
                .get(self.pos + 1)
                .map(|d| d.is_ascii_digit())
                .unwrap_or(false) =>
            {
                self.pos += 1;
                Ok(Tok::Punct('-'))
            }
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                self.pos += 1;
                let mut is_float = false;
                while let Some(d) = self.peek() {
                    if d.is_ascii_digit() {
                        self.pos += 1;
                    } else if d == b'.'
                        && self
                            .src
                            .get(self.pos + 1)
                            .map(|x| x.is_ascii_digit())
                            .unwrap_or(false)
                    {
                        is_float = true;
                        self.pos += 1;
                    } else if (d == b'e' || d == b'E') && is_float {
                        // Exponent: 'e', optional sign, then at least one
                        // digit. Consuming anything else here could split a
                        // multi-byte UTF-8 character.
                        self.pos += 1;
                        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                            self.pos += 1;
                        }
                        if !self.peek().map(|x| x.is_ascii_digit()).unwrap_or(false) {
                            return Err(self.err("malformed float exponent"));
                        }
                        while let Some(x) = self.peek() {
                            if x.is_ascii_digit() {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                        break;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in numeric literal"))?;
                if is_float {
                    text.parse::<f64>()
                        .map(Tok::Float)
                        .map_err(|_| self.err("bad float literal"))
                } else {
                    text.parse::<i64>()
                        .map(Tok::Int)
                        .map_err(|_| self.err("bad int literal"))
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => Ok(Tok::Word(self.ident())),
            c => {
                self.pos += 1;
                Ok(Tok::Punct(c as char))
            }
        }
    }
}

struct Parser<'a> {
    lex: Lexer<'a>,
    tok: Tok,
    /// Current region-nesting depth; bounded so adversarial input cannot
    /// overflow the stack through `parse_op` → `parse_affine_for` recursion
    /// (a stack overflow aborts the process and cannot be caught).
    depth: u32,
}

/// Deepest region nesting accepted by the parser. Real kernels nest a
/// handful of loops; this only exists to turn hostile input into a
/// located error instead of a stack overflow (which aborts the process
/// and cannot be isolated by `catch_unwind`). Each level costs ~70 KiB
/// of parser frames in debug builds and test threads run on 2 MiB
/// stacks, so 16 keeps a 2x safety margin.
const MAX_NESTING_DEPTH: u32 = 16;

type Env = HashMap<String, MValue>;

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Parser<'a>> {
        let mut lex = Lexer::new(src);
        let tok = lex.next()?;
        Ok(Parser { lex, tok, depth: 0 })
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        self.lex.err(msg)
    }

    fn bump(&mut self) -> Result<Tok> {
        Ok(std::mem::replace(&mut self.tok, self.lex.next()?))
    }

    fn eat_punct(&mut self, c: char) -> Result<()> {
        if self.tok == Tok::Punct(c) {
            self.bump()?;
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}', got {:?}", self.tok)))
        }
    }

    fn eat_word(&mut self, w: &str) -> Result<()> {
        if self.tok == Tok::Word(w.to_string()) {
            self.bump()?;
            Ok(())
        } else {
            Err(self.err(format!("expected '{w}', got {:?}", self.tok)))
        }
    }

    fn at_word(&self, w: &str) -> bool {
        matches!(&self.tok, Tok::Word(s) if s == w)
    }

    fn take_val(&mut self) -> Result<String> {
        match self.bump()? {
            Tok::Val(n) => Ok(n),
            other => Err(self.err(format!("expected %value, got {other:?}"))),
        }
    }

    fn lookup(&self, env: &Env, name: &str) -> Result<MValue> {
        env.get(name)
            .cloned()
            .ok_or_else(|| self.err(format!("use of undefined value %{name}")))
    }

    fn take_and_lookup(&mut self, env: &Env) -> Result<MValue> {
        let name = self.take_val()?;
        self.lookup(env, &name)
    }

    // ---- types --------------------------------------------------------

    fn parse_type(&mut self) -> Result<MType> {
        match self.bump()? {
            Tok::Word(w) => match w.as_str() {
                "index" => Ok(MType::Index),
                "f32" => Ok(MType::F32),
                "f64" => Ok(MType::F64),
                "none" => Ok(MType::None),
                "memref" => {
                    // The '<' follows; grab the raw payload.
                    self.eat_punct('<')?;
                    // We already tokenized past '<'; the current token stream
                    // would mangle `32x32xf32`, so re-lex raw from the source.
                    // To do that we reconstruct: current token holds the first
                    // piece; simplest robust approach: the lexer call below.
                    Err(self.err("internal: memref must be parsed via parse_type_text"))
                }
                _ if w.starts_with('i') && w[1..].chars().all(|c| c.is_ascii_digit()) => w[1..]
                    .parse()
                    .map(MType::Int)
                    .map_err(|_| self.err("bad integer type width")),
                other => Err(self.err(format!("unknown type '{other}'"))),
            },
            other => Err(self.err(format!("expected type, got {other:?}"))),
        }
    }

    /// Types appear after ':' in our grammar; `memref<...>` needs raw
    /// lexing, so every type position goes through this entry point, which
    /// peeks at the *word* before deciding.
    fn parse_type_pos(&mut self) -> Result<MType> {
        if self.at_word("memref") {
            self.bump()?; // 'memref'
                          // self.tok is now '<'; the raw payload must be taken from the
                          // lexer directly, bypassing the one-token lookahead.
            if self.tok != Tok::Punct('<') {
                return Err(self.err("expected '<' after memref"));
            }
            let payload = self.lex.raw_until_balanced(b'<', b'>')?;
            self.tok = self.lex.next()?;
            parse_memref_payload(&payload)
                .ok_or_else(|| self.err(format!("bad memref type 'memref<{payload}>'")))
        } else {
            self.parse_type()
        }
    }

    // ---- module -------------------------------------------------------

    fn parse_module(&mut self, default_name: &str) -> Result<MlirModule> {
        let mut m = MlirModule::new(default_name);
        if self.at_word("module") {
            self.bump()?;
            if let Tok::Sym(_) = &self.tok {
                let Tok::Sym(n) = self.bump()? else {
                    unreachable!()
                };
                m.name = n;
            }
            self.eat_punct('{')?;
            while self.tok != Tok::Punct('}') {
                m.ops.push(self.parse_func()?);
            }
            self.eat_punct('}')?;
        } else {
            while self.tok != Tok::Eof {
                m.ops.push(self.parse_func()?);
            }
        }
        Ok(m)
    }

    fn parse_func(&mut self) -> Result<Op> {
        self.eat_word("func.func")?;
        let name = match self.bump()? {
            Tok::Sym(n) => n,
            other => return Err(self.err(format!("expected @name, got {other:?}"))),
        };
        self.eat_punct('(')?;
        let mut env: Env = HashMap::new();
        let mut param_names = Vec::new();
        let mut param_types = Vec::new();
        while self.tok != Tok::Punct(')') {
            let pname = self.take_val()?;
            self.eat_punct(':')?;
            let ty = self.parse_type_pos()?;
            param_names.push(pname);
            param_types.push(ty);
            if self.tok == Tok::Punct(',') {
                self.bump()?;
            }
        }
        self.eat_punct(')')?;
        // Optional `-> type`.
        let mut ret_ty = MType::None;
        if self.tok == Tok::Punct('-') {
            self.bump()?;
            self.eat_punct('>')?;
            ret_ty = self.parse_type_pos()?;
        }
        let mut f = func_ops::func(&name, param_types, ret_ty);
        // Optional `attributes {...}`.
        if self.at_word("attributes") {
            self.bump()?;
            let attrs = self.parse_attr_dict()?;
            f.attrs.extend(attrs);
        }
        for (i, n) in param_names.iter().enumerate() {
            env.insert(n.clone(), f.regions[0].entry().arg(i as u32));
        }
        self.eat_punct('{')?;
        let mut body = Vec::new();
        while self.tok != Tok::Punct('}') {
            body.push(self.parse_op(&mut env)?);
        }
        self.eat_punct('}')?;
        ensure_terminated(&mut body, "func.return");
        f.regions[0].entry_mut().ops = body;
        Ok(f)
    }

    fn parse_attr_dict(&mut self) -> Result<Vec<(String, Attr)>> {
        self.eat_punct('{')?;
        let mut out = Vec::new();
        while self.tok != Tok::Punct('}') {
            let key = match self.bump()? {
                Tok::Word(w) => w,
                other => return Err(self.err(format!("expected attr key, got {other:?}"))),
            };
            if self.tok == Tok::Punct('=') {
                self.bump()?;
                let attr = self.parse_attr_value()?;
                out.push((key, attr));
            } else {
                out.push((key, Attr::Unit));
            }
            if self.tok == Tok::Punct(',') {
                self.bump()?;
            }
        }
        self.eat_punct('}')?;
        Ok(out)
    }

    fn parse_attr_value(&mut self) -> Result<Attr> {
        match self.bump()? {
            Tok::Int(v) => {
                let mut ty = MType::I64;
                if self.tok == Tok::Punct(':') {
                    self.bump()?;
                    ty = self.parse_type_pos()?;
                }
                Ok(Attr::Int(v, ty))
            }
            Tok::Float(v) => {
                let mut ty = MType::F64;
                if self.tok == Tok::Punct(':') {
                    self.bump()?;
                    ty = self.parse_type_pos()?;
                }
                Ok(Attr::Float(v, ty))
            }
            Tok::Str(s) => Ok(Attr::Str(s)),
            Tok::Word(w) if w == "true" => Ok(Attr::Bool(true)),
            Tok::Word(w) if w == "false" => Ok(Attr::Bool(false)),
            Tok::Word(w) if w == "unit" => Ok(Attr::Unit),
            other => Err(self.err(format!("unsupported attribute value {other:?}"))),
        }
    }

    // ---- operations ----------------------------------------------------

    fn parse_op(&mut self, env: &mut Env) -> Result<Op> {
        // Optional result binding.
        let result_name = if let Tok::Val(_) = &self.tok {
            let Tok::Val(n) = self.bump()? else {
                unreachable!()
            };
            self.eat_punct('=')?;
            Some(n)
        } else {
            None
        };
        let opname = match self.bump()? {
            Tok::Word(w) => w,
            other => return Err(self.err(format!("expected op name, got {other:?}"))),
        };
        let op = self.parse_op_body(&opname, env)?;
        if let Some(n) = result_name {
            if op.result_types.is_empty() {
                return Err(self.err(format!("%{n} bound to result-less op {opname}")));
            }
            env.insert(n, op.result(0));
        }
        Ok(op)
    }

    fn parse_op_body(&mut self, opname: &str, env: &mut Env) -> Result<Op> {
        match opname {
            "affine.for" => self.parse_affine_for(env),
            "affine.load" => {
                let mref = self.take_and_lookup(env)?;
                let (map, dims) = self.parse_subscripts(env)?;
                self.eat_punct(':')?;
                let _ty = self.parse_type_pos()?;
                Ok(affine_ops::load(mref, map, dims))
            }
            "affine.store" => {
                let v = self.take_and_lookup(env)?;
                self.eat_punct(',')?;
                let mref = self.take_and_lookup(env)?;
                let (map, dims) = self.parse_subscripts(env)?;
                self.eat_punct(':')?;
                let _ty = self.parse_type_pos()?;
                Ok(affine_ops::store(v, mref, map, dims))
            }
            "affine.apply" => {
                self.eat_punct('(')?;
                let (expr, dims) = self.parse_affine_expr(env)?;
                self.eat_punct(')')?;
                let map = AffineMap::new(dims.len() as u32, 0, vec![expr]);
                Ok(affine_ops::apply(map, dims))
            }
            "affine.yield" => Ok(affine_ops::yield_()),
            "func.return" => {
                if let Tok::Val(_) = &self.tok {
                    let v = self.take_and_lookup(env)?;
                    self.eat_punct(':')?;
                    let _ = self.parse_type_pos()?;
                    Ok(func_ops::ret(Some(v)))
                } else {
                    Ok(func_ops::ret(None))
                }
            }
            "func.call" => {
                let callee = match self.bump()? {
                    Tok::Sym(s) => s,
                    other => return Err(self.err(format!("expected @callee, got {other:?}"))),
                };
                self.eat_punct('(')?;
                let mut args = Vec::new();
                while self.tok != Tok::Punct(')') {
                    args.push(self.take_and_lookup(env)?);
                    if self.tok == Tok::Punct(',') {
                        self.bump()?;
                    }
                }
                self.eat_punct(')')?;
                self.eat_punct(':')?;
                self.eat_punct('(')?;
                while self.tok != Tok::Punct(')') {
                    let _ = self.parse_type_pos()?;
                    if self.tok == Tok::Punct(',') {
                        self.bump()?;
                    }
                }
                self.eat_punct(')')?;
                self.eat_punct('-')?;
                self.eat_punct('>')?;
                self.eat_punct('(')?;
                let mut ret = None;
                while self.tok != Tok::Punct(')') {
                    ret = Some(self.parse_type_pos()?);
                    if self.tok == Tok::Punct(',') {
                        self.bump()?;
                    }
                }
                self.eat_punct(')')?;
                Ok(func_ops::call(&callee, args, ret))
            }
            "arith.constant" => {
                let attr = self.parse_attr_value()?;
                Ok(match attr {
                    Attr::Int(v, ty) => arith::const_int(v, ty),
                    Attr::Float(v, ty) => arith::const_float(v, ty),
                    other => return Err(self.err(format!("bad constant {other:?}"))),
                })
            }
            "arith.cmpi" | "arith.cmpf" => {
                let pred = match self.bump()? {
                    Tok::Word(w) => w,
                    other => return Err(self.err(format!("expected predicate, got {other:?}"))),
                };
                self.eat_punct(',')?;
                let a = self.take_and_lookup(env)?;
                self.eat_punct(',')?;
                let b = self.take_and_lookup(env)?;
                self.eat_punct(':')?;
                let _ = self.parse_type_pos()?;
                Ok(if opname == "arith.cmpi" {
                    arith::cmpi(&pred, a, b)
                } else {
                    arith::cmpf(&pred, a, b)
                })
            }
            "arith.select" => {
                let c = self.take_and_lookup(env)?;
                self.eat_punct(',')?;
                let a = self.take_and_lookup(env)?;
                self.eat_punct(',')?;
                let b = self.take_and_lookup(env)?;
                self.eat_punct(':')?;
                let _ = self.parse_type_pos()?;
                Ok(arith::select(c, a, b))
            }
            "arith.index_cast" | "arith.sitofp" | "arith.fptosi" => {
                let v = self.take_and_lookup(env)?;
                self.eat_punct(':')?;
                let _from = self.parse_type_pos()?;
                self.eat_word("to")?;
                let to = self.parse_type_pos()?;
                Ok(match opname {
                    "arith.index_cast" => arith::index_cast(v, to),
                    "arith.sitofp" => arith::sitofp(v, to),
                    _ => arith::fptosi(v, to),
                })
            }
            name if name.starts_with("arith.") => {
                let a = self.take_and_lookup(env)?;
                if name == "arith.negf" {
                    self.eat_punct(':')?;
                    let _ = self.parse_type_pos()?;
                    return Ok(arith::negf(a));
                }
                self.eat_punct(',')?;
                let b = self.take_and_lookup(env)?;
                self.eat_punct(':')?;
                let _ = self.parse_type_pos()?;
                let op = match name {
                    "arith.addi" => arith::addi(a, b),
                    "arith.subi" => arith::subi(a, b),
                    "arith.muli" => arith::muli(a, b),
                    "arith.divsi" => arith::divsi(a, b),
                    "arith.remsi" => arith::remsi(a, b),
                    "arith.addf" => arith::addf(a, b),
                    "arith.subf" => arith::subf(a, b),
                    "arith.mulf" => arith::mulf(a, b),
                    "arith.divf" => arith::divf(a, b),
                    other => return Err(self.err(format!("unknown op '{other}'"))),
                };
                Ok(op)
            }
            name if name.starts_with("math.") => {
                let a = self.take_and_lookup(env)?;
                self.eat_punct(':')?;
                let _ = self.parse_type_pos()?;
                Ok(match name {
                    "math.sqrt" => math::sqrt(a),
                    "math.exp" => math::exp(a),
                    "math.absf" => math::absf(a),
                    other => return Err(self.err(format!("unknown op '{other}'"))),
                })
            }
            "memref.alloca" | "memref.alloc" => {
                self.eat_punct('(')?;
                self.eat_punct(')')?;
                self.eat_punct(':')?;
                let ty = self.parse_type_pos()?;
                Ok(if opname == "memref.alloca" {
                    memref::alloca(ty)
                } else {
                    memref::alloc(ty)
                })
            }
            "memref.dealloc" => {
                let v = self.take_and_lookup(env)?;
                self.eat_punct(':')?;
                let _ = self.parse_type_pos()?;
                Ok(memref::dealloc(v))
            }
            "memref.load" => {
                let mref = self.take_and_lookup(env)?;
                self.eat_punct('[')?;
                let mut idx = Vec::new();
                while self.tok != Tok::Punct(']') {
                    idx.push(self.take_and_lookup(env)?);
                    if self.tok == Tok::Punct(',') {
                        self.bump()?;
                    }
                }
                self.eat_punct(']')?;
                self.eat_punct(':')?;
                let _ = self.parse_type_pos()?;
                Ok(memref::load(mref, idx))
            }
            "memref.store" => {
                let v = self.take_and_lookup(env)?;
                self.eat_punct(',')?;
                let mref = self.take_and_lookup(env)?;
                self.eat_punct('[')?;
                let mut idx = Vec::new();
                while self.tok != Tok::Punct(']') {
                    idx.push(self.take_and_lookup(env)?);
                    if self.tok == Tok::Punct(',') {
                        self.bump()?;
                    }
                }
                self.eat_punct(']')?;
                self.eat_punct(':')?;
                let _ = self.parse_type_pos()?;
                Ok(memref::store(v, mref, idx))
            }
            other => Err(self.err(format!("unknown or unparseable op '{other}'"))),
        }
    }

    fn parse_affine_for(&mut self, env: &mut Env) -> Result<Op> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(self.err(format!(
                "loop nesting deeper than {MAX_NESTING_DEPTH} levels"
            )));
        }
        let op = self.parse_affine_for_inner(env);
        self.depth -= 1;
        op
    }

    fn parse_affine_for_inner(&mut self, env: &mut Env) -> Result<Op> {
        let iv_name = self.take_val()?;
        self.eat_punct('=')?;
        let lb = match self.bump()? {
            Tok::Int(v) => v,
            other => return Err(self.err(format!("expected constant lower bound, got {other:?}"))),
        };
        self.eat_word("to")?;
        let ub = match self.bump()? {
            Tok::Int(v) => v,
            other => return Err(self.err(format!("expected constant upper bound, got {other:?}"))),
        };
        let mut step = 1;
        if self.at_word("step") {
            self.bump()?;
            step = match self.bump()? {
                Tok::Int(v) => v,
                other => return Err(self.err(format!("expected step, got {other:?}"))),
            };
        }
        let mut l = affine_ops::for_loop(lb, ub, step);
        let mut inner_env = env.clone();
        inner_env.insert(iv_name, l.regions[0].entry().arg(0));
        self.eat_punct('{')?;
        let mut body = Vec::new();
        while self.tok != Tok::Punct('}') {
            body.push(self.parse_op(&mut inner_env)?);
        }
        self.eat_punct('}')?;
        ensure_terminated(&mut body, "affine.yield");
        l.regions[0].entry_mut().ops = body;
        // Optional trailing attr dict: `} {hls.pipeline_ii = 1 : i32}`.
        if self.tok == Tok::Punct('{') {
            for (k, v) in self.parse_attr_dict()? {
                l.attrs.insert(k, v);
            }
        }
        Ok(l)
    }

    /// Parse `[expr, expr, ...]` subscripts into an affine map plus the
    /// distinct dim operands it references (in first-use order).
    fn parse_subscripts(&mut self, env: &Env) -> Result<(AffineMap, Vec<MValue>)> {
        self.eat_punct('[')?;
        let mut dims: Vec<MValue> = Vec::new();
        let mut dim_names: Vec<String> = Vec::new();
        let mut results = Vec::new();
        while self.tok != Tok::Punct(']') {
            let expr = self.parse_affine_expr_with(env, &mut dims, &mut dim_names)?;
            results.push(expr);
            if self.tok == Tok::Punct(',') {
                self.bump()?;
            }
        }
        self.eat_punct(']')?;
        let map = AffineMap::new(dims.len() as u32, 0, results);
        Ok((map, dims))
    }

    fn parse_affine_expr(&mut self, env: &Env) -> Result<(AffineExpr, Vec<MValue>)> {
        let mut dims = Vec::new();
        let mut names = Vec::new();
        let e = self.parse_affine_expr_with(env, &mut dims, &mut names)?;
        Ok((e, dims))
    }

    fn parse_affine_expr_with(
        &mut self,
        env: &Env,
        dims: &mut Vec<MValue>,
        dim_names: &mut Vec<String>,
    ) -> Result<AffineExpr> {
        let mut acc = self.parse_affine_term(env, dims, dim_names)?;
        loop {
            match &self.tok {
                Tok::Punct('+') => {
                    self.bump()?;
                    let t = self.parse_affine_term(env, dims, dim_names)?;
                    acc = acc.add(t);
                }
                Tok::Punct('-') => {
                    self.bump()?;
                    let t = self.parse_affine_term(env, dims, dim_names)?;
                    acc = acc.sub(t);
                }
                // Negative int literal directly after a term means
                // subtraction was lexed into the literal; handle it.
                Tok::Int(v) if *v < 0 => {
                    let v = *v;
                    self.bump()?;
                    acc = acc.add(AffineExpr::cst(v));
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn parse_affine_term(
        &mut self,
        env: &Env,
        dims: &mut Vec<MValue>,
        dim_names: &mut Vec<String>,
    ) -> Result<AffineExpr> {
        let mut dim_of = |p: &Parser<'a>, name: &str| -> Result<AffineExpr> {
            if let Some(pos) = dim_names.iter().position(|n| n == name) {
                return Ok(AffineExpr::dim(pos as u32));
            }
            let v = p.lookup(env, name)?;
            dims.push(v);
            dim_names.push(name.to_string());
            Ok(AffineExpr::dim((dims.len() - 1) as u32))
        };
        match self.bump()? {
            Tok::Int(k) => {
                if self.tok == Tok::Punct('*') {
                    self.bump()?;
                    let name = self.take_val()?;
                    let d = dim_of(self, &name)?;
                    Ok(d.mul(AffineExpr::cst(k)))
                } else {
                    Ok(AffineExpr::cst(k))
                }
            }
            Tok::Val(name) => {
                let d = dim_of(self, &name)?;
                if self.tok == Tok::Punct('*') {
                    self.bump()?;
                    match self.bump()? {
                        Tok::Int(k) => Ok(d.mul(AffineExpr::cst(k))),
                        other => Err(self.err(format!("expected constant factor, got {other:?}"))),
                    }
                } else {
                    Ok(d)
                }
            }
            other => Err(self.err(format!("expected affine term, got {other:?}"))),
        }
    }
}

/// `32x32xf32` → memref type. Dimensions are the leading `<n>x` / `?x`
/// prefixes; the remainder is the element type (which may itself contain
/// an `x`, as in `index`).
fn parse_memref_payload(payload: &str) -> Option<MType> {
    let mut rest = payload;
    let mut shape = Vec::new();
    loop {
        if let Some(tail) = rest.strip_prefix("?x") {
            shape.push(-1);
            rest = tail;
            continue;
        }
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if !digits.is_empty() && rest[digits.len()..].starts_with('x') {
            shape.push(digits.parse::<i64>().ok()?);
            rest = &rest[digits.len() + 1..];
            continue;
        }
        break;
    }
    let elem = match rest {
        "f32" => MType::F32,
        "f64" => MType::F64,
        "index" => MType::Index,
        w if w.starts_with('i') && w[1..].chars().all(|c| c.is_ascii_digit()) => {
            MType::Int(w[1..].parse().ok()?)
        }
        _ => return None,
    };
    Some(MType::MemRef {
        shape,
        elem: Box::new(elem),
    })
}

fn ensure_terminated(body: &mut Vec<Op>, terminator: &str) {
    let needs = body.last().map(|o| o.name != terminator).unwrap_or(true);
    if needs {
        body.push(Op::new(terminator));
    }
}

/// Parse MLIR text into a module.
pub fn parse_module(name: &str, src: &str) -> Result<MlirModule> {
    Parser::new(src)?.parse_module(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialects::hls;
    use crate::printer::print_module;

    const GEMM: &str = r#"
module @gemm {
  func.func @gemm(%A: memref<8x8xf32>, %B: memref<8x8xf32>, %C: memref<8x8xf32>) attributes {hls.top} {
    affine.for %i = 0 to 8 {
      affine.for %j = 0 to 8 {
        %zero = arith.constant 0.0 : f32
        affine.store %zero, %C[%i, %j] : memref<8x8xf32>
        affine.for %k = 0 to 8 {
          %a = affine.load %A[%i, %k] : memref<8x8xf32>
          %b = affine.load %B[%k, %j] : memref<8x8xf32>
          %c = affine.load %C[%i, %j] : memref<8x8xf32>
          %p = arith.mulf %a, %b : f32
          %s = arith.addf %c, %p : f32
          affine.store %s, %C[%i, %j] : memref<8x8xf32>
        } {hls.pipeline_ii = 1 : i32}
      }
    }
    func.return
  }
}
"#;

    #[test]
    fn parses_gemm() {
        let m = parse_module("gemm", GEMM).unwrap();
        let f = m.func("gemm").unwrap();
        assert_eq!(f.regions[0].entry().arg_types.len(), 3);
        assert_eq!(m.count_ops(|o| o.name == "affine.for"), 3);
        assert_eq!(m.count_ops(|o| o.name == "affine.load"), 3);
        assert_eq!(m.count_ops(|o| o.name == "affine.store"), 2);
        // Directive survived on the innermost loop.
        let mut found = 0;
        m.walk(&mut |o| {
            if o.name == "affine.for" && hls::pipeline_ii(o) == Some(1) {
                found += 1;
            }
        });
        assert_eq!(found, 1);
    }

    #[test]
    fn implicit_yields_are_inserted() {
        let m = parse_module("gemm", GEMM).unwrap();
        assert_eq!(m.count_ops(|o| o.name == "affine.yield"), 3);
        assert_eq!(m.count_ops(|o| o.name == "func.return"), 1);
    }

    #[test]
    fn round_trips_through_printer() {
        let m1 = parse_module("gemm", GEMM).unwrap();
        let t1 = print_module(&m1);
        let m2 = parse_module("gemm", &t1).unwrap();
        let t2 = print_module(&m2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn stencil_subscripts() {
        let src = r#"
func.func @blur(%in: memref<16xf32>, %out: memref<16xf32>) {
  affine.for %i = 1 to 15 {
    %l = affine.load %in[%i - 1] : memref<16xf32>
    %c = affine.load %in[%i] : memref<16xf32>
    %r = affine.load %in[%i + 1] : memref<16xf32>
    %s = arith.addf %l, %c : f32
    %t = arith.addf %s, %r : f32
    affine.store %t, %out[%i] : memref<16xf32>
  }
  func.return
}
"#;
        let m = parse_module("blur", src).unwrap();
        let mut maps = Vec::new();
        m.walk(&mut |o| {
            if o.name == "affine.load" {
                maps.push(o.attrs.get("map").and_then(Attr::as_map).unwrap().clone());
            }
        });
        assert_eq!(maps.len(), 3);
        assert_eq!(maps[0].eval(&[5], &[]), vec![4]);
        assert_eq!(maps[1].eval(&[5], &[]), vec![5]);
        assert_eq!(maps[2].eval(&[5], &[]), vec![6]);
    }

    #[test]
    fn scaled_subscripts() {
        let src = r#"
func.func @strided(%in: memref<32xf32>, %out: memref<16xf32>) {
  affine.for %i = 0 to 16 {
    %v = affine.load %in[2 * %i] : memref<32xf32>
    affine.store %v, %out[%i] : memref<16xf32>
  }
  func.return
}
"#;
        let m = parse_module("s", src).unwrap();
        let mut map = None;
        m.walk(&mut |o| {
            if o.name == "affine.load" {
                map = o.attrs.get("map").and_then(Attr::as_map).cloned();
            }
        });
        assert_eq!(map.unwrap().eval(&[3], &[]), vec![6]);
    }

    #[test]
    fn memref_with_dynamic_dim() {
        assert_eq!(
            parse_memref_payload("?x8xf32"),
            Some(MType::F32.memref(&[-1, 8]))
        );
        assert_eq!(parse_memref_payload("f64"), Some(MType::F64.memref(&[])));
        assert_eq!(parse_memref_payload("zzz"), None);
    }

    #[test]
    fn local_buffers_and_step() {
        let src = r#"
func.func @f() {
  %buf = memref.alloca() : memref<4xf32>
  affine.for %i = 0 to 4 step 2 {
    %c = arith.constant 1.5 : f32
    affine.store %c, %buf[%i] : memref<4xf32>
  }
  func.return
}
"#;
        let m = parse_module("f", src).unwrap();
        assert_eq!(m.count_ops(|o| o.name == "memref.alloca"), 1);
        let mut step = None;
        m.walk(&mut |o| {
            if o.name == "affine.for" {
                step = o.int_attr("step");
            }
        });
        assert_eq!(step, Some(2));
    }

    #[test]
    fn undefined_value_is_an_error() {
        let src = "func.func @f() {\n  %x = arith.addi %nope, %nope : i32\n  func.return\n}\n";
        let e = parse_module("f", src).unwrap_err();
        assert!(e.to_string().contains("undefined value"));
    }

    #[test]
    fn iv_scoping_is_per_loop() {
        // %i must not leak out of its loop.
        let src = r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %m[%i] : memref<4xf32>
  }
  %w = affine.load %m[%i] : memref<4xf32>
  func.return
}
"#;
        assert!(parse_module("f", src).is_err());
    }

    #[test]
    fn cmp_and_select_parse() {
        let src = r#"
func.func @relu(%m: memref<8xf32>) {
  affine.for %i = 0 to 8 {
    %v = affine.load %m[%i] : memref<8xf32>
    %z = arith.constant 0.0 : f32
    %c = arith.cmpf olt, %v, %z : f32
    %r = arith.select %c, %z, %v : f32
    affine.store %r, %m[%i] : memref<8xf32>
  }
  func.return
}
"#;
        let m = parse_module("relu", src).unwrap();
        assert_eq!(m.count_ops(|o| o.name == "arith.select"), 1);
        assert_eq!(m.count_ops(|o| o.name == "arith.cmpf"), 1);
    }

    #[test]
    fn absurd_integer_width_is_a_parse_error_not_a_panic() {
        let src = "func.func @f(%a: i99999999999999999999) {\n  func.return\n}\n";
        let e = parse_module("m", src).unwrap_err();
        assert!(e.to_string().contains("integer type width"), "{e}");
    }

    #[test]
    fn multibyte_char_after_exponent_is_an_error_not_a_panic() {
        // `1.5eé` used to slice the source mid-character and abort on
        // `from_utf8(...).unwrap()`; it must be a located diagnostic.
        let src = "func.func @f() {\n  %c = arith.constant 1.5eé : f32\n  func.return\n}\n";
        let e = parse_module("m", src).unwrap_err();
        assert!(e.to_string().contains("malformed float exponent"), "{e}");
        assert!(e.to_string().contains("line 2"), "{e}");
    }

    #[test]
    fn exponent_without_digits_is_an_error() {
        for bad in ["1.5e", "1.5e+", "1.5e-", "2.0E }"] {
            let src = format!("func.func @f() {{\n  %c = arith.constant {bad} : f32\n}}\n");
            let e = parse_module("m", &src).unwrap_err();
            assert!(
                e.to_string().contains("malformed float exponent"),
                "{bad}: {e}"
            );
        }
    }

    #[test]
    fn exponent_forms_still_parse() {
        for (text, want) in [("1.5e3", 1.5e3), ("1.5e+3", 1.5e3), ("2.5e-2", 2.5e-2)] {
            let src = format!(
                "func.func @f() {{\n  %c = arith.constant {text} : f32\n  func.return\n}}\n"
            );
            let m = parse_module("m", &src).unwrap();
            let mut got = None;
            m.walk(&mut |o| {
                if o.name == "arith.constant" {
                    got = o.attrs.get("value").and_then(Attr::as_float);
                }
            });
            assert_eq!(got, Some(want), "{text}");
        }
    }

    #[test]
    fn pathological_nesting_is_an_error_not_a_stack_overflow() {
        let mut src = String::from("func.func @f() {\n");
        for d in 0..4000 {
            src.push_str(&format!("affine.for %i{d} = 0 to 2 {{\n"));
        }
        // No closers needed: the depth limit must trip long before EOF.
        let e = parse_module("m", &src).unwrap_err();
        assert!(e.to_string().contains("nesting deeper"), "{e}");
    }

    #[test]
    fn unterminated_constructs_are_errors() {
        for bad in [
            "func.func @f(%a: memref<8xf32",       // unterminated type bracket
            "func.func @f() attributes {x = \"ab", // unterminated string
            "func.func @f() {\n  affine.for %i = 0 to 4 {\n", // unterminated region
        ] {
            assert!(parse_module("m", bad).is_err(), "{bad:?}");
        }
    }
}
