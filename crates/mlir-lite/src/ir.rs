//! The generic operation/region/block structure, after MLIR.
//!
//! Ownership is a plain tree: a module owns top-level operations, an
//! operation owns its regions, a region owns its blocks, a block owns its
//! operations. Values are small handles that carry their type inline and
//! identify their definer by a module-unique uid, so walking passes never
//! need a side table just to know a value's type.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::attr::Attr;

/// Process-global uid source for operations and blocks. Uniqueness (not
/// density) is the contract; cloned subtrees must be re-uniqued via
/// [`Op::deep_clone`].
static NEXT_UID: AtomicU32 = AtomicU32::new(1);

fn fresh_uid() -> u32 {
    NEXT_UID.fetch_add(1, Ordering::Relaxed)
}

/// MLIR-side types.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum MType {
    /// Platform index type (lowered to `i64`).
    Index,
    /// `iN`.
    Int(u32),
    /// `f32`.
    F32,
    /// `f64`.
    F64,
    /// `memref<AxBx..xT>`; empty shape = rank-0. `-1` encodes a dynamic
    /// dimension (`?`).
    MemRef { shape: Vec<i64>, elem: Box<MType> },
    /// LLVM-dialect pointer (appears after the memref lowering stage).
    LlvmPtr(Box<MType>),
    /// LLVM-dialect array.
    LlvmArray(u64, Box<MType>),
    /// The absence of a value (used for functions that return nothing).
    None,
}

impl MType {
    /// `i1`.
    pub const I1: MType = MType::Int(1);
    /// `i32`.
    pub const I32: MType = MType::Int(32);
    /// `i64`.
    pub const I64: MType = MType::Int(64);

    /// `memref<shape x self>`.
    pub fn memref(&self, shape: &[i64]) -> MType {
        MType::MemRef {
            shape: shape.to_vec(),
            elem: Box::new(self.clone()),
        }
    }

    /// True for `f32`/`f64`.
    pub fn is_float(&self) -> bool {
        matches!(self, MType::F32 | MType::F64)
    }

    /// True for `iN` or `index`.
    pub fn is_int_like(&self) -> bool {
        matches!(self, MType::Int(_) | MType::Index)
    }

    /// Memref element type.
    pub fn memref_elem(&self) -> Option<&MType> {
        match self {
            MType::MemRef { elem, .. } => Some(elem),
            _ => None,
        }
    }

    /// Memref shape.
    pub fn memref_shape(&self) -> Option<&[i64]> {
        match self {
            MType::MemRef { shape, .. } => Some(shape),
            _ => None,
        }
    }

    /// Total static element count of a memref (None if any dim is dynamic).
    pub fn memref_len(&self) -> Option<i64> {
        let shape = self.memref_shape()?;
        let mut n = 1i64;
        for &d in shape {
            if d < 0 {
                return None;
            }
            n *= d;
        }
        Some(n)
    }
}

impl fmt::Display for MType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MType::Index => write!(f, "index"),
            MType::Int(w) => write!(f, "i{w}"),
            MType::F32 => write!(f, "f32"),
            MType::F64 => write!(f, "f64"),
            MType::MemRef { shape, elem } => {
                write!(f, "memref<")?;
                for d in shape {
                    if *d < 0 {
                        write!(f, "?x")?;
                    } else {
                        write!(f, "{d}x")?;
                    }
                }
                write!(f, "{elem}>")
            }
            MType::LlvmPtr(p) => write!(f, "!llvm.ptr<{p}>"),
            MType::LlvmArray(n, e) => write!(f, "!llvm.array<{n} x {e}>"),
            MType::None => write!(f, "none"),
        }
    }
}

/// What defines a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MValueKind {
    /// `idx`-th result of the operation with the given uid.
    OpResult { op: u32, idx: u32 },
    /// `idx`-th argument of the block with the given uid.
    BlockArg { block: u32, idx: u32 },
}

/// An SSA value: definer handle plus inline type.
#[derive(Clone, Debug, PartialEq)]
pub struct MValue {
    /// Who defines it.
    pub kind: MValueKind,
    /// Its type.
    pub ty: MType,
}

/// One operation.
#[derive(Debug)]
pub struct Op {
    /// Module-unique id.
    pub uid: u32,
    /// Fully-qualified name, e.g. `affine.for`.
    pub name: String,
    /// SSA operands.
    pub operands: Vec<MValue>,
    /// Result types (results are referenced as `MValueKind::OpResult`).
    pub result_types: Vec<MType>,
    /// Attributes.
    pub attrs: BTreeMap<String, Attr>,
    /// Nested regions.
    pub regions: Vec<Region>,
    /// Successor blocks (uids) for `cf`-style terminators, with the operands
    /// forwarded to each successor's block arguments.
    pub successors: Vec<(u32, Vec<MValue>)>,
}

impl Op {
    /// A fresh operation with no operands/results.
    pub fn new(name: impl Into<String>) -> Op {
        Op {
            uid: fresh_uid(),
            name: name.into(),
            operands: Vec::new(),
            result_types: Vec::new(),
            attrs: BTreeMap::new(),
            regions: Vec::new(),
            successors: Vec::new(),
        }
    }

    /// Builder-style operand attachment.
    pub fn with_operands(mut self, operands: Vec<MValue>) -> Op {
        self.operands = operands;
        self
    }

    /// Builder-style result types.
    pub fn with_results(mut self, result_types: Vec<MType>) -> Op {
        self.result_types = result_types;
        self
    }

    /// Builder-style attribute attachment.
    pub fn with_attr(mut self, key: impl Into<String>, value: Attr) -> Op {
        self.attrs.insert(key.into(), value);
        self
    }

    /// The `i`-th result as a value handle.
    pub fn result(&self, i: u32) -> MValue {
        MValue {
            kind: MValueKind::OpResult {
                op: self.uid,
                idx: i,
            },
            ty: self.result_types[i as usize].clone(),
        }
    }

    /// The dialect prefix of the op name (`affine` for `affine.for`).
    pub fn dialect(&self) -> &str {
        self.name.split('.').next().unwrap_or("")
    }

    /// Integer attribute accessor.
    pub fn int_attr(&self, key: &str) -> Option<i64> {
        self.attrs.get(key).and_then(Attr::as_int)
    }

    /// Deep clone with fresh uids for every op and block in the subtree;
    /// internal value references are remapped, external ones preserved.
    pub fn deep_clone(&self) -> Op {
        let mut op_map: BTreeMap<u32, u32> = BTreeMap::new();
        let mut block_map: BTreeMap<u32, u32> = BTreeMap::new();
        let mut cloned = self.clone_structure(&mut op_map, &mut block_map);
        remap_op(&mut cloned, &op_map, &block_map);
        cloned
    }

    fn clone_structure(
        &self,
        op_map: &mut BTreeMap<u32, u32>,
        block_map: &mut BTreeMap<u32, u32>,
    ) -> Op {
        let uid = fresh_uid();
        op_map.insert(self.uid, uid);
        Op {
            uid,
            name: self.name.clone(),
            operands: self.operands.clone(),
            result_types: self.result_types.clone(),
            attrs: self.attrs.clone(),
            regions: self
                .regions
                .iter()
                .map(|r| Region {
                    blocks: r
                        .blocks
                        .iter()
                        .map(|b| {
                            let buid = fresh_uid();
                            block_map.insert(b.uid, buid);
                            MBlock {
                                uid: buid,
                                arg_types: b.arg_types.clone(),
                                ops: b
                                    .ops
                                    .iter()
                                    .map(|o| o.clone_structure(op_map, block_map))
                                    .collect(),
                            }
                        })
                        .collect(),
                })
                .collect(),
            successors: self.successors.clone(),
        }
    }

    /// Walk the subtree (self included), pre-order.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Op)) {
        visit(self);
        for r in &self.regions {
            for b in &r.blocks {
                for o in &b.ops {
                    o.walk(visit);
                }
            }
        }
    }

    /// Walk mutably (post-order on children first would invalidate borrows;
    /// this is pre-order with a callback that may edit attrs/operands but not
    /// structure).
    pub fn walk_mut(&mut self, visit: &mut impl FnMut(&mut Op)) {
        visit(self);
        for r in &mut self.regions {
            for b in &mut r.blocks {
                for o in &mut b.ops {
                    o.walk_mut(visit);
                }
            }
        }
    }

    /// Count ops in the subtree matching a predicate.
    pub fn count_ops(&self, pred: impl Fn(&Op) -> bool) -> usize {
        let mut n = 0;
        self.walk(&mut |o| {
            if pred(o) {
                n += 1;
            }
        });
        n
    }
}

fn remap_value(v: &mut MValue, op_map: &BTreeMap<u32, u32>, block_map: &BTreeMap<u32, u32>) {
    match &mut v.kind {
        MValueKind::OpResult { op, .. } => {
            if let Some(&n) = op_map.get(op) {
                *op = n;
            }
        }
        MValueKind::BlockArg { block, .. } => {
            if let Some(&n) = block_map.get(block) {
                *block = n;
            }
        }
    }
}

fn remap_op(op: &mut Op, op_map: &BTreeMap<u32, u32>, block_map: &BTreeMap<u32, u32>) {
    for v in &mut op.operands {
        remap_value(v, op_map, block_map);
    }
    for (succ, args) in &mut op.successors {
        if let Some(&n) = block_map.get(succ) {
            *succ = n;
        }
        for v in args {
            remap_value(v, op_map, block_map);
        }
    }
    for r in &mut op.regions {
        for b in &mut r.blocks {
            for o in &mut b.ops {
                remap_op(o, op_map, block_map);
            }
        }
    }
}

/// A region: an ordered list of blocks (structured ops use exactly one).
#[derive(Debug, Default)]
pub struct Region {
    /// Blocks; the first is the region's entry.
    pub blocks: Vec<MBlock>,
}

impl Region {
    /// A region with a single empty block taking the given arguments.
    pub fn with_entry(arg_types: Vec<MType>) -> Region {
        Region {
            blocks: vec![MBlock::new(arg_types)],
        }
    }

    /// The entry block.
    pub fn entry(&self) -> &MBlock {
        &self.blocks[0]
    }

    /// The entry block, mutably.
    pub fn entry_mut(&mut self) -> &mut MBlock {
        &mut self.blocks[0]
    }
}

/// A block inside a region.
#[derive(Debug)]
pub struct MBlock {
    /// Module-unique id (block arguments are referenced against it).
    pub uid: u32,
    /// Argument types.
    pub arg_types: Vec<MType>,
    /// Operations in order; the last is the region terminator.
    pub ops: Vec<Op>,
}

impl MBlock {
    /// A fresh empty block.
    pub fn new(arg_types: Vec<MType>) -> MBlock {
        MBlock {
            uid: fresh_uid(),
            arg_types,
            ops: Vec::new(),
        }
    }

    /// The `i`-th block argument as a value.
    pub fn arg(&self, i: u32) -> MValue {
        MValue {
            kind: MValueKind::BlockArg {
                block: self.uid,
                idx: i,
            },
            ty: self.arg_types[i as usize].clone(),
        }
    }

    /// Append an op and return a handle to its `i`-th result.
    pub fn push(&mut self, op: Op) -> &Op {
        self.ops.push(op);
        self.ops.last().unwrap()
    }
}

/// A whole MLIR module: a list of top-level ops (normally `func.func`s).
#[derive(Debug, Default)]
pub struct MlirModule {
    /// Module symbol name.
    pub name: String,
    /// Top-level operations.
    pub ops: Vec<Op>,
}

impl MlirModule {
    /// An empty module.
    pub fn new(name: impl Into<String>) -> MlirModule {
        MlirModule {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Find a `func.func` by its `sym_name`.
    pub fn func(&self, name: &str) -> Option<&Op> {
        self.ops.iter().find(|o| {
            o.name == "func.func" && o.attrs.get("sym_name").and_then(Attr::as_str) == Some(name)
        })
    }

    /// Mutable [`MlirModule::func`].
    pub fn func_mut(&mut self, name: &str) -> Option<&mut Op> {
        self.ops.iter_mut().find(|o| {
            o.name == "func.func" && o.attrs.get("sym_name").and_then(Attr::as_str) == Some(name)
        })
    }

    /// Walk every op in the module.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Op)) {
        for o in &self.ops {
            o.walk(visit);
        }
    }

    /// Count ops matching a predicate across the module.
    pub fn count_ops(&self, pred: impl Fn(&Op) -> bool) -> usize {
        self.ops.iter().map(|o| o.count_ops(&pred)).sum()
    }

    /// Deep-clone the module with fresh uids everywhere.
    pub fn deep_clone(&self) -> MlirModule {
        MlirModule {
            name: self.name.clone(),
            ops: self.ops.iter().map(Op::deep_clone).collect(),
        }
    }
}

/// A lookup index from value handles to types/definers, built per walk.
/// Passes that need "who defines this value" build one over the relevant
/// function.
#[derive(Default)]
pub struct ValueIndex {
    defs: BTreeMap<u32, String>,
}

impl ValueIndex {
    /// Index every op uid -> op name within a function subtree.
    pub fn build(root: &Op) -> ValueIndex {
        let mut idx = ValueIndex::default();
        root.walk(&mut |o| {
            idx.defs.insert(o.uid, o.name.clone());
        });
        idx
    }

    /// The name of the op defining a value (None for block args/foreign).
    pub fn defining_op_name(&self, v: &MValue) -> Option<&str> {
        match v.kind {
            MValueKind::OpResult { op, .. } => self.defs.get(&op).map(String::as_str),
            MValueKind::BlockArg { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uids_are_unique() {
        let a = Op::new("test.a");
        let b = Op::new("test.b");
        assert_ne!(a.uid, b.uid);
        let blk1 = MBlock::new(vec![]);
        let blk2 = MBlock::new(vec![]);
        assert_ne!(blk1.uid, blk2.uid);
    }

    #[test]
    fn results_carry_types() {
        let op = Op::new("test.two").with_results(vec![MType::I32, MType::F32]);
        assert_eq!(op.result(0).ty, MType::I32);
        assert_eq!(op.result(1).ty, MType::F32);
        assert_eq!(
            op.result(1).kind,
            MValueKind::OpResult { op: op.uid, idx: 1 }
        );
    }

    #[test]
    fn memref_type_helpers() {
        let t = MType::F32.memref(&[32, 32]);
        assert_eq!(t.to_string(), "memref<32x32xf32>");
        assert_eq!(t.memref_len(), Some(1024));
        assert_eq!(t.memref_elem(), Some(&MType::F32));
        let dynamic = MType::F32.memref(&[-1, 8]);
        assert_eq!(dynamic.to_string(), "memref<?x8xf32>");
        assert_eq!(dynamic.memref_len(), None);
    }

    #[test]
    fn walk_counts_nested_ops() {
        let mut outer = Op::new("test.outer");
        let mut region = Region::with_entry(vec![MType::Index]);
        region.entry_mut().push(Op::new("test.inner"));
        region.entry_mut().push(Op::new("test.inner"));
        outer.regions.push(region);
        assert_eq!(outer.count_ops(|o| o.name == "test.inner"), 2);
        assert_eq!(outer.count_ops(|_| true), 3);
    }

    #[test]
    fn deep_clone_reuniques_and_remaps() {
        let mut outer = Op::new("test.outer");
        let mut region = Region::with_entry(vec![MType::Index]);
        let iv = region.entry().arg(0);
        let inner = Op::new("test.use")
            .with_operands(vec![iv])
            .with_results(vec![MType::Index]);
        let inner_uid = inner.uid;
        region.entry_mut().push(inner);
        outer.regions.push(region);

        let cloned = outer.deep_clone();
        assert_ne!(cloned.uid, outer.uid);
        let new_block = &cloned.regions[0].blocks[0];
        assert_ne!(new_block.uid, outer.regions[0].blocks[0].uid);
        let new_inner = &new_block.ops[0];
        assert_ne!(new_inner.uid, inner_uid);
        // The operand must now reference the *cloned* block's arg.
        assert_eq!(
            new_inner.operands[0].kind,
            MValueKind::BlockArg {
                block: new_block.uid,
                idx: 0
            }
        );
    }

    #[test]
    fn module_func_lookup() {
        let mut m = MlirModule::new("m");
        m.ops
            .push(Op::new("func.func").with_attr("sym_name", Attr::Str("gemm".into())));
        assert!(m.func("gemm").is_some());
        assert!(m.func("nope").is_none());
    }

    #[test]
    fn value_index_maps_definers() {
        let op = Op::new("arith.addi").with_results(vec![MType::I32]);
        let v = op.result(0);
        let mut holder = Op::new("func.func");
        let mut region = Region::with_entry(vec![]);
        region.entry_mut().push(op);
        holder.regions.push(region);
        let idx = ValueIndex::build(&holder);
        assert_eq!(idx.defining_op_name(&v), Some("arith.addi"));
        let blk = MBlock::new(vec![MType::I32]);
        assert_eq!(idx.defining_op_name(&blk.arg(0)), None);
    }

    #[test]
    fn dialect_prefix() {
        assert_eq!(Op::new("affine.for").dialect(), "affine");
        assert_eq!(Op::new("func.func").dialect(), "func");
    }
}
