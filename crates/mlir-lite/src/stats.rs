//! Structural statistics over modules — the raw material of the paper's
//! "expression details" argument (our Table 3).

use crate::attr::Attr;
use crate::ir::MlirModule;

/// Detail-retention metrics of one module.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModuleStats {
    /// Total operations.
    pub total_ops: usize,
    /// `affine.for` loops.
    pub affine_loops: usize,
    /// `affine.load`/`affine.store` accesses.
    pub affine_accesses: usize,
    /// Accesses whose subscript map is simple (bare dims/constants).
    pub simple_accesses: usize,
    /// Accesses with non-identity (but still affine) maps — the structure
    /// a C++ round-trip flattens into pointer arithmetic.
    pub structured_accesses: usize,
    /// Loops carrying any `hls.*` directive.
    pub directive_loops: usize,
    /// Distinct memref operands touched.
    pub memrefs: usize,
}

/// Compute [`ModuleStats`].
pub fn module_stats(m: &MlirModule) -> ModuleStats {
    let mut s = ModuleStats::default();
    let mut memref_uids = std::collections::BTreeSet::new();
    m.walk(&mut |op| {
        s.total_ops += 1;
        match op.name.as_str() {
            "affine.for" => {
                s.affine_loops += 1;
                if op.attrs.keys().any(|k| k.starts_with("hls.")) {
                    s.directive_loops += 1;
                }
            }
            "affine.load" | "affine.store" => {
                s.affine_accesses += 1;
                let mref_idx = usize::from(op.name == "affine.store");
                match op.operands[mref_idx].kind {
                    crate::ir::MValueKind::OpResult { op: uid, idx }
                    | crate::ir::MValueKind::BlockArg { block: uid, idx } => {
                        memref_uids.insert((uid, idx));
                    }
                }
                if let Some(map) = op.attrs.get("map").and_then(Attr::as_map) {
                    if map.is_simple() {
                        s.simple_accesses += 1;
                    } else {
                        s.structured_accesses += 1;
                    }
                }
            }
            _ => {}
        }
    });
    s.memrefs = memref_uids.len();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    #[test]
    fn counts_gemm_structure() {
        let src = r#"
func.func @gemm(%A: memref<4x4xf32>, %C: memref<4x4xf32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 4 {
      %a = affine.load %A[%i, %j] : memref<4x4xf32>
      affine.store %a, %C[%i, %j] : memref<4x4xf32>
    } {hls.pipeline_ii = 1 : i32}
  }
  func.return
}
"#;
        let m = parse_module("m", src).unwrap();
        let s = module_stats(&m);
        assert_eq!(s.affine_loops, 2);
        assert_eq!(s.affine_accesses, 2);
        assert_eq!(s.simple_accesses, 2);
        assert_eq!(s.structured_accesses, 0);
        assert_eq!(s.directive_loops, 1);
        assert_eq!(s.memrefs, 2);
    }

    #[test]
    fn stencil_maps_count_as_structured() {
        let src = r#"
func.func @blur(%in: memref<16xf32>, %out: memref<16xf32>) {
  affine.for %i = 1 to 15 {
    %l = affine.load %in[%i - 1] : memref<16xf32>
    %c = affine.load %in[%i] : memref<16xf32>
    affine.store %c, %out[%i] : memref<16xf32>
  }
  func.return
}
"#;
        let m = parse_module("m", src).unwrap();
        let s = module_stats(&m);
        assert_eq!(s.structured_accesses, 1); // %i - 1
        assert_eq!(s.simple_accesses, 2);
    }
}
