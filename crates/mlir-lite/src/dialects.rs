//! Dialect op constructors and encoding conventions.
//!
//! Each function builds one well-formed [`Op`]. The conventions (which
//! attribute holds what) are the single source of truth shared by the
//! builder, printer, parser, verifier and lowering:
//!
//! | op | operands | attrs | regions |
//! |----|----------|-------|---------|
//! | `func.func` | — | `sym_name`, `ret_type`, opt `hls.top` | 1 (entry args = params) |
//! | `func.return` | opt value | — | — |
//! | `func.call` | args | `callee` | — |
//! | `arith.constant` | — | `value` | — |
//! | `arith.<binop>` | a, b | — | — |
//! | `arith.cmpi/cmpf` | a, b | `predicate` | — |
//! | `arith.select` | c, a, b | — | — |
//! | `affine.for` | — | `lower_bound`, `upper_bound`, `step`, opt `hls.*` | 1 (1 index arg) |
//! | `affine.load` | memref, dims… | `map` | — |
//! | `affine.store` | value, memref, dims… | `map` | — |
//! | `affine.apply` | dims… | `map` | — |
//! | `scf.for` | lb, ub, step | opt `hls.*` | 1 (1 index arg) |
//! | `scf.if` | cond | — | 2 (then, else) |
//! | `memref.load` | memref, indices… | — | — |
//! | `memref.store` | value, memref, indices… | — | — |
//! | `cf.br` / `cf.cond_br` | (cond) | — | successors |

use crate::affine::AffineMap;
use crate::attr::Attr;
use crate::ir::{MBlock, MType, MValue, Op, Region};

/// `func` dialect.
pub mod func {
    use super::*;

    /// A `func.func` definition. The entry block of its single region holds
    /// the parameters as block arguments.
    pub fn func(name: &str, param_types: Vec<MType>, ret_type: MType) -> Op {
        let mut op = Op::new("func.func")
            .with_attr("sym_name", Attr::Str(name.to_string()))
            .with_attr("ret_type", Attr::Type(ret_type));
        op.regions.push(Region::with_entry(param_types));
        op
    }

    /// `func.return` with an optional value.
    pub fn ret(value: Option<MValue>) -> Op {
        Op::new("func.return").with_operands(value.into_iter().collect())
    }

    /// `func.call @callee(args) : -> ret`.
    pub fn call(callee: &str, args: Vec<MValue>, ret: Option<MType>) -> Op {
        Op::new("func.call")
            .with_attr("callee", Attr::SymbolRef(callee.to_string()))
            .with_operands(args)
            .with_results(ret.into_iter().collect())
    }
}

/// `arith` dialect.
pub mod arith {
    use super::*;

    /// `arith.constant <v> : index`.
    pub fn const_index(v: i64) -> Op {
        Op::new("arith.constant")
            .with_attr("value", Attr::Int(v, MType::Index))
            .with_results(vec![MType::Index])
    }

    /// `arith.constant <v> : iN`.
    pub fn const_int(v: i64, ty: MType) -> Op {
        Op::new("arith.constant")
            .with_attr("value", Attr::Int(v, ty.clone()))
            .with_results(vec![ty])
    }

    /// `arith.constant <v> : f32/f64`.
    pub fn const_float(v: f64, ty: MType) -> Op {
        Op::new("arith.constant")
            .with_attr("value", Attr::Float(v, ty.clone()))
            .with_results(vec![ty])
    }

    fn binop(name: &str, a: MValue, b: MValue) -> Op {
        let ty = a.ty.clone();
        Op::new(name)
            .with_operands(vec![a, b])
            .with_results(vec![ty])
    }

    /// Integer/index add.
    pub fn addi(a: MValue, b: MValue) -> Op {
        binop("arith.addi", a, b)
    }
    /// Integer/index sub.
    pub fn subi(a: MValue, b: MValue) -> Op {
        binop("arith.subi", a, b)
    }
    /// Integer/index mul.
    pub fn muli(a: MValue, b: MValue) -> Op {
        binop("arith.muli", a, b)
    }
    /// Signed division.
    pub fn divsi(a: MValue, b: MValue) -> Op {
        binop("arith.divsi", a, b)
    }
    /// Signed remainder.
    pub fn remsi(a: MValue, b: MValue) -> Op {
        binop("arith.remsi", a, b)
    }
    /// Float add.
    pub fn addf(a: MValue, b: MValue) -> Op {
        binop("arith.addf", a, b)
    }
    /// Float sub.
    pub fn subf(a: MValue, b: MValue) -> Op {
        binop("arith.subf", a, b)
    }
    /// Float mul.
    pub fn mulf(a: MValue, b: MValue) -> Op {
        binop("arith.mulf", a, b)
    }
    /// Float div.
    pub fn divf(a: MValue, b: MValue) -> Op {
        binop("arith.divf", a, b)
    }
    /// Float negation.
    pub fn negf(a: MValue) -> Op {
        let ty = a.ty.clone();
        Op::new("arith.negf")
            .with_operands(vec![a])
            .with_results(vec![ty])
    }

    /// `arith.cmpi <pred>` — predicates use LLVM spelling (`slt`, `sle`, …).
    pub fn cmpi(pred: &str, a: MValue, b: MValue) -> Op {
        Op::new("arith.cmpi")
            .with_attr("predicate", Attr::Str(pred.to_string()))
            .with_operands(vec![a, b])
            .with_results(vec![MType::I1])
    }

    /// `arith.cmpf <pred>` — `olt`, `oge`, ….
    pub fn cmpf(pred: &str, a: MValue, b: MValue) -> Op {
        Op::new("arith.cmpf")
            .with_attr("predicate", Attr::Str(pred.to_string()))
            .with_operands(vec![a, b])
            .with_results(vec![MType::I1])
    }

    /// `arith.select`.
    pub fn select(c: MValue, a: MValue, b: MValue) -> Op {
        let ty = a.ty.clone();
        Op::new("arith.select")
            .with_operands(vec![c, a, b])
            .with_results(vec![ty])
    }

    /// `arith.index_cast` between `index` and integers.
    pub fn index_cast(v: MValue, to: MType) -> Op {
        Op::new("arith.index_cast")
            .with_operands(vec![v])
            .with_results(vec![to])
    }

    /// `arith.sitofp`.
    pub fn sitofp(v: MValue, to: MType) -> Op {
        Op::new("arith.sitofp")
            .with_operands(vec![v])
            .with_results(vec![to])
    }

    /// `arith.fptosi`.
    pub fn fptosi(v: MValue, to: MType) -> Op {
        Op::new("arith.fptosi")
            .with_operands(vec![v])
            .with_results(vec![to])
    }
}

/// `math` dialect.
pub mod math {
    use super::*;

    fn unary(name: &str, v: MValue) -> Op {
        let ty = v.ty.clone();
        Op::new(name).with_operands(vec![v]).with_results(vec![ty])
    }

    /// `math.sqrt`.
    pub fn sqrt(v: MValue) -> Op {
        unary("math.sqrt", v)
    }
    /// `math.exp`.
    pub fn exp(v: MValue) -> Op {
        unary("math.exp", v)
    }
    /// `math.absf`.
    pub fn absf(v: MValue) -> Op {
        unary("math.absf", v)
    }
}

/// `memref` dialect.
pub mod memref {
    use super::*;

    /// Stack allocation of a static memref.
    pub fn alloca(ty: MType) -> Op {
        Op::new("memref.alloca").with_results(vec![ty])
    }

    /// Heap allocation of a static memref.
    pub fn alloc(ty: MType) -> Op {
        Op::new("memref.alloc").with_results(vec![ty])
    }

    /// Deallocation.
    pub fn dealloc(m: MValue) -> Op {
        Op::new("memref.dealloc").with_operands(vec![m])
    }

    /// Raw (non-affine) load.
    pub fn load(m: MValue, indices: Vec<MValue>) -> Op {
        let elem = m.ty.memref_elem().expect("memref operand").clone();
        let mut ops = vec![m];
        ops.extend(indices);
        Op::new("memref.load")
            .with_operands(ops)
            .with_results(vec![elem])
    }

    /// Raw (non-affine) store.
    pub fn store(v: MValue, m: MValue, indices: Vec<MValue>) -> Op {
        let mut ops = vec![v, m];
        ops.extend(indices);
        Op::new("memref.store").with_operands(ops)
    }
}

/// `affine` dialect.
pub mod affine {
    use super::*;

    /// `affine.for %iv = lb to ub step s` with constant bounds. The region's
    /// entry block has a single `index` argument (the IV) and must end in
    /// `affine.yield`.
    pub fn for_loop(lb: i64, ub: i64, step: i64) -> Op {
        assert!(step > 0, "affine.for step must be positive");
        let mut op = Op::new("affine.for")
            .with_attr("lower_bound", Attr::index(lb))
            .with_attr("upper_bound", Attr::index(ub))
            .with_attr("step", Attr::index(step));
        op.regions.push(Region::with_entry(vec![MType::Index]));
        op
    }

    /// `affine.load %m[map(dims)]`.
    pub fn load(m: MValue, map: AffineMap, dims: Vec<MValue>) -> Op {
        assert_eq!(map.num_dims as usize, dims.len(), "map arity");
        let elem = m.ty.memref_elem().expect("memref operand").clone();
        let mut ops = vec![m];
        ops.extend(dims);
        Op::new("affine.load")
            .with_attr("map", Attr::Map(map))
            .with_operands(ops)
            .with_results(vec![elem])
    }

    /// `affine.store %v, %m[map(dims)]`.
    pub fn store(v: MValue, m: MValue, map: AffineMap, dims: Vec<MValue>) -> Op {
        assert_eq!(map.num_dims as usize, dims.len(), "map arity");
        let mut ops = vec![v, m];
        ops.extend(dims);
        Op::new("affine.store")
            .with_attr("map", Attr::Map(map))
            .with_operands(ops)
    }

    /// `affine.apply map(dims)` — single-result map.
    pub fn apply(map: AffineMap, dims: Vec<MValue>) -> Op {
        assert_eq!(map.results.len(), 1, "affine.apply needs 1 result");
        Op::new("affine.apply")
            .with_attr("map", Attr::Map(map))
            .with_operands(dims)
            .with_results(vec![MType::Index])
    }

    /// Region terminator.
    pub fn yield_() -> Op {
        Op::new("affine.yield")
    }
}

/// `scf` dialect.
pub mod scf {
    use super::*;

    /// `scf.for %iv = %lb to %ub step %s` (all `index` operands).
    pub fn for_loop(lb: MValue, ub: MValue, step: MValue) -> Op {
        let mut op = Op::new("scf.for").with_operands(vec![lb, ub, step]);
        op.regions.push(Region::with_entry(vec![MType::Index]));
        op
    }

    /// `scf.if %cond` with then and else regions (else may stay empty).
    pub fn if_(cond: MValue) -> Op {
        let mut op = Op::new("scf.if").with_operands(vec![cond]);
        op.regions.push(Region::with_entry(vec![]));
        op.regions.push(Region::with_entry(vec![]));
        op
    }

    /// Region terminator.
    pub fn yield_() -> Op {
        Op::new("scf.yield")
    }
}

/// `cf` (unstructured control flow) dialect.
pub mod cf {
    use super::*;

    /// `cf.br ^dest(args)`.
    pub fn br(dest: &MBlock, args: Vec<MValue>) -> Op {
        let mut op = Op::new("cf.br");
        op.successors.push((dest.uid, args));
        op
    }

    /// `cf.br` by raw block uid (for blocks not yet inserted).
    pub fn br_uid(dest: u32, args: Vec<MValue>) -> Op {
        let mut op = Op::new("cf.br");
        op.successors.push((dest, args));
        op
    }

    /// `cf.cond_br %c, ^t(targs), ^f(fargs)`.
    pub fn cond_br_uid(cond: MValue, t: u32, targs: Vec<MValue>, f: u32, fargs: Vec<MValue>) -> Op {
        let mut op = Op::new("cf.cond_br").with_operands(vec![cond]);
        op.successors.push((t, targs));
        op.successors.push((f, fargs));
        op
    }
}

/// HLS directive attribute keys, shared between the MLIR level (loop
/// attributes) and the lowering that turns them into `!llvm.loop` metadata.
pub mod hls {
    use super::*;

    /// Requested pipeline initiation interval.
    pub const PIPELINE_II: &str = "hls.pipeline_ii";
    /// Partial unroll factor.
    pub const UNROLL_FACTOR: &str = "hls.unroll_factor";
    /// Full-unroll request.
    pub const UNROLL_FULL: &str = "hls.unroll_full";
    /// Array partition spec (on func args): `cyclic:<dim>:<factor>` etc.
    pub const ARRAY_PARTITION: &str = "hls.array_partition";
    /// Marks the synthesis top function.
    pub const TOP: &str = "hls.top";
    /// Collapse the enclosing perfect loop nest into one pipeline.
    pub const FLATTEN: &str = "hls.flatten";

    /// Attach a pipeline directive to a loop op.
    pub fn set_pipeline(op: &mut Op, ii: u32) {
        op.attrs
            .insert(PIPELINE_II.to_string(), Attr::Int(ii as i64, MType::I32));
    }

    /// Attach an unroll directive to a loop op.
    pub fn set_unroll(op: &mut Op, factor: u32) {
        op.attrs.insert(
            UNROLL_FACTOR.to_string(),
            Attr::Int(factor as i64, MType::I32),
        );
    }

    /// Read the pipeline directive.
    pub fn pipeline_ii(op: &Op) -> Option<u32> {
        op.int_attr(PIPELINE_II).map(|v| v as u32)
    }

    /// Read the unroll directive.
    pub fn unroll_factor(op: &Op) -> Option<u32> {
        op.int_attr(UNROLL_FACTOR).map(|v| v as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineExpr;

    #[test]
    fn func_shape() {
        let f = func::func("gemm", vec![MType::F32.memref(&[8, 8])], MType::None);
        assert_eq!(f.name, "func.func");
        assert_eq!(f.regions.len(), 1);
        assert_eq!(f.regions[0].entry().arg_types.len(), 1);
        assert_eq!(f.attrs.get("sym_name").and_then(Attr::as_str), Some("gemm"));
    }

    #[test]
    fn arith_types_propagate() {
        let c = arith::const_float(1.5, MType::F32);
        let v = c.result(0);
        let add = arith::addf(v.clone(), v);
        assert_eq!(add.result_types, vec![MType::F32]);
        let cmp = arith::cmpi(
            "slt",
            arith::const_index(0).result(0),
            arith::const_index(1).result(0),
        );
        assert_eq!(cmp.result_types, vec![MType::I1]);
        assert_eq!(
            cmp.attrs.get("predicate").and_then(Attr::as_str),
            Some("slt")
        );
    }

    #[test]
    fn affine_for_has_iv() {
        let l = affine::for_loop(0, 32, 1);
        assert_eq!(l.int_attr("upper_bound"), Some(32));
        assert_eq!(l.regions[0].entry().arg_types, vec![MType::Index]);
        let iv = l.regions[0].entry().arg(0);
        assert_eq!(iv.ty, MType::Index);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn affine_for_rejects_zero_step() {
        affine::for_loop(0, 8, 0);
    }

    #[test]
    fn affine_load_checks_arity() {
        let m = memref::alloca(MType::F32.memref(&[4, 4]));
        let mv = m.result(0);
        let l = affine::for_loop(0, 4, 1);
        let iv = l.regions[0].entry().arg(0);
        let map = AffineMap::new(1, 0, vec![AffineExpr::dim(0), AffineExpr::cst(0)]);
        let ld = affine::load(mv, map, vec![iv]);
        assert_eq!(ld.result_types, vec![MType::F32]);
    }

    #[test]
    #[should_panic(expected = "map arity")]
    fn affine_load_rejects_bad_arity() {
        let m = memref::alloca(MType::F32.memref(&[4]));
        let map = AffineMap::identity(2);
        affine::load(m.result(0), map, vec![]);
    }

    #[test]
    fn hls_directive_round_trip() {
        let mut l = affine::for_loop(0, 8, 1);
        hls::set_pipeline(&mut l, 2);
        hls::set_unroll(&mut l, 4);
        assert_eq!(hls::pipeline_ii(&l), Some(2));
        assert_eq!(hls::unroll_factor(&l), Some(4));
    }

    #[test]
    fn cf_successors() {
        let b1 = MBlock::new(vec![MType::Index]);
        let b2 = MBlock::new(vec![]);
        let c = arith::const_int(1, MType::I1);
        let br = cf::cond_br_uid(
            c.result(0),
            b1.uid,
            vec![arith::const_index(0).result(0)],
            b2.uid,
            vec![],
        );
        assert_eq!(br.successors.len(), 2);
        assert_eq!(br.successors[0].0, b1.uid);
        assert_eq!(br.successors[0].1.len(), 1);
    }

    #[test]
    fn scf_if_has_two_regions() {
        let c = arith::const_int(1, MType::I1);
        let i = scf::if_(c.result(0));
        assert_eq!(i.regions.len(), 2);
    }
}
