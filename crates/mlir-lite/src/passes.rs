//! MLIR-level passes and the pass manager.
//!
//! The passes here are the "cross-layer" optimizations the paper's abstract
//! credits multi-level design with: they act while loop structure and affine
//! maps are still visible, before any lowering erases them.

use std::collections::BTreeMap;

use analysis::depend::{LinExpr, LoopNest, NestAccess, NestLoop, TransformLegality};
use pass_core::{Diagnostic, Loc, PassResult};

use crate::attr::Attr;
use crate::dialects::hls;
use crate::ir::{MValue, MValueKind, MlirModule, Op};

/// A module-level MLIR pass (the generic `pass-core` trait; implement it as
/// `MlirPass<MlirModule>`).
pub use pass_core::Pass as MlirPass;
pub use pass_core::PassRegistry;

/// The pass manager for MLIR-level pipelines.
pub type MlirPassManager = pass_core::PassManager<MlirModule>;

/// Registry of this crate's MLIR-level passes, keyed by stable name.
/// Parameterized passes register with their conventional defaults
/// (`pipeline-innermost` at II=1, `unroll-small-loops` at trip<=8).
pub fn registry() -> PassRegistry<MlirModule> {
    let mut r = PassRegistry::new();
    r.register("canonicalize", || Box::new(Canonicalize))
        .register("cse", || Box::new(Cse))
        .register("pipeline-innermost", || {
            Box::new(PipelineInnermost { ii: 1 })
        })
        .register("unroll-small-loops", || {
            Box::new(UnrollSmallLoops { max_trip: 8 })
        })
        .register("interchange-innermost", || {
            Box::new(InterchangeInnermost::default())
        });
    r
}

/// Canonicalization: fold constant `arith` ops, canonicalize affine maps,
/// drop no-op `affine.apply` (identity maps).
pub struct Canonicalize;

impl MlirPass<MlirModule> for Canonicalize {
    fn name(&self) -> &'static str {
        "canonicalize"
    }

    fn run(&self, m: &mut MlirModule) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.ops {
            changed |= canon_op(f);
        }
        Ok(changed)
    }
}

fn canon_op(op: &mut Op) -> bool {
    let mut changed = false;
    // Canonicalize this op's affine map, if any.
    if let Some(Attr::Map(map)) = op.attrs.get("map") {
        let canon = map.canonicalize();
        if canon != *map {
            op.attrs.insert("map".into(), Attr::Map(canon));
            changed = true;
        }
    }
    for r in &mut op.regions {
        for b in &mut r.blocks {
            // Fold constant arithmetic: build const env, then rewrite.
            let mut consts: BTreeMap<u32, Attr> = BTreeMap::new();
            for inner in &b.ops {
                if inner.name == "arith.constant" {
                    if let Some(v) = inner.attrs.get("value") {
                        consts.insert(inner.uid, v.clone());
                    }
                }
            }
            for inner in &mut b.ops {
                changed |= fold_arith(inner, &consts);
                changed |= canon_op(inner);
            }
        }
    }
    changed
}

fn const_of(v: &MValue, consts: &BTreeMap<u32, Attr>) -> Option<Attr> {
    match v.kind {
        MValueKind::OpResult { op, idx: 0 } => consts.get(&op).cloned(),
        _ => None,
    }
}

/// Rewrite a foldable arith op into an `arith.constant` in place (keeping
/// its uid, so existing uses stay valid).
fn fold_arith(op: &mut Op, consts: &BTreeMap<u32, Attr>) -> bool {
    let fold = |a: &Attr, b: &Attr| -> Option<Attr> {
        match (a, b) {
            (Attr::Int(x, t), Attr::Int(y, _)) => {
                let v = match op.name.as_str() {
                    "arith.addi" => x.checked_add(*y)?,
                    "arith.subi" => x.checked_sub(*y)?,
                    "arith.muli" => x.checked_mul(*y)?,
                    _ => return None,
                };
                Some(Attr::Int(v, t.clone()))
            }
            (Attr::Float(x, t), Attr::Float(y, _)) => {
                let v = match op.name.as_str() {
                    "arith.addf" => x + y,
                    "arith.subf" => x - y,
                    "arith.mulf" => x * y,
                    _ => return None,
                };
                Some(Attr::Float(v, t.clone()))
            }
            _ => None,
        }
    };
    if op.operands.len() == 2 {
        if let (Some(a), Some(b)) = (
            const_of(&op.operands[0], consts),
            const_of(&op.operands[1], consts),
        ) {
            if let Some(v) = fold(&a, &b) {
                op.name = "arith.constant".into();
                op.operands.clear();
                op.attrs.clear();
                op.attrs.insert("value".into(), v);
                return true;
            }
        }
    }
    false
}

/// Common-subexpression elimination within each block for pure ops
/// (`arith.*`, `math.*`, `affine.apply`, `affine.load` up to the next store
/// is *not* attempted — loads are left alone for safety).
pub struct Cse;

impl MlirPass<MlirModule> for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, m: &mut MlirModule) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.ops {
            changed |= cse_op(f);
        }
        Ok(changed)
    }
}

fn is_pure(op: &Op) -> bool {
    (op.name.starts_with("arith.") || op.name.starts_with("math.") || op.name == "affine.apply")
        && op.regions.is_empty()
}

fn cse_key(op: &Op) -> String {
    let mut key = op.name.clone();
    for v in &op.operands {
        key.push_str(&format!("|{:?}", v.kind));
    }
    for (k, v) in &op.attrs {
        key.push_str(&format!("|{k}={v}"));
    }
    key
}

fn cse_op(op: &mut Op) -> bool {
    let mut changed = false;
    for r in &mut op.regions {
        for b in &mut r.blocks {
            let mut seen: BTreeMap<String, u32> = BTreeMap::new();
            let mut replace: BTreeMap<u32, u32> = BTreeMap::new();
            let mut keep = Vec::new();
            for mut inner in std::mem::take(&mut b.ops) {
                // Apply replacements discovered so far before keying, so
                // chains of equal expressions collapse in one sweep.
                inner.walk_mut(&mut |o| {
                    for v in &mut o.operands {
                        if let MValueKind::OpResult { op: uid, idx } = v.kind {
                            if let Some(&n) = replace.get(&uid) {
                                v.kind = MValueKind::OpResult { op: n, idx };
                            }
                        }
                    }
                });
                if is_pure(&inner) && inner.result_types.len() == 1 {
                    let key = cse_key(&inner);
                    if let Some(&prior) = seen.get(&key) {
                        replace.insert(inner.uid, prior);
                        changed = true;
                        continue;
                    }
                    seen.insert(key, inner.uid);
                }
                keep.push(inner);
            }
            b.ops = keep;
            for inner in &mut b.ops {
                changed |= cse_op(inner);
            }
        }
    }
    changed
}

/// Propagate a default pipeline directive onto every innermost loop that
/// has no explicit directive — the "pipeline innermost loops" heuristic
/// ScaleHLS applies by default.
pub struct PipelineInnermost {
    /// II to request.
    pub ii: u32,
}

impl MlirPass<MlirModule> for PipelineInnermost {
    fn name(&self) -> &'static str {
        "pipeline-innermost"
    }

    fn run(&self, m: &mut MlirModule) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.ops {
            changed |= mark_innermost(f, self.ii);
        }
        Ok(changed)
    }
}

fn is_loop(op: &Op) -> bool {
    op.name == "affine.for" || op.name == "scf.for"
}

fn has_inner_loop(op: &Op) -> bool {
    let mut found = false;
    for r in &op.regions {
        for b in &r.blocks {
            for inner in &b.ops {
                if is_loop(inner) || has_inner_loop(inner) {
                    found = true;
                }
            }
        }
    }
    found
}

fn mark_innermost(op: &mut Op, ii: u32) -> bool {
    let mut changed = false;
    for r in &mut op.regions {
        for b in &mut r.blocks {
            for inner in &mut b.ops {
                changed |= mark_innermost(inner, ii);
            }
        }
    }
    if is_loop(op) && !has_inner_loop(op) && hls::pipeline_ii(op).is_none() {
        hls::set_pipeline(op, ii);
        changed = true;
    }
    changed
}

/// Affine loop unrolling (full unroll of small constant-trip loops): a
/// genuine MLIR-level structural optimization, used by the ablation bench.
pub struct UnrollSmallLoops {
    /// Unroll loops with trip count <= this bound.
    pub max_trip: u64,
}

impl MlirPass<MlirModule> for UnrollSmallLoops {
    fn name(&self) -> &'static str {
        "unroll-small-loops"
    }

    fn run(&self, m: &mut MlirModule) -> PassResult<bool> {
        // Marking pass: tags qualifying loops with the full-unroll attribute
        // (the expansion itself happens during lowering where SSA repair is
        // natural).
        let mut changed = false;
        for f in &mut m.ops {
            f.walk_mut(&mut |o| {
                if o.name == "affine.for" {
                    let lb = o.int_attr("lower_bound").unwrap_or(0);
                    let ub = o.int_attr("upper_bound").unwrap_or(0);
                    let step = o.int_attr("step").unwrap_or(1).max(1);
                    let trip = ((ub - lb).max(0) as u64).div_ceil(step as u64);
                    if trip <= self.max_trip && !o.attrs.contains_key(hls::UNROLL_FULL) {
                        o.attrs.insert(hls::UNROLL_FULL.into(), Attr::Bool(true));
                        changed = true;
                    }
                }
            });
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;
    use crate::printer::print_module;

    #[test]
    fn canonicalize_folds_constants() {
        let src = r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %a = arith.constant 2.0 : f32
    %b = arith.constant 3.0 : f32
    %c = arith.mulf %a, %b : f32
    affine.store %c, %m[%i] : memref<4xf32>
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(Canonicalize.run(&mut m).unwrap());
        assert_eq!(m.count_ops(|o| o.name == "arith.mulf"), 0);
        assert_eq!(m.count_ops(|o| o.name == "arith.constant"), 3);
        let text = print_module(&m);
        assert!(text.contains("arith.constant 6.0 : f32"));
    }

    #[test]
    fn cse_removes_duplicate_loads_of_constants() {
        let src = r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %a = arith.constant 2.0 : f32
    %b = arith.constant 2.0 : f32
    %v = affine.load %m[%i] : memref<4xf32>
    %x = arith.mulf %v, %a : f32
    %y = arith.mulf %v, %b : f32
    %z = arith.addf %x, %y : f32
    affine.store %z, %m[%i] : memref<4xf32>
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(Cse.run(&mut m).unwrap());
        crate::verifier::verify_module(&m).unwrap();
        // The two constants merge; then the two mulf share operands and merge.
        assert_eq!(m.count_ops(|o| o.name == "arith.constant"), 1);
        assert_eq!(m.count_ops(|o| o.name == "arith.mulf"), 1);
    }

    #[test]
    fn pipeline_innermost_tags_only_leaves() {
        let src = r#"
func.func @f(%m: memref<4x4xf32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 4 {
      %v = affine.load %m[%i, %j] : memref<4x4xf32>
      affine.store %v, %m[%j, %i] : memref<4x4xf32>
    }
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(PipelineInnermost { ii: 1 }.run(&mut m).unwrap());
        let mut tagged = Vec::new();
        m.walk(&mut |o| {
            if o.name == "affine.for" {
                tagged.push(hls::pipeline_ii(o));
            }
        });
        assert_eq!(tagged, vec![None, Some(1)]);
        // Idempotent.
        assert!(!PipelineInnermost { ii: 1 }.run(&mut m).unwrap());
    }

    #[test]
    fn unroll_small_loops_tags_by_tripcount() {
        let src = r#"
func.func @f(%m: memref<64xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %m[%i] : memref<64xf32>
    affine.store %v, %m[%i] : memref<64xf32>
  }
  affine.for %i = 0 to 64 {
    %v = affine.load %m[%i] : memref<64xf32>
    affine.store %v, %m[%i] : memref<64xf32>
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(UnrollSmallLoops { max_trip: 8 }.run(&mut m).unwrap());
        let mut tags = Vec::new();
        m.walk(&mut |o| {
            if o.name == "affine.for" {
                tags.push(o.attrs.contains_key(hls::UNROLL_FULL));
            }
        });
        assert_eq!(tags, vec![true, false]);
    }

    #[test]
    fn pass_manager_reports_changes() {
        let src = r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %m[%i] : memref<4xf32>
    affine.store %v, %m[%i] : memref<4xf32>
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        let mut pm = MlirPassManager::with_label("mlir-opt");
        pm.add(Canonicalize)
            .add(Cse)
            .add(PipelineInnermost { ii: 1 });
        let report = pm.run(&mut m).unwrap();
        assert_eq!(report.changed_passes(), vec!["pipeline-innermost"]);
        assert_eq!(report.passes.len(), 3);
        // The op-count instrumentation sees the module size.
        assert!(report.passes.iter().all(|p| p.size_after > 0));
    }

    #[test]
    fn registry_round_trips_every_pass() {
        let r = registry();
        for name in r.names() {
            assert_eq!(r.create(name).unwrap().name(), name);
        }
        assert!(r.create("bogus").is_err());
    }
}

/// Interchange every innermost `affine.for` with its immediate parent when
/// the nest is perfect — the canonical MLIR-level, cross-layer optimization:
/// moving a reduction loop outward breaks its loop-carried recurrence at
/// the pipelining level, something no LLVM-stage rewrite can recover once
/// the loop structure is lowered.
///
/// Every candidate pair is checked against the `analysis::depend` legality
/// engine first: the pair's affine accesses are lifted into a
/// [`analysis::depend::LoopNest`] (iteration-number space, outer IVs as
/// symbols) and the swap only proceeds when
/// [`TransformLegality::interchange_legal`] proves no dependence reverses.
/// An illegal pair either fails the pass with the refusal witness as a
/// located diagnostic (the default) or is silently left in place
/// (`skip_illegal`, for exploratory pipelines and the fuzz oracle).
#[derive(Default)]
pub struct InterchangeInnermost {
    /// When true, leave illegal nests untouched instead of failing.
    pub skip_illegal: bool,
}

impl MlirPass<MlirModule> for InterchangeInnermost {
    fn name(&self) -> &'static str {
        "interchange-innermost"
    }

    fn run(&self, m: &mut MlirModule) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.ops {
            let func = f
                .attrs
                .get("sym_name")
                .and_then(Attr::as_str)
                .unwrap_or("<module>")
                .to_string();
            let entry = if f.name == "func.func" && !f.regions.is_empty() {
                Some(f.regions[0].entry().uid)
            } else {
                None
            };
            changed |= interchange_in(f, &func, entry, self.skip_illegal)?;
        }
        Ok(changed)
    }
}

fn interchange_in(
    op: &mut Op,
    func: &str,
    func_entry: Option<u32>,
    skip_illegal: bool,
) -> PassResult<bool> {
    let mut changed = false;
    for r in &mut op.regions {
        for b in &mut r.blocks {
            for inner in &mut b.ops {
                changed |= interchange_in(inner, func, func_entry, skip_illegal)?;
            }
        }
    }
    if op.name != "affine.for" {
        return Ok(changed);
    }
    // Perfect pair: this loop's body is exactly [affine.for, affine.yield]
    // and the child is innermost.
    let body_ops = &op.regions[0].entry().ops;
    let is_pair = body_ops.len() == 2
        && body_ops[0].name == "affine.for"
        && body_ops[1].name == "affine.yield"
        && !has_inner_loop(&body_ops[0]);
    if !is_pair {
        return Ok(changed);
    }
    let nest = nest_of_pair(func, func_entry, op);
    if let Err(w) = TransformLegality::new(&nest).interchange_legal(0, 1) {
        if skip_illegal {
            return Ok(changed);
        }
        return Err(Diagnostic::error(
            "interchange-innermost",
            format!("refusing to interchange: {w}"),
        )
        .with_loc(Loc::function(func).at_inst(loop_label(op))));
    }
    let parent_block_uid = op.regions[0].entry().uid;
    let child = &mut op.regions[0].entry_mut().ops[0];
    let child_block_uid = child.regions[0].entry().uid;

    // Swap the bound attributes (the iteration spaces).
    for key in ["lower_bound", "upper_bound", "step"] {
        let a = op.attrs.get(key).cloned();
        let b = child.attrs.get(key).cloned();
        if let Some(b) = b {
            op.attrs.insert(key.to_string(), b);
        }
        if let Some(a) = a {
            child.attrs.insert(key.to_string(), a);
        }
    }
    // Swap every use of the two induction variables inside the child body.
    child.walk_mut(&mut |inner| {
        for v in &mut inner.operands {
            match v.kind {
                crate::ir::MValueKind::BlockArg { block, idx: 0 } if block == parent_block_uid => {
                    v.kind = crate::ir::MValueKind::BlockArg {
                        block: child_block_uid,
                        idx: 0,
                    };
                }
                crate::ir::MValueKind::BlockArg { block, idx: 0 } if block == child_block_uid => {
                    v.kind = crate::ir::MValueKind::BlockArg {
                        block: parent_block_uid,
                        idx: 0,
                    };
                }
                _ => {}
            }
        }
    });
    Ok(true)
}

/// Human-readable handle for an `affine.for` in diagnostics.
fn loop_label(op: &Op) -> String {
    let (lb, ub, step) = loop_bounds(op);
    if step == 1 {
        format!("affine.for {lb} to {ub}")
    } else {
        format!("affine.for {lb} to {ub} step {step}")
    }
}

fn loop_bounds(op: &Op) -> (i64, i64, i64) {
    let lb = op.int_attr("lower_bound").unwrap_or(0);
    let ub = op.int_attr("upper_bound").unwrap_or(lb);
    let step = op.int_attr("step").unwrap_or(1).max(1);
    (lb, ub, step)
}

fn loop_trip(op: &Op) -> u64 {
    let (lb, ub, step) = loop_bounds(op);
    ((ub - lb).max(0) as u64).div_ceil(step as u64)
}

/// Printer-style name for a loop-invariant SSA value used in witnesses and
/// as a base-object identity: function arguments render as `%argN`, other
/// values fall back to uid-derived (still identity-correct) names.
fn value_name(v: &MValueKind, func_entry: Option<u32>) -> String {
    match *v {
        MValueKind::BlockArg { block, idx } if Some(block) == func_entry => format!("%arg{idx}"),
        MValueKind::BlockArg { block, idx } => format!("%b{block}a{idx}"),
        MValueKind::OpResult { op, idx: 0 } => format!("%v{op}"),
        MValueKind::OpResult { op, idx } => format!("%v{op}.{idx}"),
    }
}

/// Lift a perfect `(parent, child)` `affine.for` pair into a dependence
/// [`LoopNest`]: level 0 is the parent, level 1 the child, both in
/// iteration-number space (`IV = lb + step * k`). IVs of loops *outside*
/// the pair are modeled as nest-invariant symbols — sound for pair
/// interchange, which leaves the outer iteration order untouched. Any
/// non-affine memory op in the body becomes an opaque access, which makes
/// the legality engine refuse.
fn nest_of_pair(func: &str, func_entry: Option<u32>, parent: &Op) -> LoopNest {
    let child = &parent.regions[0].entry().ops[0];
    let pb = parent.regions[0].entry().uid;
    let cb = child.regions[0].entry().uid;
    let (plb, _, pstep) = loop_bounds(parent);
    let (clb, _, cstep) = loop_bounds(child);
    let loops = vec![
        NestLoop {
            label: loop_label(parent),
            trip: Some(loop_trip(parent)),
        },
        NestLoop {
            label: loop_label(child),
            trip: Some(loop_trip(child)),
        },
    ];
    // Values defined anywhere inside the pair are not nest-invariant.
    let mut inside = std::collections::BTreeSet::new();
    parent.walk(&mut |o| {
        inside.insert(o.uid);
    });
    let iv = |kind: &MValueKind| -> Option<(usize, i64, i64)> {
        match *kind {
            MValueKind::BlockArg { block, idx: 0 } if block == pb => Some((0, plb, pstep)),
            MValueKind::BlockArg { block, idx: 0 } if block == cb => Some((1, clb, cstep)),
            _ => None,
        }
    };
    let subs_of = |o: &Op, base_idx: usize| -> Option<Vec<LinExpr>> {
        let map = match o.attrs.get("map") {
            Some(Attr::Map(m)) => m,
            _ => return None,
        };
        if map.num_syms != 0 {
            return None; // symbol operand layout is not modeled
        }
        let dims = &o.operands[base_idx + 1..];
        if dims.len() != map.num_dims as usize {
            return None;
        }
        let mut subs = Vec::with_capacity(map.results.len());
        for expr in &map.results {
            let (dcoeffs, _, cst) = expr.linear_form(map.num_dims, 0)?;
            let mut e = LinExpr::konst(2, cst);
            for (d, &c) in dcoeffs.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let kind = &dims[d].kind;
                let term = if let Some((level, lb, step)) = iv(kind) {
                    // IV = lb + step * k in iteration-number space.
                    LinExpr::term(2, level, c.checked_mul(step)?)
                        .add(&LinExpr::konst(2, c.checked_mul(lb)?))?
                } else {
                    match *kind {
                        MValueKind::OpResult { op, .. } if inside.contains(&op) => return None,
                        _ => LinExpr::sym(2, value_name(kind, func_entry), c),
                    }
                };
                e = e.add(&term)?;
            }
            subs.push(e);
        }
        Some(subs)
    };
    let mut accesses = Vec::new();
    child.walk(&mut |o| {
        let (base_idx, is_store) = match o.name.as_str() {
            "affine.load" => (0, false),
            "affine.store" => (1, true),
            "memref.load" | "memref.store" | "func.call" => {
                // Unanalyzable memory effects: an opaque access the
                // legality engine refuses on.
                accesses.push(NestAccess {
                    id: o.uid as usize,
                    label: format!("`{}`", o.name),
                    is_store: o.name != "memref.load",
                    base: None,
                    subs: None,
                });
                return;
            }
            _ => return,
        };
        let base = value_name(&o.operands[base_idx].kind, func_entry);
        let map_txt = match o.attrs.get("map") {
            Some(Attr::Map(m)) => m
                .canonicalize()
                .results
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            _ => "?".into(),
        };
        accesses.push(NestAccess {
            id: o.uid as usize,
            label: format!("{base}[{map_txt}]"),
            is_store,
            base: Some(base),
            subs: subs_of(o, base_idx),
        });
    });
    LoopNest {
        func: func.to_string(),
        loops,
        accesses,
    }
}

#[cfg(test)]
mod interchange_tests {
    use super::*;
    use crate::parser::parse_module;
    use crate::printer::print_module;

    #[test]
    fn swaps_bounds_and_ivs() {
        let src = r#"
func.func @f(%m: memref<4x8xf32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 8 {
      %v = affine.load %m[%i, %j] : memref<4x8xf32>
      affine.store %v, %m[%i, %j] : memref<4x8xf32>
    }
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(InterchangeInnermost::default().run(&mut m).unwrap());
        crate::verifier::verify_module(&m).unwrap();
        let text = print_module(&m);
        // Outer now iterates 0..8, inner 0..4; subscripts still [row, col]
        // where row is the 0..4 variable (now the inner one, printed %j).
        assert!(text.contains("affine.for %i = 0 to 8 {"), "{text}");
        assert!(text.contains("affine.for %j = 0 to 4 {"), "{text}");
        assert!(text.contains("affine.load %arg0[%j, %i]"), "{text}");
    }

    #[test]
    fn imperfect_nests_are_left_alone() {
        let src = r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %z = arith.constant 0.0 : f32
    affine.store %z, %m[%i] : memref<4xf32>
    affine.for %j = 0 to 4 {
      %v = affine.load %m[%j] : memref<4xf32>
      affine.store %v, %m[%j] : memref<4xf32>
    }
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(!InterchangeInnermost::default().run(&mut m).unwrap());
    }

    /// A skewed stencil: `A[i+1][j] = A[i][j+1]` has flow distance
    /// `(1, -1)`, the canonical interchange-illegal pattern.
    const SKEWED: &str = r#"
func.func @f(%m: memref<8x8xf32>) {
  affine.for %i = 0 to 7 {
    affine.for %j = 0 to 7 {
      %v = affine.load %m[%i, %j + 1] : memref<8x8xf32>
      affine.store %v, %m[%i + 1, %j] : memref<8x8xf32>
    }
  }
  func.return
}
"#;

    #[test]
    fn illegal_interchange_is_refused_with_a_witness() {
        let mut m = parse_module("m", SKEWED).unwrap();
        let before = print_module(&m);
        let err = InterchangeInnermost::default().run(&mut m).unwrap_err();
        assert_eq!(err.pass, "interchange-innermost");
        assert!(
            err.message.contains("distance vector (1, -1)"),
            "{}",
            err.message
        );
        assert!(
            err.message.contains("%arg0[d0 + 1, d1]") && err.message.contains("%arg0[d0, d1 + 1]"),
            "{}",
            err.message
        );
        assert_eq!(err.loc.function.as_deref(), Some("f"));
        // The module is left untouched by the failed run.
        assert_eq!(print_module(&m), before);
    }

    #[test]
    fn skip_illegal_mode_leaves_the_nest_alone() {
        let mut m = parse_module("m", SKEWED).unwrap();
        let before = print_module(&m);
        let changed = InterchangeInnermost { skip_illegal: true }
            .run(&mut m)
            .unwrap();
        assert!(!changed);
        assert_eq!(print_module(&m), before);
    }

    #[test]
    fn transposed_accesses_still_interchange() {
        // B[j][i] = A[i][j]: distinct arrays, no dependence at all.
        let src = r#"
func.func @f(%a: memref<8x8xf32>, %b: memref<8x8xf32>) {
  affine.for %i = 0 to 8 {
    affine.for %j = 0 to 8 {
      %v = affine.load %a[%i, %j] : memref<8x8xf32>
      affine.store %v, %b[%j, %i] : memref<8x8xf32>
    }
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(InterchangeInnermost::default().run(&mut m).unwrap());
        crate::verifier::verify_module(&m).unwrap();
    }

    #[test]
    fn opaque_memory_ops_block_interchange() {
        // A memref.store in the body has no affine map: legality cannot be
        // proven, so the default mode refuses.
        let src = r#"
func.func @f(%m: memref<4x4xf32>, %i0: index) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 4 {
      %v = affine.load %m[%i, %j] : memref<4x4xf32>
      memref.store %v, %m[%i0, %i0] : memref<4x4xf32>
    }
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        let err = InterchangeInnermost::default().run(&mut m).unwrap_err();
        assert!(
            err.message.contains("legality cannot be proven"),
            "{}",
            err.message
        );
    }

    #[test]
    fn triple_nest_swaps_only_innermost_pair() {
        let src = r#"
func.func @f(%m: memref<2x4x8xf32>) {
  affine.for %i = 0 to 2 {
    affine.for %j = 0 to 4 {
      affine.for %k = 0 to 8 {
        %v = affine.load %m[%i, %j, %k] : memref<2x4x8xf32>
        affine.store %v, %m[%i, %j, %k] : memref<2x4x8xf32>
      }
    }
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(InterchangeInnermost::default().run(&mut m).unwrap());
        crate::verifier::verify_module(&m).unwrap();
        let text = print_module(&m);
        // i stays outermost (its body is not a perfect pair after the j/k
        // swap consideration — only the innermost pair (j,k) swaps).
        assert!(text.contains("affine.for %i = 0 to 2 {"), "{text}");
        assert!(text.contains("affine.for %j = 0 to 8 {"), "{text}");
        assert!(text.contains("affine.for %k = 0 to 4 {"), "{text}");
    }
}
