//! MLIR-level passes and the pass manager.
//!
//! The passes here are the "cross-layer" optimizations the paper's abstract
//! credits multi-level design with: they act while loop structure and affine
//! maps are still visible, before any lowering erases them.

use std::collections::BTreeMap;

use pass_core::PassResult;

use crate::attr::Attr;
use crate::dialects::hls;
use crate::ir::{MValue, MValueKind, MlirModule, Op};

/// A module-level MLIR pass (the generic `pass-core` trait; implement it as
/// `MlirPass<MlirModule>`).
pub use pass_core::Pass as MlirPass;
pub use pass_core::PassRegistry;

/// The pass manager for MLIR-level pipelines.
pub type MlirPassManager = pass_core::PassManager<MlirModule>;

/// Registry of this crate's MLIR-level passes, keyed by stable name.
/// Parameterized passes register with their conventional defaults
/// (`pipeline-innermost` at II=1, `unroll-small-loops` at trip<=8).
pub fn registry() -> PassRegistry<MlirModule> {
    let mut r = PassRegistry::new();
    r.register("canonicalize", || Box::new(Canonicalize))
        .register("cse", || Box::new(Cse))
        .register("pipeline-innermost", || {
            Box::new(PipelineInnermost { ii: 1 })
        })
        .register("unroll-small-loops", || {
            Box::new(UnrollSmallLoops { max_trip: 8 })
        })
        .register("interchange-innermost", || Box::new(InterchangeInnermost));
    r
}

/// Canonicalization: fold constant `arith` ops, canonicalize affine maps,
/// drop no-op `affine.apply` (identity maps).
pub struct Canonicalize;

impl MlirPass<MlirModule> for Canonicalize {
    fn name(&self) -> &'static str {
        "canonicalize"
    }

    fn run(&self, m: &mut MlirModule) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.ops {
            changed |= canon_op(f);
        }
        Ok(changed)
    }
}

fn canon_op(op: &mut Op) -> bool {
    let mut changed = false;
    // Canonicalize this op's affine map, if any.
    if let Some(Attr::Map(map)) = op.attrs.get("map") {
        let canon = map.canonicalize();
        if canon != *map {
            op.attrs.insert("map".into(), Attr::Map(canon));
            changed = true;
        }
    }
    for r in &mut op.regions {
        for b in &mut r.blocks {
            // Fold constant arithmetic: build const env, then rewrite.
            let mut consts: BTreeMap<u32, Attr> = BTreeMap::new();
            for inner in &b.ops {
                if inner.name == "arith.constant" {
                    if let Some(v) = inner.attrs.get("value") {
                        consts.insert(inner.uid, v.clone());
                    }
                }
            }
            for inner in &mut b.ops {
                changed |= fold_arith(inner, &consts);
                changed |= canon_op(inner);
            }
        }
    }
    changed
}

fn const_of(v: &MValue, consts: &BTreeMap<u32, Attr>) -> Option<Attr> {
    match v.kind {
        MValueKind::OpResult { op, idx: 0 } => consts.get(&op).cloned(),
        _ => None,
    }
}

/// Rewrite a foldable arith op into an `arith.constant` in place (keeping
/// its uid, so existing uses stay valid).
fn fold_arith(op: &mut Op, consts: &BTreeMap<u32, Attr>) -> bool {
    let fold = |a: &Attr, b: &Attr| -> Option<Attr> {
        match (a, b) {
            (Attr::Int(x, t), Attr::Int(y, _)) => {
                let v = match op.name.as_str() {
                    "arith.addi" => x.checked_add(*y)?,
                    "arith.subi" => x.checked_sub(*y)?,
                    "arith.muli" => x.checked_mul(*y)?,
                    _ => return None,
                };
                Some(Attr::Int(v, t.clone()))
            }
            (Attr::Float(x, t), Attr::Float(y, _)) => {
                let v = match op.name.as_str() {
                    "arith.addf" => x + y,
                    "arith.subf" => x - y,
                    "arith.mulf" => x * y,
                    _ => return None,
                };
                Some(Attr::Float(v, t.clone()))
            }
            _ => None,
        }
    };
    if op.operands.len() == 2 {
        if let (Some(a), Some(b)) = (
            const_of(&op.operands[0], consts),
            const_of(&op.operands[1], consts),
        ) {
            if let Some(v) = fold(&a, &b) {
                op.name = "arith.constant".into();
                op.operands.clear();
                op.attrs.clear();
                op.attrs.insert("value".into(), v);
                return true;
            }
        }
    }
    false
}

/// Common-subexpression elimination within each block for pure ops
/// (`arith.*`, `math.*`, `affine.apply`, `affine.load` up to the next store
/// is *not* attempted — loads are left alone for safety).
pub struct Cse;

impl MlirPass<MlirModule> for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, m: &mut MlirModule) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.ops {
            changed |= cse_op(f);
        }
        Ok(changed)
    }
}

fn is_pure(op: &Op) -> bool {
    (op.name.starts_with("arith.") || op.name.starts_with("math.") || op.name == "affine.apply")
        && op.regions.is_empty()
}

fn cse_key(op: &Op) -> String {
    let mut key = op.name.clone();
    for v in &op.operands {
        key.push_str(&format!("|{:?}", v.kind));
    }
    for (k, v) in &op.attrs {
        key.push_str(&format!("|{k}={v}"));
    }
    key
}

fn cse_op(op: &mut Op) -> bool {
    let mut changed = false;
    for r in &mut op.regions {
        for b in &mut r.blocks {
            let mut seen: BTreeMap<String, u32> = BTreeMap::new();
            let mut replace: BTreeMap<u32, u32> = BTreeMap::new();
            let mut keep = Vec::new();
            for mut inner in std::mem::take(&mut b.ops) {
                // Apply replacements discovered so far before keying, so
                // chains of equal expressions collapse in one sweep.
                inner.walk_mut(&mut |o| {
                    for v in &mut o.operands {
                        if let MValueKind::OpResult { op: uid, idx } = v.kind {
                            if let Some(&n) = replace.get(&uid) {
                                v.kind = MValueKind::OpResult { op: n, idx };
                            }
                        }
                    }
                });
                if is_pure(&inner) && inner.result_types.len() == 1 {
                    let key = cse_key(&inner);
                    if let Some(&prior) = seen.get(&key) {
                        replace.insert(inner.uid, prior);
                        changed = true;
                        continue;
                    }
                    seen.insert(key, inner.uid);
                }
                keep.push(inner);
            }
            b.ops = keep;
            for inner in &mut b.ops {
                changed |= cse_op(inner);
            }
        }
    }
    changed
}

/// Propagate a default pipeline directive onto every innermost loop that
/// has no explicit directive — the "pipeline innermost loops" heuristic
/// ScaleHLS applies by default.
pub struct PipelineInnermost {
    /// II to request.
    pub ii: u32,
}

impl MlirPass<MlirModule> for PipelineInnermost {
    fn name(&self) -> &'static str {
        "pipeline-innermost"
    }

    fn run(&self, m: &mut MlirModule) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.ops {
            changed |= mark_innermost(f, self.ii);
        }
        Ok(changed)
    }
}

fn is_loop(op: &Op) -> bool {
    op.name == "affine.for" || op.name == "scf.for"
}

fn has_inner_loop(op: &Op) -> bool {
    let mut found = false;
    for r in &op.regions {
        for b in &r.blocks {
            for inner in &b.ops {
                if is_loop(inner) || has_inner_loop(inner) {
                    found = true;
                }
            }
        }
    }
    found
}

fn mark_innermost(op: &mut Op, ii: u32) -> bool {
    let mut changed = false;
    for r in &mut op.regions {
        for b in &mut r.blocks {
            for inner in &mut b.ops {
                changed |= mark_innermost(inner, ii);
            }
        }
    }
    if is_loop(op) && !has_inner_loop(op) && hls::pipeline_ii(op).is_none() {
        hls::set_pipeline(op, ii);
        changed = true;
    }
    changed
}

/// Affine loop unrolling (full unroll of small constant-trip loops): a
/// genuine MLIR-level structural optimization, used by the ablation bench.
pub struct UnrollSmallLoops {
    /// Unroll loops with trip count <= this bound.
    pub max_trip: u64,
}

impl MlirPass<MlirModule> for UnrollSmallLoops {
    fn name(&self) -> &'static str {
        "unroll-small-loops"
    }

    fn run(&self, m: &mut MlirModule) -> PassResult<bool> {
        // Marking pass: tags qualifying loops with the full-unroll attribute
        // (the expansion itself happens during lowering where SSA repair is
        // natural).
        let mut changed = false;
        for f in &mut m.ops {
            f.walk_mut(&mut |o| {
                if o.name == "affine.for" {
                    let lb = o.int_attr("lower_bound").unwrap_or(0);
                    let ub = o.int_attr("upper_bound").unwrap_or(0);
                    let step = o.int_attr("step").unwrap_or(1).max(1);
                    let trip = ((ub - lb).max(0) as u64).div_ceil(step as u64);
                    if trip <= self.max_trip && !o.attrs.contains_key(hls::UNROLL_FULL) {
                        o.attrs.insert(hls::UNROLL_FULL.into(), Attr::Bool(true));
                        changed = true;
                    }
                }
            });
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;
    use crate::printer::print_module;

    #[test]
    fn canonicalize_folds_constants() {
        let src = r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %a = arith.constant 2.0 : f32
    %b = arith.constant 3.0 : f32
    %c = arith.mulf %a, %b : f32
    affine.store %c, %m[%i] : memref<4xf32>
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(Canonicalize.run(&mut m).unwrap());
        assert_eq!(m.count_ops(|o| o.name == "arith.mulf"), 0);
        assert_eq!(m.count_ops(|o| o.name == "arith.constant"), 3);
        let text = print_module(&m);
        assert!(text.contains("arith.constant 6.0 : f32"));
    }

    #[test]
    fn cse_removes_duplicate_loads_of_constants() {
        let src = r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %a = arith.constant 2.0 : f32
    %b = arith.constant 2.0 : f32
    %v = affine.load %m[%i] : memref<4xf32>
    %x = arith.mulf %v, %a : f32
    %y = arith.mulf %v, %b : f32
    %z = arith.addf %x, %y : f32
    affine.store %z, %m[%i] : memref<4xf32>
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(Cse.run(&mut m).unwrap());
        crate::verifier::verify_module(&m).unwrap();
        // The two constants merge; then the two mulf share operands and merge.
        assert_eq!(m.count_ops(|o| o.name == "arith.constant"), 1);
        assert_eq!(m.count_ops(|o| o.name == "arith.mulf"), 1);
    }

    #[test]
    fn pipeline_innermost_tags_only_leaves() {
        let src = r#"
func.func @f(%m: memref<4x4xf32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 4 {
      %v = affine.load %m[%i, %j] : memref<4x4xf32>
      affine.store %v, %m[%j, %i] : memref<4x4xf32>
    }
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(PipelineInnermost { ii: 1 }.run(&mut m).unwrap());
        let mut tagged = Vec::new();
        m.walk(&mut |o| {
            if o.name == "affine.for" {
                tagged.push(hls::pipeline_ii(o));
            }
        });
        assert_eq!(tagged, vec![None, Some(1)]);
        // Idempotent.
        assert!(!PipelineInnermost { ii: 1 }.run(&mut m).unwrap());
    }

    #[test]
    fn unroll_small_loops_tags_by_tripcount() {
        let src = r#"
func.func @f(%m: memref<64xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %m[%i] : memref<64xf32>
    affine.store %v, %m[%i] : memref<64xf32>
  }
  affine.for %i = 0 to 64 {
    %v = affine.load %m[%i] : memref<64xf32>
    affine.store %v, %m[%i] : memref<64xf32>
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(UnrollSmallLoops { max_trip: 8 }.run(&mut m).unwrap());
        let mut tags = Vec::new();
        m.walk(&mut |o| {
            if o.name == "affine.for" {
                tags.push(o.attrs.contains_key(hls::UNROLL_FULL));
            }
        });
        assert_eq!(tags, vec![true, false]);
    }

    #[test]
    fn pass_manager_reports_changes() {
        let src = r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %v = affine.load %m[%i] : memref<4xf32>
    affine.store %v, %m[%i] : memref<4xf32>
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        let mut pm = MlirPassManager::with_label("mlir-opt");
        pm.add(Canonicalize)
            .add(Cse)
            .add(PipelineInnermost { ii: 1 });
        let report = pm.run(&mut m).unwrap();
        assert_eq!(report.changed_passes(), vec!["pipeline-innermost"]);
        assert_eq!(report.passes.len(), 3);
        // The op-count instrumentation sees the module size.
        assert!(report.passes.iter().all(|p| p.size_after > 0));
    }

    #[test]
    fn registry_round_trips_every_pass() {
        let r = registry();
        for name in r.names() {
            assert_eq!(r.create(name).unwrap().name(), name);
        }
        assert!(r.create("bogus").is_err());
    }
}

/// Interchange every innermost `affine.for` with its immediate parent when
/// the nest is perfect — the canonical MLIR-level, cross-layer optimization:
/// moving a reduction loop outward breaks its loop-carried recurrence at
/// the pipelining level, something no LLVM-stage rewrite can recover once
/// the loop structure is lowered.
///
/// Legality is the caller's responsibility (as with explicit interchange
/// directives in MLIR): both loop orders must compute the same result.
pub struct InterchangeInnermost;

impl MlirPass<MlirModule> for InterchangeInnermost {
    fn name(&self) -> &'static str {
        "interchange-innermost"
    }

    fn run(&self, m: &mut MlirModule) -> PassResult<bool> {
        let mut changed = false;
        for f in &mut m.ops {
            changed |= interchange_in(f);
        }
        Ok(changed)
    }
}

fn interchange_in(op: &mut Op) -> bool {
    let mut changed = false;
    for r in &mut op.regions {
        for b in &mut r.blocks {
            for inner in &mut b.ops {
                changed |= interchange_in(inner);
            }
        }
    }
    if op.name != "affine.for" {
        return changed;
    }
    // Perfect pair: this loop's body is exactly [affine.for, affine.yield]
    // and the child is innermost.
    let body_ops = &op.regions[0].entry().ops;
    let is_pair = body_ops.len() == 2
        && body_ops[0].name == "affine.for"
        && body_ops[1].name == "affine.yield"
        && !has_inner_loop(&body_ops[0]);
    if !is_pair {
        return changed;
    }
    let parent_block_uid = op.regions[0].entry().uid;
    let child = &mut op.regions[0].entry_mut().ops[0];
    let child_block_uid = child.regions[0].entry().uid;

    // Swap the bound attributes (the iteration spaces).
    for key in ["lower_bound", "upper_bound", "step"] {
        let a = op.attrs.get(key).cloned();
        let b = child.attrs.get(key).cloned();
        if let Some(b) = b {
            op.attrs.insert(key.to_string(), b);
        }
        if let Some(a) = a {
            child.attrs.insert(key.to_string(), a);
        }
    }
    // Swap every use of the two induction variables inside the child body.
    child.walk_mut(&mut |inner| {
        for v in &mut inner.operands {
            match v.kind {
                crate::ir::MValueKind::BlockArg { block, idx: 0 } if block == parent_block_uid => {
                    v.kind = crate::ir::MValueKind::BlockArg {
                        block: child_block_uid,
                        idx: 0,
                    };
                }
                crate::ir::MValueKind::BlockArg { block, idx: 0 } if block == child_block_uid => {
                    v.kind = crate::ir::MValueKind::BlockArg {
                        block: parent_block_uid,
                        idx: 0,
                    };
                }
                _ => {}
            }
        }
    });
    true
}

#[cfg(test)]
mod interchange_tests {
    use super::*;
    use crate::parser::parse_module;
    use crate::printer::print_module;

    #[test]
    fn swaps_bounds_and_ivs() {
        let src = r#"
func.func @f(%m: memref<4x8xf32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 8 {
      %v = affine.load %m[%i, %j] : memref<4x8xf32>
      affine.store %v, %m[%i, %j] : memref<4x8xf32>
    }
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(InterchangeInnermost.run(&mut m).unwrap());
        crate::verifier::verify_module(&m).unwrap();
        let text = print_module(&m);
        // Outer now iterates 0..8, inner 0..4; subscripts still [row, col]
        // where row is the 0..4 variable (now the inner one, printed %j).
        assert!(text.contains("affine.for %i = 0 to 8 {"), "{text}");
        assert!(text.contains("affine.for %j = 0 to 4 {"), "{text}");
        assert!(text.contains("affine.load %arg0[%j, %i]"), "{text}");
    }

    #[test]
    fn imperfect_nests_are_left_alone() {
        let src = r#"
func.func @f(%m: memref<4xf32>) {
  affine.for %i = 0 to 4 {
    %z = arith.constant 0.0 : f32
    affine.store %z, %m[%i] : memref<4xf32>
    affine.for %j = 0 to 4 {
      %v = affine.load %m[%j] : memref<4xf32>
      affine.store %v, %m[%j] : memref<4xf32>
    }
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(!InterchangeInnermost.run(&mut m).unwrap());
    }

    #[test]
    fn triple_nest_swaps_only_innermost_pair() {
        let src = r#"
func.func @f(%m: memref<2x4x8xf32>) {
  affine.for %i = 0 to 2 {
    affine.for %j = 0 to 4 {
      affine.for %k = 0 to 8 {
        %v = affine.load %m[%i, %j, %k] : memref<2x4x8xf32>
        affine.store %v, %m[%i, %j, %k] : memref<2x4x8xf32>
      }
    }
  }
  func.return
}
"#;
        let mut m = parse_module("m", src).unwrap();
        assert!(InterchangeInnermost.run(&mut m).unwrap());
        crate::verifier::verify_module(&m).unwrap();
        let text = print_module(&m);
        // i stays outermost (its body is not a perfect pair after the j/k
        // swap consideration — only the innermost pair (j,k) swaps).
        assert!(text.contains("affine.for %i = 0 to 2 {"), "{text}");
        assert!(text.contains("affine.for %j = 0 to 8 {"), "{text}");
        assert!(text.contains("affine.for %k = 0 to 4 {"), "{text}");
    }
}
