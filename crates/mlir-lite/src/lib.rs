//! `mlir-lite` — a self-contained subset of MLIR.
//!
//! Models the multi-level IR side of the paper's pipeline: generic
//! operations with regions, the `builtin`/`func`/`arith`/`math`/`memref`/
//! `affine`/`scf`/`cf` dialects, first-class affine maps, HLS directive
//! attributes, a structured-syntax printer and parser, a verifier, and an
//! MLIR-level pass manager with canonicalization/CSE/directive passes.
//!
//! The design follows upstream MLIR's shape (ops own regions own blocks own
//! ops; values are handles) but with a tree-ownership model instead of
//! uniqued context objects, which keeps the whole crate safe Rust with no
//! interior mutability.

pub mod affine;
pub mod attr;
pub mod dialects;
pub mod ir;
pub mod parser;
pub mod passes;
pub mod printer;
pub mod stats;
pub mod verifier;

pub use affine::{AffineExpr, AffineMap};
pub use attr::Attr;
pub use ir::{MBlock, MType, MValue, MValueKind, MlirModule, Op, Region};

/// Errors for parsing/verification at the MLIR level.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Textual parse error with a 1-based line number.
    Parse { line: u32, msg: String },
    /// Structural verification failure.
    Verify(String),
    /// A lowering/transform precondition failed.
    Transform(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            Error::Verify(m) => write!(f, "verification error: {m}"),
            Error::Transform(m) => write!(f, "transform error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
