//! `mlir-lite` — a self-contained subset of MLIR.
//!
//! Models the multi-level IR side of the paper's pipeline: generic
//! operations with regions, the `builtin`/`func`/`arith`/`math`/`memref`/
//! `affine`/`scf`/`cf` dialects, first-class affine maps, HLS directive
//! attributes, a structured-syntax printer and parser, a verifier, and an
//! MLIR-level pass manager with canonicalization/CSE/directive passes.
//!
//! The design follows upstream MLIR's shape (ops own regions own blocks own
//! ops; values are handles) but with a tree-ownership model instead of
//! uniqued context objects, which keeps the whole crate safe Rust with no
//! interior mutability.

pub mod affine;
pub mod attr;
pub mod dialects;
pub mod ir;
pub mod parser;
pub mod passes;
pub mod printer;
pub mod stats;
pub mod verifier;

pub use affine::{AffineExpr, AffineMap};
pub use attr::Attr;
pub use ir::{MBlock, MType, MValue, MValueKind, MlirModule, Op, Region};

/// Errors for parsing/verification at the MLIR level.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Textual parse error with a 1-based line number.
    Parse { line: u32, msg: String },
    /// Structural verification failure.
    Verify(String),
    /// A lowering/transform precondition failed.
    Transform(String),
    /// A structured, located diagnostic from the pass/verifier layer.
    Diag(pass_core::Diagnostic),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            Error::Verify(m) => write!(f, "verification error: {m}"),
            Error::Transform(m) => write!(f, "transform error: {m}"),
            Error::Diag(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<pass_core::Diagnostic> for Error {
    fn from(d: pass_core::Diagnostic) -> Error {
        Error::Diag(d)
    }
}

impl From<Error> for pass_core::Diagnostic {
    fn from(e: Error) -> pass_core::Diagnostic {
        match e {
            Error::Diag(d) => d,
            other => pass_core::Diagnostic::error("mlir-lite", other.to_string()),
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

impl pass_core::PassIr for MlirModule {
    /// Total operation count (all nesting levels).
    fn ir_size(&self) -> usize {
        self.count_ops(|_| true)
    }

    fn verify_ir(&self) -> pass_core::PassResult<()> {
        verifier::verify_module_diag(self)
    }
}
