//! Textual MLIR output.
//!
//! Structured ops (`func.func`, `affine.for`, `scf.for`, `affine.load`, …)
//! print in their custom pretty syntax, close enough to real MLIR that a
//! reader can diff against `mlir-opt` output; anything else falls back to
//! the quoted generic form. Loop induction variables get readable names
//! (`%i`, `%j`, `%k`, …) by nesting depth.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::affine::{AffineExpr, AffineMap};
use crate::attr::Attr;
use crate::ir::{MValueKind, MlirModule, Op};

/// Print a module.
pub fn print_module(m: &MlirModule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module @{} {{", sanitize(&m.name));
    for op in &m.ops {
        let mut p = Printer::new();
        p.print_op(op, 1);
        out.push_str(&p.out);
    }
    out.push_str("}\n");
    out
}

/// Print a single (top-level) op, e.g. one function.
pub fn print_op(op: &Op) -> String {
    let mut p = Printer::new();
    p.print_op(op, 0);
    p.out
}

fn sanitize(name: &str) -> String {
    let s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() {
        "m".to_string()
    } else {
        s
    }
}

const IV_NAMES: &[&str] = &["i", "j", "k", "l", "m", "n", "p", "q"];

struct Printer {
    out: String,
    /// value name environment: (kind-hash) -> printed name.
    names: HashMap<(u32, u32, bool), String>,
    counter: u32,
    used: HashMap<String, u32>,
    depth: usize,
}

impl Printer {
    fn new() -> Printer {
        Printer {
            out: String::new(),
            names: HashMap::new(),
            counter: 0,
            used: HashMap::new(),
            depth: 0,
        }
    }

    fn key(kind: &MValueKind) -> (u32, u32, bool) {
        match kind {
            MValueKind::OpResult { op, idx } => (*op, *idx, false),
            MValueKind::BlockArg { block, idx } => (*block, *idx, true),
        }
    }

    fn unique(&mut self, base: &str) -> String {
        let n = self.used.entry(base.to_string()).or_insert(0);
        let name = if *n == 0 {
            base.to_string()
        } else {
            format!("{base}_{n}")
        };
        *n += 1;
        name
    }

    fn bind(&mut self, kind: &MValueKind, base: &str) -> String {
        let name = self.unique(base);
        self.names.insert(Self::key(kind), name.clone());
        name
    }

    fn name_of(&mut self, kind: &MValueKind) -> String {
        if let Some(n) = self.names.get(&Self::key(kind)) {
            return n.clone();
        }
        // Unseen value (e.g. printing a fragment) — invent a stable name.
        let n = format!("v{}", self.counter);
        self.counter += 1;
        self.names.insert(Self::key(kind), n.clone());
        n
    }

    fn val(&mut self, v: &crate::ir::MValue) -> String {
        format!("%{}", self.name_of(&v.kind))
    }

    fn bind_results(&mut self, op: &Op) -> String {
        if op.result_types.is_empty() {
            return String::new();
        }
        let mut lhs = Vec::new();
        for i in 0..op.result_types.len() as u32 {
            let base = format!("{}", self.counter);
            self.counter += 1;
            let name = self.bind(&MValueKind::OpResult { op: op.uid, idx: i }, &base);
            lhs.push(format!("%{name}"));
        }
        format!("{} = ", lhs.join(", "))
    }

    fn print_op(&mut self, op: &Op, indent: usize) {
        let pad = "  ".repeat(indent);
        match op.name.as_str() {
            "func.func" => self.print_func(op, indent),
            "affine.for" | "scf.for" => self.print_for(op, indent),
            "scf.if" => self.print_if(op, indent),
            "affine.yield" | "scf.yield" => {
                // Implicit terminators: printed only when they carry operands
                // (they never do in this subset), so elide.
            }
            "func.return" => {
                if op.operands.is_empty() {
                    let _ = writeln!(self.out, "{pad}func.return");
                } else {
                    let v = self.val(&op.operands[0]);
                    let ty = &op.operands[0].ty;
                    let _ = writeln!(self.out, "{pad}func.return {v} : {ty}");
                }
            }
            "arith.constant" => {
                let lhs = self.bind_results(op);
                let value = op.attrs.get("value").cloned().unwrap_or(Attr::i64(0));
                let _ = writeln!(self.out, "{pad}{lhs}arith.constant {value}");
            }
            "affine.load" => {
                let lhs = self.bind_results(op);
                let mref = self.val(&op.operands[0]);
                let map = op.attrs.get("map").and_then(Attr::as_map).cloned();
                let dims: Vec<String> = op.operands[1..].iter().map(|v| self.val(v)).collect();
                let subs = subscripts(&map, &dims);
                let _ = writeln!(
                    self.out,
                    "{pad}{lhs}affine.load {mref}[{subs}] : {}",
                    op.operands[0].ty
                );
            }
            "affine.store" => {
                let v = self.val(&op.operands[0]);
                let mref = self.val(&op.operands[1]);
                let map = op.attrs.get("map").and_then(Attr::as_map).cloned();
                let dims: Vec<String> = op.operands[2..].iter().map(|v| self.val(v)).collect();
                let subs = subscripts(&map, &dims);
                let _ = writeln!(
                    self.out,
                    "{pad}affine.store {v}, {mref}[{subs}] : {}",
                    op.operands[1].ty
                );
            }
            "affine.apply" => {
                let lhs = self.bind_results(op);
                let map = op.attrs.get("map").and_then(Attr::as_map).cloned();
                let dims: Vec<String> = op.operands.iter().map(|v| self.val(v)).collect();
                let subs = subscripts(&map, &dims);
                let _ = writeln!(self.out, "{pad}{lhs}affine.apply ({subs})");
            }
            "memref.load" => {
                let lhs = self.bind_results(op);
                let mref = self.val(&op.operands[0]);
                let idx: Vec<String> = op.operands[1..].iter().map(|v| self.val(v)).collect();
                let _ = writeln!(
                    self.out,
                    "{pad}{lhs}memref.load {mref}[{}] : {}",
                    idx.join(", "),
                    op.operands[0].ty
                );
            }
            "memref.store" => {
                let v = self.val(&op.operands[0]);
                let mref = self.val(&op.operands[1]);
                let idx: Vec<String> = op.operands[2..].iter().map(|v| self.val(v)).collect();
                let _ = writeln!(
                    self.out,
                    "{pad}memref.store {v}, {mref}[{}] : {}",
                    idx.join(", "),
                    op.operands[1].ty
                );
            }
            "memref.alloca" | "memref.alloc" => {
                let lhs = self.bind_results(op);
                let _ = writeln!(self.out, "{pad}{lhs}{}() : {}", op.name, op.result_types[0]);
            }
            "memref.dealloc" => {
                let v = self.val(&op.operands[0]);
                let _ = writeln!(self.out, "{pad}memref.dealloc {v} : {}", op.operands[0].ty);
            }
            "func.call" => {
                let lhs = self.bind_results(op);
                let callee = op.attrs.get("callee").and_then(Attr::as_str).unwrap_or("?");
                let args: Vec<String> = op.operands.iter().map(|v| self.val(v)).collect();
                let tys: Vec<String> = op.operands.iter().map(|v| v.ty.to_string()).collect();
                let rets: Vec<String> = op.result_types.iter().map(|t| t.to_string()).collect();
                let _ = writeln!(
                    self.out,
                    "{pad}{lhs}func.call @{callee}({}) : ({}) -> ({})",
                    args.join(", "),
                    tys.join(", "),
                    rets.join(", ")
                );
            }
            name if name.starts_with("arith.") || name.starts_with("math.") => {
                let lhs = self.bind_results(op);
                let args: Vec<String> = op.operands.iter().map(|v| self.val(v)).collect();
                let extra = op
                    .attrs
                    .get("predicate")
                    .and_then(Attr::as_str)
                    .map(|p| format!("{p}, "))
                    .unwrap_or_default();
                let ty = op
                    .operands
                    .first()
                    .map(|v| v.ty.to_string())
                    .or_else(|| op.result_types.first().map(|t| t.to_string()))
                    .unwrap_or_default();
                let _ = writeln!(
                    self.out,
                    "{pad}{lhs}{name} {extra}{} : {ty}",
                    args.join(", ")
                );
            }
            _ => self.print_generic(op, indent),
        }
    }

    fn print_func(&mut self, op: &Op, indent: usize) {
        let pad = "  ".repeat(indent);
        let name = op
            .attrs
            .get("sym_name")
            .and_then(Attr::as_str)
            .unwrap_or("?");
        let entry = op.regions[0].entry();
        let mut params = Vec::new();
        for (i, ty) in entry.arg_types.iter().enumerate() {
            let n = self.bind(
                &MValueKind::BlockArg {
                    block: entry.uid,
                    idx: i as u32,
                },
                &format!("arg{i}"),
            );
            params.push(format!("%{n}: {ty}"));
        }
        let extra_attrs: Vec<String> = op
            .attrs
            .iter()
            .filter(|(k, _)| k.as_str() != "sym_name" && k.as_str() != "ret_type")
            .map(|(k, v)| match v {
                Attr::Unit => k.clone(),
                _ => format!("{k} = {v}"),
            })
            .collect();
        let attr_str = if extra_attrs.is_empty() {
            String::new()
        } else {
            format!(" attributes {{{}}}", extra_attrs.join(", "))
        };
        let _ = writeln!(
            self.out,
            "{pad}func.func @{name}({}){attr_str} {{",
            params.join(", ")
        );
        for inner in &op.regions[0].entry().ops {
            self.print_op(inner, indent + 1);
        }
        let _ = writeln!(self.out, "{pad}}}");
    }

    fn print_for(&mut self, op: &Op, indent: usize) {
        let pad = "  ".repeat(indent);
        let entry = op.regions[0].entry();
        let base = IV_NAMES.get(self.depth).copied().unwrap_or("iv");
        let iv = self.bind(
            &MValueKind::BlockArg {
                block: entry.uid,
                idx: 0,
            },
            base,
        );
        let bounds = if op.name == "affine.for" {
            let lb = op.int_attr("lower_bound").unwrap_or(0);
            let ub = op.int_attr("upper_bound").unwrap_or(0);
            let step = op.int_attr("step").unwrap_or(1);
            if step == 1 {
                format!("{lb} to {ub}")
            } else {
                format!("{lb} to {ub} step {step}")
            }
        } else {
            let lb = self.val(&op.operands[0]);
            let ub = self.val(&op.operands[1]);
            let st = self.val(&op.operands[2]);
            format!("{lb} to {ub} step {st}")
        };
        let _ = writeln!(self.out, "{pad}{} %{iv} = {bounds} {{", op.name);
        self.depth += 1;
        for inner in &op.regions[0].entry().ops {
            self.print_op(inner, indent + 1);
        }
        self.depth -= 1;
        let attrs: Vec<String> = op
            .attrs
            .iter()
            .filter(|(k, _)| !matches!(k.as_str(), "lower_bound" | "upper_bound" | "step"))
            .map(|(k, v)| match v {
                Attr::Unit => k.clone(),
                _ => format!("{k} = {v}"),
            })
            .collect();
        if attrs.is_empty() {
            let _ = writeln!(self.out, "{pad}}}");
        } else {
            let _ = writeln!(self.out, "{pad}}} {{{}}}", attrs.join(", "));
        }
    }

    fn print_if(&mut self, op: &Op, indent: usize) {
        let pad = "  ".repeat(indent);
        let c = self.val(&op.operands[0]);
        let _ = writeln!(self.out, "{pad}scf.if {c} {{");
        for inner in &op.regions[0].entry().ops {
            self.print_op(inner, indent + 1);
        }
        let has_else = op
            .regions
            .get(1)
            .map(|r| !r.entry().ops.is_empty())
            .unwrap_or(false);
        if has_else {
            let _ = writeln!(self.out, "{pad}}} else {{");
            for inner in &op.regions[1].entry().ops {
                self.print_op(inner, indent + 1);
            }
        }
        let _ = writeln!(self.out, "{pad}}}");
    }

    fn print_generic(&mut self, op: &Op, indent: usize) {
        let pad = "  ".repeat(indent);
        let lhs = self.bind_results(op);
        let args: Vec<String> = op.operands.iter().map(|v| self.val(v)).collect();
        let succ: Vec<String> = op
            .successors
            .iter()
            .map(|(uid, args)| {
                let a: Vec<String> = args.iter().map(|v| self.val(v)).collect();
                if a.is_empty() {
                    format!("^bb{uid}")
                } else {
                    format!("^bb{uid}({})", a.join(", "))
                }
            })
            .collect();
        let succ_str = if succ.is_empty() {
            String::new()
        } else {
            format!("[{}]", succ.join(", "))
        };
        let attr_str = if op.attrs.is_empty() {
            String::new()
        } else {
            let items: Vec<String> = op.attrs.iter().map(|(k, v)| format!("{k} = {v}")).collect();
            format!(" {{{}}}", items.join(", "))
        };
        let in_tys: Vec<String> = op.operands.iter().map(|v| v.ty.to_string()).collect();
        let out_tys: Vec<String> = op.result_types.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(
            self.out,
            "{pad}{lhs}\"{}\"({}){succ_str}{attr_str} : ({}) -> ({})",
            op.name,
            args.join(", "),
            in_tys.join(", "),
            out_tys.join(", ")
        );
        for r in &op.regions {
            for b in &r.blocks {
                let _ = writeln!(self.out, "{pad}^bb{}:", b.uid);
                for inner in &b.ops {
                    self.print_op(inner, indent + 1);
                }
            }
        }
    }
}

/// Render map results with dims substituted by operand names:
/// `(d0 + 1, 2*d1)` over `["%i", "%j"]` -> `%i + 1, 2 * %j`.
fn subscripts(map: &Option<AffineMap>, dims: &[String]) -> String {
    let Some(map) = map else {
        return dims.join(", ");
    };
    map.results
        .iter()
        .map(|e| expr_with_names(e, dims))
        .collect::<Vec<_>>()
        .join(", ")
}

fn expr_with_names(e: &AffineExpr, dims: &[String]) -> String {
    match e {
        AffineExpr::Dim(i) => dims
            .get(*i as usize)
            .cloned()
            .unwrap_or_else(|| format!("d{i}")),
        AffineExpr::Sym(i) => format!("s{i}"),
        AffineExpr::Const(v) => v.to_string(),
        AffineExpr::Add(a, b) => match &**b {
            AffineExpr::Const(c) if *c < 0 => {
                format!("{} - {}", expr_with_names(a, dims), -c)
            }
            _ => format!(
                "{} + {}",
                expr_with_names(a, dims),
                expr_with_names(b, dims)
            ),
        },
        AffineExpr::Mul(a, b) => format!(
            "{} * {}",
            expr_with_names(b, dims),
            expr_with_names(a, dims)
        ),
        AffineExpr::Mod(a, m) => format!("({}) mod {m}", expr_with_names(a, dims)),
        AffineExpr::FloorDiv(a, d) => format!("({}) floordiv {d}", expr_with_names(a, dims)),
        AffineExpr::CeilDiv(a, d) => format!("({}) ceildiv {d}", expr_with_names(a, dims)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialects::{affine, arith, func, hls};
    use crate::ir::MType;

    /// Build `scale`: for i in 0..8 { A[i] = A[i] * 2.0 } with pipeline.
    fn scale_module() -> MlirModule {
        let mut m = MlirModule::new("scale");
        let mut f = func::func("scale", vec![MType::F32.memref(&[8])], MType::None);
        f.attrs.insert("hls.top".into(), Attr::Unit);
        let a = f.regions[0].entry().arg(0);
        let mut l = affine::for_loop(0, 8, 1);
        hls::set_pipeline(&mut l, 1);
        let iv = l.regions[0].entry().arg(0);
        let map = AffineMap::identity(1);
        let ld = affine::load(a.clone(), map.clone(), vec![iv.clone()]);
        let c = arith::const_float(2.0, MType::F32);
        let mul = arith::mulf(ld.result(0), c.result(0));
        let st = affine::store(mul.result(0), a, map, vec![iv]);
        {
            let body = l.regions[0].entry_mut();
            body.ops.push(ld);
            body.ops.push(c);
            body.ops.push(mul);
            body.ops.push(st);
            body.ops.push(affine::yield_());
        }
        {
            let fb = f.regions[0].entry_mut();
            fb.ops.push(l);
            fb.ops.push(func::ret(None));
        }
        m.ops.push(f);
        m
    }

    #[test]
    fn prints_structured_syntax() {
        let text = print_module(&scale_module());
        assert!(text.contains("module @scale {"));
        assert!(text.contains("func.func @scale(%arg0: memref<8xf32>) attributes {hls.top} {"));
        assert!(text.contains("affine.for %i = 0 to 8 {"));
        assert!(text.contains("affine.load %arg0[%i] : memref<8xf32>"));
        assert!(text.contains("arith.constant 2.0 : f32"));
        assert!(text.contains("} {hls.pipeline_ii = 1 : i32}"));
        assert!(text.contains("func.return"));
    }

    #[test]
    fn subscript_expressions_substitute_names() {
        use crate::affine::AffineExpr;
        let map = AffineMap::new(
            2,
            0,
            vec![
                AffineExpr::dim(0).add(AffineExpr::cst(1)),
                AffineExpr::dim(1).mul(AffineExpr::cst(2)),
            ],
        );
        let s = subscripts(&Some(map), &["%i".into(), "%j".into()]);
        assert_eq!(s, "%i + 1, 2 * %j");
    }

    #[test]
    fn nested_loops_get_successive_iv_names() {
        let mut m = MlirModule::new("m");
        let mut f = func::func("f", vec![], MType::None);
        let mut outer = affine::for_loop(0, 4, 1);
        let mut inner = affine::for_loop(0, 4, 1);
        inner.regions[0].entry_mut().ops.push(affine::yield_());
        outer.regions[0].entry_mut().ops.push(inner);
        outer.regions[0].entry_mut().ops.push(affine::yield_());
        f.regions[0].entry_mut().ops.push(outer);
        f.regions[0].entry_mut().ops.push(func::ret(None));
        m.ops.push(f);
        let text = print_module(&m);
        assert!(text.contains("affine.for %i = 0 to 4 {"));
        assert!(text.contains("affine.for %j = 0 to 4 {"));
    }

    #[test]
    fn generic_fallback_for_unknown_ops() {
        let mut m = MlirModule::new("m");
        let mut f = func::func("f", vec![MType::I32], MType::None);
        let arg = f.regions[0].entry().arg(0);
        let weird = Op::new("test.frob")
            .with_operands(vec![arg])
            .with_results(vec![MType::I32])
            .with_attr("gain", Attr::i64(3));
        f.regions[0].entry_mut().ops.push(weird);
        f.regions[0].entry_mut().ops.push(func::ret(None));
        m.ops.push(f);
        let text = print_module(&m);
        assert!(text.contains("\"test.frob\"(%arg0) {gain = 3 : i64} : (i32) -> (i32)"));
    }

    #[test]
    fn step_is_elided_when_one() {
        let text = print_module(&scale_module());
        assert!(!text.contains("step 1 {"));
    }
}
