//! Property tests for the affine-expression algebra: canonicalization must
//! be semantics-preserving and idempotent, and linear forms must agree with
//! direct evaluation.

use mlir_lite::affine::{AffineExpr, AffineMap};
use proptest::prelude::*;

const DIMS: u32 = 3;

fn gen_expr() -> impl Strategy<Value = AffineExpr> {
    let leaf = prop_oneof![
        (0u32..DIMS).prop_map(AffineExpr::dim),
        (-20i64..20).prop_map(AffineExpr::cst),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), -5i64..6).prop_map(|(a, k)| a.mul(AffineExpr::cst(k))),
            (inner.clone(), 1i64..8).prop_map(|(a, m)| AffineExpr::Mod(Box::new(a), m)),
            (inner, 1i64..8).prop_map(|(a, d)| AffineExpr::FloorDiv(Box::new(a), d)),
        ]
    })
}

/// Linear (mod/div-free) expressions only.
fn gen_linear_expr() -> impl Strategy<Value = AffineExpr> {
    let leaf = prop_oneof![
        (0u32..DIMS).prop_map(AffineExpr::dim),
        (-20i64..20).prop_map(AffineExpr::cst),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner, -5i64..6).prop_map(|(a, k)| a.mul(AffineExpr::cst(k))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn canonicalize_preserves_semantics(
        e in gen_expr(),
        d0 in -10i64..10, d1 in -10i64..10, d2 in -10i64..10,
    ) {
        let c = e.canonicalize(DIMS, 0);
        let dims = [d0, d1, d2];
        prop_assert_eq!(e.eval(&dims, &[]), c.eval(&dims, &[]));
    }

    #[test]
    fn canonicalize_is_idempotent(e in gen_expr()) {
        let once = e.canonicalize(DIMS, 0);
        let twice = once.canonicalize(DIMS, 0);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn linear_form_matches_eval(
        e in gen_linear_expr(),
        d0 in -10i64..10, d1 in -10i64..10, d2 in -10i64..10,
    ) {
        let (coeffs, _, cst) = e.linear_form(DIMS, 0).expect("mod/div-free");
        let dims = [d0, d1, d2];
        let linear: i64 = coeffs.iter().zip(&dims).map(|(c, d)| c * d).sum::<i64>() + cst;
        prop_assert_eq!(e.eval(&dims, &[]), linear);
    }

    #[test]
    fn canonical_linear_exprs_are_simple_or_flat(e in gen_linear_expr()) {
        // Canonicalized linear expressions never nest adds inside muls.
        fn well_formed(e: &AffineExpr) -> bool {
            match e {
                AffineExpr::Add(a, b) => well_formed(a) && well_formed(b),
                AffineExpr::Mul(a, b) => {
                    matches!(**a, AffineExpr::Dim(_) | AffineExpr::Sym(_))
                        && matches!(**b, AffineExpr::Const(_))
                }
                AffineExpr::Dim(_) | AffineExpr::Sym(_) | AffineExpr::Const(_) => true,
                _ => false,
            }
        }
        prop_assert!(well_formed(&e.canonicalize(DIMS, 0)));
    }

    #[test]
    fn map_identity_roundtrip(n in 1u32..4, vals in prop::collection::vec(-50i64..50, 3)) {
        let id = AffineMap::identity(n);
        let dims: Vec<i64> = vals.into_iter().take(n as usize).collect();
        if dims.len() == n as usize {
            prop_assert_eq!(id.eval(&dims, &[]), dims);
        }
    }

    #[test]
    fn display_never_panics_and_is_nonempty(e in gen_expr()) {
        prop_assert!(!e.to_string().is_empty());
    }
}
