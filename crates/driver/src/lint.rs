//! The `mha-lint` surface: combine the `analysis` crate's check suite with
//! the simulator's II-blocker explainer and render the result.
//!
//! The split mirrors the dependency structure: structural checks
//! (out-of-bounds subscripts, uninitialized reads, recursion, aliasing)
//! need only the IR, while explaining *why a loop cannot reach II = 1*
//! needs the operator latency library — so that explainer lives in
//! `vitis-sim` and the two meet here.

use llvm_lite::Module;
use pass_core::report::json_str;
use pass_core::{Diagnostic, Severity};

/// Everything mha-lint found for one module.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All findings, check-suite findings first, II notes last.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Run the full suite over an HLS-ready LLVM module.
    pub fn for_module(m: &Module, explain_ii: bool) -> LintReport {
        let mut diagnostics = analysis::lint_module(m);
        if explain_ii {
            let target = vitis_sim::Target::default();
            for f in m.functions.iter().filter(|f| !f.is_declaration) {
                diagnostics.extend(vitis_sim::explain_ii_blockers(m, f, &target));
            }
        }
        LintReport { diagnostics }
    }

    /// Findings of exactly the given severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Process exit code: 2 with errors, 1 with warnings, 0 otherwise.
    /// Notes (the II explainer) never affect the exit code.
    pub fn exit_code(&self) -> i32 {
        if self.count(Severity::Error) > 0 {
            2
        } else if self.count(Severity::Warning) > 0 {
            1
        } else {
            0
        }
    }

    /// Clean means no errors and no warnings (notes are allowed).
    pub fn is_clean(&self) -> bool {
        self.exit_code() == 0
    }

    /// One rendered line per finding.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// JSON array of findings (no external serializer; same hand-rolled
    /// style as `PipelineReport::to_json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":{},\"check\":{},\"function\":{},\"block\":{},\"inst\":{},\"message\":{}}}",
                json_str(&d.severity.to_string()),
                json_str(&d.pass),
                json_str(d.loc.function.as_deref().unwrap_or("")),
                json_str(d.loc.block.as_deref().unwrap_or("")),
                json_str(d.loc.inst.as_deref().unwrap_or("")),
                json_str(&d.message),
            ));
        }
        out.push(']');
        out
    }
}

/// Lint a named benchmark kernel: run the adaptor flow to HLS-ready IR,
/// then the suite over the result.
pub fn lint_kernel(name: &str, explain_ii: bool) -> crate::Result<LintReport> {
    let k = kernels::kernel(name)
        .ok_or_else(|| crate::DriverError(format!("unknown kernel '{name}'")))?;
    let art = crate::flow::run_flow(k, &crate::Directives::default(), crate::Flow::Adaptor)?;
    Ok(LintReport::for_module(&art.module, explain_ii))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_worst_severity() {
        let mut r = LintReport::default();
        assert_eq!(r.exit_code(), 0);
        r.diagnostics.push(Diagnostic::note("ii-blocker", "info"));
        assert_eq!(r.exit_code(), 0);
        r.diagnostics
            .push(Diagnostic::warning("lint-dead-store", "w"));
        assert_eq!(r.exit_code(), 1);
        r.diagnostics.push(Diagnostic::error("lint-oob", "e"));
        assert_eq!(r.exit_code(), 2);
        assert!(!r.is_clean());
    }

    #[test]
    fn json_escapes_and_structures_findings() {
        let mut r = LintReport::default();
        r.diagnostics.push(
            Diagnostic::error("lint-oob", "index \"oob\"")
                .with_loc(pass_core::Loc::function("f").in_block("body").at_inst("%p")),
        );
        let j = r.to_json();
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"check\":\"lint-oob\""));
        assert!(j.contains("\"function\":\"f\""));
        assert!(j.contains("\\\"oob\\\""));
    }

    #[test]
    fn kernel_lint_runs_end_to_end() {
        let r = lint_kernel("gemm", true).unwrap();
        assert!(r.is_clean(), "gemm should be lint-clean:\n{}", r.render());
        // The accumulation recurrence must be explained.
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.pass == vitis_sim::II_BLOCKER_PASS));
    }
}
