//! Replayable corpus of fuzzing findings.
//!
//! One file per unique failure signature, named `<sig-hex>.finding` after
//! the signature's stable 64-bit id, so re-running a campaign over the
//! same seed range rewrites the same files instead of accumulating
//! duplicates. Entries are written with the cache's
//! [`atomic_write`] staging, so a campaign
//! killed mid-write never leaves a torn entry behind.
//!
//! The format is line-based and self-describing:
//!
//! ```text
//! mha-corpus 1
//! seed <u64>
//! oracle <kind>
//! stage <stage>
//! hits <u64>
//! signature <rendered signature>
//! --- kernel
//! <kernel MLIR text>
//! --- reduced            (only when reduction shrank the kernel)
//! <minimized MLIR text>
//! ```
//!
//! A reader needs nothing but the seed to regenerate the original kernel
//! (the generator is bit-stable), but the text is stored anyway so an
//! entry stays actionable even if the generator evolves.

use std::path::{Path, PathBuf};

use fuzzing::sig::{Failure, OracleKind, Signature};
use fuzzing::Finding;

use crate::cache::{atomic_write, CacheError};

/// Format version; bump on any layout change.
pub const CORPUS_SCHEMA_VERSION: u32 = 1;

/// One decoded corpus entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Seed whose kernel exposed the failure.
    pub seed: u64,
    /// Oracle kind recorded at save time.
    pub oracle: OracleKind,
    /// Pipeline stage recorded at save time.
    pub stage: String,
    /// Seeds that hit this signature during the saving campaign.
    pub hits: u64,
    /// The rendered signature (the dedup identity).
    pub signature: Signature,
    /// Kernel text exactly as generated.
    pub kernel: String,
    /// Minimized reproducer, when present.
    pub reduced: Option<String>,
}

/// A directory of findings.
#[derive(Clone, Debug)]
pub struct Corpus {
    dir: PathBuf,
}

impl Corpus {
    /// Open (creating if needed) a corpus rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Corpus, CacheError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| CacheError {
            path: dir.clone(),
            detail: format!("cannot create corpus directory: {e}"),
        })?;
        Ok(Corpus { dir })
    }

    /// Default location, next to the artifact cache.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target").join("mha-corpus")
    }

    /// Where this corpus lives.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a finding with `sig` lives at.
    pub fn entry_path(&self, sig: &Signature) -> PathBuf {
        self.dir.join(format!("{}.finding", sig.hex_id()))
    }

    /// Persist one finding; returns the path written.
    pub fn store(&self, f: &Finding) -> Result<PathBuf, CacheError> {
        let mut out = format!(
            "mha-corpus {CORPUS_SCHEMA_VERSION}\nseed {}\noracle {}\nstage {}\nhits {}\nsignature {}\n--- kernel\n{}",
            f.seed,
            f.failure.oracle.as_str(),
            f.failure.stage,
            f.hits,
            f.signature.as_str(),
            f.kernel,
        );
        if !out.ends_with('\n') {
            out.push('\n');
        }
        if let Some(red) = &f.reduced {
            out.push_str("--- reduced\n");
            out.push_str(red);
            if !out.ends_with('\n') {
                out.push('\n');
            }
        }
        let path = self.entry_path(&f.signature);
        atomic_write(&self.dir, &path, &out)?;
        Ok(path)
    }

    /// All entry paths, sorted for stable iteration.
    pub fn list(&self) -> Result<Vec<PathBuf>, CacheError> {
        let rd = std::fs::read_dir(&self.dir).map_err(|e| CacheError {
            path: self.dir.clone(),
            detail: format!("cannot list corpus: {e}"),
        })?;
        let mut out: Vec<PathBuf> = rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|x| x == "finding").unwrap_or(false))
            .collect();
        out.sort();
        Ok(out)
    }

    /// Decode one entry file. Structural deviations are errors with the
    /// offending detail; the caller decides whether to skip or abort.
    pub fn load(path: &Path) -> Result<CorpusEntry, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: unreadable entry: {e}", path.display()))?;
        let mut lines = text.lines();
        let magic = lines.next().unwrap_or("");
        if magic != format!("mha-corpus {CORPUS_SCHEMA_VERSION}") {
            return Err(format!("{}: bad magic line '{magic}'", path.display()));
        }
        let mut take = |tag: &str| -> Result<String, String> {
            let line = lines
                .next()
                .ok_or_else(|| format!("{}: missing '{tag}' line", path.display()))?;
            line.strip_prefix(tag)
                .and_then(|r| r.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| format!("{}: expected '{tag}' line, got '{line}'", path.display()))
        };
        let seed: u64 = take("seed")?
            .parse()
            .map_err(|_| format!("{}: bad seed", path.display()))?;
        let oracle_name = take("oracle")?;
        let oracle = OracleKind::parse_name(&oracle_name)
            .ok_or_else(|| format!("{}: unknown oracle '{oracle_name}'", path.display()))?;
        let stage = take("stage")?;
        let hits: u64 = take("hits")?
            .parse()
            .map_err(|_| format!("{}: bad hits", path.display()))?;
        let signature = Signature::from_rendered(&take("signature")?);
        if lines.next() != Some("--- kernel") {
            return Err(format!("{}: missing '--- kernel' marker", path.display()));
        }
        let mut kernel = String::new();
        let mut reduced: Option<String> = None;
        let mut into_reduced = false;
        for line in lines {
            if line == "--- reduced" {
                into_reduced = true;
                reduced = Some(String::new());
                continue;
            }
            let dst = if into_reduced {
                reduced.as_mut().expect("set when marker seen")
            } else {
                &mut kernel
            };
            dst.push_str(line);
            dst.push('\n');
        }
        Ok(CorpusEntry {
            seed,
            oracle,
            stage,
            hits,
            signature,
            kernel,
            reduced,
        })
    }
}

/// Rebuild a [`Failure`]-shaped record from an entry (the message is the
/// signature's normalized form — the raw message is not persisted).
pub fn entry_failure(e: &CorpusEntry) -> Failure {
    Failure::new(e.oracle, &e.stage, e.signature.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzing::sig::Failure;

    fn tmp_corpus(tag: &str) -> Corpus {
        let dir =
            std::env::temp_dir().join(format!("mha-corpus-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Corpus::open(dir).unwrap()
    }

    fn sample_finding(reduced: bool) -> Finding {
        let failure = Failure::new(OracleKind::Differential, "compare", "buffer 0 element 3");
        let signature = failure.signature();
        Finding {
            seed: 42,
            failure,
            signature,
            kernel: "func.func @fuzzk() attributes {hls.top} {\n  func.return\n}\n".into(),
            reduced: reduced.then(|| "func.func @fuzzk() {\n}\n".into()),
            hits: 7,
        }
    }

    #[test]
    fn store_then_load_roundtrips() {
        let c = tmp_corpus("roundtrip");
        for with_reduced in [false, true] {
            let f = sample_finding(with_reduced);
            let path = c.store(&f).unwrap();
            let e = Corpus::load(&path).unwrap();
            assert_eq!(e.seed, 42);
            assert_eq!(e.oracle, OracleKind::Differential);
            assert_eq!(e.stage, "compare");
            assert_eq!(e.hits, 7);
            assert_eq!(e.signature, f.signature);
            assert_eq!(e.kernel, f.kernel);
            assert_eq!(e.reduced, f.reduced);
        }
    }

    #[test]
    fn same_signature_overwrites_instead_of_accumulating() {
        let c = tmp_corpus("dedup");
        let mut f = sample_finding(false);
        c.store(&f).unwrap();
        f.hits = 99;
        c.store(&f).unwrap();
        let paths = c.list().unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(Corpus::load(&paths[0]).unwrap().hits, 99);
    }

    #[test]
    fn malformed_entries_are_located_errors() {
        let c = tmp_corpus("malformed");
        let p = c.dir().join("bogus.finding");
        std::fs::write(&p, "not a corpus entry").unwrap();
        let err = Corpus::load(&p).unwrap_err();
        assert!(err.contains("bogus.finding"), "{err}");
        assert!(err.contains("magic"), "{err}");
    }
}
