//! The experiment harness: run kernels through both flows and collect
//! everything the table/figure generators need.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use vitis_sim::{csynth, CsynthReport, Target};

use crate::cosim::cosim;
use crate::flow::{run_flow, Flow};
use crate::Result;
use kernels::Kernel;

/// HLS directives applied (identically) at the MLIR level before either
/// flow runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Directives {
    /// Pipeline every innermost loop at this II.
    pub pipeline_ii: Option<u32>,
    /// Unroll every pipelined loop by this factor.
    pub unroll_factor: Option<u32>,
    /// Cyclically partition every array interface by this factor.
    pub partition_factor: Option<u32>,
    /// Flatten perfect loop nests around pipelined innermost loops.
    pub flatten: bool,
}

impl Directives {
    /// Pipeline innermost loops at the given II, no unrolling.
    pub fn pipelined(ii: u32) -> Directives {
        Directives {
            pipeline_ii: Some(ii),
            unroll_factor: None,
            partition_factor: None,
            flatten: false,
        }
    }
}

/// One flow's results within an experiment row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlowOutcome {
    /// Synthesis report.
    pub report: CsynthReport,
    /// Co-simulation max error vs the reference.
    pub cosim_err: f32,
    /// Flow conversion time, microseconds.
    pub flow_us: u64,
    /// Instructions in the final module's top function.
    pub ir_insts: usize,
}

/// One kernel × directives experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentRow {
    /// Kernel name.
    pub kernel: String,
    /// Directives used.
    pub directives: Directives,
    /// Adaptor-flow results.
    pub adaptor: FlowOutcome,
    /// C++-flow results.
    pub cpp: FlowOutcome,
}

impl ExperimentRow {
    /// Latency ratio C++/adaptor (>1 = adaptor faster).
    pub fn latency_ratio(&self) -> f64 {
        self.cpp.report.latency as f64 / self.adaptor.report.latency.max(1) as f64
    }
}

fn outcome(
    kernel: &Kernel,
    directives: &Directives,
    flow: Flow,
    target: &Target,
) -> Result<FlowOutcome> {
    let art = run_flow(kernel, directives, flow)?;
    let report = csynth(&art.module, target)?;
    let sim = cosim(&art.module, kernel, 2026)?;
    let ir_insts = art
        .module
        .top_function()
        .map(|f| f.num_insts())
        .unwrap_or(0);
    Ok(FlowOutcome {
        report,
        cosim_err: sim.max_abs_err,
        flow_us: art.elapsed_us(),
        ir_insts,
    })
}

/// Run one kernel through both flows.
pub fn run_experiment(
    kernel: &Kernel,
    directives: &Directives,
    target: &Target,
) -> Result<ExperimentRow> {
    Ok(ExperimentRow {
        kernel: kernel.name.to_string(),
        directives: *directives,
        adaptor: outcome(kernel, directives, Flow::Adaptor, target)?,
        cpp: outcome(kernel, directives, Flow::Cpp, target)?,
    })
}

/// Run the whole suite (in parallel) with uniform directives.
pub fn run_suite(directives: &Directives, target: &Target) -> Result<Vec<ExperimentRow>> {
    kernels::all_kernels()
        .par_iter()
        .map(|k| run_experiment(k, directives, target))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_experiment_is_comparable_across_flows() {
        let k = kernels::kernel("gemm").unwrap();
        let row = run_experiment(k, &Directives::pipelined(1), &Target::default()).unwrap();
        assert_eq!(row.adaptor.cosim_err, 0.0);
        assert_eq!(row.cpp.cosim_err, 0.0);
        // The paper's claim: comparable QoR. Allow ±25% between the flows.
        let ratio = row.latency_ratio();
        assert!(
            (0.75..=1.34).contains(&ratio),
            "latency ratio {ratio} outside the comparable band: adaptor {} vs cpp {}",
            row.adaptor.report.latency,
            row.cpp.report.latency
        );
    }

    #[test]
    fn pipelining_beats_no_directives() {
        let k = kernels::kernel("fir").unwrap();
        let base = run_experiment(k, &Directives::default(), &Target::default()).unwrap();
        let piped = run_experiment(k, &Directives::pipelined(1), &Target::default()).unwrap();
        assert!(
            piped.adaptor.report.latency < base.adaptor.report.latency,
            "pipelined {} vs base {}",
            piped.adaptor.report.latency,
            base.adaptor.report.latency
        );
    }
}
