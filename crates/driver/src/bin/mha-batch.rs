//! `mha-batch` — run the whole kernel suite through the flow in parallel,
//! with a content-addressed artifact cache.
//!
//! ```text
//! mha-batch [--jobs N] [--format text|json] [--flow adaptor|cpp]
//!           [--no-cache] [--cache-dir DIR] [--report-json DIR]
//!           [--ii N] [--unroll N] [--partition N] [--flatten]
//!           [--seed N] [--inject-panic KERNEL]
//!           [--deadline-ms N] [--fuel N] [--chaos SEED,RATE] [--resume]
//!           [--isolate] [<kernel>... | all]
//! ```
//!
//! With no targets (or `all`), the full suite runs. Each kernel goes
//! through MLIR → flow → csynth → co-simulation on a `--jobs`-wide worker
//! pool; every stage output is cached under `--cache-dir` (default
//! `target/mha-cache`) keyed by a hash of its input text and configuration,
//! so a warm rerun only re-reads artifacts. A kernel that fails or panics
//! is reported in the summary without disturbing the others.
//!
//! Supervision flags (see ARCHITECTURE.md): `--deadline-ms`/`--fuel` bound
//! each kernel attempt (budget trips report as structured failures, not
//! hangs); `--chaos seed,rate` deterministically injects panics, delays,
//! I/O errors, and budget exhaustion at stage boundaries; `--resume`
//! replays kernels already completed in the run journal (`journal.jsonl`
//! next to the cache) after a killed run. Warnings go to stderr, so
//! `--format json` stdout is always one parseable document.
//!
//! `--isolate` runs each kernel's pipeline in a worker *process*
//! (`driver::warden`, re-exec'ing this binary with the hidden
//! `--warden-child` mode): a crash or OOM while compiling one kernel
//! becomes a `failed/crash` summary entry instead of killing the run.
//!
//! Exit codes: 0 all kernels clean, 1 some kernels failed or degraded, 2
//! infrastructure/usage error.

use std::path::PathBuf;

use driver::batch::{run_batch, BatchOptions, RunOutcome};
use driver::{ChaosConfig, Directives, Flow};

fn usage() -> ! {
    eprintln!(
        "usage: mha-batch [--jobs N] [--format text|json] [--flow adaptor|cpp]\n\
         \x20                [--no-cache] [--cache-dir DIR] [--report-json DIR]\n\
         \x20                [--ii N] [--unroll N] [--partition N] [--flatten]\n\
         \x20                [--seed N] [--inject-panic KERNEL]\n\
         \x20                [--deadline-ms N] [--fuel N] [--chaos SEED,RATE]\n\
         \x20                [--resume] [--isolate] [<kernel>... | all]"
    );
    std::process::exit(2);
}

fn flag_value(args: &mut std::env::Args, flag: &str) -> String {
    match args.next() {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs a value");
            usage();
        }
    }
}

fn parse_u32(s: &str, flag: &str) -> u32 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an integer, got '{s}'");
        usage();
    })
}

fn main() {
    // Worker mode: the warden re-execs this binary with `--warden-child`
    // as the only argument; dispatch before any flag parsing.
    if std::env::args().nth(1).as_deref() == Some("--warden-child") {
        driver::warden::child_main();
    }
    let mut opts = BatchOptions {
        directives: Directives::pipelined(1),
        ..BatchOptions::default()
    };
    let mut format_json = false;
    let mut report_json_dir: Option<PathBuf> = None;
    let mut targets: Vec<String> = Vec::new();

    let mut args = std::env::args();
    args.next();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => opts.jobs = parse_u32(&flag_value(&mut args, "--jobs"), "--jobs") as usize,
            "--format" => match flag_value(&mut args, "--format").as_str() {
                "text" => format_json = false,
                "json" => format_json = true,
                other => {
                    eprintln!("--format needs 'text' or 'json', got '{other}'");
                    usage();
                }
            },
            "--flow" => match flag_value(&mut args, "--flow").as_str() {
                "adaptor" => opts.flow = Flow::Adaptor,
                "cpp" => opts.flow = Flow::Cpp,
                other => {
                    eprintln!("--flow needs 'adaptor' or 'cpp', got '{other}'");
                    usage();
                }
            },
            "--no-cache" => opts.cache_dir = None,
            "--cache-dir" => {
                opts.cache_dir = Some(PathBuf::from(flag_value(&mut args, "--cache-dir")))
            }
            "--report-json" => {
                report_json_dir = Some(PathBuf::from(flag_value(&mut args, "--report-json")))
            }
            "--ii" => {
                opts.directives.pipeline_ii =
                    Some(parse_u32(&flag_value(&mut args, "--ii"), "--ii"))
            }
            "--unroll" => {
                opts.directives.unroll_factor =
                    Some(parse_u32(&flag_value(&mut args, "--unroll"), "--unroll"))
            }
            "--partition" => {
                opts.directives.partition_factor = Some(parse_u32(
                    &flag_value(&mut args, "--partition"),
                    "--partition",
                ))
            }
            "--flatten" => opts.directives.flatten = true,
            "--seed" => opts.seed = parse_u32(&flag_value(&mut args, "--seed"), "--seed") as u64,
            "--inject-panic" => opts.inject_panic = Some(flag_value(&mut args, "--inject-panic")),
            "--deadline-ms" => {
                opts.deadline_ms =
                    Some(parse_u32(&flag_value(&mut args, "--deadline-ms"), "--deadline-ms") as u64)
            }
            "--fuel" => {
                opts.fuel = Some(parse_u32(&flag_value(&mut args, "--fuel"), "--fuel") as u64)
            }
            "--chaos" => match ChaosConfig::parse(&flag_value(&mut args, "--chaos")) {
                Ok(cfg) => opts.chaos = Some(cfg),
                Err(e) => {
                    eprintln!("{e}");
                    usage();
                }
            },
            "--resume" => opts.resume = true,
            "--isolate" => opts.isolate = true,
            _ if a.starts_with("--") => {
                eprintln!("unknown flag '{a}'");
                usage();
            }
            _ => targets.push(a),
        }
    }

    let selected: Vec<kernels::Kernel> = if targets.is_empty() || targets.iter().any(|t| t == "all")
    {
        kernels::all_kernels().to_vec()
    } else {
        targets
            .iter()
            .map(|t| match kernels::kernel(t) {
                Some(k) => *k,
                None => {
                    eprintln!("unknown kernel '{t}'");
                    std::process::exit(2);
                }
            })
            .collect()
    };

    let summary = match run_batch(&selected, &opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mha-batch: {e}");
            std::process::exit(2);
        }
    };

    if let Some(dir) = &report_json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("mha-batch: cannot create {}: {e}", dir.display());
            std::process::exit(2);
        }
        for r in &summary.runs {
            // Degraded kernels still carry baseline (C++-flow) artifacts;
            // their report has `degraded: true` set.
            let artifacts = match &r.outcome {
                RunOutcome::Completed(a) => Some(a),
                RunOutcome::Degraded { artifacts, .. } => Some(artifacts),
                _ => None,
            };
            if let Some(a) = artifacts {
                let path = dir.join(format!("{}.json", r.kernel));
                if let Err(e) = std::fs::write(&path, a.report.to_json()) {
                    eprintln!("mha-batch: cannot write {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
    }

    if format_json {
        println!("{}", summary.to_json());
    } else {
        print!("{}", summary.render());
    }
    std::process::exit(summary.exit_code());
}
