//! `mha-translate` — show a kernel's journey from MLIR to raw LLVM IR
//! (before the adaptor runs).
//!
//! ```text
//! mha-translate <kernel> [--mlir | --llvm]
//! ```

use driver::Directives;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(name) = args.first() else {
        eprintln!("usage: mha-translate <kernel> [--mlir | --llvm]");
        eprintln!("kernels:");
        for k in kernels::all_kernels() {
            eprintln!("  {:<10} {}", k.name, k.description);
        }
        std::process::exit(2);
    };
    let Some(kernel) = kernels::kernel(name) else {
        eprintln!("unknown kernel '{name}'");
        std::process::exit(2);
    };
    let show_mlir = args.iter().any(|a| a == "--mlir");

    let m = driver::flow::prepare_mlir(kernel, &Directives::pipelined(1)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    if show_mlir {
        print!("{}", mlir_lite::printer::print_module(&m));
        return;
    }
    let lowered = lowering::lower(m).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", llvm_lite::printer::print_module(&lowered));
    eprintln!();
    eprintln!(
        "; raw lowering has {} HLS compatibility issue(s); run mha-adapt to fix them",
        adaptor::compat_issues(&lowered).len()
    );
}
