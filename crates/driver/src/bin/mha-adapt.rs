//! `mha-adapt` — run the paper's adaptor over a kernel and show the
//! before/after compatibility picture plus the adapted IR.
//!
//! ```text
//! mha-adapt <kernel> [--quiet]
//! ```

use adaptor::AdaptorConfig;
use driver::Directives;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(name) = args.first() else {
        eprintln!("usage: mha-adapt <kernel> [--quiet]");
        std::process::exit(2);
    };
    let Some(kernel) = kernels::kernel(name) else {
        eprintln!("unknown kernel '{name}'");
        std::process::exit(2);
    };
    let quiet = args.iter().any(|a| a == "--quiet");

    let m = driver::flow::prepare_mlir(kernel, &Directives::pipelined(1)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let mut module = lowering::lower(m).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });

    let before = adaptor::compat_issues(&module);
    eprintln!("== Issues before the adaptor ({})", before.len());
    for i in &before {
        eprintln!("  [{:?}] @{}: {}", i.kind, i.function, i.detail);
    }

    let report = adaptor::run_adaptor(&mut module, &AdaptorConfig::default()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    eprintln!("== Pass pipeline");
    for (pass, remaining) in &report.issues_after_pass {
        let changed = if report.changed_passes.contains(pass) {
            "changed"
        } else {
            "  --   "
        };
        eprintln!("  {pass:<26} {changed}   issues remaining: {remaining}");
    }
    eprintln!("== Issues after: {}", report.issues_after);
    eprint!("{}", report.pipeline.render());

    if !quiet {
        print!("{}", llvm_lite::printer::print_module(&module));
    }
}
