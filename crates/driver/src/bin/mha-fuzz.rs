//! `mha-fuzz` — seeded structured fuzzing of the whole adaptor stack.
//!
//! ```text
//! mha-fuzz [--seed N] [--count N] [--format text|json] [--corpus DIR]
//!          [--step-limit N] [--fuel N] [--deadline-ms N]
//!          [--no-reduce] [--reduce-budget N] [--legality] [--isolate]
//! ```
//!
//! Walks seeds `[--seed, --seed + --count)`; each seed deterministically
//! becomes a kernel (same seed, same kernel, on every machine and every
//! build) and runs through the oracle stack: parse/verify, print∘parse
//! round-trips at both IR levels, the adaptor flow with
//! verify-after-each-pass, the HLS-C++ flow, and bit-exact differential
//! execution. Panics and hangs are findings, not crashes.
//!
//! With `--legality`, each passing kernel additionally runs the
//! transform-legality oracle: every interchange the `analysis::depend`
//! engine approves is applied and the transformed kernel must stay
//! bit-exact with the original — a divergence is a `legality` finding.
//!
//! Failures are deduplicated by normalized signature; each *new* signature
//! is minimized by the built-in reducer (disable with `--no-reduce`) and
//! written to the corpus directory (default `target/mha-corpus`) as a
//! replayable `<sig>.finding` entry. Progress goes to stderr, so
//! `--format json` stdout is always one parseable document.
//!
//! `--isolate` runs every oracle stack in a worker *process*
//! (`driver::warden`): a stack overflow past the depth guards, an
//! allocator OOM, or any other process death becomes a reducible
//! `crash/warden` finding instead of a dead campaign. Reduction candidates
//! go through the same worker pool, so a crash finding minimizes exactly
//! like any other. The hidden `--warden-child` argv\[1\] mode is how the
//! re-exec'd workers enter their serve loop — never pass it by hand.
//!
//! Exit codes: 0 all seeds clean, 1 unique findings exist, 2
//! infrastructure/usage error.

use std::path::PathBuf;

use driver::corpus::Corpus;
use driver::{Warden, WardenConfig};
use fuzzing::reduce::ReduceOpts;
use fuzzing::{run_campaign, run_campaign_with, CampaignOpts};
use pass_core::report::json_str;

fn usage() -> ! {
    eprintln!(
        "usage: mha-fuzz [--seed N] [--count N] [--format text|json]\n\
         \x20               [--corpus DIR] [--step-limit N] [--fuel N]\n\
         \x20               [--deadline-ms N] [--no-reduce] [--reduce-budget N]\n\
         \x20               [--legality] [--isolate]"
    );
    std::process::exit(2);
}

fn flag_value(args: &mut std::env::Args, flag: &str) -> String {
    match args.next() {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs a value");
            usage();
        }
    }
}

fn parse_u64(s: &str, flag: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an integer, got '{s}'");
        usage();
    })
}

fn main() {
    // Worker mode: the warden re-execs this binary with `--warden-child`
    // as the only argument; dispatch before any flag parsing.
    if std::env::args().nth(1).as_deref() == Some("--warden-child") {
        driver::warden::child_main();
    }
    let mut seed_start = 0u64;
    let mut isolate = false;
    let mut count = 100u64;
    let mut format_json = false;
    let mut corpus_dir = Corpus::default_dir();
    let mut opts = CampaignOpts {
        reduce: Some(ReduceOpts::default()),
        ..CampaignOpts::default()
    };

    let mut args = std::env::args();
    args.next();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => seed_start = parse_u64(&flag_value(&mut args, "--seed"), "--seed"),
            "--count" => count = parse_u64(&flag_value(&mut args, "--count"), "--count"),
            "--format" => match flag_value(&mut args, "--format").as_str() {
                "text" => format_json = false,
                "json" => format_json = true,
                other => {
                    eprintln!("--format needs 'text' or 'json', got '{other}'");
                    usage();
                }
            },
            "--corpus" => corpus_dir = PathBuf::from(flag_value(&mut args, "--corpus")),
            "--step-limit" => {
                opts.oracle.step_limit =
                    parse_u64(&flag_value(&mut args, "--step-limit"), "--step-limit")
            }
            "--fuel" => {
                opts.oracle.fuel = Some(parse_u64(&flag_value(&mut args, "--fuel"), "--fuel"))
            }
            "--deadline-ms" => {
                opts.oracle.deadline_ms = Some(parse_u64(
                    &flag_value(&mut args, "--deadline-ms"),
                    "--deadline-ms",
                ))
            }
            "--no-reduce" => opts.reduce = None,
            "--legality" => opts.legality = true,
            "--isolate" => isolate = true,
            "--reduce-budget" => {
                let n = parse_u64(&flag_value(&mut args, "--reduce-budget"), "--reduce-budget");
                opts.reduce = Some(ReduceOpts {
                    max_attempts: n as usize,
                });
            }
            _ => {
                eprintln!("unknown argument '{a}'");
                usage();
            }
        }
    }

    let corpus = match Corpus::open(&corpus_dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("mha-fuzz: {e}");
            std::process::exit(2);
        }
    };

    // All narration goes to stderr; stdout carries only the final report.
    let mut progress = |line: &str| eprintln!("mha-fuzz: {line}");
    let result = if isolate {
        let warden = match Warden::new(WardenConfig::default()) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("mha-fuzz: --isolate worker pool: {e}");
                std::process::exit(2);
            }
        };
        run_campaign_with(
            seed_start,
            count,
            &opts,
            &|src, seed, opts| warden.execute_oracle(src, seed, opts),
            &mut progress,
        )
    } else {
        run_campaign(seed_start, count, &opts, &mut progress)
    };

    let mut stored: Vec<(String, PathBuf)> = Vec::new();
    for finding in result.findings.values() {
        match corpus.store(finding) {
            Ok(path) => stored.push((finding.signature.as_str().to_string(), path)),
            Err(e) => {
                eprintln!("mha-fuzz: {e}");
                std::process::exit(2);
            }
        }
    }

    if format_json {
        let mut out = String::from("{");
        out.push_str(&format!("\"seed_start\":{seed_start},"));
        out.push_str(&format!("\"count\":{count},"));
        out.push_str(&format!("\"attempts\":{},", result.attempts));
        out.push_str(&format!("\"passed\":{},", result.passed));
        out.push_str(&format!("\"interchanged\":{},", result.interchanged));
        out.push_str(&format!("\"unique_findings\":{},", result.findings.len()));
        out.push_str("\"findings\":[");
        for (i, f) in result.findings.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seed\":{},\"oracle\":{},\"stage\":{},\"signature\":{},\"hits\":{},\"kernel_lines\":{},\"reduced_lines\":{},\"path\":{}}}",
                f.seed,
                json_str(f.failure.oracle.as_str()),
                json_str(&f.failure.stage),
                json_str(f.signature.as_str()),
                f.hits,
                f.kernel.lines().count(),
                f.reduced
                    .as_ref()
                    .map(|r| r.lines().count().to_string())
                    .unwrap_or_else(|| "null".into()),
                json_str(&corpus.entry_path(&f.signature).display().to_string()),
            ));
        }
        out.push_str("]}");
        println!("{out}");
    } else {
        let legality = if opts.legality {
            format!(
                ", {} interchange(s) verified bit-exact",
                result.interchanged
            )
        } else {
            String::new()
        };
        println!(
            "fuzzed seeds {seed_start}..{}: {} passed, {} unique signature(s){legality}",
            seed_start + count,
            result.passed,
            result.findings.len()
        );
        for f in result.findings.values() {
            let reduced = match &f.reduced {
                Some(r) => format!(", reduced to {} lines", r.lines().count()),
                None => String::new(),
            };
            println!(
                "  [{}] seed {} ({} hit(s){reduced}): {}",
                f.signature.hex_id(),
                f.seed,
                f.hits,
                f.failure
            );
        }
        for (_, path) in &stored {
            println!("  wrote {}", path.display());
        }
    }

    std::process::exit(if result.is_clean() { 0 } else { 1 });
}
