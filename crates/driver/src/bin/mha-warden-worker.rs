//! Dedicated warden worker binary.
//!
//! Production binaries (`mha-serve`, `mha-batch`, `mha-fuzz`) isolate by
//! re-exec'ing themselves with `--warden-child`; test harness executables
//! cannot be re-exec'd that way, so `driver::warden` falls back to this
//! binary (cargo builds it alongside the test executables). It speaks the
//! warden frame protocol on stdin/stdout unconditionally.

fn main() {
    driver::warden::child_main()
}
